#include "serve/wire_binary.h"

#include <cstring>

#include "serve/wire.h"

namespace selnet::serve {

using util::Status;

namespace {

// Explicit little-endian put/get: the codec's byte order is part of the
// protocol, not a property of the host.

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {char(v & 0xff), char((v >> 8) & 0xff), char((v >> 16) & 0xff),
               char((v >> 24) & 0xff)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(out, bits);
}

uint32_t GetU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return uint32_t(u[0]) | uint32_t(u[1]) << 8 | uint32_t(u[2]) << 16 |
         uint32_t(u[3]) << 24;
}

uint64_t GetU64(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(u[i]) << (8 * i);
  return v;
}

float GetF32(const char* p) {
  uint32_t bits = GetU32(p);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

/// Bounds-checked sequential reader over one payload. Every Read* fails
/// (never over-reads) on a payload truncated or lying about its counts —
/// payloads are client bytes off an open port.
class PayloadReader {
 public:
  PayloadReader(const char* p, size_t len) : p_(p), len_(len) {}

  bool AtEnd() const { return off_ == len_; }

  Status Fail(const char* what) const {
    return Status::Invalid(std::string("wire: binary payload: ") + what);
  }

  Status ReadU8(uint8_t* out) {
    if (len_ - off_ < 1) return Fail("truncated");
    *out = uint8_t(p_[off_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (len_ - off_ < 4) return Fail("truncated");
    *out = GetU32(p_ + off_);
    off_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (len_ - off_ < 8) return Fail("truncated");
    *out = GetU64(p_ + off_);
    off_ += 8;
    return Status::OK();
  }

  Status ReadF32(float* out) {
    if (len_ - off_ < 4) return Fail("truncated");
    *out = GetF32(p_ + off_);
    off_ += 4;
    return Status::OK();
  }

  /// u8 length + bytes (model names, error codes).
  Status ReadShortString(std::string* out) {
    uint8_t n = 0;
    SEL_RETURN_NOT_OK(ReadU8(&n));
    if (len_ - off_ < n) return Fail("truncated string");
    out->assign(p_ + off_, n);
    off_ += n;
    return Status::OK();
  }

  /// u32 length + bytes (error messages).
  Status ReadString(std::string* out) {
    uint32_t n = 0;
    SEL_RETURN_NOT_OK(ReadU32(&n));
    if (len_ - off_ < n) return Fail("truncated string");
    out->assign(p_ + off_, n);
    off_ += n;
    return Status::OK();
  }

  /// u32 count + raw f32 words. The count is validated against the bytes
  /// actually present BEFORE any allocation — a hostile count cannot force
  /// a giant reserve.
  Status ReadF32Array(std::vector<float>* out) {
    uint32_t n = 0;
    SEL_RETURN_NOT_OK(ReadU32(&n));
    if ((len_ - off_) / 4 < n) return Fail("float array count exceeds payload");
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      (*out)[i] = GetF32(p_ + off_);
      off_ += 4;
    }
    return Status::OK();
  }

 private:
  const char* p_;
  size_t len_;
  size_t off_ = 0;
};

void PutShortString(std::string* out, const std::string& s) {
  // Routes and code tokens are short by construction; a pathological name is
  // truncated rather than corrupting the frame layout.
  const size_t n = s.size() < 255 ? s.size() : 255;
  out->push_back(char(uint8_t(n)));
  out->append(s.data(), n);
}

void PutF32Array(std::string* out, const std::vector<float>& v) {
  PutU32(out, uint32_t(v.size()));
  for (float f : v) PutF32(out, f);
}

void AppendHeader(std::string* out, FrameType type, uint64_t tag,
                  size_t payload_len) {
  out->push_back(char(kFrameMagic0));
  out->push_back(char(kFrameMagic1));
  out->push_back(char(kWireVersion));
  out->push_back(char(uint8_t(type)));
  PutU32(out, uint32_t(payload_len));
  PutU64(out, tag);
}

/// Write the frame header after the payload is built: append a placeholder
/// header, build the payload in place, then patch the length.
class FrameBuilder {
 public:
  FrameBuilder(std::string* out, FrameType type, uint64_t tag) : out_(out) {
    start_ = out->size();
    AppendHeader(out, type, tag, 0);
  }

  ~FrameBuilder() {
    const uint32_t len = uint32_t(out_->size() - start_ - kFrameHeaderBytes);
    char* p = &(*out_)[start_ + 4];
    p[0] = char(len & 0xff);
    p[1] = char((len >> 8) & 0xff);
    p[2] = char((len >> 16) & 0xff);
    p[3] = char((len >> 24) & 0xff);
  }

 private:
  std::string* out_;
  size_t start_;
};

constexpr uint8_t kReqFlagDeadline = 1u << 0;
constexpr uint8_t kReqFlagTrace = 1u << 1;
constexpr uint8_t kRespFlagFastPath = 1u << 0;
constexpr uint8_t kRespFlagDegraded = 1u << 1;

}  // namespace

FramePeel PeelFrameHeader(const char* data, size_t len, size_t max_payload,
                          FrameHeader* hdr, std::string* err) {
  if (len < kFrameHeaderBytes) return FramePeel::kNeedMore;
  const unsigned char* u = reinterpret_cast<const unsigned char*>(data);
  if (u[0] != kFrameMagic0 || u[1] != kFrameMagic1) {
    if (err != nullptr) *err = "wire: bad frame magic";
    return FramePeel::kBad;
  }
  if (u[2] == 0 || u[2] > kWireVersion) {
    if (err != nullptr) {
      *err = "wire: unsupported frame version " + std::to_string(u[2]);
    }
    return FramePeel::kBad;
  }
  if (u[3] < uint8_t(FrameType::kEstimate) ||
      u[3] > uint8_t(FrameType::kAdminReply)) {
    if (err != nullptr) {
      *err = "wire: unknown frame type " + std::to_string(u[3]);
    }
    return FramePeel::kBad;
  }
  const uint32_t payload_len = GetU32(data + 4);
  if (payload_len > max_payload) {
    if (err != nullptr) {
      *err = "wire: frame payload " + std::to_string(payload_len) +
             " exceeds " + std::to_string(max_payload) + " bytes";
    }
    return FramePeel::kBad;
  }
  hdr->version = u[2];
  hdr->type = FrameType(u[3]);
  hdr->payload_len = payload_len;
  hdr->tag = GetU64(data + 8);
  return FramePeel::kFrame;
}

void AppendRequestFrame(std::string* out, const EstimateRequest& req) {
  FrameBuilder frame(out, FrameType::kEstimate, req.tag);
  uint8_t flags = 0;
  if (req.has_deadline()) flags |= kReqFlagDeadline;
  if (req.wire_trace || req.trace) flags |= kReqFlagTrace;
  out->push_back(char(flags));
  PutShortString(out, req.model);
  if (req.has_deadline()) {
    // The budget REMAINING at serialization time, clamped at 0 — identical
    // semantics to the JSON deadline_ms field.
    double remaining_ms = std::chrono::duration<double, std::milli>(
                              req.deadline - std::chrono::steady_clock::now())
                              .count();
    PutF32(out, remaining_ms > 0.0 ? float(remaining_ms) : 0.0f);
  }
  PutF32Array(out, req.x);
  PutF32Array(out, req.thresholds);
}

void AppendResponseFrame(std::string* out, const EstimateResponse& resp) {
  FrameBuilder frame(out, FrameType::kResponse, resp.tag);
  uint8_t flags = 0;
  if (resp.fast_path) flags |= kRespFlagFastPath;
  if (resp.degraded) flags |= kRespFlagDegraded;
  out->push_back(char(flags));
  PutShortString(out, resp.model);
  PutU64(out, resp.version);
  PutU32(out, resp.cache_hits);
  PutF32Array(out, resp.estimates);
  PutF32Array(out, resp.stage_ms);
}

void AppendErrorFrame(std::string* out, const std::string& message,
                      const std::string& code, uint64_t tag) {
  FrameBuilder frame(out, FrameType::kError, tag);
  PutShortString(out, code);
  PutU32(out, uint32_t(message.size()));
  out->append(message);
}

void AppendAdminFrame(std::string* out, FrameType type, uint64_t tag,
                      const std::string& json) {
  FrameBuilder frame(out, type, tag);
  out->append(json);
}

Status DecodeRequestPayload(const char* p, size_t len,
                            std::chrono::steady_clock::time_point now,
                            EstimateRequest* req) {
  EstimateRequest parsed;
  PayloadReader r(p, len);
  uint8_t flags = 0;
  SEL_RETURN_NOT_OK(r.ReadU8(&flags));
  SEL_RETURN_NOT_OK(r.ReadShortString(&parsed.model));
  if (flags & kReqFlagDeadline) {
    float budget_ms = 0.0f;
    SEL_RETURN_NOT_OK(r.ReadF32(&budget_ms));
    parsed.deadline =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(budget_ms));
  }
  parsed.wire_trace = (flags & kReqFlagTrace) != 0;
  SEL_RETURN_NOT_OK(r.ReadF32Array(&parsed.x));
  SEL_RETURN_NOT_OK(r.ReadF32Array(&parsed.thresholds));
  if (!r.AtEnd()) return r.Fail("trailing bytes");
  if (parsed.x.empty()) {
    return Status::Invalid("wire: request needs a non-empty x array");
  }
  if (parsed.thresholds.empty()) {
    return Status::Invalid("wire: request needs a non-empty thresholds array");
  }
  *req = std::move(parsed);
  return Status::OK();
}

Status DecodeResponsePayload(const char* p, size_t len,
                             EstimateResponse* resp) {
  EstimateResponse parsed;
  PayloadReader r(p, len);
  uint8_t flags = 0;
  SEL_RETURN_NOT_OK(r.ReadU8(&flags));
  parsed.fast_path = (flags & kRespFlagFastPath) != 0;
  parsed.degraded = (flags & kRespFlagDegraded) != 0;
  SEL_RETURN_NOT_OK(r.ReadShortString(&parsed.model));
  SEL_RETURN_NOT_OK(r.ReadU64(&parsed.version));
  uint32_t cache_hits = 0;
  SEL_RETURN_NOT_OK(r.ReadU32(&cache_hits));
  parsed.cache_hits = cache_hits;
  SEL_RETURN_NOT_OK(r.ReadF32Array(&parsed.estimates));
  SEL_RETURN_NOT_OK(r.ReadF32Array(&parsed.stage_ms));
  if (!r.AtEnd()) return r.Fail("trailing bytes");
  *resp = std::move(parsed);
  return Status::OK();
}

Status DecodeErrorPayload(const char* p, size_t len, std::string* code,
                          std::string* message) {
  PayloadReader r(p, len);
  SEL_RETURN_NOT_OK(r.ReadShortString(code));
  SEL_RETURN_NOT_OK(r.ReadString(message));
  if (!r.AtEnd()) return r.Fail("trailing bytes");
  return Status::OK();
}

}  // namespace selnet::serve
