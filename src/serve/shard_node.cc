#include "serve/shard_node.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/check.h"

namespace selnet::serve {

ShardNode::ShardNode(const ShardNodeConfig& cfg) {
  SEL_CHECK_MSG(cfg.server.scheduler.pool == nullptr,
                "ShardNodeConfig.server.scheduler.pool must be null: the "
                "node owns its pool");
  size_t threads = cfg.threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<util::ThreadPool>(threads);
  ServerConfig scfg = cfg.server;
  scfg.scheduler.pool = pool_.get();
  server_ = std::make_unique<SelNetServer>(scfg);
  frontend_ = std::make_unique<NetFrontend>(cfg.frontend, server_.get());
}

ShardNode::~ShardNode() {
  Stop();
  // Frontend first (no new work), then the server (drains onto the pool),
  // then the pool it used.
  frontend_.reset();
  server_.reset();
  pool_.reset();
}

void ShardNode::Stop() {
  if (frontend_) frontend_->Stop();
  if (server_) server_->Drain();
}

namespace {

volatile std::sig_atomic_t g_shard_node_stop = 0;

void HandleStopSignal(int) { g_shard_node_stop = 1; }

}  // namespace

int RunShardNodeProcess(const ShardNodeProcessOptions& opts) {
  ShardNodeConfig cfg;
  cfg.server.dim = opts.dim;
  cfg.frontend.bind_address = opts.bind_address;
  cfg.frontend.port = opts.port;
  cfg.frontend.num_loops = opts.net_loops;
  cfg.threads = opts.threads;

  ShardNode node(cfg);
  util::Status st = node.status();
  if (!st.ok()) {
    std::fprintf(stderr, "shard_node: %s\n", st.ToString().c_str());
    return 1;
  }

  g_shard_node_stop = 0;
  struct sigaction sa = {};
  sa.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  if (!opts.port_file.empty()) {
    // Write-then-rename: the parent never reads a half-written port, and the
    // file's existence itself means "bound and serving".
    std::string tmp = opts.port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "shard_node: cannot write %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", unsigned(node.port()));
    std::fclose(f);
    if (std::rename(tmp.c_str(), opts.port_file.c_str()) != 0) {
      std::fprintf(stderr, "shard_node: cannot rename %s\n", tmp.c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "shard_node: serving on %s:%u (dim=%zu)\n",
               opts.bind_address.c_str(), unsigned(node.port()), opts.dim);
  while (g_shard_node_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  node.Stop();
  std::fprintf(stderr, "shard_node: stopped\n");
  return 0;
}

}  // namespace selnet::serve
