#include "serve/admission.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace selnet::serve {

const char* ShedReasonName(ShedReason r) {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kPriorityShed: return "priority_shed";
    case ShedReason::kDeadlineExpired: return "deadline_exceeded";
    case ShedReason::kShutdown: return "shutdown";
  }
  return "none";
}

ShedReason ShedReasonFrom(std::exception_ptr error) {
  if (!error) return ShedReason::kNone;
  try {
    std::rethrow_exception(error);
  } catch (const OverloadError& e) {
    return e.reason();
  } catch (...) {
    return ShedReason::kNone;
  }
}

AdmissionController::AdmissionController(const AdmissionConfig& cfg)
    : cfg_(cfg) {
  SEL_CHECK_MSG(cfg_.max_inflight > 0,
                "AdmissionConfig.max_inflight must be positive");
  if (cfg_.priority_watermarks.empty()) {
    cfg_.priority_watermarks.push_back(1.0);
  }
  class_caps_.reserve(cfg_.priority_watermarks.size());
  for (double w : cfg_.priority_watermarks) {
    double clamped = std::min(std::max(w, 0.0), 1.0);
    class_caps_.push_back(
        size_t(std::floor(clamped * double(cfg_.max_inflight))));
  }
}

const RoutePolicy& AdmissionController::PolicyFor(
    const std::string& route) const {
  auto it = cfg_.routes.find(route);
  return it != cfg_.routes.end() ? it->second : cfg_.default_policy;
}

AdmissionController::Decision AdmissionController::Admit(
    const std::string& route) {
  const RoutePolicy& policy = PolicyFor(route);
  size_t cls = std::min(policy.priority, class_caps_.size() - 1);
  size_t cap = class_caps_[cls];
  // Optimistic ticket: one fetch_add on the admit path; overload pays one
  // more to hand it back. Transient over-counting from concurrent admits is
  // at most #threads and only ever sheds EARLIER, never oversubscribes.
  size_t prev = inflight_.fetch_add(1, std::memory_order_relaxed);
  if (prev < cap) return Decision{};
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  Decision d;
  d.admitted = false;
  // Past the FULL budget even the highest class would have shed; inside it,
  // only this route's watermark was the binding constraint.
  d.reason = prev >= class_caps_.front() ? ShedReason::kQueueFull
                                         : ShedReason::kPriorityShed;
  d.try_degrade = policy.allow_degrade;
  return d;
}

}  // namespace selnet::serve
