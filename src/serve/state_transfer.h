#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file state_transfer.h
/// \brief Framed, checksummed model-state transfer between serving processes.
///
/// Publishing to a remote shard ships the model itself: the EXACT bytes
/// core::SaveModelBytes produces (the SaveModel file format, config +
/// checksummed parameters) travel over the admin plane as a sequence of
/// base64 frames, each carrying its own CRC-32, with a whole-payload CRC-32
/// verified at commit. Because the wire carries the file format verbatim, a
/// shard restored from a transfer serves BIT-IDENTICAL answers to one that
/// loaded the same model from disk — the property the failover tests pin.
///
/// Wire sequence (sender -> receiver, each line acked before the next):
///
///   {"cmd":"xfer_begin","model":"r","size":N,"frames":K}
///   {"cmd":"xfer_frame","seq":0,"crc":C0,"data":"<base64>"}
///   ...
///   {"cmd":"xfer_frame","seq":K-1,"crc":...,"data":"..."}
///   {"cmd":"xfer_commit","model":"r","crc":W}   -> {"ok":true,"version":V}
///
/// Failure handling is receiver-side and per-connection: a frame whose CRC
/// or sequence number disagrees aborts the transfer (the sender sees a typed
/// error ack and must restart from xfer_begin); a connection that dies
/// mid-transfer discards the partial state with it. Nothing is published
/// until the commit's whole-payload checksum passes, so a receiver can never
/// serve a torn model.

namespace selnet::serve {

class NetClient;

/// \brief Frame size for SendModelState. 48 KiB of raw bytes stays — after
/// the 4/3 base64 expansion plus JSON framing — comfortably inside the
/// frontend's 1 MiB line cap, with room for the cap to shrink 10x before
/// transfers notice.
constexpr size_t kDefaultFrameBytes = 48 << 10;

/// \brief Ceiling on one transfer's announced payload size. The admin line's
/// `size` is attacker-controlled input on an open TCP port, so Begin must
/// reject it with a typed error rather than attempt the allocation — a
/// 2^64-1 claim would otherwise throw out of buf_.reserve and take the
/// whole serving process down. 1 GiB is ~3 orders of magnitude above any
/// real SaveModel payload here.
constexpr uint64_t kMaxTransferBytes = 1ull << 30;

/// \brief One transfer frame: `data` holds RAW payload bytes (base64 only on
/// the wire), `crc` their CRC-32.
struct TransferFrame {
  uint64_t seq = 0;
  uint32_t crc = 0;
  std::string data;
};

/// \brief Split `bytes` into checksummed frames of at most `frame_bytes`.
std::vector<TransferFrame> BuildFrames(const std::string& bytes,
                                       size_t frame_bytes = kDefaultFrameBytes);

/// \brief Serialize the admin lines of the transfer sequence (no trailing
/// newline; exposed for the harness's fault-injection variants).
std::string SerializeXferBegin(const std::string& model, uint64_t size,
                               uint64_t frames, uint64_t tag = 0);
std::string SerializeXferFrame(const TransferFrame& frame, uint64_t tag = 0);
std::string SerializeXferCommit(const std::string& model, uint32_t whole_crc,
                                uint64_t tag = 0);

/// \brief Receiver-side reassembly of one transfer. One instance per
/// connection (a transfer never spans connections); not thread-safe — the
/// frontend drives it from its loop thread only.
class TransferAssembler {
 public:
  /// \brief Start a transfer (implicitly aborting any in-progress one — the
  /// sender gave up on it, or is retrying after a failure).
  util::Status Begin(const std::string& model, uint64_t size, uint64_t frames);

  /// \brief Append frame `seq` after verifying its CRC. Frames must arrive
  /// in order — the admin plane is a single TCP stream, so a gap means a
  /// sender bug, not reordering. Any failure aborts the transfer.
  util::Status AddFrame(uint64_t seq, uint32_t crc, const std::string& data);

  /// \brief Verify frame count, byte count, and the whole-payload CRC, then
  /// hand the assembled bytes out (the transfer ends either way).
  util::Result<std::string> Commit(const std::string& model,
                                   uint32_t whole_crc);

  void Abort();
  bool active() const { return active_; }
  const std::string& model() const { return model_; }

  /// \brief Override the per-transfer payload ceiling (tests; embedders with
  /// bigger models).
  void set_max_bytes(uint64_t max_bytes) { max_bytes_ = max_bytes; }
  uint64_t max_bytes() const { return max_bytes_; }

 private:
  bool active_ = false;
  std::string model_;
  uint64_t expect_size_ = 0;
  uint64_t expect_frames_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t max_bytes_ = kMaxTransferBytes;
  std::string buf_;
};

/// \brief Sender-side driver: push `bytes` as route `model` over a connected
/// blocking client, awaiting each ack. Returns the version the receiver
/// published (via `*version` when non-null). A kUnavailable /kIoError status
/// means the transfer must restart from scratch on a fresh connection.
util::Status SendModelState(NetClient* client, const std::string& model,
                            const std::string& bytes,
                            uint64_t* version = nullptr,
                            size_t frame_bytes = kDefaultFrameBytes);

}  // namespace selnet::serve
