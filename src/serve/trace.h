#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

/// \file trace.h
/// \brief Per-request stage tracing: where a request's wall time goes.
///
/// A request crosses six local stages end to end:
///
///   decode -> route -> cache -> queue -> predict -> encode
///   (wire     (registry (per-     (scheduler (batch     (response
///    parse)    resolve)  threshold wait /     compute /   serialize,
///                        lookups)  pool wait) sweep eval) frontend only)
///
/// Three REMOTE stages attribute the hop when a replica in another process
/// served the request (fleet mode): the remote `shard_node` reports its own
/// queue/predict time in the response's stage block, which RemoteShard
/// merges into the caller's trace as remote_queue / remote_predict, and
/// remote_wire is the whole caller-observed round trip for that hop — so
/// remote_wire - (remote_queue + remote_predict) is the residual wire +
/// framing + remote decode/encode cost, and remote_queue + remote_predict
/// <= remote_wire by construction.
///
/// Tracing is SAMPLED: ServerConfig::trace_sample_every picks 1-in-N
/// requests (the NetFrontend applies the same rate to wire requests so the
/// decode stage is captured before the server ever sees the request). A
/// sampled request carries one shared RequestTrace through the request
/// object; each stage records its elapsed milliseconds into it, and the
/// server flushes the finished span into ServeStats — per-stage histograms
/// for the aggregate view, plus a bounded slow-request ring that keeps the
/// full span breakdown of any traced request slower than
/// ServerConfig::slow_trace_ms (dumped by ServeStats::Report and the
/// {"cmd":"slow"} admin request).
///
/// Untraced requests never touch a clock beyond what the serving path
/// already reads, so the steady-state overhead is one atomic counter
/// increment per request (see bench/serve_throughput part 7 for the gate).

namespace selnet::serve {

/// \brief Request stages, in request order.
enum class Stage : size_t {
  kDecode = 0,  ///< Wire line -> EstimateRequest (frontend only).
  kRoute,       ///< Registry/shard resolve + snapshot pin.
  kCache,       ///< Per-threshold cache pre-pass.
  kQueue,          ///< Scheduler queue / pool wait before compute started.
  kPredict,        ///< Batched Predict / sweep evaluation.
  kEncode,         ///< Response serialization (frontend only).
  kRemoteQueue,    ///< Queue stage reported by the remote replica.
  kRemotePredict,  ///< Predict stage reported by the remote replica.
  kRemoteWire,     ///< Whole remote round trip as the caller observed it.
};
constexpr size_t kNumStages = 9;
/// Stages a single process observes about itself (the remote stages exist
/// only on the caller side of a cross-process hop). A shard_node's wire
/// stage block carries this prefix of the span.
constexpr size_t kNumLocalStages = 6;

/// \brief Stable lowercase stage name ("decode", "route", ...).
const char* StageName(Stage s);

/// \brief One finished sampled request: the full span breakdown.
struct SpanRecord {
  std::string route;
  uint64_t tag = 0;
  double total_ms = 0.0;  ///< Admission to completion, wall time.
  std::array<double, kNumStages> stage_ms = {};

  /// \brief Flat JSON object (route, tag, total_ms, one field per stage).
  std::string ToJson() const;
};

/// \brief In-flight span accumulator for one sampled request.
///
/// Carried by shared_ptr on EstimateRequest. Observe() keeps the MAX per
/// stage: single-shot stages (decode, route, cache) observe once, while the
/// per-row stages (queue, predict) may observe once per scheduler row of a
/// sweep — the max is the request's critical path through that stage.
/// Mutex-guarded: only sampled requests pay it, and a request's rows rarely
/// contend (different batches).
class RequestTrace {
 public:
  RequestTrace() : start_(std::chrono::steady_clock::now()) {}

  void Observe(Stage s, double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t i = size_t(s);
    if (ms > stage_ms_[i]) stage_ms_[i] = ms;
  }

  /// \brief Close the span: total = now - construction time.
  SpanRecord Finish(const std::string& route, uint64_t tag) const {
    SpanRecord span;
    span.route = route;
    span.tag = tag;
    span.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    std::lock_guard<std::mutex> lock(mu_);
    span.stage_ms = stage_ms_;
    return span;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::array<double, kNumStages> stage_ms_ = {};
};

}  // namespace selnet::serve
