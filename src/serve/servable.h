#pragma once

#include <memory>
#include <utility>

#include "eval/estimator.h"

/// \file servable.h
/// \brief Type erasure between the registry and the models it serves.
///
/// The serving stack speaks `eval::Estimator` — the exact interface the bench
/// harness scores models through — so anything that can be evaluated can be
/// served: SelNet-ct, the partitioned SelNet, and all nine baselines, behind
/// one endpoint. `Servable` wraps the shared snapshot and resolves the
/// optional `eval::SweepCapable` capability once at publish time (one
/// dynamic_cast per Publish, zero per request).

namespace selnet::serve {

/// \brief A type-erased, capability-probed handle to a served estimator.
class Servable {
 public:
  Servable() = default;
  explicit Servable(std::shared_ptr<eval::Estimator> estimator)
      : estimator_(std::move(estimator)),
        sweep_(dynamic_cast<eval::SweepCapable*>(estimator_.get())) {}

  eval::Estimator* get() const { return estimator_.get(); }
  eval::Estimator* operator->() const { return estimator_.get(); }
  eval::Estimator& operator*() const { return *estimator_; }
  explicit operator bool() const { return estimator_ != nullptr; }

  /// \brief True when the wrapped model can answer a threshold sweep from one
  /// control-point evaluation (`eval::SweepCapable`).
  bool sweep_capable() const { return sweep_ != nullptr; }

  /// \brief The capability interface; null unless sweep_capable().
  eval::SweepCapable* sweep() const { return sweep_; }

 private:
  std::shared_ptr<eval::Estimator> estimator_;
  eval::SweepCapable* sweep_ = nullptr;  ///< Cached capability cast.
};

}  // namespace selnet::serve
