#pragma once

#include <cstdint>
#include <string>

#include "serve/client_channel.h"
#include "serve/serve_stats.h"
#include "serve/server.h"
#include "util/status.h"

/// \file remote_shard.h
/// \brief Client-side proxy for one shard served by another process: the
/// SelNetServer Submit contract spoken over a pipelined wire connection.
///
/// A ShardedRegistry slot can be an in-process SelNetServer or a RemoteShard
/// pointed at a `shard_node` process — the ring routes to both through the
/// same SubmitWith shape, so replication and failover (shard_router.h) never
/// care where a replica actually runs.
///
/// Two connections, two disciplines:
///
///   * The DATA connection is a ClientChannel (client_channel.h): pipelined,
///     tag-correlated, binary-framed when the peer acks the hello (JSON
///     fallback against older shard_nodes, so mixed fleets interoperate
///     during rollout). Responses may arrive out of order — the tag map is
///     the order; the caller's own tag is restored before its completion
///     fires.
///   * The CONTROL path (PublishBytes, HealthCheck, ScrapeStats) dials a
///     fresh blocking connection per call. Publishes are rare, and dialing
///     doubles as the reachability probe the health loop wants anyway.
///     State transfer stays on JSON lines — it is publish-time traffic.
///
/// Failure taxonomy, delivered through the completion's exception_ptr so the
/// replication layer can decide retry-vs-fail without string matching:
///
///   * RemoteError(kUnavailable) — never sent (no data connection, or the
///     remote shed it with queue_full/priority_shed/shutdown). Always safe
///     to retry on another replica.
///   * RemoteError(kIoError) — the connection died with the request in
///     flight; the remote MAY have executed it. Estimates are pure reads, so
///     the failover layer retries these too; non-idempotent callers must not.
///   * RemoteError(kDeadlineExceeded) — no response within
///     `recv_timeout_ms`; the shard is gray (alive TCP-wise, not answering).
///     The request's own deadline still has budget, so retry elsewhere.
///   * RemoteError(kNotFound) — the shard answered but doesn't hold the
///     route (restarted and awaiting re-sync, or a route replicated to
///     local slots only). Another replica may hold it — retryable, but the
///     shard itself is healthy (no suspect marking).
///   * OverloadError(kDeadlineExpired) — the REQUEST's deadline passed
///     (locally, or shed by the remote admission controller). Matches what
///     an in-process SelNetServer throws, so callers see one taxonomy
///     whether the shard is local or remote. No retry can help.
///
/// Every accepted SubmitWith fires its completion exactly once: a timed-out
/// entry is erased from the tag map when its error is delivered, so the late
/// reply (if one ever arrives) finds no entry and is discarded.

namespace selnet::serve {

/// \brief Where the remote shard lives and how long to wait for it.
struct RemoteShardConfig {
  std::string address = "127.0.0.1";
  uint16_t port = 0;
  /// Data-path response bound per request: a submitted estimate with no
  /// response after this long fails with RemoteError(kDeadlineExceeded)
  /// (gray-shard detector). <= 0 disables the bound — only the request's own
  /// deadline then applies.
  int recv_timeout_ms = 2000;
  /// Control-path bound (publish acks, health probes).
  int admin_timeout_ms = 5000;
  /// Data-path framing to ask for at Connect. Binary by default; the hello
  /// falls back to JSON against shard_nodes that predate negotiation.
  WireProto data_proto = WireProto::kBinary;
};

/// \brief One remote shard endpoint: pipelined data connection + per-call
/// control connections, presenting the SelNetServer submit contract.
class RemoteShard {
 public:
  explicit RemoteShard(const RemoteShardConfig& cfg);
  ~RemoteShard();

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  const RemoteShardConfig& config() const { return cfg_; }

  /// \brief "address:port", for error messages and the fleet report.
  std::string endpoint() const { return channel_.endpoint(); }

  /// \brief (Re)dial the data connection, negotiate framing, and start its
  /// reader. Any previous connection is torn down first (its in-flight
  /// requests fail with kIoError). kUnavailable when the peer is not
  /// accepting.
  util::Status Connect() { return channel_.Connect(); }

  /// \brief Drop the data connection; every pending completion fires with
  /// RemoteError(kIoError). Idempotent. Control calls still work.
  void CloseData() { channel_.Close(); }

  /// \brief True between a successful Connect and the first transport
  /// failure (or CloseData). A false here fails SubmitWith immediately with
  /// kUnavailable — the failover layer owns reconnect policy.
  bool data_up() const { return channel_.up(); }

  /// \brief The framing the data connection negotiated (while up).
  WireProto data_proto() const { return channel_.proto(); }

  /// \brief Pipelined submit (the SelNetServer::SubmitWith contract). The
  /// completion fires exactly once, from this thread (immediate failure) or
  /// the reader thread (response, timeout, connection loss).
  void SubmitWith(EstimateRequest req, SelNetServer::ResponseFn done) {
    channel_.Call(std::move(req), std::move(done));
  }

  /// \brief Ship SaveModel-format bytes and publish them under `name` on the
  /// remote (state_transfer.h over a fresh control connection); returns the
  /// version the remote registry assigned.
  util::Result<uint64_t> PublishBytes(const std::string& name,
                                      const std::string& bytes);

  /// \brief Dial + {"cmd":"health"} round trip, bounded by admin_timeout_ms.
  util::Status HealthCheck();

  /// \brief Dial + {"cmd":"stats_wire"} round trip: the remote's flat
  /// machine-scrape snapshot (counters + encoded histograms), for the
  /// coordinator's scrape tick to bucket-merge into the fleet view.
  util::Result<StatsSnapshot> ScrapeStats();

  /// \brief Requests currently awaiting a response (tests, fleet report).
  size_t pending() const { return channel_.pending(); }

 private:
  static ClientChannelConfig ChannelConfig(const RemoteShardConfig& cfg);

  RemoteShardConfig cfg_;
  ClientChannel channel_;
};

}  // namespace selnet::serve
