#include "serve/model_registry.h"

#include <utility>

#include "core/model_io.h"
#include "core/selnet_ct.h"

namespace selnet::serve {

using util::Result;
using util::Status;

uint64_t ModelRegistry::Publish(const std::string& name,
                                std::shared_ptr<eval::Estimator> model) {
  Servable servable(std::move(model));  // Capability cast outside the lock.
  std::lock_guard<std::mutex> lock(mu_);
  ModelHandle& slot = models_[name];
  slot.model = std::move(servable);
  slot.version = next_version_++;
  slot.name = name;
  return slot.version;
}

Result<uint64_t> ModelRegistry::PublishFromFile(const std::string& name,
                                                const std::string& path) {
  Result<std::unique_ptr<core::SelNetCt>> loaded = core::LoadModel(path);
  if (!loaded.ok()) return loaded.status();
  std::shared_ptr<core::SelNetCt> model(loaded.MoveValueUnsafe());
  // A deserialized model's parameters were written wholesale; enforce the
  // fold-cache contract at the publish boundary rather than trusting every
  // loader path to have done it — a stale folded output layer would serve
  // wrong estimates silently.
  model->InvalidateInferenceCache();
  return Publish(name, std::move(model));
}

Result<uint64_t> ModelRegistry::PublishFromBytes(const std::string& name,
                                                 const std::string& bytes,
                                                 const std::string& origin) {
  Result<std::unique_ptr<core::SelNetCt>> loaded =
      core::LoadModelBytes(bytes, origin);
  if (!loaded.ok()) return loaded.status();
  std::shared_ptr<core::SelNetCt> model(loaded.MoveValueUnsafe());
  model->InvalidateInferenceCache();  // Same contract as PublishFromFile.
  return Publish(name, std::move(model));
}

Result<std::string> ModelRegistry::SnapshotBytes(const std::string& name) const {
  Result<ModelHandle> handle = Get(name);
  if (!handle.ok()) return handle.status();
  // Snapshots are immutable after Publish, so reading the parameters here is
  // safe against concurrent Predict.
  const auto* model =
      dynamic_cast<const core::SelNetCt*>(handle.ValueOrDie().model.get());
  if (model == nullptr) {
    return Status::NotImplemented(
        "route '" + name +
        "' serves a model without SaveModel support; it cannot replicate to "
        "a remote shard");
  }
  return core::SaveModelBytes(*model);
}

Result<ModelHandle> ModelRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("no model published under '" + name + "'");
  }
  return it->second;  // shared_ptr copy: snapshot outlives any republish.
}

Status ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no model published under '" + name + "'");
  }
  return Status::OK();
}

uint64_t ModelRegistry::VersionOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? 0 : it->second.version;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, handle] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace selnet::serve
