#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/updater.h"
#include "data/database.h"
#include "data/workload.h"
#include "tensor/matrix.h"

/// \file update_pipeline.h
/// \brief The live-update pipeline: async ingest -> label patch -> drift
/// check -> shadow retrain -> atomic republish, without blocking the serve
/// path.
///
/// The Section 5.4 update machinery (core::UpdateManager) is synchronous: it
/// mutates the database, the workload labels, and the model in place — none
/// of which a serving snapshot may tolerate. LiveUpdatePipeline bridges the
/// two worlds with a shadow-state design:
///
///   clients                 pipeline thread                 serving threads
///      |                          |                               |
///  Submit(op) --> [ingest queue] -+                               |
///      |   (short mutex push,     |                               |
///      |    never blocks on       v                               |
///      |    training)      UpdateManager::Apply                   |
///      |                   on SHADOW db/workload/model            |
///      |                    * label patch (ParallelFor)           |
///      |                    * drift check (delta_U)               |
///      |                    * drift tripped -> IncrementalFit     |
///      |                          |                               |
///      |                  CloneServable() of the shadow           |
///      |                          |                               |
///      |                ModelRegistry::Publish(route) ----------> |
///      |                  (one pointer swap; in-flight            |
///      |                   batches finish on their                |
///      |                   pinned snapshot)                       |
///
/// Threading/ownership contract:
///  * The pipeline owns deep copies of the database and workload taken at
///    attach time, plus a shadow model cloned from the served snapshot
///    (core::IncrementalModel::CloneServable). The pipeline thread is the
///    ONLY thread that ever touches any of them.
///  * Serving threads only ever see registry snapshots, which are immutable
///    after Publish: every republish ships a fresh CloneServable() copy of
///    the shadow (fresh autograd leaves and pack caches, fold caches
///    invalidated), so later shadow training can never write into a served
///    model. Zero queries fail or block during a republish.
///  * Submit() may be called from any thread; it only takes the short queue
///    mutex (bounded by UpdatePipelineConfig::max_pending_ops), never waits
///    on training.

namespace selnet::serve {

class SelNetServer;

/// \brief Policy knobs for an attached pipeline.
struct UpdatePipelineConfig {
  /// Registry route to track and republish; empty = the server's default
  /// model name.
  std::string model_name;
  /// Drift threshold (delta_U), retrain patience and epoch cap — forwarded
  /// to core::UpdateManager.
  core::UpdatePolicy policy;
  /// Ingest-queue bound; Submit returns false (and counts a rejection) when
  /// this many ops are already pending. Backpressure, not silent loss.
  size_t max_pending_ops = 1024;
  /// Scheduling class for the pipeline thread (Linux; ignored elsewhere).
  /// Retraining is throughput work, serving is latency work: with
  /// SCHED_IDLE the kernel runs the retrain only in the serve threads'
  /// scheduling gaps, which keeps serve-path tail latency flat through a
  /// retrain even when cores are scarce (bench/serve_throughput part 4 gates
  /// retrain-concurrent p99 at <= 2x idle). When disabled (or off-Linux) the
  /// thread falls back to `background_nice`. Sustained 100%-CPU serve load
  /// can starve an idle-class retrain; the bounded ingest queue then pushes
  /// back on Submit rather than growing silently.
  bool background_idle_sched = true;
  /// Nice value used when background_idle_sched is off (0 = inherit).
  int background_nice = 10;
};

/// \brief Point-in-time pipeline progress (mirrored into ServeStats).
struct UpdatePipelineState {
  uint64_t ops_ingested = 0;   ///< Accepted onto the queue.
  uint64_t ops_rejected = 0;   ///< Bounced off the full queue.
  uint64_t ops_applied = 0;    ///< Fully applied to the shadow state.
  /// Ops whose application threw (e.g. allocation failure mid-retrain). The
  /// op is dropped, the worker keeps running — a shadow-side failure must
  /// never take the serving process down. The shadow may be missing these
  /// ops' effects relative to the true database; a caller seeing this grow
  /// should re-attach the pipeline from fresh state.
  uint64_t ops_failed = 0;
  uint64_t records_inserted = 0;
  uint64_t records_deleted = 0;
  uint64_t retrains_triggered = 0;
  uint64_t epochs_run = 0;     ///< Total incremental epochs across retrains.
  uint64_t publishes = 0;      ///< Versions shipped through the registry.
  double last_drift = 0.0;     ///< MAE drift at the most recent drift check.
  double baseline_mae = 0.0;   ///< UpdateManager's current drift baseline.
  double last_mae = 0.0;       ///< Validation MAE after the last applied op.
  uint64_t last_published_version = 0;
  bool idle = true;            ///< Queue empty and no op being applied.
};

/// \brief Background update pipeline bound to one SelNetServer route.
///
/// Construction clones the currently served model (which must implement
/// core::IncrementalModel::CloneServable — both SelNet variants do) and
/// starts the worker thread; destruction (or Stop) drains nothing — pending
/// ops are dropped, the in-flight op finishes first. Use Flush() to wait for
/// full application instead.
class LiveUpdatePipeline {
 public:
  /// \brief `db` and `workload` are deep-copied as the shadow state; they
  /// must describe the data the served model was trained on. Aborts if the
  /// route is empty or its model cannot be cloned/retrained.
  LiveUpdatePipeline(SelNetServer* server, const UpdatePipelineConfig& cfg,
                     const data::Database& db, const data::Workload& workload);
  ~LiveUpdatePipeline();

  LiveUpdatePipeline(const LiveUpdatePipeline&) = delete;
  LiveUpdatePipeline& operator=(const LiveUpdatePipeline&) = delete;

  /// \brief Enqueue one insert/delete batch; returns false when the pipeline
  /// is stopping or the queue is at max_pending_ops (the op is NOT applied —
  /// the caller may retry after backpressure clears).
  bool Submit(core::UpdateOp op);

  /// \brief Block until every accepted op has been fully applied (labels
  /// patched, drift checked, any retrain + republish done).
  void Flush();

  /// \brief Stop the worker: the in-flight op (and its republish) completes,
  /// queued ops are discarded, Submit starts returning false. Idempotent.
  void Stop();

  UpdatePipelineState Snapshot() const;

  /// \brief The route this pipeline republishes to.
  const std::string& route() const { return route_; }

  /// \brief Deep copy of the shadow model's parameter values. Waits for the
  /// pipeline to go idle first, so the copy is a consistent post-op state
  /// (test/debug hook — the shadow-retrain equivalence test diffs this
  /// against a direct incremental fit).
  std::vector<tensor::Matrix> ShadowParamsSnapshot();

 private:
  void WorkerLoop();
  void ApplyOne(const core::UpdateOp& op);

  SelNetServer* server_;
  UpdatePipelineConfig cfg_;
  std::string route_;

  // Shadow state: pipeline-thread-only after construction.
  data::Database db_;
  data::Workload workload_;
  std::shared_ptr<eval::Estimator> shadow_;      ///< Owns the shadow model.
  core::IncrementalModel* shadow_inc_ = nullptr; ///< Same object, update view.
  std::unique_ptr<core::UpdateManager> manager_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Wakes the worker.
  std::condition_variable idle_cv_;  ///< Wakes Flush/ShadowParamsSnapshot.
  std::deque<core::UpdateOp> queue_;
  bool busy_ = false;  ///< An op is being applied outside the lock.
  bool stop_ = false;

  // Progress counters; written by the worker (and Submit for ingest),
  // read by Snapshot from any thread.
  std::atomic<uint64_t> ops_ingested_{0};
  std::atomic<uint64_t> ops_rejected_{0};
  std::atomic<uint64_t> ops_applied_{0};
  std::atomic<uint64_t> ops_failed_{0};
  std::atomic<uint64_t> records_inserted_{0};
  std::atomic<uint64_t> records_deleted_{0};
  std::atomic<uint64_t> retrains_{0};
  std::atomic<uint64_t> epochs_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<double> last_drift_{0.0};
  std::atomic<double> baseline_mae_{0.0};
  std::atomic<double> last_mae_{0.0};
  std::atomic<uint64_t> last_version_{0};

  std::thread worker_;  ///< Started last, joined by Stop.
};

}  // namespace selnet::serve
