#include "serve/remote_shard.h"

#include <sys/socket.h>

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "serve/admission.h"
#include "serve/frontend.h"
#include "serve/state_transfer.h"
#include "serve/wire.h"

namespace selnet::serve {

using util::Result;
using util::Status;
using util::StatusCode;

RemoteShard::RemoteShard(const RemoteShardConfig& cfg) : cfg_(cfg) {}

RemoteShard::~RemoteShard() { CloseData(); }

std::string RemoteShard::endpoint() const {
  return cfg_.address + ":" + std::to_string(cfg_.port);
}

size_t RemoteShard::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

Status RemoteShard::Connect() {
  CloseData();
  auto fd = util::TcpConnect(cfg_.address, cfg_.port);
  if (!fd.ok()) return fd.status();
  util::SetNoDelay(fd.ValueOrDie().get());
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = fd.MoveValueUnsafe();
    reader_stop_ = false;
  }
  data_up_.store(true, std::memory_order_release);
  reader_ = std::thread(&RemoteShard::ReaderLoop, this);
  return Status::OK();
}

void RemoteShard::CloseData() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    reader_stop_ = true;
    // shutdown (not close) so the descriptor number stays reserved until
    // every user is done — the reader polls the raw fd outside the lock, and
    // a SubmitWith may be mid-WriteAll under write_mu_.
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  }
  wake_.Notify();
  if (reader_.joinable()) reader_.join();
  {
    // write_mu_ too: closing while a writer holds the raw descriptor would
    // let a concurrent open (the health loop's control dials) reuse the fd
    // number and receive the request bytes. Order write_mu_ -> mu_, same as
    // the write path.
    std::lock_guard<std::mutex> wlock(write_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    fd_.Close();
  }
  FailAllPending(StatusCode::kIoError,
                 endpoint() + ": data connection closed");
}

void RemoteShard::FailAllPending(StatusCode code, const std::string& msg) {
  data_up_.store(false, std::memory_order_release);
  std::vector<Pending> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.reserve(pending_.size());
    for (auto& [tag, entry] : pending_) taken.push_back(std::move(entry));
    pending_.clear();
  }
  if (taken.empty()) return;
  auto error = std::make_exception_ptr(RemoteError(code, msg));
  for (auto& entry : taken) {
    EstimateResponse resp;
    resp.tag = entry.caller_tag;
    entry.done(std::move(resp), error);
  }
}

void RemoteShard::SubmitWith(EstimateRequest req,
                             SelNetServer::ResponseFn done) {
  Clock::time_point now = Clock::now();
  Pending entry;
  entry.caller_tag = req.tag;
  entry.trace = req.trace;
  entry.sent = now;
  if (cfg_.recv_timeout_ms > 0) {
    entry.expires = now + std::chrono::milliseconds(cfg_.recv_timeout_ms);
  }
  if (req.has_deadline() &&
      (entry.expires == Clock::time_point{} || req.deadline < entry.expires)) {
    entry.expires = req.deadline;
    entry.expiry_is_request_deadline = true;
  }

  uint64_t wire_tag = 0;
  bool registered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (data_up_.load(std::memory_order_relaxed) && fd_.valid()) {
      wire_tag = next_tag_++;
      entry.done = std::move(done);
      pending_.emplace(wire_tag, std::move(entry));
      registered = true;
    }
  }
  if (!registered) {
    EstimateResponse resp;
    resp.tag = req.tag;
    done(std::move(resp),
         std::make_exception_ptr(RemoteError(
             StatusCode::kUnavailable, endpoint() + ": no data connection")));
    return;
  }

  req.tag = wire_tag;  // Internal correlation tag; the caller's tag is
                       // restored from the pending entry at completion.
  std::string line = SerializeRequest(req);
  line += '\n';
  Status wrote;
  {
    // write_mu_ serializes writers AND pins the descriptor: CloseData closes
    // fd_ only while holding write_mu_, so re-fetching the fd here (not
    // before the lock) guarantees it cannot be closed — and its number
    // reused by a concurrent dial — for the duration of the write.
    std::lock_guard<std::mutex> wlock(write_mu_);
    int raw_fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fd_.valid() && !reader_stop_) raw_fd = fd_.get();
    }
    wrote = raw_fd < 0 ? Status::IOError("data connection closed")
                       : util::WriteAll(raw_fd, line.data(), line.size());
  }
  if (!wrote.ok()) {
    // Take the entry back (unless the reader already failed it) and report
    // the transport loss; the reader will notice the dead socket itself.
    SelNetServer::ResponseFn cb;
    uint64_t caller_tag = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(wire_tag);
      if (it != pending_.end()) {
        cb = std::move(it->second.done);
        caller_tag = it->second.caller_tag;
        pending_.erase(it);
      }
    }
    data_up_.store(false, std::memory_order_release);
    if (cb) {
      EstimateResponse resp;
      resp.tag = caller_tag;
      cb(std::move(resp),
         std::make_exception_ptr(RemoteError(
             StatusCode::kIoError,
             endpoint() + ": send failed (" + wrote.message() + ")")));
    }
    return;
  }
  // Nudge the reader so its poll deadline accounts for this entry's expiry.
  wake_.Notify();
}

void RemoteShard::ReaderLoop() {
  std::string rbuf;
  char buf[16 << 10];
  for (;;) {
    int raw_fd = -1;
    int timeout_ms = -1;
    std::vector<Pending> expired;
    {
      Clock::time_point now = Clock::now();
      Clock::time_point next{};
      std::lock_guard<std::mutex> lock(mu_);
      if (reader_stop_) return;
      raw_fd = fd_.get();
      for (auto it = pending_.begin(); it != pending_.end();) {
        const Clock::time_point& e = it->second.expires;
        if (e != Clock::time_point{} && e <= now) {
          expired.push_back(std::move(it->second));
          it = pending_.erase(it);
        } else {
          if (e != Clock::time_point{} &&
              (next == Clock::time_point{} || e < next)) {
            next = e;
          }
          ++it;
        }
      }
      if (next != Clock::time_point{}) {
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      next - now)
                      .count();
        timeout_ms = int(std::clamp<long long>(ms + 1, 1, 60'000));
      }
    }
    for (auto& entry : expired) {
      EstimateResponse resp;
      resp.tag = entry.caller_tag;
      std::exception_ptr error;
      if (entry.expiry_is_request_deadline) {
        // Mirrors the in-process shed: the request itself ran out of time.
        error = std::make_exception_ptr(OverloadError(
            ShedReason::kDeadlineExpired,
            endpoint() + ": deadline expired awaiting the remote shard"));
      } else {
        error = std::make_exception_ptr(RemoteError(
            StatusCode::kDeadlineExceeded,
            endpoint() + ": no response within " +
                std::to_string(cfg_.recv_timeout_ms) + "ms (shard suspect)"));
      }
      entry.done(std::move(resp), error);
    }

    std::vector<util::PollEntry> entries(2);
    entries[0].fd = raw_fd;
    entries[0].want_read = true;
    entries[1].fd = wake_.read_fd();
    entries[1].want_read = true;
    auto polled = util::Poll(&entries, timeout_ms);
    if (!polled.ok()) {
      FailAllPending(StatusCode::kIoError,
                     endpoint() + ": poll failed (" +
                         polled.status().message() + ")");
      return;
    }
    if (entries[1].readable) wake_.Drain();
    if (!entries[0].readable && !entries[0].error) continue;

    auto n = util::ReadSome(raw_fd, buf, sizeof buf);
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kOutOfRange) continue;  // EAGAIN
      FailAllPending(StatusCode::kIoError,
                     endpoint() + ": read failed (" + n.status().message() +
                         ")");
      return;
    }
    int64_t got = n.ValueOrDie();
    if (got == 0) {
      FailAllPending(StatusCode::kIoError,
                     endpoint() + ": connection closed by shard");
      return;
    }
    rbuf.append(buf, size_t(got));
    size_t start = 0;
    size_t nl;
    while ((nl = rbuf.find('\n', start)) != std::string::npos) {
      HandleLine(rbuf.substr(start, nl - start));
      start = nl + 1;
    }
    rbuf.erase(0, start);
  }
}

void RemoteShard::HandleLine(const std::string& line) {
  EstimateResponse resp;
  Status st = ParseResponseLine(line, &resp);
  uint64_t wire_tag = st.ok() ? resp.tag : ExtractTagBestEffort(line);
  if (wire_tag == 0) return;  // Untagged line — we tag every request, so
                              // nothing can be waiting on it.
  SelNetServer::ResponseFn cb;
  uint64_t caller_tag = 0;
  std::shared_ptr<RequestTrace> trace;
  Clock::time_point sent{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(wire_tag);
    if (it == pending_.end()) return;  // Expired earlier; its completion
                                       // already fired — discard the late
                                       // reply so it fires exactly once.
    cb = std::move(it->second.done);
    caller_tag = it->second.caller_tag;
    trace = std::move(it->second.trace);
    sent = it->second.sent;
    pending_.erase(it);
  }
  resp.tag = caller_tag;
  if (trace) {
    // Attribute the hop: the remote's own queue/predict time (from its
    // stage block) becomes the remote_* stages, and remote_wire is the
    // whole caller-observed round trip — floored at the remote's share so
    // remote_queue + remote_predict <= remote_wire holds even against
    // clock granularity noise.
    double wire_ms = std::chrono::duration<double, std::milli>(
                         Clock::now() - sent)
                         .count();
    double remote_share = 0.0;
    if (resp.stage_ms.size() >= kNumLocalStages) {
      double rq = double(resp.stage_ms[size_t(Stage::kQueue)]);
      double rp = double(resp.stage_ms[size_t(Stage::kPredict)]);
      remote_share = rq + rp;
      trace->Observe(Stage::kRemoteQueue, rq);
      trace->Observe(Stage::kRemotePredict, rp);
    }
    trace->Observe(Stage::kRemoteWire, std::max(wire_ms, remote_share));
  }
  // The block is coordinator-internal: it merged into the trace above and
  // must not leak into the caller-visible response.
  resp.stage_ms.clear();
  if (st.ok()) {
    cb(std::move(resp), nullptr);
    return;
  }
  std::exception_ptr error;
  switch (st.code()) {
    case StatusCode::kDeadlineExceeded:
      // The remote admission controller shed it — same taxonomy as local.
      error = std::make_exception_ptr(
          OverloadError(ShedReason::kDeadlineExpired, st.message()));
      break;
    case StatusCode::kUnavailable:
      // queue_full / priority_shed / shutdown: never served; another
      // replica may have capacity.
      error = std::make_exception_ptr(
          RemoteError(StatusCode::kUnavailable, st.message()));
      break;
    case StatusCode::kNotFound:
      // This replica doesn't hold the route (restarted and awaiting
      // re-sync, or the route replicates to local slots only) — another
      // replica may. The failover layer retries these.
      error = std::make_exception_ptr(
          RemoteError(StatusCode::kNotFound, st.message()));
      break;
    default:
      // Deterministic request failure (bad shape, unknown route): a retry
      // would fail the same way.
      error = std::make_exception_ptr(
          RemoteError(StatusCode::kInternal, st.message()));
      break;
  }
  cb(std::move(resp), error);
}

Result<uint64_t> RemoteShard::PublishBytes(const std::string& name,
                                           const std::string& bytes) {
  NetClient client;
  SEL_RETURN_NOT_OK(client.Connect(cfg_.address, cfg_.port));
  client.set_recv_timeout_ms(cfg_.admin_timeout_ms);
  uint64_t version = 0;
  SEL_RETURN_NOT_OK(SendModelState(&client, name, bytes, &version));
  return version;
}

Status RemoteShard::HealthCheck() {
  NetClient client;
  SEL_RETURN_NOT_OK(client.Connect(cfg_.address, cfg_.port));
  client.set_recv_timeout_ms(cfg_.admin_timeout_ms);
  SEL_ASSIGN_OR_RETURN(std::string reply, client.Admin("health"));
  return ParseAckLine(reply);
}

Result<StatsSnapshot> RemoteShard::ScrapeStats() {
  NetClient client;
  SEL_RETURN_NOT_OK(client.Connect(cfg_.address, cfg_.port));
  client.set_recv_timeout_ms(cfg_.admin_timeout_ms);
  return client.StatsWire();
}

}  // namespace selnet::serve
