#include "serve/remote_shard.h"

#include "serve/frontend.h"
#include "serve/state_transfer.h"
#include "serve/wire.h"

namespace selnet::serve {

using util::Result;
using util::Status;

ClientChannelConfig RemoteShard::ChannelConfig(const RemoteShardConfig& cfg) {
  ClientChannelConfig ch;
  ch.address = cfg.address;
  ch.port = cfg.port;
  ch.preferred_proto = cfg.data_proto;
  ch.recv_timeout_ms = cfg.recv_timeout_ms;
  ch.hello_timeout_ms = cfg.admin_timeout_ms;
  return ch;
}

RemoteShard::RemoteShard(const RemoteShardConfig& cfg)
    : cfg_(cfg), channel_(ChannelConfig(cfg)) {}

RemoteShard::~RemoteShard() { CloseData(); }

Result<uint64_t> RemoteShard::PublishBytes(const std::string& name,
                                           const std::string& bytes) {
  NetClient client;
  SEL_RETURN_NOT_OK(client.Connect(cfg_.address, cfg_.port));
  client.set_recv_timeout_ms(cfg_.admin_timeout_ms);
  uint64_t version = 0;
  SEL_RETURN_NOT_OK(SendModelState(&client, name, bytes, &version));
  return version;
}

Status RemoteShard::HealthCheck() {
  NetClient client;
  SEL_RETURN_NOT_OK(client.Connect(cfg_.address, cfg_.port));
  client.set_recv_timeout_ms(cfg_.admin_timeout_ms);
  SEL_ASSIGN_OR_RETURN(std::string reply, client.Admin("health"));
  return ParseAckLine(reply);
}

Result<StatsSnapshot> RemoteShard::ScrapeStats() {
  NetClient client;
  SEL_RETURN_NOT_OK(client.Connect(cfg_.address, cfg_.port));
  client.set_recv_timeout_ms(cfg_.admin_timeout_ms);
  return client.StatsWire();
}

}  // namespace selnet::serve
