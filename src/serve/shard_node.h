#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/frontend.h"
#include "serve/server.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file shard_node.h
/// \brief One shard as a standalone serving process: the remote end of a
/// RemoteShard proxy.
///
/// A ShardNode bundles the full single-shard stack — a private ThreadPool, a
/// SelNetServer (registry + scheduler + caches + admission), and a
/// NetFrontend with the state-transfer install hook wired — behind one bound
/// port. It starts EMPTY: models arrive over the wire via state transfer
/// (xfer_begin / xfer_frame / xfer_commit), which is exactly how the
/// replication layer re-syncs a crashed-and-restarted replica.
///
/// Two ways to run one:
///   * in process (fleet tests): construct, check status(), talk to port();
///     Stop() is the graceful kill;
///   * as a process (`serve_demo shard_node`, the fault harness):
///     RunShardNodeProcess binds, writes the bound port to a handshake file,
///     then serves until SIGTERM/SIGINT (graceful) or SIGKILL (the crash the
///     fault scenarios inject).

namespace selnet::serve {

/// \brief Everything a shard process needs.
struct ShardNodeConfig {
  /// Per-shard server template; `scheduler.pool` must stay null — the node
  /// owns its pool.
  ServerConfig server;
  FrontendConfig frontend;
  /// Worker threads for the node's pool (0 = hardware_concurrency).
  size_t threads = 1;
};

/// \brief ThreadPool + SelNetServer + NetFrontend, started together.
class ShardNode {
 public:
  explicit ShardNode(const ShardNodeConfig& cfg);
  ~ShardNode();

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// \brief OK once the frontend is bound and serving; the bind error
  /// otherwise.
  util::Status status() const { return frontend_->status(); }

  /// \brief The bound port (resolves an ephemeral request).
  uint16_t port() const { return frontend_->port(); }

  SelNetServer& server() { return *server_; }
  NetFrontend& frontend() { return *frontend_; }

  /// \brief Graceful stop: drain the frontend, then the server. Idempotent;
  /// also run by the destructor. (The fault harness's kill -9 never gets
  /// here — that is the point.)
  void Stop();

 private:
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<SelNetServer> server_;
  std::unique_ptr<NetFrontend> frontend_;
};

/// \brief Options for the standalone process entry.
struct ShardNodeProcessOptions {
  size_t dim = 2;
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (read it from `port_file`).
  /// When non-empty, the bound port is written here ("<port>\n", atomically
  /// via rename) AFTER the node is serving — the parent's readiness
  /// handshake, immune to the race of polling a port that is not up yet.
  std::string port_file;
  size_t threads = 1;
  /// Frontend poll loops (FrontendConfig::num_loops). 1 keeps the classic
  /// single-loop node; >1 shards connections across loops for wire-bound
  /// shards.
  size_t net_loops = 1;
};

/// \brief Run one ShardNode until SIGTERM/SIGINT; returns a process exit
/// code. Used by `serve_demo shard_node` and self-exec'd by the fault
/// harness.
int RunShardNodeProcess(const ShardNodeProcessOptions& opts);

}  // namespace selnet::serve
