#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/thread_pool.h"

/// \file shard_router.h
/// \brief Serving scale-out: consistent-hash routing of model routes across
/// per-shard ModelRegistry + BatchScheduler pairs.
///
/// One SelNetServer scales until its scheduler pool saturates — then a hot
/// route's batches queue behind every other route's. ShardedRegistry splits
/// the route space across N shards, each a full serving stack (registry,
/// scheduler, estimate cache, stats) with its OWN ThreadPool slice, so:
///
///   * a hot route saturates only its shard's workers — other shards keep
///     their latency;
///   * hot-swap stays shard-local: a route's republish swaps one pointer in
///     one shard's registry, and version-keyed cache invalidation never
///     crosses a shard boundary (each shard owns its cache);
///   * LiveUpdatePipeline attaches per route, on the owning shard, so N
///     routes can retrain concurrently (one pipeline per shard at a time —
///     each SelNetServer holds one pipeline slot).
///
/// Routing is a consistent-hash ring (stable 64-bit FNV-1a, `virtual_nodes`
/// points per shard): the shard owning a route depends only on (route name,
/// shard count, virtual node count) — deterministic across processes and
/// restarts, so a network client, the frontend, and an offline publisher all
/// agree on placement without coordination, and growing the ring moves only
/// ~1/N of the routes.
///
/// Requests with an empty `model` are resolved to the configured default
/// route BEFORE hashing, so the default route lives on one well-defined
/// shard rather than shard 0 by accident.

namespace selnet::serve {

/// \brief Deterministic consistent-hash ring: route name -> shard index.
class HashRing {
 public:
  /// \param shards number of shards (>= 1).
  /// \param virtual_nodes ring points per shard; more points = smoother
  /// balance at slightly larger ring (128 keeps the max/mean route load
  /// under ~1.3 for realistic route counts).
  HashRing(size_t shards, size_t virtual_nodes = 128);

  size_t ShardOf(const std::string& route) const;
  size_t num_shards() const { return num_shards_; }

  /// \brief Stable FNV-1a 64-bit hash (NOT std::hash: placement must agree
  /// across binaries and libstdc++ versions).
  static uint64_t Hash(const std::string& s);

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
    bool operator<(const Point& o) const { return hash < o.hash; }
  };

  size_t num_shards_;
  std::vector<Point> ring_;  ///< Sorted; binary-searched per lookup.
};

/// \brief Scale-out configuration: the per-shard server template plus the
/// shard topology.
struct ShardedConfig {
  /// Template for every shard's SelNetServer (dim, scheduler policy, cache
  /// sizing, sweep fast path…). `server.scheduler.pool` must stay null — each
  /// shard gets its own pool; sharing one pool would reintroduce exactly the
  /// cross-route starvation sharding removes.
  ServerConfig server;
  size_t num_shards = 2;
  size_t virtual_nodes = 128;
  /// Worker threads per shard pool (the shard's thread-pool slice). 0 =
  /// max(1, hardware_concurrency / num_shards).
  size_t threads_per_shard = 0;
};

/// \brief N per-shard serving stacks behind one consistent-hash router.
///
/// The public surface mirrors SelNetServer — Publish / Submit / Drain /
/// AttachUpdatePipeline — so the frontend (and any embedding code) can treat
/// "one server" and "a shard fleet" interchangeably.
class ShardedRegistry {
 public:
  explicit ShardedRegistry(const ShardedConfig& cfg);
  ~ShardedRegistry();

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  /// \brief The shard that owns `route` ("" = the default route).
  size_t ShardOf(const std::string& route) const;

  /// \brief Publish under the default route (on its owning shard).
  uint64_t Publish(std::shared_ptr<eval::Estimator> model);

  /// \brief Publish under `name` on its owning shard; returns the version
  /// assigned by that shard's registry (version counters are shard-local).
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<eval::Estimator> model);

  /// \brief Load a core::SaveModel file and publish it under `name`.
  util::Result<uint64_t> PublishFromFile(const std::string& name,
                                         const std::string& path);

  /// \brief Route by EstimateRequest::model and submit to the owning shard.
  void SubmitWith(EstimateRequest req, SelNetServer::ResponseFn done);

  /// \brief Future-returning wrapper over SubmitWith.
  std::future<EstimateResponse> Submit(EstimateRequest req);

  /// \brief Shim: blocking scalar estimate against the default route.
  util::Result<float> Estimate(const float* x, float t);

  /// \brief Attach a live-update pipeline for `cfg.model_name` on its owning
  /// shard (see SelNetServer::AttachUpdatePipeline). One pipeline per shard:
  /// re-attaching the same route replaces its pipeline, but attaching a
  /// second route that happens to hash to an already-piped shard aborts
  /// (placement-dependent silent clobbering would be worse).
  LiveUpdatePipeline& AttachUpdatePipeline(const UpdatePipelineConfig& cfg,
                                           const data::Database& db,
                                           const data::Workload& workload);

  /// \brief Block until every shard has answered everything it accepted.
  void Drain();

  size_t num_shards() const { return shards_.size(); }
  SelNetServer& shard(size_t i) { return *shards_[i]->server; }
  const HashRing& ring() const { return ring_; }
  const ShardedConfig& config() const { return cfg_; }

  /// \brief Per-shard snapshots, indexed by shard.
  std::vector<StatsSnapshot> ShardSnapshots() const;

  /// \brief Fleet-wide merged view (AggregateSnapshots of ShardSnapshots).
  StatsSnapshot AggregateSnapshot() const;

  /// \brief Every shard's retained slow-request spans, shard order.
  std::vector<SpanRecord> SlowSpans() const;

  /// \brief One report: a per-shard section (requests/QPS/p99/hit-rate per
  /// shard) followed by the merged fleet totals.
  std::string StatsReport() const;

 private:
  struct Shard {
    std::unique_ptr<util::ThreadPool> pool;
    std::unique_ptr<SelNetServer> server;
  };

  /// Resolve "" to the default route name (routing must hash the route the
  /// shard's server will actually serve under).
  const std::string& EffectiveRoute(const EstimateRequest& req) const;

  ShardedConfig cfg_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace selnet::serve
