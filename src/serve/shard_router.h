#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/remote_shard.h"
#include "serve/server.h"
#include "util/backoff.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

/// \file shard_router.h
/// \brief Serving scale-out: consistent-hash routing of model routes across
/// per-shard ModelRegistry + BatchScheduler pairs.
///
/// One SelNetServer scales until its scheduler pool saturates — then a hot
/// route's batches queue behind every other route's. ShardedRegistry splits
/// the route space across N shards, each a full serving stack (registry,
/// scheduler, estimate cache, stats) with its OWN ThreadPool slice, so:
///
///   * a hot route saturates only its shard's workers — other shards keep
///     their latency;
///   * hot-swap stays shard-local: a route's republish swaps one pointer in
///     one shard's registry, and version-keyed cache invalidation never
///     crosses a shard boundary (each shard owns its cache);
///   * LiveUpdatePipeline attaches per route, on the owning shard, so N
///     routes can retrain concurrently (one pipeline per shard at a time —
///     each SelNetServer holds one pipeline slot).
///
/// Routing is a consistent-hash ring (stable 64-bit FNV-1a, `virtual_nodes`
/// points per shard): the shard owning a route depends only on (route name,
/// shard count, virtual node count) — deterministic across processes and
/// restarts, so a network client, the frontend, and an offline publisher all
/// agree on placement without coordination, and growing the ring moves only
/// ~1/N of the routes.
///
/// Requests with an empty `model` are resolved to the configured default
/// route BEFORE hashing, so the default route lives on one well-defined
/// shard rather than shard 0 by accident.
///
/// Fleet mode (PR 8): the slot list may extend past the in-process shards
/// with REMOTE shards — `shard_node` processes reached through RemoteShard
/// proxies — and each route may be replicated onto `replication` distinct
/// ring successors:
///
///   * Submit routes to the route's primary replica first; a transport-level
///     failure (connection refused, connection lost mid-stream, response
///     timeout) marks that replica suspect and retries the next replica,
///     bounded by the request's own deadline. Estimates are pure reads, so
///     retrying a possibly-completed request is safe by construction.
///   * Publish fans out to every replica of the route — local replicas get
///     the model object, remote replicas get the serialized SaveModel bytes
///     over the state-transfer protocol — and the bytes are retained as the
///     re-sync source of truth.
///   * A health loop probes non-healthy remotes on a decorrelated-jitter
///     backoff schedule (failover itself never sleeps — the next replica is
///     a different endpoint). The failover state machine per remote is
///     healthy -> suspect (data-path failure) -> dead (probe failed) ->
///     resyncing (probe OK; republishing owned routes) -> healthy. A
///     restarted `shard_node` comes back EMPTY, so re-admission always
///     re-publishes from the retained bytes before traffic resumes.

namespace selnet::serve {

/// \brief Deterministic consistent-hash ring: route name -> shard index.
class HashRing {
 public:
  /// \param shards number of shards (>= 1).
  /// \param virtual_nodes ring points per shard; more points = smoother
  /// balance at slightly larger ring (128 keeps the max/mean route load
  /// under ~1.3 for realistic route counts).
  HashRing(size_t shards, size_t virtual_nodes = 128);

  size_t ShardOf(const std::string& route) const;

  /// \brief The `r` distinct shards serving `route`: its primary (== ShardOf)
  /// followed by the next r-1 distinct ring successors clockwise. `r` is
  /// clamped to [1, num_shards]. Deterministic, like ShardOf.
  std::vector<size_t> ReplicasOf(const std::string& route, size_t r) const;

  size_t num_shards() const { return num_shards_; }

  /// \brief Stable FNV-1a 64-bit hash (NOT std::hash: placement must agree
  /// across binaries and libstdc++ versions).
  static uint64_t Hash(const std::string& s);

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
    bool operator<(const Point& o) const { return hash < o.hash; }
  };

  size_t num_shards_;
  std::vector<Point> ring_;  ///< Sorted; binary-searched per lookup.
};

/// \brief Scale-out configuration: the per-shard server template plus the
/// shard topology.
struct ShardedConfig {
  /// Template for every shard's SelNetServer (dim, scheduler policy, cache
  /// sizing, sweep fast path…). `server.scheduler.pool` must stay null — each
  /// shard gets its own pool; sharing one pool would reintroduce exactly the
  /// cross-route starvation sharding removes.
  ServerConfig server;
  size_t num_shards = 2;
  size_t virtual_nodes = 128;
  /// Worker threads per shard pool (the shard's thread-pool slice). 0 =
  /// max(1, hardware_concurrency / num_shards).
  size_t threads_per_shard = 0;
  /// R-way replication: each route lives on its primary slot plus the next
  /// R-1 distinct ring successors (clamped to the slot count). 1 = the
  /// pre-fleet behavior, byte for byte.
  size_t replication = 1;
  /// Remote shard endpoints (shard_node processes), appended to the slot
  /// list AFTER the `num_shards` local slots: remote endpoint i is slot
  /// `num_shards + i` on the ring.
  std::vector<RemoteShardConfig> remotes;
  /// Health-loop tick for probing non-healthy remotes (the probe schedule
  /// itself adds decorrelated-jitter backoff per endpoint on top).
  double health_interval_ms = 100.0;
  /// Upper bound on how long Drain() waits for requests still in flight on
  /// remote replicas (local shards drain unconditionally). Pending remote
  /// entries normally resolve within their recv timeout / request deadline;
  /// this caps the wait when neither bound is configured.
  double drain_remote_timeout_ms = 5000.0;
  /// Remote-stats scrape tick: at this cadence the health loop fetches
  /// {"cmd":"stats_wire"} from each HEALTHY remote and caches the snapshot;
  /// AggregateSnapshot bucket-merges the cached scrapes with the local
  /// shards' so fleet percentiles pool every process's histograms. <= 0
  /// disables the tick (ScrapeNow still works).
  double scrape_interval_ms = 1000.0;
  /// A cached scrape older than this is STALE: still shown (age-stamped) in
  /// the slot table, but dropped from the merged fleet counters/histograms
  /// so a long-dead node cannot freeze the fleet view.
  double scrape_ttl_ms = 10000.0;
  /// Process identity stamped into snapshots and the slot table ("" = none;
  /// shard_node processes default to "host:port" of their frontend).
  std::string node_id;
};

/// \brief Remote-replica failover state machine (see the file comment).
enum class ShardHealth { kHealthy, kSuspect, kDead, kResyncing };

/// \brief Stable lowercase state name ("healthy", "suspect", "dead",
/// "resyncing") for reports and tests.
const char* ShardHealthName(ShardHealth h);

/// \brief N per-shard serving stacks behind one consistent-hash router.
///
/// The public surface mirrors SelNetServer — Publish / Submit / Drain /
/// AttachUpdatePipeline — so the frontend (and any embedding code) can treat
/// "one server" and "a shard fleet" interchangeably.
class ShardedRegistry {
 public:
  explicit ShardedRegistry(const ShardedConfig& cfg);
  ~ShardedRegistry();

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  /// \brief The shard that owns `route` ("" = the default route).
  size_t ShardOf(const std::string& route) const;

  /// \brief The route's replica slots, primary first ("" = default route);
  /// size = min(cfg.replication, num_slots).
  std::vector<size_t> ReplicasOf(const std::string& route) const;

  /// \brief Publish under the default route (on its owning shard).
  uint64_t Publish(std::shared_ptr<eval::Estimator> model);

  /// \brief Publish under `name` to every replica of the route; returns the
  /// version assigned by the first replica that accepted (the primary when
  /// healthy — version counters are shard-local), or 0 when no replica
  /// accepted. Models that cannot serialize (not a SelNetCt) replicate to
  /// local slots only; remote replicas then answer not_found for the route
  /// and failover falls through to the local copies.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<eval::Estimator> model);

  /// \brief Load a core::SaveModel file and publish it under `name`.
  util::Result<uint64_t> PublishFromFile(const std::string& name,
                                         const std::string& path);

  /// \brief Deserialize SaveModel-format bytes (a state transfer) and
  /// publish under `name` on its owning shard.
  util::Result<uint64_t> PublishFromBytes(const std::string& name,
                                          const std::string& bytes,
                                          const std::string& origin);

  /// \brief Route by EstimateRequest::model and submit to the owning shard.
  void SubmitWith(EstimateRequest req, SelNetServer::ResponseFn done);

  /// \brief Future-returning wrapper over SubmitWith.
  std::future<EstimateResponse> Submit(EstimateRequest req);

  /// \brief Shim: blocking scalar estimate against the default route.
  util::Result<float> Estimate(const float* x, float t);

  /// \brief Attach a live-update pipeline for `cfg.model_name` on its owning
  /// shard (see SelNetServer::AttachUpdatePipeline). One pipeline per shard:
  /// re-attaching the same route replaces its pipeline, but attaching a
  /// second route that happens to hash to an already-piped shard aborts
  /// (placement-dependent silent clobbering would be worse).
  LiveUpdatePipeline& AttachUpdatePipeline(const UpdatePipelineConfig& cfg,
                                           const data::Database& db,
                                           const data::Workload& workload);

  /// \brief Block until every local shard has answered everything it
  /// accepted, then wait — bounded by `drain_remote_timeout_ms` — for
  /// requests still pending on remote replicas to complete.
  void Drain();

  /// \brief LOCAL in-process shard count (the pre-fleet meaning).
  size_t num_shards() const { return shards_.size(); }
  /// \brief Total ring slots: local shards + remote endpoints.
  size_t num_slots() const { return shards_.size() + remotes_.size(); }
  SelNetServer& shard(size_t i) { return *shards_[i]->server; }
  /// \brief True when `slot` is an in-process shard (always serving).
  bool IsLocalSlot(size_t slot) const { return slot < shards_.size(); }
  /// \brief The RemoteShard proxy behind slot `slot` (must be remote).
  RemoteShard& remote_shard(size_t slot) {
    return *remotes_[slot - shards_.size()]->shard;
  }
  /// \brief Failover state of a slot (local slots are always healthy).
  ShardHealth slot_health(size_t slot) const;
  /// \brief Wake the health loop now (tests; after restarting a node).
  void NudgeHealth();
  const HashRing& ring() const { return ring_; }
  const ShardedConfig& config() const { return cfg_; }

  /// \brief Per-shard snapshots, indexed by shard.
  std::vector<StatsSnapshot> ShardSnapshots() const;

  /// \brief Fleet-wide merged view (AggregateSnapshots of ShardSnapshots).
  StatsSnapshot AggregateSnapshot() const;

  /// \brief Every shard's retained slow-request spans, shard order.
  std::vector<SpanRecord> SlowSpans() const;

  /// \brief One report: a per-shard section (requests/QPS/p99/hit-rate per
  /// shard) followed by the merged fleet totals.
  std::string StatsReport() const;

  /// \brief Scrape every healthy remote's stats_wire snapshot NOW,
  /// synchronously (tests; the demo digest). The periodic tick calls the
  /// same path from the health loop.
  void ScrapeNow();

  /// \brief Control-plane registry: health transitions, failover attempts,
  /// publish fan-out verdicts, transfer volume, scrape outcomes.
  util::MetricsRegistry& metrics() const { return metrics_; }

  /// \brief Flight recorder of health/failover/transfer events.
  const util::EventRing& events() const { return events_; }

  /// \brief Registry exposition text with the per-slot time-in-state gauges
  /// refreshed; what the frontend appends to {"cmd":"metrics"}.
  std::string MetricsText() const;

  /// \brief The event ring as a JSON array (the {"cmd":"events"} body).
  std::string EventsJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard {
    std::unique_ptr<util::ThreadPool> pool;
    std::unique_ptr<SelNetServer> server;
  };

  /// One remote endpoint's proxy + failover state. `health` is the
  /// cross-thread hot field; backoff/not_before belong to the health loop;
  /// the scrape cache and state clock live under their own mutex (read by
  /// snapshot/metrics scrapers, written by the health loop and transition
  /// recording).
  struct Remote {
    std::unique_ptr<RemoteShard> shard;
    std::atomic<int> health{int(ShardHealth::kDead)};
    util::Backoff backoff{{/*base_ms=*/20.0, /*cap_ms=*/2000.0}};
    Clock::time_point not_before{};

    mutable std::mutex scrape_mu;
    StatsSnapshot scrape;          ///< Last stats_wire fetch (scrape_mu).
    Clock::time_point scrape_at{}; ///< When; epoch = never scraped.
    Clock::time_point state_since{}; ///< Entered current health state.
  };

  /// In-flight failover chain for one submitted request: the request copy
  /// (retries need the original), the ordered replica slots, the caller's
  /// completion. Heap-shared because each attempt's callback may fire on a
  /// pool worker, a RemoteShard reader, or the submitting thread.
  struct Failover {
    EstimateRequest req;
    SelNetServer::ResponseFn done;
    std::vector<size_t> replicas;
  };

  /// Resolve "" to the default route name (routing must hash the route the
  /// shard's server will actually serve under).
  const std::string& EffectiveRoute(const EstimateRequest& req) const;

  /// Replicas of `route`, healthy slots first (stable: primary-first within
  /// each class). Unhealthy slots stay in the list as last resorts — a dead
  /// remote fails a submit in microseconds, and it may have just come back.
  std::vector<size_t> OrderedReplicas(const std::string& route) const;

  /// Submit attempt `idx` of the chain; on a retryable failure marks the
  /// slot suspect and recurses to `idx + 1` (bounded by the request
  /// deadline).
  void TryReplica(const std::shared_ptr<Failover>& fo, size_t idx,
                  std::exception_ptr last_error);
  void SlotSubmit(size_t slot, EstimateRequest req,
                  SelNetServer::ResponseFn done);
  /// Data-path failure: healthy -> suspect + health-loop nudge. Never blocks
  /// (teardown happens on the health loop — completions may be running on
  /// the very reader thread CloseData would join).
  void MarkSuspect(size_t slot);

  void HealthLoop();
  /// Probe + re-admit one remote: health check, re-publish every owned route
  /// from the retained bytes, reconnect the data path.
  util::Status AdmitRemote(size_t i);
  /// Retain `bytes` as route's re-sync source of truth.
  void StorePublishedBytes(const std::string& name, const std::string& bytes);
  /// Store remote `i`'s new health state (skipping no-op changes), stamp
  /// state_since, bump the transition counter, and record the event.
  void SetRemoteHealth(size_t i, ShardHealth to);
  /// Stamp state_since and record one observed `from -> to` transition in
  /// the counter + event ring (the caller already swapped the state).
  void RecordTransition(size_t i, ShardHealth from, ShardHealth to);
  /// Count one publish-fan-out verdict for `slot`; a remote accept also adds
  /// the shipped bytes/frames to the transfer_tx counters.
  void RecordPublishResult(size_t slot, bool accepted, size_t bytes_sent);
  /// Fetch + cache one remote's stats_wire snapshot (best-effort).
  void ScrapeRemote(size_t i);

  ShardedConfig cfg_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Remote>> remotes_;

  /// route -> last published SaveModel bytes; what a rejoining replica gets.
  mutable std::mutex publish_mu_;
  std::map<std::string, std::string> published_bytes_;

  std::mutex health_mu_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;
  bool health_nudge_ = false;
  std::thread health_;  ///< Running iff remotes were configured.

  const Clock::time_point start_ = Clock::now();  ///< For uptime_s.
  mutable util::MetricsRegistry metrics_;
  util::EventRing events_{256};
  Clock::time_point next_scrape_{};  ///< Health-loop-only scrape gate.
};

}  // namespace selnet::serve
