#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/servable.h"
#include "util/status.h"

/// \file model_registry.h
/// \brief Named, versioned snapshots of trained estimators with atomic
/// hot-swap.
///
/// The registry is estimator-agnostic: it stores any `eval::Estimator` behind
/// a `Servable` wrapper, so SelNet variants and the baselines are served and
/// A/B-compared through the same endpoint. Serving threads call Get() and
/// receive a shared snapshot; the updater path (core::UpdateManager
/// retraining, or an offline training job writing a SaveModel file) calls
/// Publish() with a replacement. Publication is one pointer swap under a
/// mutex — in-flight queries keep the old snapshot alive through their
/// shared_ptr until the last one drains, so a republish can never fail a
/// query. Snapshots must be treated as immutable after Publish(): concurrent
/// Predict is safe, concurrent Fit is not.

namespace selnet::serve {

/// \brief One published snapshot: the servable model plus its registry
/// version. `model->` reaches the underlying eval::Estimator.
struct ModelHandle {
  Servable model;
  uint64_t version = 0;  ///< Globally unique, monotonically increasing.
  std::string name;

  explicit operator bool() const { return bool(model); }
};

/// \brief Thread-safe name -> versioned model snapshot map.
class ModelRegistry {
 public:
  /// \brief Publish (or replace) the snapshot under `name`; returns the
  /// version assigned to it. The registry takes shared ownership; the caller
  /// must not mutate the model afterwards.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<eval::Estimator> model);

  /// \brief Load a core::SaveModel file and publish it under `name`. The
  /// loaded model's inference fold cache is invalidated before publication,
  /// so a file-loaded model can never serve a stale folded output layer.
  util::Result<uint64_t> PublishFromFile(const std::string& name,
                                         const std::string& path);

  /// \brief Deserialize core::SaveModel-format `bytes` (a state transfer)
  /// and publish under `name`; `origin` names the byte source in errors.
  util::Result<uint64_t> PublishFromBytes(const std::string& name,
                                          const std::string& bytes,
                                          const std::string& origin);

  /// \brief Serialize the snapshot currently published under `name` to
  /// core::SaveModel-format bytes (the state-transfer payload). NotFound if
  /// absent; kNotImplemented when the route serves a model that has no
  /// SaveModel support (only SelNet-ct replicates today).
  util::Result<std::string> SnapshotBytes(const std::string& name) const;

  /// \brief Current snapshot for `name`, or NotFound.
  util::Result<ModelHandle> Get(const std::string& name) const;

  /// \brief Remove `name`; in-flight handles stay valid. NotFound if absent.
  util::Status Remove(const std::string& name);

  /// \brief Version currently published under `name` (0 if absent).
  uint64_t VersionOf(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, ModelHandle> models_;
  uint64_t next_version_ = 1;
};

}  // namespace selnet::serve
