#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// \file serve_stats.h
/// \brief Serving-side observability: request counters, latency percentiles,
/// cache hit rate and batching efficiency.
///
/// All recording paths are lock-light (atomics plus one short critical
/// section for the latency reservoir) so stats collection never becomes the
/// serving bottleneck. Rendering reuses util::AsciiTable for the same look as
/// the bench harness output.

namespace selnet::serve {

/// \brief Point-in-time view of the serving counters.
struct StatsSnapshot {
  uint64_t requests = 0;        ///< Estimates answered (cache hits included).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;         ///< Batched Predict calls issued.
  uint64_t batched_requests = 0;  ///< Requests answered through batches.
  uint64_t sweeps = 0;          ///< Multi-threshold requests submitted.
  uint64_t sweep_fastpath = 0;  ///< Sweeps answered via SweepCapable.
  uint64_t curve_hits = 0;      ///< Sweeps answered from a cached PWL curve.
  uint64_t curve_misses = 0;    ///< Curve-cache lookups that missed.
  uint64_t swaps = 0;           ///< Model hot-swaps observed.
  /// Process-wide packed-weight cache counters (tensor::PackStats) at
  /// snapshot time, plus the GEMM micro-kernel dispatch picked at startup.
  uint64_t pack_hits = 0;
  uint64_t pack_builds = 0;
  std::string gemm_kernel;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double cache_hit_rate = 0.0;  ///< hits / (hits + misses); 0 when unused.
  double avg_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
};

/// \brief Thread-safe accumulator for serving metrics.
class ServeStats {
 public:
  /// \param reservoir_size how many most-recent latency samples to keep for
  /// percentile estimation (ring buffer; older samples are overwritten).
  explicit ServeStats(size_t reservoir_size = 1 << 14);

  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordSwap() { swaps_.fetch_add(1, std::memory_order_relaxed); }
  /// \brief One multi-threshold request; `fast_path` when the SweepCapable
  /// control-point path answered it.
  void RecordSweep(bool fast_path) {
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (fast_path) sweep_fastpath_.fetch_add(1, std::memory_order_relaxed);
  }
  /// \brief One sweep-curve cache lookup (hit = PWL served, network skipped).
  void RecordCurveLookup(bool hit) {
    if (hit) {
      curve_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      curve_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void RecordBatch(size_t batch_size);
  void RecordLatencyMs(double ms);

  /// \brief Reset every counter and restart the elapsed-time clock.
  void Reset();

  StatsSnapshot Snapshot() const;

  /// \brief Render the snapshot as an AsciiTable block.
  std::string Report(const std::string& title = "serving stats") const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> sweep_fastpath_{0};
  std::atomic<uint64_t> curve_hits_{0};
  std::atomic<uint64_t> curve_misses_{0};
  std::atomic<uint64_t> swaps_{0};

  mutable std::mutex lat_mu_;
  std::vector<double> latencies_ms_;  ///< Ring buffer of recent samples.
  size_t lat_next_ = 0;               ///< Next write slot.
  uint64_t lat_count_ = 0;            ///< Total samples ever recorded.

  std::chrono::steady_clock::time_point start_;
};

}  // namespace selnet::serve
