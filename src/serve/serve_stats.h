#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serve/admission.h"
#include "serve/trace.h"
#include "util/histogram.h"

/// \file serve_stats.h
/// \brief Serving-side observability: request counters, latency histograms,
/// cache hit rate, batching efficiency, per-stage spans, per-route
/// breakdowns, and the live-update pipeline's progress.
///
/// All recording paths are lock-free (atomic counters plus the lock-free
/// util::LatencyHistogram) so stats collection never becomes the serving
/// bottleneck. Per-route accumulators are created on first use and addressed
/// by stable pointer (`Route()`), so the serving hot path records through
/// them without re-hashing the route name per threshold. Rendering reuses
/// util::AsciiTable for the same look as the bench harness output;
/// StatsToJson renders the same snapshot for the wire admin plane.

namespace selnet::serve {

/// \brief Per-ring-slot identity and health, carried by the AGGREGATE
/// snapshot a coordinator serves from {"cmd":"stats"} — this is what lets a
/// scraper distinguish local shards from remote replicas, and live remotes
/// from ones whose last scrape went stale.
struct SlotSnapshot {
  size_t slot = 0;
  std::string kind;      ///< "local" or "remote".
  std::string endpoint;  ///< "host:port" for remotes, "shard-<i>" locally.
  std::string health;    ///< ShardHealthName; local shards are "healthy".
  std::string node_id;   ///< Remote's self-reported process identity.
  double uptime_s = 0.0;     ///< Remote's self-reported uptime.
  double scrape_age_s = -1.0;  ///< Age of the merged remote scrape; -1 =
                               ///  none held (never scraped or TTL-dropped).
  uint64_t pending = 0;  ///< In-flight requests awaiting the remote.
};

/// \brief Point-in-time per-route view: one row of the A/B report.
struct RouteSnapshot {
  std::string route;
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t sheds = 0;  ///< Typed rejections charged to this route.
  double cache_hit_rate = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// \brief Point-in-time view of the serving counters.
struct StatsSnapshot {
  uint64_t requests = 0;        ///< Estimates answered (cache hits included).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;         ///< Batched Predict calls issued.
  uint64_t batched_requests = 0;  ///< Requests answered through batches.
  uint64_t sweeps = 0;          ///< Multi-threshold requests submitted.
  uint64_t sweep_fastpath = 0;  ///< Sweeps answered via SweepCapable.
  uint64_t curve_hits = 0;      ///< Sweeps answered from a cached PWL curve.
  uint64_t curve_misses = 0;    ///< Curve-cache lookups that missed.
  uint64_t swaps = 0;           ///< Model hot-swaps observed.
  uint64_t traced = 0;          ///< Requests that carried a sampled trace.
  /// Overload accounting: requests rejected with a typed error, indexed by
  /// ShedReason (slot kNone stays 0), plus their sum.
  std::vector<uint64_t> sheds = std::vector<uint64_t>(kNumShedReasons, 0);
  uint64_t shed_total = 0;
  /// Requests answered from the cached sweep curve after an admission shed
  /// (EstimateResponse::degraded). Not counted in `sheds`.
  uint64_t degraded = 0;
  /// Scheduler rows dropped at a batch boundary for an expired deadline.
  uint64_t deadline_rows_dropped = 0;
  /// Invariant probe (BatchScheduler::expired_predicted): rows expired at
  /// their batch boundary that reached Predict anyway. Must stay 0.
  uint64_t deadline_rows_predicted = 0;
  /// Live-update pipeline progress (zero unless a pipeline is attached).
  uint64_t update_ops = 0;          ///< Ops accepted onto the ingest queue.
  uint64_t update_ops_applied = 0;  ///< Ops fully applied to the shadow state.
  uint64_t retrains = 0;            ///< Drift-triggered shadow retrains.
  uint64_t retrain_epochs = 0;      ///< Total incremental epochs run.
  uint64_t pipeline_publishes = 0;  ///< Republishes issued by the pipeline.
  double last_drift = 0.0;          ///< MAE drift at the last drift check.
  /// Seconds since the pipeline last republished; negative if it never has.
  double last_publish_age_s = -1.0;
  /// Process-wide packed-weight cache counters (tensor::PackStats) at
  /// snapshot time, plus the GEMM micro-kernel dispatch picked at startup.
  uint64_t pack_hits = 0;
  uint64_t pack_builds = 0;
  std::string gemm_kernel;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double cache_hit_rate = 0.0;  ///< hits / (hits + misses); 0 when unused.
  double avg_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  /// The full request-latency distribution (mergeable across shards); the
  /// three summary fields above are computed from it when it is non-empty.
  util::HistogramSnapshot latency_hist;
  /// Per-stage latency distributions for SAMPLED requests, indexed by
  /// serve::Stage (size kNumStages; entries stay empty for stages the
  /// deployment never exercises, e.g. decode/encode without a frontend).
  std::vector<util::HistogramSnapshot> stage_hists;
  /// Most recent traced requests slower than the slow-trace threshold
  /// (oldest first, bounded by ServeStats::ConfigureSlowTrace capacity).
  std::vector<SpanRecord> slow_requests;
  /// Per-route breakdown (route-name order); empty until a request resolves
  /// against a registry slot.
  std::vector<RouteSnapshot> routes;
  /// Process identity of the node this snapshot describes ("" until a
  /// frontend or registry stamps it). An AGGREGATE snapshot carries the
  /// coordinator's id; the per-slot rows below carry the remotes' own.
  std::string node_id;
  /// Seconds this node's serving stack has been up (0 until stamped).
  double uptime_s = 0.0;
  /// Fleet placement: one row per ring slot (locals then remotes). Only
  /// aggregate snapshots fill this; single-shard snapshots leave it empty.
  std::vector<SlotSnapshot> slots;
};

/// \brief Nearest-rank percentile of an ASCENDING-sorted sample vector:
/// the ceil(p * n)-th smallest sample (p in (0, 1]; p <= 0 returns the
/// minimum). This is the reference the histogram's ValueAtQuantile
/// approximates within its bucket error bound; bench code that still pools
/// raw samples uses it directly.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// \brief Merge per-shard snapshots into one fleet view (used by the sharded
/// registry's report). Counters and QPS sum; hit/batch rates are recomputed
/// from the summed counters; latency percentiles are computed from the
/// bucket-wise MERGED histograms, so the fleet p50/p99 is the percentile of
/// the pooled samples (within the histogram's relative-error bound), not a
/// worst-shard guess. Hand-built snapshots without histogram data fall back
/// to worst-shard percentiles and a request-weighted mean. Route rows
/// concatenate: consistent hashing places each route on exactly one shard.
StatsSnapshot AggregateSnapshots(const std::vector<StatsSnapshot>& shards);

/// \brief Render a snapshot as one flat-ish JSON object for the wire admin
/// plane ({"cmd":"stats"}): counters, rates, latency percentiles, per-stage
/// percentiles, per-route rows, node identity, and (for aggregate fleet
/// snapshots) per-slot health rows. Stable field names; see
/// src/serve/README.md for the schema.
std::string StatsToJson(const StatsSnapshot& s);

/// \brief Render the serving snapshot as Prometheus text exposition
/// (counters, shed reasons per label, latency + per-stage summaries,
/// per-route requests, per-slot health enums). `{"cmd":"metrics"}` serves
/// this concatenated with the control-plane registry's RenderText(); every
/// line passes util::LintExposition. Metric names are prefixed
/// `selnet_` — see the README's reference table.
std::string RenderStatsExposition(const StatsSnapshot& s);

/// \brief Thread-safe accumulator for serving metrics.
class ServeStats {
 public:
  /// \brief Per-route accumulator. Obtained once per request via Route();
  /// the pointer stays valid for the ServeStats' lifetime (Reset zeroes, it
  /// never erases), so completion callbacks may hold it across threads.
  class RouteStats {
   public:
    RouteStats() = default;

    void RecordRequests(uint64_t n) {
      requests_.fetch_add(n, std::memory_order_relaxed);
    }
    void RecordCache(bool hit) {
      (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    }
    void RecordLatencyMs(double ms) { latency_.Record(ms); }
    void RecordShed() { sheds_.fetch_add(1, std::memory_order_relaxed); }

   private:
    friend class ServeStats;
    void Reset();
    RouteSnapshot Snapshot(const std::string& name) const;

    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> sheds_{0};
    util::LatencyHistogram latency_;
  };

  ServeStats();

  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordSwap() { swaps_.fetch_add(1, std::memory_order_relaxed); }
  /// \brief One multi-threshold request; `fast_path` when the SweepCapable
  /// control-point path answered it.
  void RecordSweep(bool fast_path) {
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (fast_path) sweep_fastpath_.fetch_add(1, std::memory_order_relaxed);
  }
  /// \brief One sweep-curve cache lookup (hit = PWL served, network skipped).
  void RecordCurveLookup(bool hit) {
    if (hit) {
      curve_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      curve_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void RecordBatch(size_t batch_size);
  void RecordLatencyMs(double ms) { latency_.Record(ms); }

  /// \brief One stage observation from a sampled trace (frontends record
  /// encode directly; the server flushes the rest via RecordSpan).
  void RecordStage(Stage s, double ms) { stage_[size_t(s)].Record(ms); }

  /// \brief One request admitted WITH a sampled trace attached.
  void RecordTraced() { traced_.fetch_add(1, std::memory_order_relaxed); }

  /// \brief One request rejected with a typed shed error (kNone ignored).
  void RecordShed(ShedReason r) {
    if (r == ShedReason::kNone) return;
    sheds_[size_t(r)].fetch_add(1, std::memory_order_relaxed);
  }
  /// \brief One shed request answered from the cached sweep curve instead.
  void RecordDegraded() { degraded_.fetch_add(1, std::memory_order_relaxed); }
  /// \brief Scheduler rows dropped pre-Predict for an expired deadline.
  void RecordExpiredRows(uint64_t n) {
    deadline_rows_dropped_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \brief Invariant violations: expired rows that reached Predict.
  void RecordExpiredPredicted(uint64_t n) {
    deadline_rows_predicted_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \brief Register a live (dropped, predicted) deadline-row counter source
  /// — the owning server points this at its BatchScheduler so Snapshot()
  /// reflects scheduler drops without a push path. Set once before serving
  /// starts; survives Reset() (the source's own counters are cumulative).
  void SetDeadlineRowSource(
      std::function<std::pair<uint64_t, uint64_t>()> source) {
    deadline_row_source_ = std::move(source);
  }

  /// \brief Configure the slow-request ring: traced requests whose total
  /// exceeds `threshold_ms` keep their full span breakdown, bounded to the
  /// most recent `capacity`. Clears the ring.
  void ConfigureSlowTrace(double threshold_ms, size_t capacity);

  /// \brief Flush one finished sampled span: every touched stage feeds its
  /// stage histogram, and spans over the slow threshold enter the ring.
  void RecordSpan(const SpanRecord& span);

  /// \brief Copy out the retained slow spans, oldest first.
  std::vector<SpanRecord> SlowSpans() const;

  // Live-update pipeline progress (recorded by serve::LiveUpdatePipeline).
  void RecordUpdateOps(uint64_t n) {
    update_ops_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordUpdateApplied(uint64_t n) {
    update_ops_applied_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \brief One drift check: the observed drift, plus the retrain it did (or
  /// did not, epochs == 0 and !retrained) trigger.
  void RecordDriftCheck(double drift, bool retrained, size_t epochs) {
    last_drift_.store(drift, std::memory_order_relaxed);
    if (retrained) {
      retrains_.fetch_add(1, std::memory_order_relaxed);
      retrain_epochs_.fetch_add(epochs, std::memory_order_relaxed);
    }
  }
  /// \brief The pipeline republished; stamps the publish timestamp.
  void RecordPipelinePublish();

  /// \brief Find-or-create the accumulator for `route`. The returned pointer
  /// is stable until destruction (never invalidated by Reset).
  RouteStats* Route(const std::string& route);

  /// \brief Reset every counter and restart the elapsed-time clock. Route
  /// accumulators are zeroed in place (outstanding Route() pointers stay
  /// valid).
  void Reset();

  StatsSnapshot Snapshot() const;

  /// \brief Render the snapshot as an AsciiTable block; per-route, per-stage,
  /// slow-request, and update-pipeline sections appear when they have data.
  std::string Report(const std::string& title = "serving stats") const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> sweep_fastpath_{0};
  std::atomic<uint64_t> curve_hits_{0};
  std::atomic<uint64_t> curve_misses_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> traced_{0};
  std::atomic<uint64_t> sheds_[kNumShedReasons] = {};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> deadline_rows_dropped_{0};
  std::atomic<uint64_t> deadline_rows_predicted_{0};
  std::function<std::pair<uint64_t, uint64_t>()> deadline_row_source_;

  std::atomic<uint64_t> update_ops_{0};
  std::atomic<uint64_t> update_ops_applied_{0};
  std::atomic<uint64_t> retrains_{0};
  std::atomic<uint64_t> retrain_epochs_{0};
  std::atomic<uint64_t> pipeline_publishes_{0};
  std::atomic<double> last_drift_{0.0};
  /// Nanoseconds from start_ to the last pipeline publish; -1 = never.
  std::atomic<int64_t> last_publish_ns_{-1};

  mutable std::mutex routes_mu_;
  /// std::map: stable iteration order for the report; unique_ptr: stable
  /// RouteStats addresses across rehashing-free inserts.
  std::map<std::string, std::unique_ptr<RouteStats>> routes_;

  util::LatencyHistogram latency_;
  util::LatencyHistogram stage_[kNumStages];

  /// Slow-request ring (mutex-guarded: only sampled-and-slow spans pay it).
  mutable std::mutex slow_mu_;
  std::vector<SpanRecord> slow_;
  size_t slow_next_ = 0;
  uint64_t slow_seen_ = 0;
  double slow_threshold_ms_ = 50.0;
  size_t slow_capacity_ = 32;

  mutable std::mutex start_mu_;  ///< Guards start_ (Reset rewrites it).
  std::chrono::steady_clock::time_point start_;
};

}  // namespace selnet::serve
