#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file serve_stats.h
/// \brief Serving-side observability: request counters, latency percentiles,
/// cache hit rate, batching efficiency, per-route breakdowns, and the
/// live-update pipeline's progress.
///
/// All recording paths are lock-light (atomics plus one short critical
/// section for the latency reservoir) so stats collection never becomes the
/// serving bottleneck. Per-route accumulators are created on first use and
/// addressed by stable pointer (`Route()`), so the serving hot path records
/// through them without re-hashing the route name per threshold. Rendering
/// reuses util::AsciiTable for the same look as the bench harness output.

namespace selnet::serve {

/// \brief Point-in-time per-route view: one row of the A/B report.
struct RouteSnapshot {
  std::string route;
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// \brief Point-in-time view of the serving counters.
struct StatsSnapshot {
  uint64_t requests = 0;        ///< Estimates answered (cache hits included).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;         ///< Batched Predict calls issued.
  uint64_t batched_requests = 0;  ///< Requests answered through batches.
  uint64_t sweeps = 0;          ///< Multi-threshold requests submitted.
  uint64_t sweep_fastpath = 0;  ///< Sweeps answered via SweepCapable.
  uint64_t curve_hits = 0;      ///< Sweeps answered from a cached PWL curve.
  uint64_t curve_misses = 0;    ///< Curve-cache lookups that missed.
  uint64_t swaps = 0;           ///< Model hot-swaps observed.
  /// Live-update pipeline progress (zero unless a pipeline is attached).
  uint64_t update_ops = 0;          ///< Ops accepted onto the ingest queue.
  uint64_t update_ops_applied = 0;  ///< Ops fully applied to the shadow state.
  uint64_t retrains = 0;            ///< Drift-triggered shadow retrains.
  uint64_t retrain_epochs = 0;      ///< Total incremental epochs run.
  uint64_t pipeline_publishes = 0;  ///< Republishes issued by the pipeline.
  double last_drift = 0.0;          ///< MAE drift at the last drift check.
  /// Seconds since the pipeline last republished; negative if it never has.
  double last_publish_age_s = -1.0;
  /// Process-wide packed-weight cache counters (tensor::PackStats) at
  /// snapshot time, plus the GEMM micro-kernel dispatch picked at startup.
  uint64_t pack_hits = 0;
  uint64_t pack_builds = 0;
  std::string gemm_kernel;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double cache_hit_rate = 0.0;  ///< hits / (hits + misses); 0 when unused.
  double avg_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  /// Per-route breakdown (route-name order); empty until a request resolves
  /// against a registry slot.
  std::vector<RouteSnapshot> routes;
};

/// \brief Fixed-size ring of the most recent latency samples (older ones are
/// overwritten) with a copy-out for percentile estimation. One mutex per
/// reservoir keeps recording lock-light; the global and per-route latency
/// tracks share this one implementation.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity);

  void Record(double ms);
  void Reset();

  /// \brief Copy the filled samples into `out` (replacing its contents).
  void CopySamples(std::vector<double>* out) const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;  ///< Ring buffer.
  size_t next_ = 0;              ///< Next write slot.
  uint64_t count_ = 0;           ///< Total samples ever recorded.
};

/// \brief Merge per-shard snapshots into one fleet view (used by the sharded
/// registry's report). Counters and QPS sum; hit/batch rates are recomputed
/// from the summed counters; latency percentiles take the WORST shard —
/// without raw samples a merged percentile would be a fiction, and the worst
/// shard is the one a capacity planner cares about. Route rows concatenate:
/// consistent hashing places each route on exactly one shard.
StatsSnapshot AggregateSnapshots(const std::vector<StatsSnapshot>& shards);

/// \brief Thread-safe accumulator for serving metrics.
class ServeStats {
 public:
  /// \brief Per-route accumulator. Obtained once per request via Route();
  /// the pointer stays valid for the ServeStats' lifetime (Reset zeroes, it
  /// never erases), so completion callbacks may hold it across threads.
  class RouteStats {
   public:
    explicit RouteStats(size_t reservoir_size) : latency_(reservoir_size) {}

    void RecordRequests(uint64_t n) {
      requests_.fetch_add(n, std::memory_order_relaxed);
    }
    void RecordCache(bool hit) {
      (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    }
    void RecordLatencyMs(double ms) { latency_.Record(ms); }

   private:
    friend class ServeStats;
    void Reset();
    RouteSnapshot Snapshot(const std::string& name) const;

    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    LatencyReservoir latency_;
  };

  /// \param reservoir_size how many most-recent latency samples to keep for
  /// percentile estimation (ring buffer; older samples are overwritten).
  explicit ServeStats(size_t reservoir_size = 1 << 14);

  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordSwap() { swaps_.fetch_add(1, std::memory_order_relaxed); }
  /// \brief One multi-threshold request; `fast_path` when the SweepCapable
  /// control-point path answered it.
  void RecordSweep(bool fast_path) {
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (fast_path) sweep_fastpath_.fetch_add(1, std::memory_order_relaxed);
  }
  /// \brief One sweep-curve cache lookup (hit = PWL served, network skipped).
  void RecordCurveLookup(bool hit) {
    if (hit) {
      curve_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      curve_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void RecordBatch(size_t batch_size);
  void RecordLatencyMs(double ms) { latency_.Record(ms); }

  // Live-update pipeline progress (recorded by serve::LiveUpdatePipeline).
  void RecordUpdateOps(uint64_t n) {
    update_ops_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordUpdateApplied(uint64_t n) {
    update_ops_applied_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \brief One drift check: the observed drift, plus the retrain it did (or
  /// did not, epochs == 0 and !retrained) trigger.
  void RecordDriftCheck(double drift, bool retrained, size_t epochs) {
    last_drift_.store(drift, std::memory_order_relaxed);
    if (retrained) {
      retrains_.fetch_add(1, std::memory_order_relaxed);
      retrain_epochs_.fetch_add(epochs, std::memory_order_relaxed);
    }
  }
  /// \brief The pipeline republished; stamps the publish timestamp.
  void RecordPipelinePublish();

  /// \brief Find-or-create the accumulator for `route`. The returned pointer
  /// is stable until destruction (never invalidated by Reset).
  RouteStats* Route(const std::string& route);

  /// \brief Reset every counter and restart the elapsed-time clock. Route
  /// accumulators are zeroed in place (outstanding Route() pointers stay
  /// valid).
  void Reset();

  StatsSnapshot Snapshot() const;

  /// \brief Render the snapshot as an AsciiTable block; per-route and
  /// update-pipeline sections appear when they have data.
  std::string Report(const std::string& title = "serving stats") const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> sweep_fastpath_{0};
  std::atomic<uint64_t> curve_hits_{0};
  std::atomic<uint64_t> curve_misses_{0};
  std::atomic<uint64_t> swaps_{0};

  std::atomic<uint64_t> update_ops_{0};
  std::atomic<uint64_t> update_ops_applied_{0};
  std::atomic<uint64_t> retrains_{0};
  std::atomic<uint64_t> retrain_epochs_{0};
  std::atomic<uint64_t> pipeline_publishes_{0};
  std::atomic<double> last_drift_{0.0};
  /// Nanoseconds from start_ to the last pipeline publish; -1 = never.
  std::atomic<int64_t> last_publish_ns_{-1};

  size_t route_reservoir_;
  mutable std::mutex routes_mu_;
  /// std::map: stable iteration order for the report; unique_ptr: stable
  /// RouteStats addresses across rehashing-free inserts.
  std::map<std::string, std::unique_ptr<RouteStats>> routes_;

  LatencyReservoir latency_;

  mutable std::mutex start_mu_;  ///< Guards start_ (Reset rewrites it).
  std::chrono::steady_clock::time_point start_;
};

}  // namespace selnet::serve
