#include "serve/client_channel.h"

#include <sys/socket.h>

#include <algorithm>
#include <exception>
#include <utility>

#include "serve/admission.h"

namespace selnet::serve {

using util::Result;
using util::Status;
using util::StatusCode;

ClientChannel::ClientChannel(const ClientChannelConfig& cfg) : cfg_(cfg) {}

ClientChannel::~ClientChannel() { Close(); }

std::string ClientChannel::endpoint() const {
  return cfg_.address + ":" + std::to_string(cfg_.port);
}

size_t ClientChannel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

Status ClientChannel::NegotiateBinary(int fd, WireProto* negotiated,
                                      std::string* seed) {
  *negotiated = WireProto::kJson;
  const std::string hello = SerializeHello(WireProto::kBinary) + "\n";
  SEL_RETURN_NOT_OK(util::WriteAll(fd, hello.data(), hello.size()));
  // Read the one reply line, bounded: a peer that accepts but never answers
  // must not hang Connect.
  std::string buf;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         cfg_.hello_timeout_ms > 0 ? cfg_.hello_timeout_ms
                                                   : 5000);
  size_t nl;
  while ((nl = buf.find('\n')) == std::string::npos) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - Clock::now())
                         .count();
    if (remaining <= 0) {
      return Status::DeadlineExceeded(endpoint() +
                                      ": no hello reply within bound");
    }
    std::vector<util::PollEntry> entries(1);
    entries[0].fd = fd;
    entries[0].want_read = true;
    Result<int> ready = util::Poll(&entries, int(remaining));
    if (!ready.ok()) return ready.status();
    if (!entries[0].readable && !entries[0].error) continue;
    char chunk[4096];
    Result<int64_t> n = util::ReadSome(fd, chunk, sizeof(chunk));
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kOutOfRange) continue;  // EAGAIN
      return n.status();
    }
    if (n.ValueOrDie() == 0) {
      return Status::IOError(endpoint() + ": closed during hello");
    }
    buf.append(chunk, size_t(n.ValueOrDie()));
  }
  const std::string line = buf.substr(0, nl);
  *seed = buf.substr(nl + 1);
  Result<HelloResult> hello_reply = ParseHelloReply(line);
  if (!hello_reply.ok()) {
    // An older server answers unknown-cmd and keeps the connection open:
    // the designed JSON fallback, not a failure.
    return Status::OK();
  }
  *negotiated = hello_reply.ValueOrDie().proto;
  return Status::OK();
}

Status ClientChannel::Connect() {
  Close();
  auto fd = util::TcpConnect(cfg_.address, cfg_.port);
  if (!fd.ok()) return fd.status();
  util::Fd sock = fd.MoveValueUnsafe();
  util::SetNoDelay(sock.get());
  WireProto negotiated = WireProto::kJson;
  std::string seed;
  if (cfg_.preferred_proto == WireProto::kBinary) {
    SEL_RETURN_NOT_OK(NegotiateBinary(sock.get(), &negotiated, &seed));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = std::move(sock);
    reader_stop_ = false;
  }
  proto_ = negotiated;
  seed_ = std::move(seed);
  {
    std::lock_guard<std::mutex> wl(wq_mu_);
    wq_.clear();
    writing_ = false;
  }
  up_.store(true, std::memory_order_release);
  reader_ = std::thread(&ClientChannel::ReaderLoop, this);
  return Status::OK();
}

void ClientChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    reader_stop_ = true;
    // shutdown (not close) so the descriptor number stays reserved until
    // every user is done — the reader polls the raw fd outside the lock,
    // and a Call may be mid-WriteAll under write_mu_.
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  }
  wake_.Notify();
  if (reader_.joinable()) reader_.join();
  {
    // write_mu_ too: closing while a writer holds the raw descriptor would
    // let a concurrent open reuse the fd number and receive the request
    // bytes. Order write_mu_ -> mu_, same as the write path.
    std::lock_guard<std::mutex> wlock(write_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    fd_.Close();
  }
  FailAllPending(StatusCode::kIoError, endpoint() + ": connection closed");
}

void ClientChannel::FailAllPending(StatusCode code, const std::string& msg) {
  up_.store(false, std::memory_order_release);
  std::vector<Pending> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.reserve(pending_.size());
    for (auto& [tag, entry] : pending_) taken.push_back(std::move(entry));
    pending_.clear();
  }
  if (taken.empty()) return;
  auto error = std::make_exception_ptr(RemoteError(code, msg));
  for (auto& entry : taken) {
    EstimateResponse resp;
    resp.tag = entry.caller_tag;
    entry.done(std::move(resp), error);
  }
}

void ClientChannel::Call(EstimateRequest req, SelNetServer::ResponseFn done) {
  std::vector<SelNetServer::Submission> one(1);
  one[0].req = std::move(req);
  one[0].done = std::move(done);
  CallMany(std::move(one));
}

void ClientChannel::CallMany(std::vector<SelNetServer::Submission> batch) {
  if (batch.empty()) return;
  const Clock::time_point now = Clock::now();

  // Register the whole batch under one lock acquisition, assigning wire
  // tags; serialization happens after, outside the lock the reader needs.
  std::vector<uint64_t> wire_tags(batch.size(), 0);
  bool registered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (up_.load(std::memory_order_relaxed) && fd_.valid()) {
      registered = true;
      for (size_t i = 0; i < batch.size(); ++i) {
        EstimateRequest& req = batch[i].req;
        Pending entry;
        entry.caller_tag = req.tag;
        entry.trace = req.trace;
        entry.sent = now;
        if (cfg_.recv_timeout_ms > 0) {
          entry.expires = now + std::chrono::milliseconds(cfg_.recv_timeout_ms);
        }
        if (req.has_deadline() && (entry.expires == Clock::time_point{} ||
                                   req.deadline < entry.expires)) {
          entry.expires = req.deadline;
          entry.expiry_is_request_deadline = true;
        }
        entry.done = std::move(batch[i].done);
        wire_tags[i] = next_tag_++;
        pending_.emplace(wire_tags[i], std::move(entry));
      }
    }
  }
  if (!registered) {
    auto error = std::make_exception_ptr(RemoteError(
        StatusCode::kUnavailable, endpoint() + ": no data connection"));
    for (auto& s : batch) {
      EstimateResponse resp;
      resp.tag = s.req.tag;
      s.done(std::move(resp), error);
    }
    return;
  }

  // One contiguous buffer for the burst. The caller's tag was captured in
  // the pending entry; the wire carries the internal correlation tag.
  std::string out;
  const bool binary = proto_ == WireProto::kBinary;
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].req.tag = wire_tags[i];
    if (binary) {
      AppendRequestFrame(&out, batch[i].req);
    } else {
      out += SerializeRequest(batch[i].req);
      out += '\n';
    }
  }

  // Flush-combining: append under the queue lock; the first appender of a
  // burst becomes the flusher and swap-drains until the queue is empty, so
  // concurrent Calls coalesce into few write syscalls.
  bool flusher = false;
  {
    std::lock_guard<std::mutex> wl(wq_mu_);
    wq_ += out;
    if (!writing_) {
      writing_ = true;
      flusher = true;
    }
  }
  if (flusher && !FlushQueued()) {
    // The connection is dead with an unknowable subset of queued requests
    // on the wire; fail everything in flight (kIoError: the remote MAY have
    // executed some). The reader notices the dead socket independently.
    FailAllPending(StatusCode::kIoError, endpoint() + ": send failed");
    return;
  }
  // Nudge the reader so its poll deadline accounts for these expiries.
  wake_.Notify();
}

bool ClientChannel::FlushQueued() {
  for (;;) {
    std::string out;
    {
      std::lock_guard<std::mutex> wl(wq_mu_);
      if (wq_.empty()) {
        writing_ = false;
        return true;
      }
      out.swap(wq_);
    }
    std::lock_guard<std::mutex> wlock(write_mu_);
    int raw_fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fd_.valid() && !reader_stop_) raw_fd = fd_.get();
    }
    Status wrote = raw_fd < 0
                       ? Status::IOError("data connection closed")
                       : util::WriteAll(raw_fd, out.data(), out.size());
    if (!wrote.ok()) {
      std::lock_guard<std::mutex> wl(wq_mu_);
      writing_ = false;
      wq_.clear();
      return false;
    }
  }
}

void ClientChannel::ReaderLoop() {
  std::string rbuf = std::move(seed_);
  seed_.clear();
  char buf[16 << 10];
  const bool binary = proto_ == WireProto::kBinary;
  for (;;) {
    int raw_fd = -1;
    int timeout_ms = -1;
    std::vector<Pending> expired;
    {
      Clock::time_point now = Clock::now();
      Clock::time_point next{};
      std::lock_guard<std::mutex> lock(mu_);
      if (reader_stop_) return;
      raw_fd = fd_.get();
      for (auto it = pending_.begin(); it != pending_.end();) {
        const Clock::time_point& e = it->second.expires;
        if (e != Clock::time_point{} && e <= now) {
          expired.push_back(std::move(it->second));
          it = pending_.erase(it);
        } else {
          if (e != Clock::time_point{} &&
              (next == Clock::time_point{} || e < next)) {
            next = e;
          }
          ++it;
        }
      }
      if (next != Clock::time_point{}) {
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      next - now)
                      .count();
        timeout_ms = int(std::clamp<long long>(ms + 1, 1, 60'000));
      }
    }
    for (auto& entry : expired) {
      EstimateResponse resp;
      resp.tag = entry.caller_tag;
      std::exception_ptr error;
      if (entry.expiry_is_request_deadline) {
        // Mirrors the in-process shed: the request itself ran out of time.
        error = std::make_exception_ptr(OverloadError(
            ShedReason::kDeadlineExpired,
            endpoint() + ": deadline expired awaiting the remote"));
      } else {
        error = std::make_exception_ptr(RemoteError(
            StatusCode::kDeadlineExceeded,
            endpoint() + ": no response within " +
                std::to_string(cfg_.recv_timeout_ms) + "ms (peer suspect)"));
      }
      entry.done(std::move(resp), error);
    }

    std::vector<util::PollEntry> entries(2);
    entries[0].fd = raw_fd;
    entries[0].want_read = true;
    entries[1].fd = wake_.read_fd();
    entries[1].want_read = true;
    auto polled = util::Poll(&entries, timeout_ms);
    if (!polled.ok()) {
      FailAllPending(StatusCode::kIoError,
                     endpoint() + ": poll failed (" +
                         polled.status().message() + ")");
      return;
    }
    if (entries[1].readable) wake_.Drain();
    if (!entries[0].readable && !entries[0].error) continue;

    auto n = util::ReadSome(raw_fd, buf, sizeof buf);
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kOutOfRange) continue;  // EAGAIN
      FailAllPending(StatusCode::kIoError,
                     endpoint() + ": read failed (" + n.status().message() +
                         ")");
      return;
    }
    int64_t got = n.ValueOrDie();
    if (got == 0) {
      FailAllPending(StatusCode::kIoError,
                     endpoint() + ": connection closed by peer");
      return;
    }
    rbuf.append(buf, size_t(got));
    if (binary) {
      size_t start = 0;
      for (;;) {
        FrameHeader hdr;
        std::string err;
        const FramePeel peel =
            PeelFrameHeader(rbuf.data() + start, rbuf.size() - start,
                            size_t(1) << 26, &hdr, &err);
        if (peel == FramePeel::kNeedMore) break;
        if (peel == FramePeel::kBad) {
          // Framing lost mid-stream: nothing downstream is trustworthy.
          FailAllPending(StatusCode::kIoError,
                         endpoint() + ": bad frame (" + err + ")");
          return;
        }
        const size_t total = kFrameHeaderBytes + size_t(hdr.payload_len);
        if (rbuf.size() - start < total) break;
        HandleFrame(hdr, rbuf.data() + start + kFrameHeaderBytes);
        start += total;
      }
      rbuf.erase(0, start);
    } else {
      size_t start = 0;
      size_t nl;
      while ((nl = rbuf.find('\n', start)) != std::string::npos) {
        HandleLine(rbuf.substr(start, nl - start));
        start = nl + 1;
      }
      rbuf.erase(0, start);
    }
  }
}

void ClientChannel::HandleLine(const std::string& line) {
  EstimateResponse resp;
  Status st = ParseResponseLine(line, &resp);
  uint64_t wire_tag = st.ok() ? resp.tag : ExtractTagBestEffort(line);
  CompleteReply(wire_tag, std::move(resp), st);
}

void ClientChannel::HandleFrame(const FrameHeader& hdr, const char* payload) {
  EstimateResponse resp;
  Status st;
  switch (hdr.type) {
    case FrameType::kResponse:
      st = DecodeResponsePayload(payload, hdr.payload_len, &resp);
      break;
    case FrameType::kError: {
      std::string code, message;
      Status dec = DecodeErrorPayload(payload, hdr.payload_len, &code,
                                      &message);
      st = dec.ok() ? StatusFromWireError(code, message)
                    : Status::Internal(dec.message());
      break;
    }
    default:
      // Admin replies are not data-plane traffic; nothing pends on them
      // here (control calls dial their own connection).
      return;
  }
  CompleteReply(hdr.tag, std::move(resp), st);
}

void ClientChannel::CompleteReply(uint64_t wire_tag, EstimateResponse resp,
                                  Status st) {
  if (wire_tag == 0) return;  // Untagged reply — we tag every request, so
                              // nothing can be waiting on it.
  SelNetServer::ResponseFn cb;
  uint64_t caller_tag = 0;
  std::shared_ptr<RequestTrace> trace;
  Clock::time_point sent{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(wire_tag);
    if (it == pending_.end()) return;  // Expired earlier; its completion
                                       // already fired — discard the late
                                       // reply so it fires exactly once.
    cb = std::move(it->second.done);
    caller_tag = it->second.caller_tag;
    trace = std::move(it->second.trace);
    sent = it->second.sent;
    pending_.erase(it);
  }
  resp.tag = caller_tag;
  if (trace) {
    // Attribute the hop: the remote's own queue/predict time (from its
    // stage block) becomes the remote_* stages, and remote_wire is the
    // whole caller-observed round trip — floored at the remote's share so
    // remote_queue + remote_predict <= remote_wire holds even against
    // clock granularity noise.
    double wire_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - sent)
            .count();
    double remote_share = 0.0;
    if (resp.stage_ms.size() >= kNumLocalStages) {
      double rq = double(resp.stage_ms[size_t(Stage::kQueue)]);
      double rp = double(resp.stage_ms[size_t(Stage::kPredict)]);
      remote_share = rq + rp;
      trace->Observe(Stage::kRemoteQueue, rq);
      trace->Observe(Stage::kRemotePredict, rp);
    }
    trace->Observe(Stage::kRemoteWire, std::max(wire_ms, remote_share));
  }
  // The block is coordinator-internal: it merged into the trace above and
  // must not leak into the caller-visible response.
  resp.stage_ms.clear();
  if (st.ok()) {
    cb(std::move(resp), nullptr);
    return;
  }
  std::exception_ptr error;
  switch (st.code()) {
    case StatusCode::kDeadlineExceeded:
      // The remote admission controller shed it — same taxonomy as local.
      error = std::make_exception_ptr(
          OverloadError(ShedReason::kDeadlineExpired, st.message()));
      break;
    case StatusCode::kUnavailable:
      // queue_full / priority_shed / shutdown: never served; another
      // replica may have capacity.
      error = std::make_exception_ptr(
          RemoteError(StatusCode::kUnavailable, st.message()));
      break;
    case StatusCode::kNotFound:
      // This replica doesn't hold the route — another may. Retryable.
      error = std::make_exception_ptr(
          RemoteError(StatusCode::kNotFound, st.message()));
      break;
    default:
      // Deterministic request failure (bad shape, unknown route): a retry
      // would fail the same way.
      error = std::make_exception_ptr(
          RemoteError(StatusCode::kInternal, st.message()));
      break;
  }
  cb(std::move(resp), error);
}

}  // namespace selnet::serve
