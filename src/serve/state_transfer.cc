#include "serve/state_transfer.h"

#include <algorithm>

#include "serve/frontend.h"
#include "serve/wire.h"
#include "util/base64.h"
#include "util/crc32.h"

namespace selnet::serve {

using util::Result;
using util::Status;

std::vector<TransferFrame> BuildFrames(const std::string& bytes,
                                       size_t frame_bytes) {
  std::vector<TransferFrame> frames;
  size_t chunk = std::max<size_t>(1, frame_bytes);
  frames.reserve(bytes.size() / chunk + 1);
  // An empty payload still ships one (empty) frame so begin/commit always
  // bracket at least one data line — simpler invariants on both ends.
  size_t off = 0;
  do {
    TransferFrame f;
    f.seq = frames.size();
    f.data = bytes.substr(off, chunk);
    f.crc = util::Crc32(f.data.data(), f.data.size());
    off += f.data.size();
    frames.push_back(std::move(f));
  } while (off < bytes.size());
  return frames;
}

std::string SerializeXferBegin(const std::string& model, uint64_t size,
                               uint64_t frames, uint64_t tag) {
  JsonWriter w;
  w.Field("cmd", "xfer_begin");  // "cmd" first: LineLooksAdmin keys on it.
  w.Field("model", model);
  w.Field("size", size);
  w.Field("frames", frames);
  if (tag != 0) w.Field("tag", tag);
  return w.Finish();
}

std::string SerializeXferFrame(const TransferFrame& frame, uint64_t tag) {
  JsonWriter w;
  w.Field("cmd", "xfer_frame");
  w.Field("seq", frame.seq);
  w.Field("crc", uint64_t(frame.crc));
  w.Field("data", util::Base64Encode(frame.data));
  if (tag != 0) w.Field("tag", tag);
  return w.Finish();
}

std::string SerializeXferCommit(const std::string& model, uint32_t whole_crc,
                                uint64_t tag) {
  JsonWriter w;
  w.Field("cmd", "xfer_commit");
  w.Field("model", model);
  w.Field("crc", uint64_t(whole_crc));
  if (tag != 0) w.Field("tag", tag);
  return w.Finish();
}

// ------------------------------------------------------- TransferAssembler ---

Status TransferAssembler::Begin(const std::string& model, uint64_t size,
                                uint64_t frames) {
  Abort();
  if (model.empty()) {
    return Status::Invalid("state transfer: xfer_begin needs a model route");
  }
  if (frames == 0) {
    return Status::Invalid("state transfer: xfer_begin needs >= 1 frame");
  }
  // `size` and `frames` are sender-supplied bytes off an open port: bound
  // them BEFORE any allocation sized by them, and reply with a typed error
  // (std::length_error out of an unchecked reserve would terminate the
  // process instead).
  if (size > max_bytes_) {
    return Status::Invalid("state transfer: announced size " +
                           std::to_string(size) + " exceeds the " +
                           std::to_string(max_bytes_) + "-byte limit");
  }
  if (frames > std::max<uint64_t>(1, size)) {
    return Status::Invalid(
        "state transfer: announced " + std::to_string(frames) +
        " frames for " + std::to_string(size) +
        " bytes (frames carry at least one byte each)");
  }
  active_ = true;
  model_ = model;
  expect_size_ = size;
  expect_frames_ = frames;
  next_seq_ = 0;
  buf_.clear();
  // Capacity hint only — memory materializes as verified frames arrive (and
  // AddFrame caps growth at expect_size_), so a sender claiming a large size
  // commits us to nothing up front.
  buf_.reserve(size_t(std::min<uint64_t>(size, uint64_t(kDefaultFrameBytes) * 16)));
  return Status::OK();
}

Status TransferAssembler::AddFrame(uint64_t seq, uint32_t crc,
                                   const std::string& data) {
  if (!active_) {
    return Status::Invalid("state transfer: xfer_frame without xfer_begin");
  }
  if (seq != next_seq_) {
    Status st = Status::Invalid(
        "state transfer for '" + model_ + "': frame out of order (got seq " +
        std::to_string(seq) + ", expected " + std::to_string(next_seq_) + ")");
    Abort();
    return st;
  }
  uint32_t computed = util::Crc32(data.data(), data.size());
  if (computed != crc) {
    Status st = Status::IOError(
        "state transfer for '" + model_ + "': frame " + std::to_string(seq) +
        " checksum mismatch (sent crc32 " + std::to_string(crc) +
        ", computed " + std::to_string(computed) + ") — frame corrupt");
    Abort();
    return st;
  }
  buf_ += data;
  ++next_seq_;
  if (buf_.size() > expect_size_) {
    Status st = Status::Invalid("state transfer for '" + model_ +
                                "': payload exceeds announced size " +
                                std::to_string(expect_size_));
    Abort();
    return st;
  }
  return Status::OK();
}

Result<std::string> TransferAssembler::Commit(const std::string& model,
                                              uint32_t whole_crc) {
  if (!active_) {
    return Status::Invalid("state transfer: xfer_commit without xfer_begin");
  }
  // The transfer is over after this call, success or not.
  std::string bytes = std::move(buf_);
  std::string route = model_;
  uint64_t got_frames = next_seq_;
  uint64_t want_frames = expect_frames_;
  uint64_t want_size = expect_size_;
  Abort();
  if (model != route) {
    return Status::Invalid("state transfer: xfer_commit route '" + model +
                           "' does not match xfer_begin route '" + route +
                           "'");
  }
  if (got_frames != want_frames || bytes.size() != want_size) {
    return Status::Invalid(
        "state transfer for '" + route + "': incomplete payload (" +
        std::to_string(got_frames) + "/" + std::to_string(want_frames) +
        " frames, " + std::to_string(bytes.size()) + "/" +
        std::to_string(want_size) + " bytes)");
  }
  uint32_t computed = util::Crc32(bytes.data(), bytes.size());
  if (computed != whole_crc) {
    return Status::IOError("state transfer for '" + route +
                           "': whole-payload checksum mismatch (sent crc32 " +
                           std::to_string(whole_crc) + ", computed " +
                           std::to_string(computed) + ")");
  }
  return bytes;
}

void TransferAssembler::Abort() {
  active_ = false;
  model_.clear();
  expect_size_ = expect_frames_ = next_seq_ = 0;
  buf_.clear();
  buf_.shrink_to_fit();
}

// --------------------------------------------------------- SendModelState ---

namespace {

Status Roundtrip(NetClient* client, const std::string& line,
                 uint64_t* version = nullptr) {
  SEL_RETURN_NOT_OK(client->SendRaw(line + "\n"));
  Result<std::string> reply = client->ReadLine();
  if (!reply.ok()) return reply.status();
  return ParseAckLine(reply.ValueOrDie(), version);
}

}  // namespace

Status SendModelState(NetClient* client, const std::string& model,
                      const std::string& bytes, uint64_t* version,
                      size_t frame_bytes) {
  std::vector<TransferFrame> frames = BuildFrames(bytes, frame_bytes);
  SEL_RETURN_NOT_OK(Roundtrip(
      client, SerializeXferBegin(model, bytes.size(), frames.size())));
  for (const TransferFrame& f : frames) {
    SEL_RETURN_NOT_OK(Roundtrip(client, SerializeXferFrame(f)));
  }
  uint32_t whole = util::Crc32(bytes.data(), bytes.size());
  return Roundtrip(client, SerializeXferCommit(model, whole), version);
}

}  // namespace selnet::serve
