#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

/// \file admission.h
/// \brief Overload protection at the serving front door: per-route priority
/// classes over one shared inflight budget, with typed shed reasons.
///
/// Every serving bench measures steady state; under a burst above capacity a
/// server without admission control just grows queues until p99 is unbounded.
/// The AdmissionController bounds the damage: each request takes an inflight
/// ticket before touching any compute, and is shed with a TYPED error when
/// its priority class's share of the budget is exhausted. Shedding is a
/// correct answer for selectivity serving — the caller can fall back to a
/// sampler estimate or the cached sweep curve (the degrade hook serves the
/// latter automatically for routes that opt in).
///
/// Priority classes are watermarks over ONE budget, not separate queues:
/// class 0 (highest) may fill the whole `max_inflight`, class 1 only
/// `priority_watermarks[1] * max_inflight`, and so on. As load approaches
/// the cap, low-priority routes shed first while high-priority routes keep
/// their full budget — strict priority without a priority queue, so the
/// admit path stays one atomic increment.
///
/// Shed taxonomy (stable wire strings in parentheses):
///   * kQueueFull ("queue_full") — the whole budget is exhausted; even the
///     highest class would have been shed;
///   * kPriorityShed ("priority_shed") — budget remained, but this route's
///     class watermark was reached (a higher-priority request would have
///     been admitted);
///   * kDeadlineExpired ("deadline_exceeded") — the request's deadline
///     passed before Predict ran (at submit, or dropped at the batch
///     boundary by the BatchScheduler);
///   * kShutdown ("shutdown") — the serving stack is stopping.
///
/// One controller per SelNetServer: under a ShardedRegistry each shard owns
/// its own budget, so a hot route saturating one shard sheds only there.

namespace selnet::serve {

/// \brief Why a request was rejected without being served.
enum class ShedReason : size_t {
  kNone = 0,         ///< Not shed (sentinel; never recorded).
  kQueueFull,        ///< Inflight budget exhausted outright.
  kPriorityShed,     ///< This route's priority watermark reached.
  kDeadlineExpired,  ///< Deadline passed before Predict.
  kShutdown,         ///< Serving stack stopping.
};
constexpr size_t kNumShedReasons = 5;

/// \brief Stable lowercase reason name — the wire `code` string
/// ("queue_full", "priority_shed", "deadline_exceeded", "shutdown").
const char* ShedReasonName(ShedReason r);

/// \brief The typed rejection: a runtime_error (so existing catch sites and
/// future-based callers keep working) carrying the shed reason.
class OverloadError : public std::runtime_error {
 public:
  OverloadError(ShedReason reason, const std::string& msg)
      : std::runtime_error(msg), reason_(reason) {}

  ShedReason reason() const { return reason_; }

 private:
  ShedReason reason_;
};

/// \brief The shed reason carried by `error`, or kNone when `error` is null
/// or not an OverloadError (a rethrow/catch probe; call off the hot path).
ShedReason ShedReasonFrom(std::exception_ptr error);

/// \brief Per-route admission policy.
struct RoutePolicy {
  /// Priority class: 0 is highest. Clamped to the last watermark.
  size_t priority = 0;
  /// When shed, serve the version-keyed cached sweep curve instead of
  /// rejecting (requires ServerConfig::enable_curve_cache and a warm curve;
  /// falls back to the typed rejection otherwise).
  bool allow_degrade = false;
};

/// \brief Admission policy: one inflight budget, watermarked per priority.
struct AdmissionConfig {
  /// Master switch; the default (off) leaves the serving path byte-for-byte
  /// as before — no ticket, no release, no shed.
  bool enabled = false;
  /// The inflight budget: requests admitted and not yet completed.
  size_t max_inflight = 256;
  /// Fraction of `max_inflight` each priority class may fill; index =
  /// priority. Must be non-increasing; class 0 should be 1.0.
  std::vector<double> priority_watermarks = {1.0, 0.9, 0.75};
  /// Per-route policies; routes not listed use `default_policy`.
  std::map<std::string, RoutePolicy> routes;
  RoutePolicy default_policy;
};

/// \brief Lock-free inflight ticketing with priority watermarks.
///
/// Admit() optimistically increments the inflight count and reverts when the
/// caller's watermark was already reached, so the admit path is one
/// fetch_add (plus one more on the revert path under overload). Release()
/// must be called exactly once per ADMITTED request when it completes; the
/// server wires this into the request's completion callback.
class AdmissionController {
 public:
  struct Decision {
    bool admitted = true;
    ShedReason reason = ShedReason::kNone;
    /// The route opted into degrade; the caller should try the cached-curve
    /// answer before delivering the rejection.
    bool try_degrade = false;
  };

  explicit AdmissionController(const AdmissionConfig& cfg);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// \brief Take an inflight ticket for `route`, or decide its shed reason.
  Decision Admit(const std::string& route);

  /// \brief Return an admitted request's ticket (exactly once per admit).
  void Release() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  const AdmissionConfig& config() const { return cfg_; }

  /// \brief The policy `route` resolves to (explicit entry or the default).
  const RoutePolicy& PolicyFor(const std::string& route) const;

 private:
  AdmissionConfig cfg_;
  /// Per-class admit cap, resolved once: watermark[i] * max_inflight.
  std::vector<size_t> class_caps_;
  std::atomic<size_t> inflight_{0};
};

}  // namespace selnet::serve
