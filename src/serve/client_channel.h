#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/wire.h"
#include "serve/wire_binary.h"
#include "util/net.h"
#include "util/status.h"

/// \file client_channel.h
/// \brief ClientChannel: one pipelined data connection speaking the
/// SelNetServer submit contract, over either wire framing.
///
/// This is the client core the RemoteShard data path is built on (and what
/// the bench harness drives for wire throughput): every Call serializes its
/// request with an internal correlation tag and returns; one reader thread
/// matches replies — arriving in ANY order, the remote scheduler batches
/// across requests — back to their pending completions by tag, restoring
/// the caller's own tag before the completion fires.
///
/// Framing: Connect performs the hello negotiation. A server that acks
/// binary gets length-prefixed frames both ways (wire_binary.h); an older
/// server's unknown-cmd error reply is a clean fallback to JSON lines, so a
/// mixed-version fleet interoperates during rollout. The negotiated framing
/// is fixed for the connection's lifetime.
///
/// Writes are flush-combined: concurrent Calls append to one pending-bytes
/// queue and exactly one caller drains it per burst, so N threads submitting
/// simultaneously cost a handful of write syscalls, not N. CallMany
/// registers and serializes a whole batch before queueing — one syscall for
/// a pipelined burst.
///
/// Failure taxonomy (identical to the RemoteShard contract — see
/// remote_shard.h for the full retry-vs-fail discussion), delivered through
/// the completion's exception_ptr:
///   * RemoteError(kUnavailable)     — never sent / remote shed it.
///   * RemoteError(kIoError)         — connection died with it in flight.
///   * RemoteError(kDeadlineExceeded)— no reply within recv_timeout_ms.
///   * RemoteError(kNotFound)        — remote lacks the route.
///   * OverloadError(kDeadlineExpired) — the request's own deadline passed.
/// Every accepted Call fires its completion exactly once; a timed-out
/// entry's late reply finds no pending entry and is discarded.

namespace selnet::serve {

/// \brief Typed wire/transport failure, carrying the util::StatusCode the
/// failover layer keys its retry decision on.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(util::StatusCode code, const std::string& msg)
      : std::runtime_error(msg), code_(code) {}

  util::StatusCode code() const { return code_; }

 private:
  util::StatusCode code_;
};

/// \brief Where the peer lives and how to talk to it.
struct ClientChannelConfig {
  std::string address = "127.0.0.1";
  uint16_t port = 0;
  /// Framing to ask for in the hello. kJson skips the hello entirely
  /// (byte-compatible with pre-negotiation servers).
  WireProto preferred_proto = WireProto::kBinary;
  /// Per-request reply bound: a submitted request with no reply after this
  /// long fails with RemoteError(kDeadlineExceeded) (gray-peer detector).
  /// <= 0 disables the bound — only the request's own deadline applies.
  int recv_timeout_ms = 2000;
  /// Bound on the hello round trip during Connect.
  int hello_timeout_ms = 5000;
};

/// \brief One pipelined request/reply connection (the SelNetServer submit
/// contract over the wire). Thread-safe: any thread may Call concurrently.
class ClientChannel {
 public:
  explicit ClientChannel(const ClientChannelConfig& cfg);
  ~ClientChannel();

  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  const ClientChannelConfig& config() const { return cfg_; }

  /// \brief "address:port", for error messages and reports.
  std::string endpoint() const;

  /// \brief (Re)dial, negotiate the framing, and start the reader. Any
  /// previous connection is torn down first (its in-flight requests fail
  /// with kIoError). kUnavailable when the peer is not accepting.
  util::Status Connect();

  /// \brief Drop the connection; every pending completion fires with
  /// RemoteError(kIoError). Idempotent.
  void Close();

  /// \brief True between a successful Connect and the first transport
  /// failure (or Close). False fails Call immediately with kUnavailable —
  /// the owner decides reconnect policy.
  bool up() const { return up_.load(std::memory_order_acquire); }

  /// \brief The framing this connection negotiated (meaningful while up).
  WireProto proto() const { return proto_; }

  /// \brief Pipelined submit: serialize + queue the request and return. The
  /// completion fires exactly once, from this thread (immediate failure or
  /// transport loss) or the reader thread (reply, timeout, disconnect).
  void Call(EstimateRequest req, SelNetServer::ResponseFn done);

  /// \brief Submit a batch: every request is registered and serialized up
  /// front, then the whole burst is queued as one contiguous write.
  void CallMany(std::vector<SelNetServer::Submission> batch);

  /// \brief Requests currently awaiting a reply (tests, reports).
  size_t pending() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    SelNetServer::ResponseFn done;
    uint64_t caller_tag = 0;
    /// Earliest of the request's own deadline and the recv-timeout bound
    /// (epoch = unbounded).
    Clock::time_point expires{};
    /// The expiry above IS the request's deadline — deliver OverloadError,
    /// not a retryable timeout.
    bool expiry_is_request_deadline = false;
    /// The caller's trace, when sampled: the remote's stage block merges
    /// into it as the remote_* stages at completion.
    std::shared_ptr<RequestTrace> trace;
    /// Submit time — remote_wire is completion minus this.
    Clock::time_point sent{};
  };

  /// Blocking hello exchange on the fresh socket (before the reader
  /// exists). OK with *negotiated = kJson on a clean fallback; non-OK only
  /// on transport failure. Bytes past the reply line land in *seed.
  util::Status NegotiateBinary(int fd, WireProto* negotiated,
                               std::string* seed);
  void ReaderLoop();
  /// Match one JSON reply line to its pending entry and complete it.
  void HandleLine(const std::string& line);
  /// Match one binary frame to its pending entry and complete it.
  void HandleFrame(const FrameHeader& hdr, const char* payload);
  /// The shared completion path: restore the caller tag, merge the trace,
  /// map the status onto the failure taxonomy, fire exactly once.
  void CompleteReply(uint64_t wire_tag, EstimateResponse resp,
                     util::Status st);
  /// Fail every pending entry with RemoteError(code, msg) and mark the
  /// channel down. Callbacks run outside the lock.
  void FailAllPending(util::StatusCode code, const std::string& msg);
  /// Drain the write queue (flush-combining: the caller that set writing_).
  /// False on transport failure.
  bool FlushQueued();

  ClientChannelConfig cfg_;

  mutable std::mutex mu_;  ///< pending_, next_tag_, fd_ lifecycle.
  /// Serializes socket writes and pins fd_ across one write: Close closes
  /// the descriptor only under this lock, so a writer that re-validates fd_
  /// while holding it can never race a close (or a reused fd number). Lock
  /// order where both are held: write_mu_ -> mu_.
  std::mutex write_mu_;
  util::Fd fd_;
  std::map<uint64_t, Pending> pending_;
  uint64_t next_tag_ = 1;  ///< 0 means "untagged" on the wire; never issued.
  bool reader_stop_ = false;

  std::atomic<bool> up_{false};
  /// Negotiated framing. Written by Connect before the reader starts (no
  /// concurrent Calls are valid mid-Connect), constant afterwards.
  WireProto proto_ = WireProto::kJson;
  /// Bytes read past the hello reply, handed to the reader's buffer.
  std::string seed_;
  util::WakePipe wake_;  ///< Call -> reader: recompute the poll deadline.
  std::thread reader_;

  /// Flush-combined write queue: Call appends; the first appender of a
  /// burst becomes the flusher and swap-drains until empty.
  std::mutex wq_mu_;
  std::string wq_;
  bool writing_ = false;
};

}  // namespace selnet::serve
