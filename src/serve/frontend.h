#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/request.h"
#include "serve/server.h"
#include "serve/shard_router.h"
#include "util/net.h"
#include "util/status.h"

/// \file frontend.h
/// \brief NetFrontend: the network request layer over the serving stack.
///
/// Completes the serving story end to end:
///
///   client socket --> NetFrontend (poll loop) --> ShardedRegistry router
///       --> shard's SelNetServer --> BatchScheduler --> batched kernel
///       <-- EstimateResponse completion <-- (serialized) <-- write queue
///
/// Protocol: one JSON object per line (see wire.h). The frontend owns ONE
/// event-loop thread multiplexing every connection through poll(); all model
/// work happens on the serving pools — the loop only parses lines, submits
/// requests, and flushes completed responses, so the wire layer adds
/// microseconds, not milliseconds.
///
/// Backpressure, per connection: at most `max_inflight_per_conn` submitted
/// requests may be unanswered at once. At the cap the loop simply stops
/// READING that socket (its POLLIN interest is dropped); the kernel's TCP
/// window then pushes back on the client. Responses drain -> reading
/// resumes. One greedy client therefore cannot queue unbounded work into a
/// shard, and well-behaved connections on the same frontend keep flowing.
///
/// Failure semantics (client input never kills the server):
///   * malformed JSON / unknown field / bad shape -> {"error":...} reply,
///     connection stays open;
///   * unknown model route -> {"error":...} reply (the registry's NotFound
///     text), connection stays open;
///   * overload shed (admission rejection, expired deadline) -> structured
///     {"error":...,"code":<shed reason>} reply, connection stays open. The
///     shard's admission check runs synchronously inside the submit hook on
///     this loop thread, right after decode — a shed request never touches a
///     scheduler queue or a pool worker;
///   * request line longer than `max_line_bytes` -> error reply, connection
///     closed (a runaway writer, not a typo);
///   * client disconnect with responses in flight -> completions for that
///     connection are discarded under its lock; nothing dangles.
///
/// Shutdown: Stop() closes the listener, stops reading request bytes, waits
/// up to `drain_timeout_s` for in-flight responses to be computed AND
/// flushed to their sockets, then closes every connection and joins the
/// loop. Accepted work is answered; nothing new is admitted.

namespace selnet::serve {

struct AdminRequest;

/// \brief Frontend policy knobs.
struct FrontendConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via NetFrontend::port().
  size_t max_connections = 128;    ///< Beyond this, accepts are refused.
  size_t max_line_bytes = 1 << 20; ///< Oversized-request cutoff (1 MiB).
  size_t max_inflight_per_conn = 128;  ///< Backpressure cap.
  /// Second backpressure bound: stop reading a connection whose unflushed
  /// response bytes exceed this (a client that sends but never reads would
  /// otherwise grow the write queue without limit — inflight drains the
  /// moment the backend answers, so the inflight cap alone cannot see it).
  size_t max_write_backlog_bytes = 4 << 20;
  double drain_timeout_s = 10.0;   ///< Stop() waits this long for in-flight.
};

/// \brief Point-in-time frontend counters.
struct FrontendStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< Over max_connections.
  uint64_t connections_dropped = 0;  ///< Peer reset / write failure (orderly
                                     ///  client EOFs do not count).
  uint64_t requests = 0;             ///< Lines successfully parsed+submitted.
  uint64_t responses = 0;  ///< Responses completed and queued to their
                           ///  socket (the peer may still vanish before the
                           ///  bytes flush).
  uint64_t parse_errors = 0;         ///< Malformed request lines.
  uint64_t request_errors = 0;       ///< Submitted but failed (bad route…).
  uint64_t oversized = 0;            ///< Lines over max_line_bytes.
  uint64_t backpressure_stalls = 0;  ///< Times a conn hit the inflight cap.
  uint64_t admin_requests = 0;       ///< {"cmd":...} lines answered.
  // Receiver-side state-transfer counters (the xfer_* admin family).
  uint64_t transfer_frames = 0;    ///< Frames accepted (CRC verified).
  uint64_t transfer_bytes = 0;     ///< Decoded payload bytes accepted.
  uint64_t transfer_crc_rejections = 0;  ///< Frame / whole-payload CRC fails.
  uint64_t transfer_installs = 0;  ///< xfer_commit publishes that stuck.
};

/// \brief Line-delimited JSON-over-TCP frontend for one serving backend.
class NetFrontend {
 public:
  /// Type-erased submit: both SelNetServer and ShardedRegistry fit.
  using SubmitFn =
      std::function<void(EstimateRequest, SelNetServer::ResponseFn)>;

  /// \brief The type-erased serving backend: how to submit an estimate, how
  /// to scrape a fleet StatsSnapshot ({"cmd":"stats"}), how to list retained
  /// slow spans ({"cmd":"slow"}), and the trace-sampling rate the frontend
  /// applies to wire requests (so the decode stage is captured before the
  /// server sees the request). The snapshot/slow hooks may be null — admin
  /// requests then get an error reply. Built fully-formed BEFORE the loop
  /// thread starts, so the loop never races a half-initialized frontend.
  struct Backend {
    SubmitFn submit;
    std::function<StatsSnapshot()> snapshot;
    std::function<std::vector<SpanRecord>()> slow;
    /// Install a state-transferred model (the xfer_commit admin command):
    /// deserialize SaveModel-format bytes and publish under the route,
    /// returning the assigned version. Null = transfers are rejected (the
    /// default for submit-only test backends).
    std::function<util::Result<uint64_t>(const std::string& model,
                                         const std::string& bytes)>
        install;
    size_t trace_sample_every = 0;
    /// Prometheus-style registry text appended to the {"cmd":"metrics"}
    /// reply — a coordinator's health/failover/transfer series
    /// (ShardedRegistry::MetricsText). Null = the reply carries only the
    /// snapshot-derived and frontend-level series.
    std::function<std::string()> metrics;
    /// JSON array body for {"cmd":"events"} (the coordinator's health /
    /// transfer flight recorder). Null = the command gets an error reply.
    std::function<std::string()> events;
    /// Node identity stamped into FleetSnapshot when the backend's snapshot
    /// does not already carry one (plain SelNetServer backends; a
    /// ShardedRegistry stamps its own configured node_id).
    std::string node_id;
  };

  /// \brief Serve a single server (no sharding).
  NetFrontend(const FrontendConfig& cfg, SelNetServer* server);
  /// \brief Serve a shard fleet (requests route by their model field).
  NetFrontend(const FrontendConfig& cfg, ShardedRegistry* registry);
  /// \brief Custom submit-only backend (tests; no admin plane).
  NetFrontend(const FrontendConfig& cfg, SubmitFn submit);
  /// \brief Fully custom backend.
  NetFrontend(const FrontendConfig& cfg, Backend backend);
  ~NetFrontend();

  NetFrontend(const NetFrontend&) = delete;
  NetFrontend& operator=(const NetFrontend&) = delete;

  /// \brief OK once the listener is bound and the loop is running; the bind
  /// error otherwise (port in use, bad address…).
  util::Status status() const;

  /// \brief The bound port (resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// \brief Graceful drain + stop (idempotent; also run by the destructor).
  void Stop();

  FrontendStats Stats() const;

  /// \brief The backend's fleet StatsSnapshot with the frontend's own encode
  /// histogram merged in — exactly what {"cmd":"stats"} serializes. Empty
  /// snapshot when the backend has no snapshot hook.
  StatsSnapshot FleetSnapshot() const;

  /// \brief StatsToJson(FleetSnapshot()).
  std::string StatsJson() const;

  /// \brief The full {"cmd":"metrics"} exposition text: the fleet snapshot
  /// rendered Prometheus-style (RenderStatsExposition), the frontend's own
  /// selnet_frontend_* / selnet_transfer_rx_* series, and the backend's
  /// registry text when the hook is set. Passes util::LintExposition.
  std::string MetricsText() const;

 private:
  struct Conn;

  void Start();
  void Loop();
  void AcceptNew();
  /// Parse+submit buffered lines for one connection, first pulling fresh
  /// socket bytes when `read_socket` (false on the stalled-conn re-scan:
  /// reading there would defeat the stop-reading backpressure). Returns
  /// false when the connection is finished (EOF, oversize, error).
  bool HandleReadable(const std::shared_ptr<Conn>& conn, bool read_socket);
  /// Enqueue the oversized-line error reply and mark the conn to close once
  /// it flushes (buffered request bytes are dropped).
  void RejectOversized(const std::shared_ptr<Conn>& conn);
  /// Flush as much of the write queue as the socket accepts. False = drop.
  bool HandleWritable(const std::shared_ptr<Conn>& conn);
  void SubmitLine(const std::shared_ptr<Conn>& conn, std::string line);
  /// Answer one {"cmd":...} line synchronously on the loop thread.
  void HandleAdmin(const std::shared_ptr<Conn>& conn, const std::string& line);
  /// Route one parsed admin command to its handler; returns the reply line.
  /// HandleAdmin wraps this in a catch so a throwing handler fails the
  /// command, never the loop thread.
  std::string DispatchAdmin(const std::shared_ptr<Conn>& conn,
                            const AdminRequest& admin);
  /// One xfer_* state-transfer step against this connection's assembler;
  /// returns the reply line (ack or error).
  std::string HandleTransfer(const std::shared_ptr<Conn>& conn,
                             const AdminRequest& admin);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  bool DrainComplete();

  /// State that response completions touch. Held by shared_ptr and captured
  /// into every completion: if Stop() times out with responses still in
  /// flight, a late completion lands on this (and its Conn), never on a
  /// destroyed frontend.
  struct Shared {
    util::WakePipe wake;
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> request_errors{0};
    /// Encode (response serialization) latency of TRACED requests. Lives
    /// here because completions never touch the frontend itself; merged into
    /// the fleet snapshot's encode stage at scrape time.
    util::LatencyHistogram encode_hist;
  };

  FrontendConfig cfg_;
  Backend backend_;
  util::TcpListener listener_;
  std::shared_ptr<Shared> shared_;
  uint16_t port_ = 0;
  util::Status bind_status_;

  std::vector<std::shared_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;  ///< Serializes Stop() callers.

  // Loop-thread counters.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> oversized_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> admin_requests_{0};
  std::atomic<uint64_t> xfer_frames_{0};
  std::atomic<uint64_t> xfer_bytes_{0};
  std::atomic<uint64_t> xfer_crc_rejects_{0};
  std::atomic<uint64_t> xfer_installs_{0};

  /// Loop-thread-only position for 1-in-N decode-stage sampling.
  uint64_t trace_seq_ = 0;

  std::thread loop_;  ///< Started last.
};

/// \brief Minimal blocking client for the wire protocol (tests, the demo's
/// client mode, and the bench harness).
///
/// One request at a time: Roundtrip writes a line and blocks for ONE
/// response line. Pipelining clients should tag requests and speak the
/// protocol directly (see wire.h).
class NetClient {
 public:
  NetClient() = default;

  util::Status Connect(const std::string& address, uint16_t port);

  /// \brief Drop the connection (if any) and dial the last Connect address
  /// again, discarding any half-read line. kUnavailable when the peer is not
  /// accepting (safe to retry after backoff — see util/backoff.h), kIoError
  /// otherwise. The caller owns the retry loop and its delays.
  util::Status Reconnect();

  void Close() { fd_.Close(); }
  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// \brief Bound every subsequent receive: ReadLine (and the calls built on
  /// it) returns kDeadlineExceeded if no full line arrives within `ms`
  /// milliseconds of the call. 0 (the default) blocks forever. The clock
  /// starts at each ReadLine entry, not per read() — a server trickling
  /// bytes cannot extend it. On timeout the connection remains usable and
  /// any partial line stays buffered; a late reply is picked up by the next
  /// read (or discarded with Close()).
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }
  int recv_timeout_ms() const { return recv_timeout_ms_; }

  /// \brief Serialize, send, await and parse one response. A server-side
  /// error reply surfaces as the returned Status.
  util::Result<EstimateResponse> Roundtrip(const EstimateRequest& req);

  /// \brief Send raw bytes (failure-path tests craft malformed lines).
  util::Status SendRaw(const std::string& bytes);

  /// \brief One admin-plane round trip ({"cmd":<cmd>,"tag":<tag>}); returns
  /// the server's raw JSON reply line.
  util::Result<std::string> Admin(const std::string& cmd, uint64_t tag = 0);

  /// \brief Fetch the server's Prometheus-style exposition text
  /// ({"cmd":"metrics"}), newlines restored from the JSON transport.
  util::Result<std::string> Metrics(uint64_t tag = 0);

  /// \brief Fetch and parse the flat machine-scrape snapshot
  /// ({"cmd":"stats_wire"}) — what a coordinator's scrape tick calls.
  util::Result<StatsSnapshot> StatsWire(uint64_t tag = 0);

  /// \brief Block until one full line arrives (without the '\n').
  util::Result<std::string> ReadLine();

 private:
  util::Fd fd_;
  std::string rbuf_;  ///< Bytes past the last consumed line.
  int recv_timeout_ms_ = 0;  ///< 0 = no receive bound.
  std::string address_;      ///< Last Connect target, for Reconnect.
  uint16_t port_ = 0;
};

}  // namespace selnet::serve
