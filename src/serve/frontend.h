#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/request.h"
#include "serve/server.h"
#include "serve/shard_router.h"
#include "serve/wire.h"
#include "serve/wire_binary.h"
#include "util/net.h"
#include "util/status.h"

/// \file frontend.h
/// \brief NetFrontend: the network request layer over the serving stack.
///
/// Completes the serving story end to end:
///
///   client socket --> NetFrontend (poll loops) --> ShardedRegistry router
///       --> shard's SelNetServer --> BatchScheduler --> batched kernel
///       <-- EstimateResponse completion <-- (serialized) <-- write queue
///
/// Protocol: every connection starts as one JSON object per line (wire.h);
/// a hello exchange may switch it to the length-prefixed binary framing
/// (wire_binary.h) — both framings carry the same commands and error
/// taxonomy, and mixed JSON/binary connections coexist on one frontend.
/// The frontend owns `num_loops` event-loop threads, each multiplexing its
/// share of the connections through poll(); all model work happens on the
/// serving pools — a loop only parses requests, submits them, and flushes
/// completed responses, so the wire layer adds microseconds, not
/// milliseconds. With one loop (the default) behavior is exactly the
/// single-threaded frontend's. With more, either loop 0 accepts and deals
/// connections round-robin to the others (the sharded-acceptor default) or,
/// with `so_reuseport`, every loop owns its own SO_REUSEPORT listener and
/// the kernel balances accepts. Binary estimate frames decoded in one read
/// round are submitted as ONE SelNetServer::SubmitMany batch, so a
/// pipelining client's burst pays one scheduler lock, not one per request.
///
/// Backpressure, per connection: at most `max_inflight_per_conn` submitted
/// requests may be unanswered at once. At the cap the loop simply stops
/// READING that socket (its POLLIN interest is dropped); the kernel's TCP
/// window then pushes back on the client. Responses drain -> reading
/// resumes. One greedy client therefore cannot queue unbounded work into a
/// shard, and well-behaved connections on the same frontend keep flowing.
///
/// Failure semantics (client input never kills the server):
///   * malformed JSON / unknown field / bad shape -> {"error":...} reply,
///     connection stays open;
///   * unknown model route -> {"error":...} reply (the registry's NotFound
///     text), connection stays open;
///   * overload shed (admission rejection, expired deadline) -> structured
///     {"error":...,"code":<shed reason>} reply, connection stays open. The
///     shard's admission check runs synchronously inside the submit hook on
///     this loop thread, right after decode — a shed request never touches a
///     scheduler queue or a pool worker;
///   * request line longer than `max_line_bytes` -> error reply, connection
///     closed (a runaway writer, not a typo);
///   * client disconnect with responses in flight -> completions for that
///     connection are discarded under its lock; nothing dangles.
///
/// Shutdown: Stop() closes the listener, stops reading request bytes, waits
/// up to `drain_timeout_s` for in-flight responses to be computed AND
/// flushed to their sockets, then closes every connection and joins the
/// loop. Accepted work is answered; nothing new is admitted.

namespace selnet::serve {

struct AdminRequest;

/// \brief Frontend policy knobs.
struct FrontendConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via NetFrontend::port().
  size_t max_connections = 128;    ///< Beyond this, accepts are refused.
  size_t max_line_bytes = 1 << 20; ///< Oversized-request cutoff (1 MiB).
  size_t max_inflight_per_conn = 128;  ///< Backpressure cap.
  /// Second backpressure bound: stop reading a connection whose unflushed
  /// response bytes exceed this (a client that sends but never reads would
  /// otherwise grow the write queue without limit — inflight drains the
  /// moment the backend answers, so the inflight cap alone cannot see it).
  size_t max_write_backlog_bytes = 4 << 20;
  double drain_timeout_s = 10.0;   ///< Stop() waits this long for in-flight.
  /// Event-loop threads. 1 (the default) is the classic single-threaded
  /// frontend. More loops split the connections: each conn is owned by
  /// exactly one loop for its whole life, so every per-conn invariant
  /// (ordering, backpressure, drain) is still single-threaded.
  size_t num_loops = 1;
  /// With num_loops > 1: give every loop its own SO_REUSEPORT listener on
  /// the same port (kernel balances accepts) instead of the default sharded
  /// acceptor (loop 0 accepts and deals round-robin). Ignored when the
  /// platform lacks SO_REUSEPORT — the frontend falls back to the acceptor.
  bool so_reuseport = false;
};

/// \brief Point-in-time frontend counters.
struct FrontendStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< Over max_connections.
  uint64_t connections_dropped = 0;  ///< Peer reset / write failure (orderly
                                     ///  client EOFs do not count).
  uint64_t requests = 0;             ///< Lines successfully parsed+submitted.
  uint64_t responses = 0;  ///< Responses completed and queued to their
                           ///  socket (the peer may still vanish before the
                           ///  bytes flush).
  uint64_t parse_errors = 0;         ///< Malformed request lines.
  uint64_t request_errors = 0;       ///< Submitted but failed (bad route…).
  uint64_t oversized = 0;            ///< Lines over max_line_bytes.
  uint64_t backpressure_stalls = 0;  ///< Times a conn hit the inflight cap.
  uint64_t admin_requests = 0;       ///< {"cmd":...} lines answered.
  // Receiver-side state-transfer counters (the xfer_* admin family).
  uint64_t transfer_frames = 0;    ///< Frames accepted (CRC verified).
  uint64_t transfer_bytes = 0;     ///< Decoded payload bytes accepted.
  uint64_t transfer_crc_rejections = 0;  ///< Frame / whole-payload CRC fails.
  uint64_t transfer_installs = 0;  ///< xfer_commit publishes that stuck.
};

/// \brief Line-delimited JSON-over-TCP frontend for one serving backend.
class NetFrontend {
 public:
  /// Type-erased submit: both SelNetServer and ShardedRegistry fit.
  using SubmitFn =
      std::function<void(EstimateRequest, SelNetServer::ResponseFn)>;

  /// \brief The type-erased serving backend: how to submit an estimate, how
  /// to scrape a fleet StatsSnapshot ({"cmd":"stats"}), how to list retained
  /// slow spans ({"cmd":"slow"}), and the trace-sampling rate the frontend
  /// applies to wire requests (so the decode stage is captured before the
  /// server sees the request). The snapshot/slow hooks may be null — admin
  /// requests then get an error reply. Built fully-formed BEFORE the loop
  /// thread starts, so the loop never races a half-initialized frontend.
  struct Backend {
    SubmitFn submit;
    /// Optional batched submit: a whole read-round of decoded requests
    /// enqueued under ONE scheduler lock (SelNetServer::SubmitMany). Null =
    /// the frontend falls back to per-request `submit`. Per-request
    /// semantics (admission, deadlines, errors) are identical either way.
    std::function<void(std::vector<SelNetServer::Submission>)> submit_many;
    std::function<StatsSnapshot()> snapshot;
    std::function<std::vector<SpanRecord>()> slow;
    /// Install a state-transferred model (the xfer_commit admin command):
    /// deserialize SaveModel-format bytes and publish under the route,
    /// returning the assigned version. Null = transfers are rejected (the
    /// default for submit-only test backends).
    std::function<util::Result<uint64_t>(const std::string& model,
                                         const std::string& bytes)>
        install;
    size_t trace_sample_every = 0;
    /// Prometheus-style registry text appended to the {"cmd":"metrics"}
    /// reply — a coordinator's health/failover/transfer series
    /// (ShardedRegistry::MetricsText). Null = the reply carries only the
    /// snapshot-derived and frontend-level series.
    std::function<std::string()> metrics;
    /// JSON array body for {"cmd":"events"} (the coordinator's health /
    /// transfer flight recorder). Null = the command gets an error reply.
    std::function<std::string()> events;
    /// Node identity stamped into FleetSnapshot when the backend's snapshot
    /// does not already carry one (plain SelNetServer backends; a
    /// ShardedRegistry stamps its own configured node_id).
    std::string node_id;
  };

  /// \brief Serve a single server (no sharding).
  NetFrontend(const FrontendConfig& cfg, SelNetServer* server);
  /// \brief Serve a shard fleet (requests route by their model field).
  NetFrontend(const FrontendConfig& cfg, ShardedRegistry* registry);
  /// \brief Custom submit-only backend (tests; no admin plane).
  NetFrontend(const FrontendConfig& cfg, SubmitFn submit);
  /// \brief Fully custom backend.
  NetFrontend(const FrontendConfig& cfg, Backend backend);
  ~NetFrontend();

  NetFrontend(const NetFrontend&) = delete;
  NetFrontend& operator=(const NetFrontend&) = delete;

  /// \brief OK once the listener is bound and the loop is running; the bind
  /// error otherwise (port in use, bad address…).
  util::Status status() const;

  /// \brief The bound port (resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// \brief Graceful drain + stop (idempotent; also run by the destructor).
  void Stop();

  FrontendStats Stats() const;

  /// \brief The backend's fleet StatsSnapshot with the frontend's own encode
  /// histogram merged in — exactly what {"cmd":"stats"} serializes. Empty
  /// snapshot when the backend has no snapshot hook.
  StatsSnapshot FleetSnapshot() const;

  /// \brief StatsToJson(FleetSnapshot()).
  std::string StatsJson() const;

  /// \brief The full {"cmd":"metrics"} exposition text: the fleet snapshot
  /// rendered Prometheus-style (RenderStatsExposition), the frontend's own
  /// selnet_frontend_* / selnet_transfer_rx_* series, and the backend's
  /// registry text when the hook is set. Passes util::LintExposition.
  std::string MetricsText() const;

 private:
  struct Conn;

  /// Per-loop state that response completions touch. Held by shared_ptr and
  /// captured (via its Conn) into every completion: if Stop() times out with
  /// responses still in flight, a late completion lands on this, never on a
  /// destroyed frontend.
  struct LoopShared {
    util::WakePipe wake;
    /// Wake-arming: the loop sets `armed` just before polling; a completion
    /// only pays the pipe-write syscall if it observes (and clears) the
    /// armed flag. A burst of completions then costs ONE wakeup, not one
    /// syscall per response.
    std::atomic<bool> armed{false};
    /// Completion-side wakeup (see `armed`).
    void Wake() {
      if (armed.exchange(false, std::memory_order_acq_rel)) wake.Notify();
    }
  };

  /// One event loop: its thread, its connections, and (acceptor loop or
  /// SO_REUSEPORT mode) its listener. Everything here except `shared` and
  /// the handoff queue is touched only by the owning loop thread.
  struct LoopState {
    size_t index = 0;
    util::TcpListener listener;  ///< Valid on loop 0, or on all with reuseport.
    std::shared_ptr<LoopShared> shared;
    std::vector<std::shared_ptr<Conn>> conns;
    /// Connections accepted by another loop, awaiting adoption (sharded
    /// acceptor mode). Producer: loop 0. Consumer: this loop, each round.
    std::mutex handoff_mu;
    std::vector<std::shared_ptr<Conn>> handoff;
    /// Loop-thread-only position for 1-in-N decode-stage sampling.
    uint64_t trace_seq = 0;
    std::thread thread;  ///< Started last.
  };

  void Start();
  void Loop(LoopState* loop);
  void AcceptNew(LoopState* loop);
  /// Parse+submit buffered input for one connection, first pulling fresh
  /// socket bytes when `read_socket` (false on the stalled-conn re-scan:
  /// reading there would defeat the stop-reading backpressure). Dispatches
  /// on the connection's negotiated framing, re-dispatching mid-buffer when
  /// a hello flips it. Returns false when the connection is finished (EOF,
  /// oversize, error).
  bool HandleReadable(LoopState* loop, const std::shared_ptr<Conn>& conn,
                      bool read_socket);
  /// Consume complete JSON lines from the read buffer. False = close.
  bool ProcessJsonBuffer(LoopState* loop, const std::shared_ptr<Conn>& conn);
  /// Consume complete binary frames from the read buffer, batching decoded
  /// estimate rows into one backend submit. False = close.
  bool ProcessBinaryBuffer(LoopState* loop, const std::shared_ptr<Conn>& conn);
  /// Enqueue the oversized-line error reply and mark the conn to close once
  /// it flushes (buffered request bytes are dropped).
  void RejectOversized(const std::shared_ptr<Conn>& conn);
  /// Flush as much of the write queue as the socket accepts. False = drop.
  bool HandleWritable(const std::shared_ptr<Conn>& conn);
  void SubmitLine(LoopState* loop, const std::shared_ptr<Conn>& conn,
                  std::string line);
  /// Decode one binary estimate frame and append its submission to `batch`
  /// (or queue an error frame on decode failure).
  void SubmitFrame(LoopState* loop, const std::shared_ptr<Conn>& conn,
                   const FrameHeader& hdr, const char* payload,
                   std::chrono::steady_clock::time_point now,
                   std::vector<SelNetServer::Submission>* batch);
  /// Hand a read-round's decoded requests to the backend: one SubmitMany
  /// when the hook is set, per-request submits otherwise.
  void FlushBatch(std::vector<SelNetServer::Submission> batch);
  /// Build the completion that serializes + enqueues one response in the
  /// connection's negotiated framing.
  SelNetServer::ResponseFn MakeCompletion(
      const std::shared_ptr<Conn>& conn, uint64_t tag, WireProto proto,
      std::shared_ptr<RequestTrace> traced, bool wire_traced);
  /// Answer one {"cmd":...} line synchronously on the loop thread (JSON
  /// framing: reply + '\n' onto the write queue).
  void HandleAdmin(const std::shared_ptr<Conn>& conn, const std::string& line);
  /// Parse + dispatch one admin line, returning the reply line (no
  /// newline/framing) — shared by both framings. A throwing handler fails
  /// the command, never the loop thread.
  std::string AdminReplyFor(const std::shared_ptr<Conn>& conn,
                            const std::string& line);
  /// Route one parsed admin command to its handler; returns the reply line.
  std::string DispatchAdmin(const std::shared_ptr<Conn>& conn,
                            const AdminRequest& admin);
  /// One xfer_* state-transfer step against this connection's assembler;
  /// returns the reply line (ack or error).
  std::string HandleTransfer(const std::shared_ptr<Conn>& conn,
                             const AdminRequest& admin);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  bool DrainComplete(LoopState* loop);

  FrontendConfig cfg_;
  Backend backend_;
  uint16_t port_ = 0;
  util::Status bind_status_;

  /// Frontend-wide counters completions touch (conn-agnostic; per-conn
  /// completion state lives in each Conn's LoopShared).
  struct Shared {
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> request_errors{0};
    /// Encode (response serialization) latency of TRACED requests. Lives
    /// here because completions never touch the frontend itself; merged into
    /// the fleet snapshot's encode stage at scrape time.
    util::LatencyHistogram encode_hist;
  };
  std::shared_ptr<Shared> shared_;

  std::vector<std::unique_ptr<LoopState>> loops_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;  ///< Serializes Stop() callers.

  // Loop-thread counters (atomic: with num_loops > 1 several loops bump
  // them; Stats() reads them from anywhere).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> oversized_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> admin_requests_{0};
  std::atomic<uint64_t> xfer_frames_{0};
  std::atomic<uint64_t> xfer_bytes_{0};
  std::atomic<uint64_t> xfer_crc_rejects_{0};
  std::atomic<uint64_t> xfer_installs_{0};
  /// Live connection count across all loops (max_connections is global).
  std::atomic<size_t> conn_count_{0};
  /// Sharded-acceptor round-robin cursor (loop 0 only, atomic for safety).
  std::atomic<uint64_t> accept_rr_{0};
  /// True when every loop owns a SO_REUSEPORT listener (accepts stay on the
  /// accepting loop); false = loop 0 deals connections round-robin.
  bool per_loop_listeners_ = false;
};

/// \brief One typed request for NetClient::Call — the versioned client
/// surface. `cmd` selects the command (wire.h registry); kEstimate reads
/// `estimate`, everything else reads the relevant `admin` fields (tag, the
/// xfer_* transfer fields…). The negotiated framing is applied underneath.
struct ClientCall {
  Command cmd = Command::kEstimate;
  EstimateRequest estimate;
  AdminRequest admin;
};

/// \brief The typed reply for NetClient::Call. Which fields are meaningful
/// depends on the command: kEstimate fills `estimate`; admin commands fill
/// `body` (the raw reply line) and, where the reply has structure, `text`
/// (kMetrics exposition), `stats` (kStatsWire), or `version` (ack replies —
/// health, xfer_commit). Server-side errors surface as the returned Status
/// (StatusFromWireError taxonomy), never as a reply field.
struct ClientReply {
  EstimateResponse estimate;
  std::string body;
  std::string text;
  StatsSnapshot stats;
  uint64_t version = 0;
};

/// \brief Minimal blocking client for the wire protocol (tests, the demo's
/// client mode, and the bench harness).
///
/// One request at a time: Call (and the legacy wrappers on it) writes one
/// request and blocks for ONE reply. Pipelining clients should use
/// ClientChannel (client_channel.h), which correlates tagged out-of-order
/// replies on one connection.
///
/// A fresh connection speaks JSON lines; Hello() negotiates the binary
/// framing when the server supports it and falls back to JSON against older
/// servers (the unknown-cmd error reply leaves the connection open).
class NetClient {
 public:
  NetClient() = default;

  util::Status Connect(const std::string& address, uint16_t port);

  /// \brief Drop the connection (if any) and dial the last Connect address
  /// again, discarding any half-read line. kUnavailable when the peer is not
  /// accepting (safe to retry after backoff — see util/backoff.h), kIoError
  /// otherwise. The caller owns the retry loop and its delays.
  util::Status Reconnect();

  void Close() { fd_.Close(); }
  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// \brief Bound every subsequent receive: ReadLine (and the calls built on
  /// it) returns kDeadlineExceeded if no full line arrives within `ms`
  /// milliseconds of the call. 0 (the default) blocks forever. The clock
  /// starts at each ReadLine entry, not per read() — a server trickling
  /// bytes cannot extend it. On timeout the connection remains usable and
  /// any partial line stays buffered; a late reply is picked up by the next
  /// read (or discarded with Close()).
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }
  int recv_timeout_ms() const { return recv_timeout_ms_; }

  /// \brief Negotiate the wire framing for this connection. Sends the hello
  /// line; on a binary ack every subsequent Call/Roundtrip/Admin speaks
  /// binary frames. An older server's unknown-cmd error reply is a clean
  /// JSON fallback (OK status, proto() stays kJson); only transport
  /// failures return non-OK. Reconnect resets the framing to JSON.
  util::Status Hello(WireProto preferred = WireProto::kBinary,
                     uint8_t max_version = kWireVersion);

  /// \brief The framing this connection currently speaks.
  WireProto proto() const { return proto_; }

  /// \brief ONE typed round trip: serialize `call` in the negotiated
  /// framing, send, await and parse the reply. This is the client surface —
  /// Roundtrip/Admin/Metrics/StatsWire below are thin wrappers kept for
  /// existing callers.
  util::Result<ClientReply> Call(const ClientCall& call);

  /// \brief Serialize, send, await and parse one response. A server-side
  /// error reply surfaces as the returned Status. Wrapper over Call.
  util::Result<EstimateResponse> Roundtrip(const EstimateRequest& req);

  /// \brief Send raw bytes (failure-path tests craft malformed input).
  util::Status SendRaw(const std::string& bytes);

  /// \brief One admin-plane round trip ({"cmd":<cmd>,"tag":<tag>}); returns
  /// the server's raw JSON reply line — even an error reply (failure-path
  /// tests assert on it). On a binary connection the line rides inside an
  /// admin frame; unknown command names pass through untouched.
  util::Result<std::string> Admin(const std::string& cmd, uint64_t tag = 0);

  /// \brief Fetch the server's Prometheus-style exposition text
  /// ({"cmd":"metrics"}), newlines restored from the JSON transport.
  /// Wrapper over Call.
  util::Result<std::string> Metrics(uint64_t tag = 0);

  /// \brief Fetch and parse the flat machine-scrape snapshot
  /// ({"cmd":"stats_wire"}) — what a coordinator's scrape tick calls.
  /// Wrapper over Call.
  util::Result<StatsSnapshot> StatsWire(uint64_t tag = 0);

  /// \brief Block until one full line arrives (without the '\n').
  util::Result<std::string> ReadLine();

  /// \brief Block until one full binary frame arrives; returns its payload
  /// with the header in `*hdr`. Same timeout contract as ReadLine.
  util::Result<std::string> ReadFrame(FrameHeader* hdr);

 private:
  /// Fill rbuf_ until `need` buffered bytes exist (frame reads).
  util::Status FillBuffer(size_t need);
  /// One admin round trip in the negotiated framing; returns the reply line.
  util::Result<std::string> AdminRoundtrip(const std::string& line,
                                           uint64_t tag);

  util::Fd fd_;
  std::string rbuf_;  ///< Bytes past the last consumed line/frame.
  int recv_timeout_ms_ = 0;  ///< 0 = no receive bound.
  std::string address_;      ///< Last Connect target, for Reconnect.
  uint16_t port_ = 0;
  WireProto proto_ = WireProto::kJson;  ///< Negotiated framing (Hello).
};

}  // namespace selnet::serve
