#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/pwl.h"
#include "serve/update_pipeline.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace selnet::serve {

using util::Result;
using util::Status;

/// Aggregation state for one in-flight EstimateRequest. Rows (or the sweep
/// job) write disjoint estimate slots from pool workers; whoever completes
/// the last slot finalizes the completion callback.
struct SelNetServer::PendingResponse {
  ResponseFn done;
  EstimateResponse resp;
  bool sorted = false;               ///< Thresholds ascending -> repair pass.
  std::atomic<size_t> remaining{0};  ///< Outstanding scheduler rows.
  std::mutex err_mu;
  std::exception_ptr error;
  /// Sampled-request span (null for the untraced majority); flushed into
  /// `stats` when the request finalizes.
  std::shared_ptr<RequestTrace> trace;
  ServeStats* stats = nullptr;
  /// Per-route accumulator (set once routing succeeded); deadline and
  /// shutdown sheds surfacing through Finalize are charged here.
  ServeStats::RouteStats* route_stats = nullptr;

  void RecordError(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!error) error = std::move(e);
  }

  /// Invoke `done` exactly once: the first recorded error wins; otherwise
  /// repair a sorted sweep to a non-decreasing column. The served estimator
  /// is monotone, but cache hits may come from a quantized-neighbour query
  /// and fallback rows may straddle a republish, either of which can dent
  /// the column by a hair — the running max restores the documented
  /// guarantee unconditionally.
  void Finalize() {
    // Close and flush the sampled span first: per-stage histograms plus the
    // slow-request ring. Encode (frontend serialization) happens after this
    // callback, so wire deployments account it in the frontend's own
    // histogram and a slow span's encode column reads 0.
    if (trace && stats != nullptr) {
      stats->RecordSpan(trace->Finish(resp.model, resp.tag));
    }
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (error) {
        // A typed overload failure (deadline expired in queue, scheduler
        // shutdown) is a shed: one count per request, not per row.
        ShedReason reason = ShedReasonFrom(error);
        if (reason != ShedReason::kNone && stats != nullptr) {
          stats->RecordShed(reason);
          if (route_stats != nullptr) route_stats->RecordShed();
        }
        done(EstimateResponse{}, error);
        return;
      }
    }
    if (sorted) {
      for (size_t i = 1; i < resp.estimates.size(); ++i) {
        resp.estimates[i] = std::max(resp.estimates[i], resp.estimates[i - 1]);
      }
    }
    done(std::move(resp), nullptr);
  }
};

SelNetServer::SelNetServer(const ServerConfig& cfg)
    : cfg_(cfg), cache_(cfg.cache) {
  SEL_CHECK_MSG(cfg_.dim > 0, "ServerConfig.dim is required");
  // Satellite of the dim-duplication fix: ServerConfig.dim is the single
  // source of truth. A scheduler dim of 0 inherits it; anything else must
  // already agree — silently overwriting a conflicting value hid bugs.
  SEL_CHECK_MSG(
      cfg_.scheduler.dim == 0 || cfg_.scheduler.dim == cfg_.dim,
      "SchedulerConfig.dim conflicts with ServerConfig.dim; leave it 0");
  cfg_.scheduler.dim = cfg_.dim;
  stats_.ConfigureSlowTrace(cfg_.slow_trace_ms, cfg_.slow_trace_capacity);
  pool_ = cfg_.scheduler.pool != nullptr ? cfg_.scheduler.pool
                                         : &util::ThreadPool::Global();
  if (cfg_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(cfg_.admission);
  }
  if (cfg_.enable_batching) {
    scheduler_ = std::make_unique<BatchScheduler>(
        cfg_.scheduler,
        [this](const std::string& model, const tensor::Matrix& x,
               const tensor::Matrix& t) { return PredictOnModel(model, x, t); });
    // Snapshot() folds the scheduler's deadline-row counters in live; the
    // scheduler outlives every snapshot taken while serving.
    stats_.SetDeadlineRowSource([sched = scheduler_.get()] {
      return std::make_pair(sched->expired_rows(), sched->expired_predicted());
    });
  }
}

SelNetServer::~SelNetServer() {
  // Stop the update pipeline first: its worker publishes into the registry
  // and records stats, both of which must still be alive while it drains.
  pipeline_.reset();
  if (scheduler_) scheduler_->Shutdown();
  // Fast-path sweep jobs reference this object; wait for this server's own
  // jobs (not the whole pool — it is typically shared).
  std::unique_lock<std::mutex> lock(sweep_mu_);
  sweep_cv_.wait(lock, [this] { return sweep_inflight_ == 0; });
}

uint64_t SelNetServer::Publish(std::shared_ptr<eval::Estimator> model) {
  return Publish(cfg_.model_name, std::move(model));
}

uint64_t SelNetServer::Publish(const std::string& name,
                               std::shared_ptr<eval::Estimator> model) {
  uint64_t version = registry_.Publish(name, std::move(model));
  stats_.RecordSwap();
  return version;
}

Result<uint64_t> SelNetServer::PublishFromFile(const std::string& path) {
  return PublishFromFile(cfg_.model_name, path);
}

Result<uint64_t> SelNetServer::PublishFromFile(const std::string& name,
                                               const std::string& path) {
  Result<uint64_t> version = registry_.PublishFromFile(name, path);
  if (version.ok()) stats_.RecordSwap();
  return version;
}

Result<uint64_t> SelNetServer::PublishFromBytes(const std::string& name,
                                                const std::string& bytes,
                                                const std::string& origin) {
  Result<uint64_t> version = registry_.PublishFromBytes(name, bytes, origin);
  if (version.ok()) stats_.RecordSwap();
  return version;
}

LiveUpdatePipeline& SelNetServer::AttachUpdatePipeline(
    const UpdatePipelineConfig& cfg, const data::Database& db,
    const data::Workload& workload) {
  pipeline_.reset();  // Stop a previous pipeline before starting the next.
  pipeline_ = std::make_unique<LiveUpdatePipeline>(this, cfg, db, workload);
  return *pipeline_;
}

void SelNetServer::DetachUpdatePipeline() { pipeline_.reset(); }

tensor::Matrix SelNetServer::PredictOnHandle(const ModelHandle& handle,
                                             const tensor::Matrix& x,
                                             const tensor::Matrix& t) {
  tensor::Matrix y = handle.model->Predict(x, t);
  stats_.RecordBatch(x.rows());
  if (cfg_.enable_cache) {
    for (size_t i = 0; i < x.rows(); ++i) {
      uint64_t key =
          cache_.MakeKey(handle.version, x.row(i), cfg_.dim, t(i, 0));
      cache_.Insert(key, y(i, 0));
    }
  }
  return y;
}

tensor::Matrix SelNetServer::PredictOnModel(const std::string& model,
                                            const tensor::Matrix& x,
                                            const tensor::Matrix& t) {
  Result<ModelHandle> handle = registry_.Get(model);
  if (!handle.ok()) {
    throw std::runtime_error("SelNetServer: " + handle.status().ToString());
  }
  return PredictOnHandle(handle.ValueOrDie(), x, t);
}

void SelNetServer::RunSweepFastPath(
    const std::shared_ptr<PendingResponse>& state, const EstimateRequest& req,
    const ModelHandle& handle, const std::vector<size_t>& missing,
    std::chrono::steady_clock::time_point enqueued,
    ServeStats::RouteStats* route_stats) {
  // On the pooled path everything before this point was pool wait; that is
  // the fast path's queue stage.
  const auto compute_start = std::chrono::steady_clock::now();
  if (state->trace) {
    state->trace->Observe(
        Stage::kQueue, std::chrono::duration<double, std::milli>(
                           compute_start - enqueued)
                           .count());
  }
  // Same cut as the scheduler's batch boundary: a deadline that expired
  // while this job waited for a pool worker sheds before any evaluation.
  if (req.has_deadline() && req.deadline < compute_start) {
    state->RecordError(std::make_exception_ptr(OverloadError(
        ShedReason::kDeadlineExpired,
        "SelNetServer: deadline expired before sweep evaluation")));
    state->Finalize();
    return;
  }
  try {
    std::vector<float> ts(missing.size());
    for (size_t r = 0; r < missing.size(); ++r) {
      ts[r] = req.thresholds[missing[r]];
    }
    // Sweep-curve cache: if this (version, query)'s PWL control points are
    // cached — or the model can hand them to us — answer every threshold
    // with local PWL lookups. On a hit the network is skipped entirely; the
    // arithmetic mirrors SelNetCt::SweepEstimate, so values are bit-identical
    // to the uncached fast path. Independent of the scalar cache flag; the
    // capability is probed first so ServeStats and EstimateCache curve
    // counters agree exactly.
    std::vector<float> values;
    if (cfg_.enable_curve_cache &&
        handle.model.sweep()->SupportsSweepCurve()) {
      uint64_t curve_key =
          cache_.MakeCurveKey(handle.version, req.x.data(), cfg_.dim);
      CurveEntry entry;
      bool hit = cache_.LookupCurve(curve_key, &entry);
      stats_.RecordCurveLookup(hit);
      if (!hit &&
          handle.model.sweep()->SweepCurve(req.x.data(), &entry.tau,
                                           &entry.p)) {
        cache_.InsertCurve(curve_key, entry);
      }
      if (!entry.tau.empty()) {
        core::PiecewiseLinear pwl(std::move(entry.tau), std::move(entry.p));
        values.resize(ts.size());
        for (size_t r = 0; r < ts.size(); ++r) values[r] = pwl(ts[r]);
      }
    }
    if (values.empty()) {
      values =
          handle.model.sweep()->SweepEstimate(req.x.data(), ts.data(), ts.size());
    }
    if (values.size() != missing.size()) {
      // A SweepCapable contract violation is a bug in the *published model*,
      // not a server invariant — fail the request, never the process.
      throw std::runtime_error(
          "SelNetServer: SweepEstimate on '" + handle.name + "' returned " +
          std::to_string(values.size()) + " values for " +
          std::to_string(missing.size()) + " thresholds");
    }
    // Latency from submit (pool queueing included), recorded undivided per
    // threshold: every threshold waited the full wall time, exactly like
    // scheduler rows record their full enqueue -> batch-done time.
    auto finished = std::chrono::steady_clock::now();
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(finished - enqueued).count();
    if (state->trace) {
      state->trace->Observe(
          Stage::kPredict, std::chrono::duration<double, std::milli>(
                               finished - compute_start)
                               .count());
    }
    for (size_t r = 0; r < missing.size(); ++r) {
      state->resp.estimates[missing[r]] = values[r];
      if (cfg_.enable_cache) {
        uint64_t key =
            cache_.MakeKey(handle.version, req.x.data(), cfg_.dim, ts[r]);
        cache_.Insert(key, values[r]);
      }
      stats_.RecordLatencyMs(elapsed_ms);
      route_stats->RecordLatencyMs(elapsed_ms);
    }
  } catch (...) {
    state->RecordError(std::current_exception());
  }
  state->Finalize();
}

bool SelNetServer::TryDegrade(const EstimateRequest& req,
                              const std::string& route,
                              const ResponseFn& done) {
  if (!cfg_.enable_curve_cache) return false;
  Result<ModelHandle> handle = registry_.Get(route);
  if (!handle.ok()) return false;
  const ModelHandle& h = handle.ValueOrDie();
  uint64_t key = cache_.MakeCurveKey(h.version, req.x.data(), cfg_.dim);
  CurveEntry entry;
  bool hit = cache_.LookupCurve(key, &entry);
  stats_.RecordCurveLookup(hit);
  if (!hit || entry.tau.empty()) return false;
  // Strictly a cache read + local PWL arithmetic: bit-identical to the
  // curve-cached fast path for this version, but possibly a version behind
  // the latest publish — that staleness is the degrade contract.
  core::PiecewiseLinear pwl(std::move(entry.tau), std::move(entry.p));
  EstimateResponse resp;
  resp.model = route;
  resp.version = h.version;
  resp.tag = req.tag;
  resp.degraded = true;
  resp.estimates.resize(req.thresholds.size());
  for (size_t i = 0; i < req.thresholds.size(); ++i) {
    resp.estimates[i] = pwl(req.thresholds[i]);
  }
  stats_.RecordDegraded();
  done(std::move(resp), nullptr);
  return true;
}

std::future<EstimateResponse> SelNetServer::Submit(EstimateRequest req) {
  auto promise = std::make_shared<std::promise<EstimateResponse>>();
  std::future<EstimateResponse> result = promise->get_future();
  SubmitWith(std::move(req),
             [promise](EstimateResponse&& resp, std::exception_ptr error) {
               if (error) {
                 promise->set_exception(error);
               } else {
                 promise->set_value(std::move(resp));
               }
             });
  return result;
}

void SelNetServer::SubmitWith(EstimateRequest req, ResponseFn done) {
  SubmitOne(std::move(req), std::move(done), nullptr);
}

void SelNetServer::SubmitMany(std::vector<Submission> batch) {
  std::vector<BatchScheduler::Row> rows;
  for (Submission& s : batch) {
    SubmitOne(std::move(s.req), std::move(s.done),
              scheduler_ ? &rows : nullptr);
  }
  if (!rows.empty()) scheduler_->SubmitRows(std::move(rows));
}

void SelNetServer::SubmitOne(EstimateRequest req, ResponseFn done,
                             std::vector<BatchScheduler::Row>* row_sink) {
  SEL_CHECK(done != nullptr);
  // Malformed requests fail the request, never the process: this is client
  // input, not a server invariant.
  if (req.x.size() != cfg_.dim || req.thresholds.empty()) {
    done(EstimateResponse{},
         std::make_exception_ptr(std::invalid_argument(
             "SelNetServer: EstimateRequest must carry ServerConfig.dim "
             "floats in x (got " +
             std::to_string(req.x.size()) + ", want " +
             std::to_string(cfg_.dim) + ") and at least one threshold")));
    return;
  }
  // Overload gate, before any routing or compute. Order matters: a request
  // whose deadline already passed must not consume an admission ticket.
  if (req.has_deadline() && std::chrono::steady_clock::now() >= req.deadline) {
    stats_.RecordShed(ShedReason::kDeadlineExpired);
    done(EstimateResponse{},
         std::make_exception_ptr(OverloadError(
             ShedReason::kDeadlineExpired,
             "SelNetServer: deadline already expired at submit")));
    return;
  }
  if (admission_) {
    // Effective route, resolved without touching the registry or the route
    // map: sheds stay O(1) even under adversarial route names.
    const std::string& route = req.model.empty() ? cfg_.model_name : req.model;
    AdmissionController::Decision decision = admission_->Admit(route);
    if (!decision.admitted) {
      stats_.RecordShed(decision.reason);
      if (decision.try_degrade && TryDegrade(req, route, done)) return;
      done(EstimateResponse{},
           std::make_exception_ptr(OverloadError(
               decision.reason, std::string("SelNetServer: overloaded (") +
                                    ShedReasonName(decision.reason) +
                                    ") on route '" + route + "'")));
      return;
    }
    // Hand the ticket back exactly once, on whichever thread completes the
    // request (success, shed, or failure alike).
    done = [this, inner = std::move(done)](EstimateResponse&& resp,
                                           std::exception_ptr error) {
      admission_->Release();
      inner(std::move(resp), error);
    };
  }
  const size_t k = req.thresholds.size();
  // Stage-trace sampling: wire requests may arrive with a trace the frontend
  // attached (decode already recorded); otherwise sample 1-in-N here. The
  // untraced majority pays exactly this one relaxed increment.
  if (!req.trace && cfg_.trace_sample_every > 0 &&
      trace_counter_.fetch_add(1, std::memory_order_relaxed) %
              cfg_.trace_sample_every ==
          0) {
    req.trace = std::make_shared<RequestTrace>();
  }
  const bool traced = req.trace != nullptr;
  if (traced) stats_.RecordTraced();
  auto state = std::make_shared<PendingResponse>();
  state->done = std::move(done);
  state->resp.model =
      req.model.empty() ? cfg_.model_name : std::move(req.model);
  state->resp.estimates.assign(k, 0.0f);
  state->resp.tag = req.tag;
  state->sorted =
      k > 1 && std::is_sorted(req.thresholds.begin(), req.thresholds.end());
  state->trace = req.trace;
  state->stats = &stats_;
  const auto enqueued = std::chrono::steady_clock::now();
  auto stage_ms_since = [](std::chrono::steady_clock::time_point from) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - from)
        .count();
  };

  // One logical estimate per threshold: QPS and hit-rate stay comparable
  // across request shapes.
  for (size_t i = 0; i < k; ++i) stats_.RecordRequest();

  // Pin the routed snapshot: the cache pre-pass, the fast path, and the
  // unbatched fallback all answer against this version.
  Result<ModelHandle> handle = registry_.Get(state->resp.model);
  if (!handle.ok()) {
    if (handle.status().code() == util::StatusCode::kNotFound) {
      state->RecordError(std::make_exception_ptr(RouteNotFoundError(
          "SelNetServer: " + handle.status().message())));
    } else {
      state->RecordError(std::make_exception_ptr(
          std::runtime_error("SelNetServer: " + handle.status().ToString())));
    }
    state->Finalize();
    return;
  }
  const ModelHandle& h = handle.ValueOrDie();
  state->resp.version = h.version;

  // Per-route accumulator: resolved once per request (stable pointer), only
  // for routes that actually exist — a typo'd route cannot grow the map.
  ServeStats::RouteStats* route_stats = stats_.Route(state->resp.model);
  state->route_stats = route_stats;
  route_stats->RecordRequests(k);
  if (traced) req.trace->Observe(Stage::kRoute, stage_ms_since(enqueued));

  std::vector<size_t> missing;
  missing.reserve(k);
  if (cfg_.enable_cache) {
    const auto cache_start =
        traced ? std::chrono::steady_clock::now() : enqueued;
    for (size_t i = 0; i < k; ++i) {
      uint64_t key =
          cache_.MakeKey(h.version, req.x.data(), cfg_.dim, req.thresholds[i]);
      if (cache_.Lookup(key, &state->resp.estimates[i])) {
        stats_.RecordCacheHit();
        route_stats->RecordCache(true);
        ++state->resp.cache_hits;
      } else {
        stats_.RecordCacheMiss();
        route_stats->RecordCache(false);
        missing.push_back(i);
      }
    }
    if (traced) req.trace->Observe(Stage::kCache, stage_ms_since(cache_start));
  } else {
    for (size_t i = 0; i < k; ++i) missing.push_back(i);
  }

  bool fast_path = cfg_.enable_sweep_fastpath && h.model.sweep_capable() &&
                   missing.size() >= cfg_.sweep_fastpath_min;
  if (k > 1) stats_.RecordSweep(fast_path);
  if (missing.empty()) {
    state->Finalize();
    return;
  }

  if (fast_path) {
    state->resp.fast_path = true;
    if (scheduler_) {
      // Off the caller's thread, like any other miss. shared_ptr wrappers
      // because ThreadPool tasks must be copyable.
      auto shared_req = std::make_shared<EstimateRequest>(std::move(req));
      auto shared_missing =
          std::make_shared<std::vector<size_t>>(std::move(missing));
      {
        std::lock_guard<std::mutex> lock(sweep_mu_);
        ++sweep_inflight_;
      }
      pool_->Submit([this, state, shared_req, h, shared_missing, enqueued,
                     route_stats] {
        RunSweepFastPath(state, *shared_req, h, *shared_missing, enqueued,
                         route_stats);
        std::lock_guard<std::mutex> lock(sweep_mu_);
        --sweep_inflight_;
        sweep_cv_.notify_all();
      });
    } else {
      RunSweepFastPath(state, req, h, missing, enqueued, route_stats);
    }
    return;
  }

  if (scheduler_) {
    // Row expansion: each missing threshold joins the cross-request
    // coalesced batch (SubmitRow copies x before returning, so `req` may
    // die). Rows resolve their snapshot at flush time; the sorted-sweep
    // repair in Finalize absorbs any mid-sweep republish.
    state->remaining.store(missing.size(), std::memory_order_relaxed);
    for (size_t idx : missing) {
      auto row_done = [this, state, idx, route_stats](
                          float value, std::exception_ptr error,
                          const BatchScheduler::RowTiming& timing) {
        if (error) {
          state->RecordError(std::move(error));
        } else {
          state->resp.estimates[idx] = value;
          stats_.RecordLatencyMs(timing.latency_ms);
          route_stats->RecordLatencyMs(timing.latency_ms);
        }
        if (state->trace) {
          // Observe keeps the max across rows: the request's critical
          // path through the scheduler.
          state->trace->Observe(Stage::kQueue, timing.queue_ms);
          state->trace->Observe(Stage::kPredict, timing.predict_ms);
        }
        if (state->remaining.fetch_sub(1) == 1) state->Finalize();
      };
      if (row_sink != nullptr) {
        // Batched producer: buffer the row; the caller hands the whole
        // batch to the scheduler in one SubmitRows.
        BatchScheduler::Row row;
        row.model = state->resp.model;
        row.x = req.x;
        row.t = req.thresholds[idx];
        row.done = std::move(row_done);
        row.deadline = req.deadline;
        row_sink->push_back(std::move(row));
      } else {
        scheduler_->SubmitRow(state->resp.model, req.x.data(),
                              req.thresholds[idx], std::move(row_done),
                              req.deadline);
      }
    }
    return;
  }

  // Unbatched path: one Predict over the missing rows on the pinned
  // snapshot, inline on the caller (the throughput baseline).
  util::Stopwatch watch;
  try {
    tensor::Matrix xm(missing.size(), cfg_.dim);
    tensor::Matrix tm(missing.size(), 1);
    for (size_t r = 0; r < missing.size(); ++r) {
      std::copy(req.x.begin(), req.x.end(), xm.row(r));
      tm(r, 0) = req.thresholds[missing[r]];
    }
    tensor::Matrix y = PredictOnHandle(h, xm, tm);
    // Undivided per threshold, consistent with the other paths: each
    // threshold waited the whole Predict.
    double elapsed_ms = watch.ElapsedMillis();
    if (state->trace) state->trace->Observe(Stage::kPredict, elapsed_ms);
    for (size_t r = 0; r < missing.size(); ++r) {
      state->resp.estimates[missing[r]] = y(r, 0);
      stats_.RecordLatencyMs(elapsed_ms);
      route_stats->RecordLatencyMs(elapsed_ms);
    }
  } catch (...) {
    state->RecordError(std::current_exception());
  }
  state->Finalize();
}

std::future<float> SelNetServer::EstimateAsync(const float* x, float t) {
  // A real promise-backed future (not a deferred adapter): wait_for/wait_until
  // report ready as soon as the response lands, like the pre-request-object
  // API did.
  auto promise = std::make_shared<std::promise<float>>();
  std::future<float> result = promise->get_future();
  SubmitWith(EstimateRequest::Point(x, cfg_.dim, t),
             [promise](EstimateResponse&& resp, std::exception_ptr error) {
               if (error) {
                 promise->set_exception(error);
               } else {
                 promise->set_value(resp.estimates[0]);
               }
             });
  return result;
}

Result<float> SelNetServer::Estimate(const float* x, float t) {
  try {
    EstimateResponse resp =
        Submit(EstimateRequest::Point(x, cfg_.dim, t)).get();
    return resp.estimates[0];
  } catch (const std::exception& e) {
    if (registry_.VersionOf(cfg_.model_name) == 0) {
      return Status::NotFound("no model published under '" + cfg_.model_name +
                              "'");
    }
    return Status::Internal(e.what());
  }
}

Result<std::vector<float>> SelNetServer::EstimateSweep(
    const float* x, const std::vector<float>& ts) {
  if (ts.empty()) return std::vector<float>{};
  try {
    EstimateResponse resp = Submit(EstimateRequest::Sweep(x, cfg_.dim, ts)).get();
    return std::move(resp.estimates);
  } catch (const std::exception& e) {
    if (registry_.VersionOf(cfg_.model_name) == 0) {
      return Status::NotFound("no model published under '" + cfg_.model_name +
                              "'");
    }
    return Status::Internal(e.what());
  }
}

void SelNetServer::Drain() {
  if (scheduler_) scheduler_->Drain();
  // Fast-path sweep jobs run directly on the pool; wait for this server's
  // own jobs only (the pool is typically shared with other servers).
  std::unique_lock<std::mutex> lock(sweep_mu_);
  sweep_cv_.wait(lock, [this] { return sweep_inflight_ == 0; });
}

}  // namespace selnet::serve
