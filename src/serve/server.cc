#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/stopwatch.h"

namespace selnet::serve {

using util::Result;
using util::Status;

SelNetServer::SelNetServer(const ServerConfig& cfg)
    : cfg_(cfg), cache_(cfg.cache) {
  SEL_CHECK(cfg_.dim > 0);
  if (cfg_.enable_batching) {
    SchedulerConfig sched_cfg = cfg_.scheduler;
    sched_cfg.dim = cfg_.dim;
    scheduler_ = std::make_unique<BatchScheduler>(
        sched_cfg,
        [this](const tensor::Matrix& x, const tensor::Matrix& t) {
          return PredictOnCurrent(x, t);
        },
        [this](uint64_t /*tag*/, float /*value*/, double latency_ms) {
          stats_.RecordLatencyMs(latency_ms);
        });
  }
}

SelNetServer::~SelNetServer() {
  if (scheduler_) scheduler_->Shutdown();
}

uint64_t SelNetServer::Publish(std::shared_ptr<core::SelNetCt> model) {
  uint64_t version = registry_.Publish(cfg_.model_name, std::move(model));
  stats_.RecordSwap();
  return version;
}

Result<uint64_t> SelNetServer::PublishFromFile(const std::string& path) {
  Result<uint64_t> version = registry_.PublishFromFile(cfg_.model_name, path);
  if (version.ok()) stats_.RecordSwap();
  return version;
}

tensor::Matrix SelNetServer::PredictOnCurrent(const tensor::Matrix& x,
                                              const tensor::Matrix& t) {
  Result<ModelHandle> handle = registry_.Get(cfg_.model_name);
  if (!handle.ok()) {
    throw std::runtime_error("SelNetServer: " + handle.status().ToString());
  }
  const ModelHandle& h = handle.ValueOrDie();
  tensor::Matrix y = h.model->Predict(x, t);
  stats_.RecordBatch(x.rows());
  if (cfg_.enable_cache) {
    for (size_t i = 0; i < x.rows(); ++i) {
      uint64_t key = cache_.MakeKey(h.version, x.row(i), cfg_.dim, t(i, 0));
      cache_.Insert(key, y(i, 0));
    }
  }
  return y;
}

std::future<float> SelNetServer::EstimateAsync(const float* x, float t) {
  stats_.RecordRequest();
  if (cfg_.enable_cache) {
    uint64_t version = registry_.VersionOf(cfg_.model_name);
    if (version != 0) {
      uint64_t key = cache_.MakeKey(version, x, cfg_.dim, t);
      float cached = 0.0f;
      if (cache_.Lookup(key, &cached)) {
        stats_.RecordCacheHit();
        std::promise<float> ready;
        ready.set_value(cached);
        return ready.get_future();
      }
      stats_.RecordCacheMiss();
    }
  }
  if (scheduler_) return scheduler_->Submit(x, t);

  // Unbatched path: one-row Predict inline (the throughput baseline).
  std::promise<float> result;
  std::future<float> future = result.get_future();
  util::Stopwatch watch;
  try {
    tensor::Matrix xm(1, cfg_.dim);
    std::copy(x, x + cfg_.dim, xm.row(0));
    tensor::Matrix tm(1, 1);
    tm(0, 0) = t;
    tensor::Matrix y = PredictOnCurrent(xm, tm);
    stats_.RecordLatencyMs(watch.ElapsedMillis());
    result.set_value(y(0, 0));
  } catch (...) {
    result.set_exception(std::current_exception());
  }
  return future;
}

Result<float> SelNetServer::Estimate(const float* x, float t) {
  if (registry_.VersionOf(cfg_.model_name) == 0) {
    return Status::NotFound("no model published under '" + cfg_.model_name +
                            "'");
  }
  try {
    return EstimateAsync(x, t).get();
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

Result<std::vector<float>> SelNetServer::EstimateSweep(
    const float* x, const std::vector<float>& ts) {
  // The whole sweep is pinned to ONE registry snapshot: answering thresholds
  // from different versions across a concurrent republish could interleave
  // two (individually monotone) estimators into a non-monotone result, and
  // the header promises callers a non-decreasing column.
  Result<ModelHandle> handle = registry_.Get(cfg_.model_name);
  if (!handle.ok()) return handle.status();
  const ModelHandle& h = handle.ValueOrDie();

  std::vector<float> estimates(ts.size(), 0.0f);
  std::vector<size_t> missing;
  for (size_t i = 0; i < ts.size(); ++i) {
    stats_.RecordRequest();
    if (cfg_.enable_cache) {
      uint64_t key = cache_.MakeKey(h.version, x, cfg_.dim, ts[i]);
      if (cache_.Lookup(key, &estimates[i])) {
        stats_.RecordCacheHit();
        continue;
      }
      stats_.RecordCacheMiss();
    }
    missing.push_back(i);
  }
  if (!missing.empty()) {
    util::Stopwatch watch;
    tensor::Matrix xm(missing.size(), cfg_.dim);
    tensor::Matrix tm(missing.size(), 1);
    for (size_t r = 0; r < missing.size(); ++r) {
      std::copy(x, x + cfg_.dim, xm.row(r));
      tm(r, 0) = ts[missing[r]];
    }
    tensor::Matrix y = h.model->Predict(xm, tm);
    stats_.RecordBatch(missing.size());
    double per_request_ms = watch.ElapsedMillis() / double(missing.size());
    for (size_t r = 0; r < missing.size(); ++r) {
      estimates[missing[r]] = y(r, 0);
      if (cfg_.enable_cache) {
        uint64_t key =
            cache_.MakeKey(h.version, x, cfg_.dim, tm(r, 0));
        cache_.Insert(key, y(r, 0));
      }
      stats_.RecordLatencyMs(per_request_ms);
    }
  }
  // The pinned estimator is monotone, but cache hits may have been computed
  // from a quantized-neighbor query (within one cache quantum), which can
  // dent the column by a hair. Repair with a running max so the documented
  // non-decreasing guarantee holds unconditionally.
  for (size_t i = 1; i < estimates.size(); ++i) {
    estimates[i] = std::max(estimates[i], estimates[i - 1]);
  }
  return estimates;
}

void SelNetServer::Drain() {
  if (scheduler_) scheduler_->Drain();
}

}  // namespace selnet::serve
