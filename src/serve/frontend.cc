#include "serve/frontend.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "serve/admission.h"
#include "serve/remote_shard.h"
#include "serve/state_transfer.h"
#include "serve/wire.h"
#include "util/base64.h"
#include "util/logging.h"

namespace selnet::serve {

using util::Result;
using util::Status;

namespace {

/// Client-safe text for a failed request's error reply.
std::string ErrorText(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "request failed";
  }
}

/// True when the failure is a typed route-not-found. Serialized with code
/// "not_found" so a remote router can tell "this replica doesn't hold the
/// route" (retryable: another replica may) from a deterministic request
/// failure — without string-matching the message.
bool IsNotFound(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const RouteNotFoundError&) {
    return true;
  } catch (const RemoteError& e) {
    return e.code() == util::StatusCode::kNotFound;
  } catch (...) {
    return false;
  }
}

}  // namespace

/// One accepted connection. The loop thread owns fd/rbuf; `mu` guards the
/// fields that completion callbacks (pool workers) touch. Held by shared_ptr
/// so a completion arriving after the connection died writes into a harmless
/// orphan instead of freed memory.
struct NetFrontend::Conn {
  util::Fd fd;
  std::string rbuf;  ///< Loop-thread only: bytes before the next '\n'.

  std::mutex mu;
  std::string wbuf;       ///< Serialized response lines awaiting the socket.
  size_t wbuf_off = 0;    ///< Flushed prefix of wbuf.
  size_t inflight = 0;    ///< Submitted, not yet completed.
  bool closed = false;    ///< Loop dropped it; completions must discard.
  bool close_after_flush = false;  ///< Oversize: deliver the error, then close.
  bool stalled = false;   ///< Currently parked at the inflight cap.
  bool orderly = false;   ///< Finished cleanly (EOF / server-initiated close),
                          ///  not a peer reset — keeps the dropped counter
                          ///  meaning what it says.

  /// In-progress state transfer on this connection (loop-thread only, like
  /// rbuf). Dies with the connection: a sender that vanishes mid-transfer
  /// leaks nothing and publishes nothing.
  TransferAssembler xfer;
};

namespace {

/// The delegating constructors build the whole Backend BEFORE the real
/// constructor starts the loop thread — assigning hooks after delegation
/// would race the already-running loop.
NetFrontend::Backend ServerBackend(SelNetServer* server) {
  NetFrontend::Backend b;
  b.submit = [server](EstimateRequest req, SelNetServer::ResponseFn done) {
    server->SubmitWith(std::move(req), std::move(done));
  };
  b.snapshot = [server] { return server->stats().Snapshot(); };
  b.slow = [server] { return server->stats().SlowSpans(); };
  b.install = [server](const std::string& model, const std::string& bytes) {
    return server->PublishFromBytes(model, bytes, "state transfer");
  };
  b.trace_sample_every = server->config().trace_sample_every;
  return b;
}

NetFrontend::Backend SubmitOnlyBackend(NetFrontend::SubmitFn submit) {
  NetFrontend::Backend b;
  b.submit = std::move(submit);
  return b;
}

NetFrontend::Backend RegistryBackend(ShardedRegistry* registry) {
  NetFrontend::Backend b;
  b.submit = [registry](EstimateRequest req, SelNetServer::ResponseFn done) {
    registry->SubmitWith(std::move(req), std::move(done));
  };
  b.snapshot = [registry] { return registry->AggregateSnapshot(); };
  b.slow = [registry] { return registry->SlowSpans(); };
  b.install = [registry](const std::string& model, const std::string& bytes) {
    return registry->PublishFromBytes(model, bytes, "state transfer");
  };
  b.trace_sample_every = registry->config().server.trace_sample_every;
  b.metrics = [registry] { return registry->MetricsText(); };
  b.events = [registry] { return registry->EventsJson(); };
  b.node_id = registry->config().node_id;
  return b;
}

}  // namespace

NetFrontend::NetFrontend(const FrontendConfig& cfg, SelNetServer* server)
    : NetFrontend(cfg, ServerBackend(server)) {}

NetFrontend::NetFrontend(const FrontendConfig& cfg, ShardedRegistry* registry)
    : NetFrontend(cfg, RegistryBackend(registry)) {}

NetFrontend::NetFrontend(const FrontendConfig& cfg, SubmitFn submit)
    : NetFrontend(cfg, SubmitOnlyBackend(std::move(submit))) {}

NetFrontend::NetFrontend(const FrontendConfig& cfg, Backend backend)
    : cfg_(cfg), backend_(std::move(backend)),
      shared_(std::make_shared<Shared>()) {
  bind_status_ = listener_.Listen(cfg_.bind_address, cfg_.port);
  if (!shared_->wake.valid()) {
    bind_status_ = Status::IOError("NetFrontend: wake pipe unavailable");
  }
  if (!bind_status_.ok()) return;
  port_ = listener_.port();
  if (backend_.node_id.empty()) {
    // Default process identity: the bound endpoint. A shard_node's scraped
    // snapshot then names itself without any extra configuration.
    backend_.node_id = cfg_.bind_address + ":" + std::to_string(port_);
  }
  loop_ = std::thread([this] { Loop(); });
}

NetFrontend::~NetFrontend() { Stop(); }

Status NetFrontend::status() const { return bind_status_; }

void NetFrontend::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_.load()) return;
  stopping_.store(true);
  shared_->wake.Notify();
  if (loop_.joinable()) loop_.join();
  stopped_.store(true);
}

FrontendStats NetFrontend::Stats() const {
  FrontendStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_refused = refused_.load(std::memory_order_relaxed);
  s.connections_dropped = dropped_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = shared_->responses.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.request_errors = shared_->request_errors.load(std::memory_order_relaxed);
  s.oversized = oversized_.load(std::memory_order_relaxed);
  s.backpressure_stalls = stalls_.load(std::memory_order_relaxed);
  s.admin_requests = admin_requests_.load(std::memory_order_relaxed);
  s.transfer_frames = xfer_frames_.load(std::memory_order_relaxed);
  s.transfer_bytes = xfer_bytes_.load(std::memory_order_relaxed);
  s.transfer_crc_rejections = xfer_crc_rejects_.load(std::memory_order_relaxed);
  s.transfer_installs = xfer_installs_.load(std::memory_order_relaxed);
  return s;
}

StatsSnapshot NetFrontend::FleetSnapshot() const {
  StatsSnapshot snap;
  if (backend_.snapshot) snap = backend_.snapshot();
  // The backend never sees encode (serialization happens in the completion,
  // after the server closed the span); merge the frontend's own histogram
  // into that stage so the wire view covers the full pipeline.
  util::HistogramSnapshot encode = shared_->encode_hist.Snapshot();
  if (!encode.empty()) {
    if (snap.stage_hists.size() < kNumStages) {
      snap.stage_hists.resize(kNumStages);
    }
    snap.stage_hists[size_t(Stage::kEncode)].Merge(encode);
  }
  if (snap.node_id.empty()) snap.node_id = backend_.node_id;
  return snap;
}

std::string NetFrontend::StatsJson() const {
  return StatsToJson(FleetSnapshot());
}

std::string NetFrontend::MetricsText() const {
  std::string text;
  if (backend_.snapshot) text += RenderStatsExposition(FleetSnapshot());
  const FrontendStats fs = Stats();
  auto counter = [&text](const char* name, const char* labels, uint64_t v) {
    text += name;
    text += labels;
    text += ' ';
    text += std::to_string(v);
    text += '\n';
  };
  text += "# TYPE selnet_frontend_connections_total counter\n";
  counter("selnet_frontend_connections_total", "{event=\"accepted\"}",
          fs.connections_accepted);
  counter("selnet_frontend_connections_total", "{event=\"refused\"}",
          fs.connections_refused);
  counter("selnet_frontend_connections_total", "{event=\"dropped\"}",
          fs.connections_dropped);
  text += "# TYPE selnet_frontend_requests_total counter\n";
  counter("selnet_frontend_requests_total", "", fs.requests);
  text += "# TYPE selnet_frontend_responses_total counter\n";
  counter("selnet_frontend_responses_total", "", fs.responses);
  text += "# TYPE selnet_frontend_parse_errors_total counter\n";
  counter("selnet_frontend_parse_errors_total", "", fs.parse_errors);
  text += "# TYPE selnet_frontend_request_errors_total counter\n";
  counter("selnet_frontend_request_errors_total", "", fs.request_errors);
  text += "# TYPE selnet_frontend_backpressure_stalls_total counter\n";
  counter("selnet_frontend_backpressure_stalls_total", "",
          fs.backpressure_stalls);
  text += "# TYPE selnet_frontend_admin_requests_total counter\n";
  counter("selnet_frontend_admin_requests_total", "", fs.admin_requests);
  text += "# TYPE selnet_transfer_rx_frames_total counter\n";
  counter("selnet_transfer_rx_frames_total", "", fs.transfer_frames);
  text += "# TYPE selnet_transfer_rx_bytes_total counter\n";
  counter("selnet_transfer_rx_bytes_total", "", fs.transfer_bytes);
  text += "# TYPE selnet_transfer_rx_crc_rejections_total counter\n";
  counter("selnet_transfer_rx_crc_rejections_total", "",
          fs.transfer_crc_rejections);
  text += "# TYPE selnet_transfer_installs_total counter\n";
  counter("selnet_transfer_installs_total", "", fs.transfer_installs);
  if (backend_.metrics) text += backend_.metrics();
  return text;
}

void NetFrontend::AcceptNew() {
  for (;;) {
    util::Fd conn_fd;
    Result<bool> accepted = listener_.Accept(&conn_fd);
    if (!accepted.ok() || !accepted.ValueOrDie()) return;
    if (conns_.size() >= cfg_.max_connections || stopping_.load()) {
      // Refuse by closing: the client sees EOF immediately instead of a
      // connection that silently never answers.
      refused_.fetch_add(1, std::memory_order_relaxed);
      util::LogDebug("frontend: connection refused (%zu open, cap %zu)",
                     conns_.size(), cfg_.max_connections);
      continue;
    }
    util::SetNonBlocking(conn_fd.get());
    util::SetNoDelay(conn_fd.get());
    auto conn = std::make_shared<Conn>();
    conn->fd = std::move(conn_fd);
    conns_.push_back(std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    util::LogDebug("frontend: connection accepted (%zu open)", conns_.size());
  }
}

void NetFrontend::HandleAdmin(const std::shared_ptr<Conn>& conn,
                              const std::string& line) {
  admin_requests_.fetch_add(1, std::memory_order_relaxed);
  AdminRequest admin;
  Status parsed = ParseAdminLine(line, &admin);
  std::string reply;
  if (!parsed.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    reply = SerializeError(parsed.message(), ExtractTagBestEffort(line));
  } else {
    try {
      reply = DispatchAdmin(conn, admin);
    } catch (const std::exception& e) {
      // Admin input is client bytes off an open port; an exception out of a
      // handler (allocation failure on a hostile size, a parser edge) must
      // fail THIS command, not unwind through the loop thread and terminate
      // the process.
      reply = SerializeError(
          std::string("wire: admin command failed: ") + e.what(), admin.tag);
    }
  }
  std::lock_guard<std::mutex> lock(conn->mu);
  if (!conn->closed) {
    conn->wbuf += reply;
    conn->wbuf += '\n';
  }
}

std::string NetFrontend::DispatchAdmin(const std::shared_ptr<Conn>& conn,
                                       const AdminRequest& admin) {
  std::string reply;
  if (admin.cmd == "stats") {
    if (!backend_.snapshot) {
      reply = SerializeError("wire: no stats backend attached", admin.tag);
    } else {
      JsonWriter w;
      w.RawField("stats", StatsJson());
      if (admin.tag != 0) w.Field("tag", admin.tag);
      reply = w.Finish();
    }
  } else if (admin.cmd == "slow") {
    if (!backend_.slow) {
      reply = SerializeError("wire: no stats backend attached", admin.tag);
    } else {
      std::string spans = "[";
      std::vector<SpanRecord> slow = backend_.slow();
      for (size_t i = 0; i < slow.size(); ++i) {
        if (i > 0) spans += ",";
        spans += slow[i].ToJson();
      }
      spans += "]";
      JsonWriter w;
      w.RawField("slow", spans);
      if (admin.tag != 0) w.Field("tag", admin.tag);
      reply = w.Finish();
    }
  } else if (admin.cmd == "health") {
    // Liveness probe for failover layers: answered on the loop thread, so a
    // healthy-but-busy backend still acks (gray shards are detected by DATA
    // timeouts, not by this).
    JsonWriter w;
    w.Field("ok", true);
    if (admin.tag != 0) w.Field("tag", admin.tag);
    reply = w.Finish();
  } else if (admin.cmd == "metrics") {
    // The multi-line exposition text travels as ONE JSON string value;
    // JsonQuote escapes the newlines and NetClient::Metrics restores them.
    JsonWriter w;
    w.Field("metrics", MetricsText());
    if (admin.tag != 0) w.Field("tag", admin.tag);
    reply = w.Finish();
  } else if (admin.cmd == "events") {
    if (!backend_.events) {
      reply = SerializeError("wire: no event ring attached", admin.tag);
    } else {
      JsonWriter w;
      w.RawField("events", backend_.events());
      if (admin.tag != 0) w.Field("tag", admin.tag);
      reply = w.Finish();
    }
  } else if (admin.cmd == "stats_wire") {
    if (!backend_.snapshot) {
      reply = SerializeError("wire: no stats backend attached", admin.tag);
    } else {
      reply = SerializeStatsWire(FleetSnapshot(), admin.tag);
    }
  } else if (admin.cmd == "xfer_begin" || admin.cmd == "xfer_frame" ||
             admin.cmd == "xfer_commit") {
    reply = HandleTransfer(conn, admin);
  } else {
    reply = SerializeError("wire: unknown admin cmd '" + admin.cmd + "'",
                           admin.tag);
  }
  return reply;
}

std::string NetFrontend::HandleTransfer(const std::shared_ptr<Conn>& conn,
                                        const AdminRequest& admin) {
  if (!backend_.install) {
    return SerializeError("wire: backend does not accept state transfers",
                          admin.tag);
  }
  Status st;
  uint64_t version = 0;
  bool committed = false;
  if (admin.cmd == "xfer_begin") {
    st = conn->xfer.Begin(admin.model, admin.size, admin.frames);
  } else if (admin.cmd == "xfer_frame") {
    Result<std::string> raw = util::Base64Decode(admin.data);
    if (!raw.ok()) {
      conn->xfer.Abort();
      st = raw.status();
    } else {
      const size_t frame_bytes = raw.ValueOrDie().size();
      st = conn->xfer.AddFrame(admin.seq, uint32_t(admin.crc),
                               raw.ValueOrDie());
      if (st.ok()) {
        xfer_frames_.fetch_add(1, std::memory_order_relaxed);
        xfer_bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
      }
    }
  } else {  // xfer_commit
    Result<std::string> bytes =
        conn->xfer.Commit(admin.model, uint32_t(admin.crc));
    if (!bytes.ok()) {
      st = bytes.status();
    } else {
      // Deserialize + publish on the loop thread: a model install is a
      // publish-time event (milliseconds, not per-request), and running it
      // here keeps the single-writer registry discipline trivially intact.
      Result<uint64_t> v = backend_.install(admin.model, bytes.ValueOrDie());
      if (v.ok()) {
        version = v.ValueOrDie();
        committed = true;
        xfer_installs_.fetch_add(1, std::memory_order_relaxed);
        util::LogDebug("frontend: state transfer installed route '%s' v%llu",
                       admin.model.c_str(),
                       static_cast<unsigned long long>(version));
      } else {
        st = v.status();
      }
    }
  }
  if (!st.ok()) {
    // The assembler types both the per-frame and whole-payload checksum
    // failures kIoError; everything else on this path (bad base64, ordering,
    // size lies) is kInvalidArgument.
    if (st.code() == util::StatusCode::kIoError) {
      xfer_crc_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeError(st.message(), admin.tag);
  }
  JsonWriter w;
  w.Field("ok", true);
  if (committed) w.Field("version", version);
  if (admin.tag != 0) w.Field("tag", admin.tag);
  return w.Finish();
}

void NetFrontend::SubmitLine(const std::shared_ptr<Conn>& conn,
                             std::string line) {
  // Tolerate CRLF and blank keep-alive lines.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line.empty()) return;

  // Admin plane: answered synchronously on the loop thread, off the estimate
  // path — a metrics scrape never queues behind a batch.
  if (LineLooksAdmin(line)) {
    HandleAdmin(conn, line);
    return;
  }

  // Decode-stage sampling: the frontend decides BEFORE parsing so the parse
  // itself is on the span; the server honors an attached trace as-is.
  std::shared_ptr<RequestTrace> trace;
  if (backend_.trace_sample_every > 0 &&
      trace_seq_++ % backend_.trace_sample_every == 0) {
    trace = std::make_shared<RequestTrace>();
  }
  const auto decode_start = std::chrono::steady_clock::now();

  EstimateRequest req;
  Status parsed = ParseRequestLine(line, &req);
  if (!parsed.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    // Echo the tag even for a line that failed to parse (best-effort scan):
    // a pipelining client correlates replies by tag and must not wait
    // forever on a typo'd request.
    uint64_t tag = ExtractTagBestEffort(line);
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->wbuf += SerializeError(parsed.message(), tag);
    conn->wbuf += '\n';
    return;
  }

  // A wire-requested trace ("trace":true) is honored regardless of the
  // sampling counter: the caller — a coordinator propagating its own sampled
  // span, or a debugging client — wants THIS request timed, and gets the
  // span's stage block back in the response.
  if (!trace && req.wire_trace) trace = std::make_shared<RequestTrace>();
  if (trace) {
    trace->Observe(Stage::kDecode,
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - decode_start)
                       .count());
    req.trace = std::move(trace);
  }

  uint64_t tag = req.tag;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->inflight;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // The completion may run on a pool worker, on the loop thread itself (a
  // cache hit resolves inline under SubmitLine), or after this frontend is
  // gone if Stop() timed out — so it captures only the shared Conn and the
  // Shared block, never `this`, and takes no frontend lock. The trace
  // shared_ptr rides along so a sampled request's encode (serialization)
  // time lands in the Shared encode histogram — the server has already
  // closed and flushed the span by the time this runs.
  auto conn_ref = conn;
  auto shared = shared_;
  auto traced = req.trace;
  const bool wire_traced = req.wire_trace;
  backend_.submit(std::move(req), [shared, conn_ref, tag, traced, wire_traced](
                              EstimateResponse&& resp,
                              std::exception_ptr error) {
    const auto encode_start = std::chrono::steady_clock::now();
    std::string out;
    if (error) {
      // Overload sheds carry a machine-readable code (the ShedReasonName)
      // so clients get a typed rejection without string-matching messages;
      // unknown routes carry "not_found" for the same reason.
      ShedReason reason = ShedReasonFrom(error);
      if (reason != ShedReason::kNone) {
        out = SerializeError(ErrorText(error), ShedReasonName(reason), tag);
      } else if (IsNotFound(error)) {
        out = SerializeError(ErrorText(error), "not_found", tag);
      } else {
        out = SerializeError(ErrorText(error), tag);
      }
    } else {
      if (wire_traced && traced) {
        // The caller asked for the stage block: snapshot the span (the
        // server has already flushed its own copy) and ship every stage —
        // encode is structurally 0 (the block is serialized inside encode),
        // and the remote stages are 0 unless this process itself remoted
        // the request onward.
        SpanRecord span = traced->Finish(resp.model, tag);
        resp.stage_ms.assign(kNumStages, 0.0f);
        for (size_t i = 0; i < kNumStages; ++i) {
          resp.stage_ms[i] = float(span.stage_ms[i]);
        }
      }
      out = SerializeResponse(resp);
    }
    if (traced) {
      shared->encode_hist.Record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - encode_start)
              .count());
    }
    if (error) shared->request_errors.fetch_add(1, std::memory_order_relaxed);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(conn_ref->mu);
      if (conn_ref->inflight > 0) --conn_ref->inflight;
      if (!conn_ref->closed) {
        conn_ref->wbuf += out;
        conn_ref->wbuf += '\n';
        enqueued = true;
      }
    }
    if (enqueued) shared->responses.fetch_add(1, std::memory_order_relaxed);
    shared->wake.Notify();
  });
}

void NetFrontend::RejectOversized(const std::shared_ptr<Conn>& conn) {
  // A runaway writer, not a typo: deliver the error, drop whatever request
  // bytes are buffered (later lines on this connection are not trusted),
  // and close once the reply flushes. Requests this size are three orders
  // of magnitude past any real query vector.
  oversized_.fetch_add(1, std::memory_order_relaxed);
  util::LogDebug("frontend: oversized request line rejected (cap %zu bytes)",
                 cfg_.max_line_bytes);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->wbuf += SerializeError(
      "wire: request line exceeds " + std::to_string(cfg_.max_line_bytes) +
          " bytes",
      0);
  conn->wbuf += '\n';
  conn->close_after_flush = true;
  conn->rbuf.clear();
}

bool NetFrontend::HandleReadable(const std::shared_ptr<Conn>& conn,
                                 bool read_socket) {
  if (read_socket) {
    char buf[16384];
    // Bounded work per round: one connection cannot monopolize the loop.
    for (int chunk = 0; chunk < 16; ++chunk) {
      Result<int64_t> n = util::ReadSome(conn->fd.get(), buf, sizeof(buf));
      if (!n.ok()) {
        if (n.status().code() == util::StatusCode::kOutOfRange) {
          break;  // EAGAIN.
        }
        return false;  // Peer reset.
      }
      if (n.ValueOrDie() == 0) {  // Orderly EOF.
        conn->orderly = true;
        return false;
      }
      conn->rbuf.append(buf, size_t(n.ValueOrDie()));
      if (size_t(n.ValueOrDie()) < sizeof(buf)) break;
    }
  }

  // A line that outgrew the cap without ever seeing its newline.
  if (conn->rbuf.size() > cfg_.max_line_bytes &&
      conn->rbuf.find('\n') == std::string::npos) {
    RejectOversized(conn);
    return true;  // Keep the conn until the error reply is flushed.
  }

  size_t start = 0;
  for (;;) {
    // Honor the inflight cap mid-buffer: leftover lines stay in rbuf and are
    // re-scanned once responses drain (the poll loop stops reading, TCP
    // pushes back on the peer).
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inflight >= cfg_.max_inflight_per_conn ||
          conn->wbuf.size() - conn->wbuf_off >=
              cfg_.max_write_backlog_bytes) {
        if (!conn->stalled) {
          conn->stalled = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      conn->stalled = false;
    }
    size_t nl = conn->rbuf.find('\n', start);
    if (nl == std::string::npos) break;
    if (nl - start > cfg_.max_line_bytes) {
      RejectOversized(conn);  // Clears rbuf; nothing left to erase below.
      return true;
    }
    std::string line = conn->rbuf.substr(start, nl - start);
    start = nl + 1;
    SubmitLine(conn, std::move(line));
  }
  conn->rbuf.erase(0, start);
  return true;
}

bool NetFrontend::HandleWritable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  while (conn->wbuf_off < conn->wbuf.size()) {
    Result<int64_t> n =
        util::WriteSome(conn->fd.get(), conn->wbuf.data() + conn->wbuf_off,
                        conn->wbuf.size() - conn->wbuf_off);
    if (!n.ok()) return false;  // EPIPE/reset: peer is gone.
    if (n.ValueOrDie() == 0) break;  // Send buffer full; wait for POLLOUT.
    conn->wbuf_off += size_t(n.ValueOrDie());
  }
  if (conn->wbuf_off == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wbuf_off = 0;
    // Close only once EARLIER requests' responses have also come back and
    // flushed — accepted work is answered even on a connection being closed
    // for a later oversized line. (inflight is read under the same mutex
    // completions decrement it under; a decrement after this check wakes the
    // poller, which re-runs HandleWritable and closes then.)
    if (conn->close_after_flush && conn->inflight == 0) {
      conn->orderly = true;
      return false;
    }
  }
  return true;
}

void NetFrontend::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
  }
  conn->fd.Close();
}

bool NetFrontend::DrainComplete() {
  for (const auto& conn : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight > 0) return false;
    if (conn->wbuf_off < conn->wbuf.size()) return false;
  }
  return true;
}

void NetFrontend::Loop() {
  using Clock = std::chrono::steady_clock;
  bool draining = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    if (!draining && stopping_.load()) {
      // Graceful drain: no new connections, no new request bytes; in-flight
      // responses still compute and flush below.
      draining = true;
      drain_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(cfg_.drain_timeout_s));
      listener_.Close();
    }
    if (draining && (DrainComplete() || Clock::now() >= drain_deadline)) break;

    std::vector<util::PollEntry> entries;
    entries.reserve(conns_.size() + 2);
    util::PollEntry wake_entry;
    wake_entry.fd = shared_->wake.read_fd();
    wake_entry.want_read = true;
    entries.push_back(wake_entry);
    size_t listener_slot = 0;
    if (listener_.listening()) {
      util::PollEntry le;
      le.fd = listener_.fd();
      le.want_read = true;
      listener_slot = entries.size();
      entries.push_back(le);
    }
    size_t conn_base = entries.size();
    // Entries cover exactly the conns present NOW; AcceptNew below may
    // append more, which are handled starting next round.
    const size_t polled_conns = conns_.size();
    for (const auto& conn : conns_) {
      util::PollEntry ce;
      ce.fd = conn->fd.get();
      std::lock_guard<std::mutex> lock(conn->mu);
      ce.want_read = !draining && !conn->close_after_flush &&
                     conn->inflight < cfg_.max_inflight_per_conn &&
                     conn->wbuf.size() - conn->wbuf_off <
                         cfg_.max_write_backlog_bytes;
      ce.want_write = conn->wbuf_off < conn->wbuf.size();
      entries.push_back(ce);
    }

    Result<int> ready = util::Poll(&entries, draining ? 10 : 100);
    if (!ready.ok()) break;  // poll() itself failing is unrecoverable here.
    shared_->wake.Drain();
    if (listener_.listening() && entries[listener_slot].readable) AcceptNew();

    std::vector<std::shared_ptr<Conn>> alive;
    alive.reserve(conns_.size());
    for (size_t i = 0; i < polled_conns; ++i) {
      const auto& conn = conns_[i];
      const util::PollEntry& e = entries[conn_base + i];
      bool keep = !e.error;
      if (keep && e.readable) keep = HandleReadable(conn, /*read_socket=*/true);
      // A stalled conn's buffered lines re-scan once responses drain —
      // WITHOUT touching the socket, so the stop-reading backpressure holds
      // (reading here would let a greedy client grow rbuf unboundedly).
      if (keep && !e.readable && !conn->rbuf.empty()) {
        keep = HandleReadable(conn, /*read_socket=*/false);
      }
      if (keep) keep = HandleWritable(conn);
      if (keep) {
        alive.push_back(conn);
      } else {
        // Only abnormal ends count as drops; an orderly client EOF or a
        // server-initiated close is a healthy disconnect.
        if (!conn->orderly) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
          util::LogDebug("frontend: connection dropped (peer reset)");
        } else {
          util::LogDebug("frontend: connection closed");
        }
        CloseConn(conn);
      }
    }
    // Connections accepted this round (no poll entries yet).
    for (size_t i = polled_conns; i < conns_.size(); ++i) {
      alive.push_back(conns_[i]);
    }
    conns_.swap(alive);
  }

  listener_.Close();
  for (const auto& conn : conns_) CloseConn(conn);
  conns_.clear();
}

// -------------------------------------------------------------- NetClient ---

Status NetClient::Connect(const std::string& address, uint16_t port) {
  Result<util::Fd> fd = util::TcpConnect(address, port);
  if (!fd.ok()) return fd.status();
  fd_ = std::move(fd).ValueOrDie();
  rbuf_.clear();
  address_ = address;
  port_ = port;
  return Status::OK();
}

Status NetClient::Reconnect() {
  if (port_ == 0) return Status::Internal("NetClient: never connected");
  fd_.Close();
  return Connect(address_, port_);
}

Status NetClient::SendRaw(const std::string& bytes) {
  if (!fd_.valid()) return Status::Internal("NetClient: not connected");
  return util::WriteAll(fd_.get(), bytes.data(), bytes.size());
}

Result<std::string> NetClient::ReadLine() {
  if (!fd_.valid()) return Status::Internal("NetClient: not connected");
  // The receive bound covers the WHOLE line, anchored here: a server that
  // trickles one byte per poll interval cannot stretch it.
  const bool bounded = recv_timeout_ms_ > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(recv_timeout_ms_);
  for (;;) {
    size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      return line;
    }
    if (bounded) {
      auto remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded("NetClient: no response within " +
                                        std::to_string(recv_timeout_ms_) +
                                        " ms");
      }
      // The socket is blocking; poll first so a silent server costs the
      // remaining budget, not forever. A hangup falls through to ReadSome,
      // which reports the EOF / reset as usual.
      std::vector<util::PollEntry> entries(1);
      entries[0].fd = fd_.get();
      entries[0].want_read = true;
      Result<int> ready = util::Poll(&entries, int(remaining_ms));
      if (!ready.ok()) return ready.status();
      if (!entries[0].readable && !entries[0].error) continue;
    }
    char buf[4096];
    Result<int64_t> n = util::ReadSome(fd_.get(), buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (n.ValueOrDie() == 0) {
      return Status::IOError("NetClient: connection closed by server");
    }
    rbuf_.append(buf, size_t(n.ValueOrDie()));
  }
}

Result<std::string> NetClient::Admin(const std::string& cmd, uint64_t tag) {
  JsonWriter w;
  w.Field("cmd", cmd);
  if (tag != 0) w.Field("tag", tag);
  SEL_RETURN_NOT_OK(SendRaw(w.Finish() + "\n"));
  return ReadLine();
}

Result<std::string> NetClient::Metrics(uint64_t tag) {
  Result<std::string> line = Admin("metrics", tag);
  if (!line.ok()) return line.status();
  return ParseMetricsReply(line.ValueOrDie());
}

Result<StatsSnapshot> NetClient::StatsWire(uint64_t tag) {
  Result<std::string> line = Admin("stats_wire", tag);
  if (!line.ok()) return line.status();
  return ParseStatsWireLine(line.ValueOrDie());
}

Result<EstimateResponse> NetClient::Roundtrip(const EstimateRequest& req) {
  SEL_RETURN_NOT_OK(SendRaw(SerializeRequest(req) + "\n"));
  Result<std::string> line = ReadLine();
  if (!line.ok()) return line.status();
  EstimateResponse resp;
  SEL_RETURN_NOT_OK(ParseResponseLine(line.ValueOrDie(), &resp));
  return resp;
}

}  // namespace selnet::serve
