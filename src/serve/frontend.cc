#include "serve/frontend.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "serve/admission.h"
#include "serve/remote_shard.h"
#include "serve/state_transfer.h"
#include "serve/wire.h"
#include "util/base64.h"
#include "util/logging.h"

namespace selnet::serve {

using util::Result;
using util::Status;

namespace {

/// Client-safe text for a failed request's error reply.
std::string ErrorText(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "request failed";
  }
}

/// True when the failure is a typed route-not-found. Serialized with code
/// "not_found" so a remote router can tell "this replica doesn't hold the
/// route" (retryable: another replica may) from a deterministic request
/// failure — without string-matching the message.
bool IsNotFound(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const RouteNotFoundError&) {
    return true;
  } catch (const RemoteError& e) {
    return e.code() == util::StatusCode::kNotFound;
  } catch (...) {
    return false;
  }
}

}  // namespace

/// One accepted connection. The owning loop thread has exclusive use of
/// fd/rbuf/proto; `mu` guards the fields that completion callbacks (pool
/// workers) touch. Held by shared_ptr so a completion arriving after the
/// connection died writes into a harmless orphan instead of freed memory.
struct NetFrontend::Conn {
  util::Fd fd;
  std::string rbuf;  ///< Loop-thread only: bytes before the next line/frame.
  /// Negotiated framing (loop-thread only: flipped by the hello handler,
  /// read by the input dispatch; completions get the value they were built
  /// with and never look here).
  WireProto proto = WireProto::kJson;
  /// Owning loop's completion-side wakeup. Set before the conn is visible
  /// to any loop, constant afterwards.
  std::shared_ptr<LoopShared> loop;

  std::mutex mu;
  std::string wbuf;       ///< Serialized response bytes awaiting the socket.
  size_t wbuf_off = 0;    ///< Flushed prefix of wbuf.
  size_t inflight = 0;    ///< Submitted, not yet completed.
  bool closed = false;    ///< Loop dropped it; completions must discard.
  bool close_after_flush = false;  ///< Oversize: deliver the error, then close.
  bool stalled = false;   ///< Currently parked at the inflight cap.
  bool orderly = false;   ///< Finished cleanly (EOF / server-initiated close),
                          ///  not a peer reset — keeps the dropped counter
                          ///  meaning what it says.

  /// In-progress state transfer on this connection (loop-thread only, like
  /// rbuf). Dies with the connection: a sender that vanishes mid-transfer
  /// leaks nothing and publishes nothing.
  TransferAssembler xfer;
};

namespace {

/// The delegating constructors build the whole Backend BEFORE the real
/// constructor starts the loop threads — assigning hooks after delegation
/// would race the already-running loops.
NetFrontend::Backend ServerBackend(SelNetServer* server) {
  NetFrontend::Backend b;
  b.submit = [server](EstimateRequest req, SelNetServer::ResponseFn done) {
    server->SubmitWith(std::move(req), std::move(done));
  };
  b.submit_many = [server](std::vector<SelNetServer::Submission> batch) {
    server->SubmitMany(std::move(batch));
  };
  b.snapshot = [server] { return server->stats().Snapshot(); };
  b.slow = [server] { return server->stats().SlowSpans(); };
  b.install = [server](const std::string& model, const std::string& bytes) {
    return server->PublishFromBytes(model, bytes, "state transfer");
  };
  b.trace_sample_every = server->config().trace_sample_every;
  return b;
}

NetFrontend::Backend SubmitOnlyBackend(NetFrontend::SubmitFn submit) {
  NetFrontend::Backend b;
  b.submit = std::move(submit);
  return b;
}

NetFrontend::Backend RegistryBackend(ShardedRegistry* registry) {
  NetFrontend::Backend b;
  b.submit = [registry](EstimateRequest req, SelNetServer::ResponseFn done) {
    registry->SubmitWith(std::move(req), std::move(done));
  };
  b.snapshot = [registry] { return registry->AggregateSnapshot(); };
  b.slow = [registry] { return registry->SlowSpans(); };
  b.install = [registry](const std::string& model, const std::string& bytes) {
    return registry->PublishFromBytes(model, bytes, "state transfer");
  };
  b.trace_sample_every = registry->config().server.trace_sample_every;
  b.metrics = [registry] { return registry->MetricsText(); };
  b.events = [registry] { return registry->EventsJson(); };
  b.node_id = registry->config().node_id;
  return b;
}

}  // namespace

NetFrontend::NetFrontend(const FrontendConfig& cfg, SelNetServer* server)
    : NetFrontend(cfg, ServerBackend(server)) {}

NetFrontend::NetFrontend(const FrontendConfig& cfg, ShardedRegistry* registry)
    : NetFrontend(cfg, RegistryBackend(registry)) {}

NetFrontend::NetFrontend(const FrontendConfig& cfg, SubmitFn submit)
    : NetFrontend(cfg, SubmitOnlyBackend(std::move(submit))) {}

NetFrontend::NetFrontend(const FrontendConfig& cfg, Backend backend)
    : cfg_(cfg), backend_(std::move(backend)),
      shared_(std::make_shared<Shared>()) {
  if (cfg_.num_loops == 0) cfg_.num_loops = 1;
  per_loop_listeners_ = cfg_.so_reuseport && cfg_.num_loops > 1;
  util::TcpListener primary;
  bind_status_ = primary.Listen(cfg_.bind_address, cfg_.port, 64,
                                per_loop_listeners_);
  if (per_loop_listeners_ && !bind_status_.ok()) {
    // No SO_REUSEPORT here (or the kernel refused): fall back to the
    // sharded acceptor rather than failing the frontend.
    per_loop_listeners_ = false;
    bind_status_ = primary.Listen(cfg_.bind_address, cfg_.port, 64, false);
  }
  if (!bind_status_.ok()) return;
  port_ = primary.port();
  if (backend_.node_id.empty()) {
    // Default process identity: the bound endpoint. A shard_node's scraped
    // snapshot then names itself without any extra configuration.
    backend_.node_id = cfg_.bind_address + ":" + std::to_string(port_);
  }
  loops_.reserve(cfg_.num_loops);
  for (size_t i = 0; i < cfg_.num_loops; ++i) {
    auto loop = std::make_unique<LoopState>();
    loop->index = i;
    loop->shared = std::make_shared<LoopShared>();
    if (!loop->shared->wake.valid()) {
      bind_status_ = Status::IOError("NetFrontend: wake pipe unavailable");
      loops_.clear();
      return;
    }
    if (i == 0) {
      loop->listener = std::move(primary);
    } else if (per_loop_listeners_) {
      Status st = loop->listener.Listen(cfg_.bind_address, port_, 64, true);
      if (!st.ok()) {
        bind_status_ = st;
        loops_.clear();
        return;
      }
    }
    loops_.push_back(std::move(loop));
  }
  // Threads start only after every LoopState exists: loop 0's acceptor may
  // hand a connection to any other loop on its first round.
  for (auto& loop : loops_) {
    LoopState* lp = loop.get();
    lp->thread = std::thread([this, lp] { Loop(lp); });
  }
}

NetFrontend::~NetFrontend() { Stop(); }

Status NetFrontend::status() const { return bind_status_; }

void NetFrontend::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_.load()) return;
  stopping_.store(true);
  for (auto& loop : loops_) loop->shared->wake.Notify();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  stopped_.store(true);
}

FrontendStats NetFrontend::Stats() const {
  FrontendStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_refused = refused_.load(std::memory_order_relaxed);
  s.connections_dropped = dropped_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = shared_->responses.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.request_errors = shared_->request_errors.load(std::memory_order_relaxed);
  s.oversized = oversized_.load(std::memory_order_relaxed);
  s.backpressure_stalls = stalls_.load(std::memory_order_relaxed);
  s.admin_requests = admin_requests_.load(std::memory_order_relaxed);
  s.transfer_frames = xfer_frames_.load(std::memory_order_relaxed);
  s.transfer_bytes = xfer_bytes_.load(std::memory_order_relaxed);
  s.transfer_crc_rejections = xfer_crc_rejects_.load(std::memory_order_relaxed);
  s.transfer_installs = xfer_installs_.load(std::memory_order_relaxed);
  return s;
}

StatsSnapshot NetFrontend::FleetSnapshot() const {
  StatsSnapshot snap;
  if (backend_.snapshot) snap = backend_.snapshot();
  // The backend never sees encode (serialization happens in the completion,
  // after the server closed the span); merge the frontend's own histogram
  // into that stage so the wire view covers the full pipeline.
  util::HistogramSnapshot encode = shared_->encode_hist.Snapshot();
  if (!encode.empty()) {
    if (snap.stage_hists.size() < kNumStages) {
      snap.stage_hists.resize(kNumStages);
    }
    snap.stage_hists[size_t(Stage::kEncode)].Merge(encode);
  }
  if (snap.node_id.empty()) snap.node_id = backend_.node_id;
  return snap;
}

std::string NetFrontend::StatsJson() const {
  return StatsToJson(FleetSnapshot());
}

std::string NetFrontend::MetricsText() const {
  std::string text;
  if (backend_.snapshot) text += RenderStatsExposition(FleetSnapshot());
  const FrontendStats fs = Stats();
  auto counter = [&text](const char* name, const char* labels, uint64_t v) {
    text += name;
    text += labels;
    text += ' ';
    text += std::to_string(v);
    text += '\n';
  };
  text += "# TYPE selnet_frontend_connections_total counter\n";
  counter("selnet_frontend_connections_total", "{event=\"accepted\"}",
          fs.connections_accepted);
  counter("selnet_frontend_connections_total", "{event=\"refused\"}",
          fs.connections_refused);
  counter("selnet_frontend_connections_total", "{event=\"dropped\"}",
          fs.connections_dropped);
  text += "# TYPE selnet_frontend_requests_total counter\n";
  counter("selnet_frontend_requests_total", "", fs.requests);
  text += "# TYPE selnet_frontend_responses_total counter\n";
  counter("selnet_frontend_responses_total", "", fs.responses);
  text += "# TYPE selnet_frontend_parse_errors_total counter\n";
  counter("selnet_frontend_parse_errors_total", "", fs.parse_errors);
  text += "# TYPE selnet_frontend_request_errors_total counter\n";
  counter("selnet_frontend_request_errors_total", "", fs.request_errors);
  text += "# TYPE selnet_frontend_backpressure_stalls_total counter\n";
  counter("selnet_frontend_backpressure_stalls_total", "",
          fs.backpressure_stalls);
  text += "# TYPE selnet_frontend_admin_requests_total counter\n";
  counter("selnet_frontend_admin_requests_total", "", fs.admin_requests);
  text += "# TYPE selnet_transfer_rx_frames_total counter\n";
  counter("selnet_transfer_rx_frames_total", "", fs.transfer_frames);
  text += "# TYPE selnet_transfer_rx_bytes_total counter\n";
  counter("selnet_transfer_rx_bytes_total", "", fs.transfer_bytes);
  text += "# TYPE selnet_transfer_rx_crc_rejections_total counter\n";
  counter("selnet_transfer_rx_crc_rejections_total", "",
          fs.transfer_crc_rejections);
  text += "# TYPE selnet_transfer_installs_total counter\n";
  counter("selnet_transfer_installs_total", "", fs.transfer_installs);
  if (backend_.metrics) text += backend_.metrics();
  return text;
}

void NetFrontend::AcceptNew(LoopState* loop) {
  for (;;) {
    util::Fd conn_fd;
    Result<bool> accepted = loop->listener.Accept(&conn_fd);
    if (!accepted.ok() || !accepted.ValueOrDie()) return;
    if (conn_count_.load(std::memory_order_relaxed) >= cfg_.max_connections ||
        stopping_.load()) {
      // Refuse by closing: the client sees EOF immediately instead of a
      // connection that silently never answers.
      refused_.fetch_add(1, std::memory_order_relaxed);
      util::LogDebug("frontend: connection refused (%zu open, cap %zu)",
                     conn_count_.load(std::memory_order_relaxed),
                     cfg_.max_connections);
      continue;
    }
    util::SetNonBlocking(conn_fd.get());
    util::SetNoDelay(conn_fd.get());
    auto conn = std::make_shared<Conn>();
    conn->fd = std::move(conn_fd);
    // Pick the owning loop. With per-loop listeners the kernel already
    // balanced the accept, so it stays here; the sharded acceptor deals
    // round-robin across every loop (including itself).
    LoopState* owner = loop;
    if (!per_loop_listeners_ && loops_.size() > 1) {
      owner = loops_[accept_rr_.fetch_add(1, std::memory_order_relaxed) %
                     loops_.size()]
                  .get();
    }
    conn->loop = owner->shared;
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (owner == loop) {
      loop->conns.push_back(std::move(conn));
    } else {
      {
        std::lock_guard<std::mutex> hl(owner->handoff_mu);
        owner->handoff.push_back(std::move(conn));
      }
      owner->shared->wake.Notify();
    }
    util::LogDebug("frontend: connection accepted (%zu open)",
                   conn_count_.load(std::memory_order_relaxed));
  }
}

std::string NetFrontend::AdminReplyFor(const std::shared_ptr<Conn>& conn,
                                       const std::string& line) {
  admin_requests_.fetch_add(1, std::memory_order_relaxed);
  AdminRequest admin;
  Status parsed = ParseAdminLine(line, &admin);
  if (!parsed.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    return SerializeError(parsed.message(), ExtractTagBestEffort(line));
  }
  try {
    return DispatchAdmin(conn, admin);
  } catch (const std::exception& e) {
    // Admin input is client bytes off an open port; an exception out of a
    // handler (allocation failure on a hostile size, a parser edge) must
    // fail THIS command, not unwind through the loop thread and terminate
    // the process.
    return SerializeError(
        std::string("wire: admin command failed: ") + e.what(), admin.tag);
  }
}

void NetFrontend::HandleAdmin(const std::shared_ptr<Conn>& conn,
                              const std::string& line) {
  std::string reply = AdminReplyFor(conn, line);
  std::lock_guard<std::mutex> lock(conn->mu);
  if (!conn->closed) {
    conn->wbuf += reply;
    conn->wbuf += '\n';
  }
}

std::string NetFrontend::DispatchAdmin(const std::shared_ptr<Conn>& conn,
                                       const AdminRequest& admin) {
  const CommandInfo* info = FindCommand(admin.cmd);
  if (info == nullptr) {
    return SerializeError("wire: unknown admin cmd '" + admin.cmd + "'",
                          admin.tag);
  }
  // Exhaustive over the registry (no default: -Wswitch flags a Command added
  // without a handler). Every case below serves both framings — the caller
  // owns the line-vs-frame packaging of the returned reply.
  switch (info->cmd) {
    case Command::kEstimate:
      // "estimate" is a data-plane command; it reaches here only when a
      // client literally sends {"cmd":"estimate"}.
      return SerializeError("wire: 'estimate' is not an admin command",
                            admin.tag);
    case Command::kHello: {
      // Framing negotiation. The ack is written in the CURRENT framing (the
      // caller packages it before the flip takes effect on the next input);
      // an unrecognized proto name negotiates down to JSON rather than
      // erroring, so mixed-version fleets roll out cleanly.
      WireProto next = WireProto::kJson;
      uint8_t version = 1;
      if (admin.proto == WireProtoName(WireProto::kBinary)) {
        next = WireProto::kBinary;
        const uint64_t asked =
            admin.max_version == 0 ? 1 : admin.max_version;
        version = uint8_t(std::min<uint64_t>(asked, kWireVersion));
      }
      JsonWriter w;
      w.Field("ok", true);
      w.Field("proto", std::string(WireProtoName(next)));
      w.Field("version", uint64_t(version));
      if (admin.tag != 0) w.Field("tag", admin.tag);
      conn->proto = next;
      return w.Finish();
    }
    case Command::kStats: {
      if (!backend_.snapshot) {
        return SerializeError("wire: no stats backend attached", admin.tag);
      }
      JsonWriter w;
      w.RawField("stats", StatsJson());
      if (admin.tag != 0) w.Field("tag", admin.tag);
      return w.Finish();
    }
    case Command::kSlow: {
      if (!backend_.slow) {
        return SerializeError("wire: no stats backend attached", admin.tag);
      }
      std::string spans = "[";
      std::vector<SpanRecord> slow = backend_.slow();
      for (size_t i = 0; i < slow.size(); ++i) {
        if (i > 0) spans += ",";
        spans += slow[i].ToJson();
      }
      spans += "]";
      JsonWriter w;
      w.RawField("slow", spans);
      if (admin.tag != 0) w.Field("tag", admin.tag);
      return w.Finish();
    }
    case Command::kHealth: {
      // Liveness probe for failover layers: answered on the loop thread, so
      // a healthy-but-busy backend still acks (gray shards are detected by
      // DATA timeouts, not by this).
      JsonWriter w;
      w.Field("ok", true);
      if (admin.tag != 0) w.Field("tag", admin.tag);
      return w.Finish();
    }
    case Command::kMetrics: {
      // The multi-line exposition text travels as ONE JSON string value;
      // JsonQuote escapes the newlines and NetClient::Metrics restores them.
      JsonWriter w;
      w.Field("metrics", MetricsText());
      if (admin.tag != 0) w.Field("tag", admin.tag);
      return w.Finish();
    }
    case Command::kEvents: {
      if (!backend_.events) {
        return SerializeError("wire: no event ring attached", admin.tag);
      }
      JsonWriter w;
      w.RawField("events", backend_.events());
      if (admin.tag != 0) w.Field("tag", admin.tag);
      return w.Finish();
    }
    case Command::kStatsWire: {
      if (!backend_.snapshot) {
        return SerializeError("wire: no stats backend attached", admin.tag);
      }
      return SerializeStatsWire(FleetSnapshot(), admin.tag);
    }
    case Command::kXferBegin:
    case Command::kXferFrame:
    case Command::kXferCommit:
      return HandleTransfer(conn, admin);
  }
  return SerializeError("wire: unknown admin cmd '" + admin.cmd + "'",
                        admin.tag);
}

std::string NetFrontend::HandleTransfer(const std::shared_ptr<Conn>& conn,
                                        const AdminRequest& admin) {
  if (!backend_.install) {
    return SerializeError("wire: backend does not accept state transfers",
                          admin.tag);
  }
  Status st;
  uint64_t version = 0;
  bool committed = false;
  if (admin.cmd == "xfer_begin") {
    st = conn->xfer.Begin(admin.model, admin.size, admin.frames);
  } else if (admin.cmd == "xfer_frame") {
    Result<std::string> raw = util::Base64Decode(admin.data);
    if (!raw.ok()) {
      conn->xfer.Abort();
      st = raw.status();
    } else {
      const size_t frame_bytes = raw.ValueOrDie().size();
      st = conn->xfer.AddFrame(admin.seq, uint32_t(admin.crc),
                               raw.ValueOrDie());
      if (st.ok()) {
        xfer_frames_.fetch_add(1, std::memory_order_relaxed);
        xfer_bytes_.fetch_add(frame_bytes, std::memory_order_relaxed);
      }
    }
  } else {  // xfer_commit
    Result<std::string> bytes =
        conn->xfer.Commit(admin.model, uint32_t(admin.crc));
    if (!bytes.ok()) {
      st = bytes.status();
    } else {
      // Deserialize + publish on the loop thread: a model install is a
      // publish-time event (milliseconds, not per-request), and running it
      // here keeps the single-writer registry discipline trivially intact.
      Result<uint64_t> v = backend_.install(admin.model, bytes.ValueOrDie());
      if (v.ok()) {
        version = v.ValueOrDie();
        committed = true;
        xfer_installs_.fetch_add(1, std::memory_order_relaxed);
        util::LogDebug("frontend: state transfer installed route '%s' v%llu",
                       admin.model.c_str(),
                       static_cast<unsigned long long>(version));
      } else {
        st = v.status();
      }
    }
  }
  if (!st.ok()) {
    // The assembler types both the per-frame and whole-payload checksum
    // failures kIoError; everything else on this path (bad base64, ordering,
    // size lies) is kInvalidArgument.
    if (st.code() == util::StatusCode::kIoError) {
      xfer_crc_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeError(st.message(), admin.tag);
  }
  JsonWriter w;
  w.Field("ok", true);
  if (committed) w.Field("version", version);
  if (admin.tag != 0) w.Field("tag", admin.tag);
  return w.Finish();
}

SelNetServer::ResponseFn NetFrontend::MakeCompletion(
    const std::shared_ptr<Conn>& conn, uint64_t tag, WireProto proto,
    std::shared_ptr<RequestTrace> traced, bool wire_traced) {
  // The completion may run on a pool worker, on the loop thread itself (a
  // cache hit resolves inline under the submit), or after this frontend is
  // gone if Stop() timed out — so it captures only the shared Conn (which
  // carries its loop's wakeup) and the Shared block, never `this`, and
  // takes no frontend lock. The trace shared_ptr rides along so a sampled
  // request's encode (serialization) time lands in the Shared encode
  // histogram — the server has already closed and flushed the span by the
  // time this runs.
  auto shared = shared_;
  return [shared, conn, tag, proto, traced = std::move(traced), wire_traced](
             EstimateResponse&& resp, std::exception_ptr error) {
    const auto encode_start = std::chrono::steady_clock::now();
    std::string out;
    if (error) {
      // Overload sheds carry a machine-readable code (the ShedReasonName)
      // so clients get a typed rejection without string-matching messages;
      // unknown routes carry "not_found" for the same reason.
      ShedReason reason = ShedReasonFrom(error);
      std::string code;
      if (reason != ShedReason::kNone) {
        code = ShedReasonName(reason);
      } else if (IsNotFound(error)) {
        code = "not_found";
      }
      if (proto == WireProto::kBinary) {
        AppendErrorFrame(&out, ErrorText(error), code, tag);
      } else {
        out = code.empty() ? SerializeError(ErrorText(error), tag)
                           : SerializeError(ErrorText(error), code, tag);
        out += '\n';
      }
    } else {
      if (wire_traced && traced) {
        // The caller asked for the stage block: snapshot the span (the
        // server has already flushed its own copy) and ship every stage —
        // encode is structurally 0 (the block is serialized inside encode),
        // and the remote stages are 0 unless this process itself remoted
        // the request onward.
        SpanRecord span = traced->Finish(resp.model, tag);
        resp.stage_ms.assign(kNumStages, 0.0f);
        for (size_t i = 0; i < kNumStages; ++i) {
          resp.stage_ms[i] = float(span.stage_ms[i]);
        }
      }
      if (proto == WireProto::kBinary) {
        resp.tag = tag;
        AppendResponseFrame(&out, resp);
      } else {
        out = SerializeResponse(resp);
        out += '\n';
      }
    }
    if (traced) {
      shared->encode_hist.Record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - encode_start)
              .count());
    }
    if (error) shared->request_errors.fetch_add(1, std::memory_order_relaxed);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inflight > 0) --conn->inflight;
      if (!conn->closed) {
        conn->wbuf += out;
        enqueued = true;
      }
    }
    if (enqueued) shared->responses.fetch_add(1, std::memory_order_relaxed);
    conn->loop->Wake();
  };
}

void NetFrontend::SubmitLine(LoopState* loop,
                             const std::shared_ptr<Conn>& conn,
                             std::string line) {
  // Tolerate CRLF and blank keep-alive lines.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line.empty()) return;

  // Admin plane: answered synchronously on the loop thread, off the estimate
  // path — a metrics scrape never queues behind a batch.
  if (LineLooksAdmin(line)) {
    HandleAdmin(conn, line);
    return;
  }

  // Decode-stage sampling: the frontend decides BEFORE parsing so the parse
  // itself is on the span; the server honors an attached trace as-is.
  std::shared_ptr<RequestTrace> trace;
  if (backend_.trace_sample_every > 0 &&
      loop->trace_seq++ % backend_.trace_sample_every == 0) {
    trace = std::make_shared<RequestTrace>();
  }
  const auto decode_start = std::chrono::steady_clock::now();

  EstimateRequest req;
  Status parsed = ParseRequestLine(line, &req);
  if (!parsed.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    // Echo the tag even for a line that failed to parse (best-effort scan):
    // a pipelining client correlates replies by tag and must not wait
    // forever on a typo'd request.
    uint64_t tag = ExtractTagBestEffort(line);
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->wbuf += SerializeError(parsed.message(), tag);
    conn->wbuf += '\n';
    return;
  }

  // A wire-requested trace ("trace":true) is honored regardless of the
  // sampling counter: the caller — a coordinator propagating its own sampled
  // span, or a debugging client — wants THIS request timed, and gets the
  // span's stage block back in the response.
  if (!trace && req.wire_trace) trace = std::make_shared<RequestTrace>();
  if (trace) {
    trace->Observe(Stage::kDecode,
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - decode_start)
                       .count());
    req.trace = std::move(trace);
  }

  uint64_t tag = req.tag;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->inflight;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  auto traced = req.trace;
  const bool wire_traced = req.wire_trace;
  backend_.submit(std::move(req),
                  MakeCompletion(conn, tag, WireProto::kJson,
                                 std::move(traced), wire_traced));
}

void NetFrontend::SubmitFrame(LoopState* loop,
                              const std::shared_ptr<Conn>& conn,
                              const FrameHeader& hdr, const char* payload,
                              std::chrono::steady_clock::time_point now,
                              std::vector<SelNetServer::Submission>* batch) {
  std::shared_ptr<RequestTrace> trace;
  if (backend_.trace_sample_every > 0 &&
      loop->trace_seq++ % backend_.trace_sample_every == 0) {
    trace = std::make_shared<RequestTrace>();
  }
  // Untraced frames share the batch's one clock sample for deadline
  // anchoring; a traced frame pays for a fresh sample so its decode stage
  // is real.
  const auto decode_start = trace ? std::chrono::steady_clock::now() : now;

  EstimateRequest req;
  Status decoded = DecodeRequestPayload(payload, hdr.payload_len, now, &req);
  if (!decoded.ok()) {
    // Well-framed but undecodable payload: typed error with the frame's own
    // tag, connection stays open (framing is intact; the client just sent a
    // bad request).
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->closed) {
      AppendErrorFrame(&conn->wbuf, decoded.message(), "", hdr.tag);
    }
    return;
  }
  req.tag = hdr.tag;

  if (!trace && req.wire_trace) trace = std::make_shared<RequestTrace>();
  if (trace) {
    trace->Observe(Stage::kDecode,
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - decode_start)
                       .count());
    req.trace = std::move(trace);
  }

  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->inflight;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  auto traced = req.trace;
  const bool wire_traced = req.wire_trace;
  const uint64_t tag = req.tag;
  SelNetServer::Submission s;
  s.req = std::move(req);
  s.done = MakeCompletion(conn, tag, WireProto::kBinary, std::move(traced),
                          wire_traced);
  batch->push_back(std::move(s));
}

void NetFrontend::FlushBatch(std::vector<SelNetServer::Submission> batch) {
  if (batch.empty()) return;
  if (batch.size() > 1 && backend_.submit_many) {
    backend_.submit_many(std::move(batch));
    return;
  }
  for (auto& s : batch) backend_.submit(std::move(s.req), std::move(s.done));
}

void NetFrontend::RejectOversized(const std::shared_ptr<Conn>& conn) {
  // A runaway writer, not a typo: deliver the error, drop whatever request
  // bytes are buffered (later lines on this connection are not trusted),
  // and close once the reply flushes. Requests this size are three orders
  // of magnitude past any real query vector.
  oversized_.fetch_add(1, std::memory_order_relaxed);
  util::LogDebug("frontend: oversized request line rejected (cap %zu bytes)",
                 cfg_.max_line_bytes);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->wbuf += SerializeError(
      "wire: request line exceeds " + std::to_string(cfg_.max_line_bytes) +
          " bytes",
      0);
  conn->wbuf += '\n';
  conn->close_after_flush = true;
  conn->rbuf.clear();
}

bool NetFrontend::HandleReadable(LoopState* loop,
                                 const std::shared_ptr<Conn>& conn,
                                 bool read_socket) {
  if (read_socket) {
    char buf[16384];
    // Bounded work per round: one connection cannot monopolize the loop.
    for (int chunk = 0; chunk < 16; ++chunk) {
      Result<int64_t> n = util::ReadSome(conn->fd.get(), buf, sizeof(buf));
      if (!n.ok()) {
        if (n.status().code() == util::StatusCode::kOutOfRange) {
          break;  // EAGAIN.
        }
        return false;  // Peer reset.
      }
      if (n.ValueOrDie() == 0) {  // Orderly EOF.
        conn->orderly = true;
        return false;
      }
      conn->rbuf.append(buf, size_t(n.ValueOrDie()));
      if (size_t(n.ValueOrDie()) < sizeof(buf)) break;
    }
  }

  for (;;) {
    const WireProto proto = conn->proto;
    const bool keep = proto == WireProto::kJson
                          ? ProcessJsonBuffer(loop, conn)
                          : ProcessBinaryBuffer(loop, conn);
    if (!keep) return false;
    // A hello mid-buffer flipped the framing: whatever bytes follow the
    // hello line/frame belong to the NEW framing — reprocess them (the
    // flip consumed input, so this terminates).
    if (conn->proto == proto) return true;
  }
}

bool NetFrontend::ProcessJsonBuffer(LoopState* loop,
                                    const std::shared_ptr<Conn>& conn) {
  // A line that outgrew the cap without ever seeing its newline.
  if (conn->rbuf.size() > cfg_.max_line_bytes &&
      conn->rbuf.find('\n') == std::string::npos) {
    RejectOversized(conn);
    return true;  // Keep the conn until the error reply is flushed.
  }

  size_t start = 0;
  for (;;) {
    // Honor the inflight cap mid-buffer: leftover lines stay in rbuf and are
    // re-scanned once responses drain (the poll loop stops reading, TCP
    // pushes back on the peer).
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inflight >= cfg_.max_inflight_per_conn ||
          conn->wbuf.size() - conn->wbuf_off >=
              cfg_.max_write_backlog_bytes) {
        if (!conn->stalled) {
          conn->stalled = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      conn->stalled = false;
    }
    size_t nl = conn->rbuf.find('\n', start);
    if (nl == std::string::npos) break;
    if (nl - start > cfg_.max_line_bytes) {
      RejectOversized(conn);  // Clears rbuf; nothing left to erase below.
      return true;
    }
    std::string line = conn->rbuf.substr(start, nl - start);
    start = nl + 1;
    SubmitLine(loop, conn, std::move(line));
    // A hello just switched this connection to binary frames; the caller
    // re-dispatches the remaining buffer.
    if (conn->proto != WireProto::kJson) break;
  }
  conn->rbuf.erase(0, start);
  return true;
}

bool NetFrontend::ProcessBinaryBuffer(LoopState* loop,
                                      const std::shared_ptr<Conn>& conn) {
  std::vector<SelNetServer::Submission> batch;
  // One clock sample anchors every deadline decoded this round — a burst of
  // pipelined frames costs one clock read, not one per request.
  const auto now = std::chrono::steady_clock::now();
  size_t start = 0;
  while (conn->proto == WireProto::kBinary) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inflight >= cfg_.max_inflight_per_conn ||
          conn->wbuf.size() - conn->wbuf_off >=
              cfg_.max_write_backlog_bytes) {
        if (!conn->stalled) {
          conn->stalled = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      conn->stalled = false;
    }
    FrameHeader hdr;
    std::string err;
    const FramePeel peel =
        PeelFrameHeader(conn->rbuf.data() + start, conn->rbuf.size() - start,
                        cfg_.max_line_bytes, &hdr, &err);
    if (peel == FramePeel::kNeedMore) break;
    if (peel == FramePeel::kBad) {
      // Framing is lost (bad magic, bad version, hostile length): one typed
      // error frame with tag 0 — no frame to attribute it to — then close
      // once it flushes. Buffered bytes are dropped; resynchronizing inside
      // a byte stream we no longer trust is not worth the ambiguity.
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      util::LogDebug("frontend: bad binary frame (%s)", err.c_str());
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->closed) {
          AppendErrorFrame(&conn->wbuf, err, "bad_frame", 0);
          conn->close_after_flush = true;
        }
      }
      conn->rbuf.clear();
      start = 0;
      break;
    }
    const size_t total = kFrameHeaderBytes + size_t(hdr.payload_len);
    if (conn->rbuf.size() - start < total) break;  // Partial payload.
    const char* payload = conn->rbuf.data() + start + kFrameHeaderBytes;
    bool abort = false;
    switch (hdr.type) {
      case FrameType::kEstimate:
        SubmitFrame(loop, conn, hdr, payload, now, &batch);
        break;
      case FrameType::kAdmin: {
        // The admin plane rides binary unchanged: the payload is exactly
        // one JSON admin line, the reply exactly one kAdminReply frame
        // (echoing the request frame's tag in the header).
        std::string line(payload, hdr.payload_len);
        std::string reply = AdminReplyFor(conn, line);
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->closed) {
          AppendAdminFrame(&conn->wbuf, FrameType::kAdminReply, hdr.tag,
                           reply);
        }
        break;
      }
      case FrameType::kResponse:
      case FrameType::kError:
      case FrameType::kAdminReply: {
        // Server-to-client types from a client: protocol violation, same
        // policy as a bad frame.
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->closed) {
          AppendErrorFrame(&conn->wbuf, "wire: unexpected frame type",
                           "bad_frame", hdr.tag);
          conn->close_after_flush = true;
        }
        abort = true;
        break;
      }
    }
    if (abort) {
      conn->rbuf.clear();
      start = 0;
      break;
    }
    start += total;
  }
  conn->rbuf.erase(0, start);
  FlushBatch(std::move(batch));
  return true;
}

bool NetFrontend::HandleWritable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  while (conn->wbuf_off < conn->wbuf.size()) {
    Result<int64_t> n =
        util::WriteSome(conn->fd.get(), conn->wbuf.data() + conn->wbuf_off,
                        conn->wbuf.size() - conn->wbuf_off);
    if (!n.ok()) return false;  // EPIPE/reset: peer is gone.
    if (n.ValueOrDie() == 0) break;  // Send buffer full; wait for POLLOUT.
    conn->wbuf_off += size_t(n.ValueOrDie());
  }
  if (conn->wbuf_off == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wbuf_off = 0;
    // Close only once EARLIER requests' responses have also come back and
    // flushed — accepted work is answered even on a connection being closed
    // for a later oversized line. (inflight is read under the same mutex
    // completions decrement it under; a decrement after this check wakes the
    // poller, which re-runs HandleWritable and closes then.)
    if (conn->close_after_flush && conn->inflight == 0) {
      conn->orderly = true;
      return false;
    }
  }
  return true;
}

void NetFrontend::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
  }
  conn->fd.Close();
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
}

bool NetFrontend::DrainComplete(LoopState* loop) {
  for (const auto& conn : loop->conns) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight > 0) return false;
    if (conn->wbuf_off < conn->wbuf.size()) return false;
  }
  return true;
}

void NetFrontend::Loop(LoopState* loop) {
  using Clock = std::chrono::steady_clock;
  bool draining = false;
  Clock::time_point drain_deadline{};
  const std::shared_ptr<LoopShared>& shared = loop->shared;

  for (;;) {
    // Adopt connections the acceptor loop dealt to this one.
    {
      std::lock_guard<std::mutex> hl(loop->handoff_mu);
      for (auto& conn : loop->handoff) loop->conns.push_back(std::move(conn));
      loop->handoff.clear();
    }
    if (!draining && stopping_.load()) {
      // Graceful drain: no new connections, no new request bytes; in-flight
      // responses still compute and flush below.
      draining = true;
      drain_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(cfg_.drain_timeout_s));
      loop->listener.Close();
    }
    if (draining && (DrainComplete(loop) || Clock::now() >= drain_deadline)) {
      break;
    }

    // Arm the wakeup BEFORE reading per-conn write state: a completion that
    // lands after this point either shows up in the entries below or pays
    // the one pipe write that interrupts the poll. A completion burst while
    // we were processing (disarmed) costs zero syscalls.
    shared->armed.store(true, std::memory_order_seq_cst);

    std::vector<util::PollEntry> entries;
    entries.reserve(loop->conns.size() + 2);
    util::PollEntry wake_entry;
    wake_entry.fd = shared->wake.read_fd();
    wake_entry.want_read = true;
    entries.push_back(wake_entry);
    size_t listener_slot = 0;
    if (loop->listener.listening()) {
      util::PollEntry le;
      le.fd = loop->listener.fd();
      le.want_read = true;
      listener_slot = entries.size();
      entries.push_back(le);
    }
    size_t conn_base = entries.size();
    // Entries cover exactly the conns present NOW; AcceptNew below may
    // append more, which are handled starting next round.
    const size_t polled_conns = loop->conns.size();
    for (const auto& conn : loop->conns) {
      util::PollEntry ce;
      ce.fd = conn->fd.get();
      std::lock_guard<std::mutex> lock(conn->mu);
      ce.want_read = !draining && !conn->close_after_flush &&
                     conn->inflight < cfg_.max_inflight_per_conn &&
                     conn->wbuf.size() - conn->wbuf_off <
                         cfg_.max_write_backlog_bytes;
      ce.want_write = conn->wbuf_off < conn->wbuf.size();
      entries.push_back(ce);
    }

    Result<int> ready = util::Poll(&entries, draining ? 10 : 100);
    shared->armed.store(false, std::memory_order_relaxed);
    if (!ready.ok()) break;  // poll() itself failing is unrecoverable here.
    shared->wake.Drain();
    if (loop->listener.listening() && entries[listener_slot].readable) {
      AcceptNew(loop);
    }

    std::vector<std::shared_ptr<Conn>> alive;
    alive.reserve(loop->conns.size());
    for (size_t i = 0; i < polled_conns; ++i) {
      const auto& conn = loop->conns[i];
      const util::PollEntry& e = entries[conn_base + i];
      bool keep = !e.error;
      if (keep && e.readable) {
        keep = HandleReadable(loop, conn, /*read_socket=*/true);
      }
      // A stalled conn's buffered input re-scans once responses drain —
      // WITHOUT touching the socket, so the stop-reading backpressure holds
      // (reading here would let a greedy client grow rbuf unboundedly).
      if (keep && !e.readable && !conn->rbuf.empty()) {
        keep = HandleReadable(loop, conn, /*read_socket=*/false);
      }
      if (keep) keep = HandleWritable(conn);
      if (keep) {
        alive.push_back(conn);
      } else {
        // Only abnormal ends count as drops; an orderly client EOF or a
        // server-initiated close is a healthy disconnect.
        if (!conn->orderly) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
          util::LogDebug("frontend: connection dropped (peer reset)");
        } else {
          util::LogDebug("frontend: connection closed");
        }
        CloseConn(conn);
      }
    }
    // Connections accepted this round (no poll entries yet).
    for (size_t i = polled_conns; i < loop->conns.size(); ++i) {
      alive.push_back(loop->conns[i]);
    }
    loop->conns.swap(alive);
  }

  loop->listener.Close();
  for (const auto& conn : loop->conns) CloseConn(conn);
  loop->conns.clear();
}

// -------------------------------------------------------------- NetClient ---

Status NetClient::Connect(const std::string& address, uint16_t port) {
  Result<util::Fd> fd = util::TcpConnect(address, port);
  if (!fd.ok()) return fd.status();
  fd_ = std::move(fd).ValueOrDie();
  rbuf_.clear();
  address_ = address;
  port_ = port;
  proto_ = WireProto::kJson;  // Fresh connections speak JSON until Hello.
  return Status::OK();
}

Status NetClient::Reconnect() {
  if (port_ == 0) return Status::Internal("NetClient: never connected");
  fd_.Close();
  return Connect(address_, port_);
}

Status NetClient::SendRaw(const std::string& bytes) {
  if (!fd_.valid()) return Status::Internal("NetClient: not connected");
  return util::WriteAll(fd_.get(), bytes.data(), bytes.size());
}

Result<std::string> NetClient::ReadLine() {
  if (!fd_.valid()) return Status::Internal("NetClient: not connected");
  // The receive bound covers the WHOLE line, anchored here: a server that
  // trickles one byte per poll interval cannot stretch it.
  const bool bounded = recv_timeout_ms_ > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(recv_timeout_ms_);
  for (;;) {
    size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      return line;
    }
    if (bounded) {
      auto remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded("NetClient: no response within " +
                                        std::to_string(recv_timeout_ms_) +
                                        " ms");
      }
      // The socket is blocking; poll first so a silent server costs the
      // remaining budget, not forever. A hangup falls through to ReadSome,
      // which reports the EOF / reset as usual.
      std::vector<util::PollEntry> entries(1);
      entries[0].fd = fd_.get();
      entries[0].want_read = true;
      Result<int> ready = util::Poll(&entries, int(remaining_ms));
      if (!ready.ok()) return ready.status();
      if (!entries[0].readable && !entries[0].error) continue;
    }
    char buf[4096];
    Result<int64_t> n = util::ReadSome(fd_.get(), buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (n.ValueOrDie() == 0) {
      return Status::IOError("NetClient: connection closed by server");
    }
    rbuf_.append(buf, size_t(n.ValueOrDie()));
  }
}

Status NetClient::FillBuffer(size_t need) {
  // Same timeout contract as ReadLine, anchored per call.
  const bool bounded = recv_timeout_ms_ > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(recv_timeout_ms_);
  while (rbuf_.size() < need) {
    if (bounded) {
      auto remaining_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded("NetClient: no response within " +
                                        std::to_string(recv_timeout_ms_) +
                                        " ms");
      }
      std::vector<util::PollEntry> entries(1);
      entries[0].fd = fd_.get();
      entries[0].want_read = true;
      Result<int> ready = util::Poll(&entries, int(remaining_ms));
      if (!ready.ok()) return ready.status();
      if (!entries[0].readable && !entries[0].error) continue;
    }
    char buf[4096];
    Result<int64_t> n = util::ReadSome(fd_.get(), buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (n.ValueOrDie() == 0) {
      return Status::IOError("NetClient: connection closed by server");
    }
    rbuf_.append(buf, size_t(n.ValueOrDie()));
  }
  return Status::OK();
}

Result<std::string> NetClient::ReadFrame(FrameHeader* hdr) {
  if (!fd_.valid()) return Status::Internal("NetClient: not connected");
  SEL_RETURN_NOT_OK(FillBuffer(kFrameHeaderBytes));
  std::string err;
  // Replies can be big (a metrics exposition inside an admin frame); the
  // client-side sanity cap only guards against garbage lengths.
  const FramePeel peel =
      PeelFrameHeader(rbuf_.data(), rbuf_.size(), size_t(1) << 26, hdr, &err);
  if (peel != FramePeel::kFrame) {
    return Status::IOError("NetClient: " +
                           (err.empty() ? std::string("short frame") : err));
  }
  SEL_RETURN_NOT_OK(FillBuffer(kFrameHeaderBytes + hdr->payload_len));
  std::string payload = rbuf_.substr(kFrameHeaderBytes, hdr->payload_len);
  rbuf_.erase(0, kFrameHeaderBytes + hdr->payload_len);
  return payload;
}

Status NetClient::Hello(WireProto preferred, uint8_t max_version) {
  if (!fd_.valid()) return Status::Internal("NetClient: not connected");
  if (preferred == WireProto::kJson) {
    proto_ = WireProto::kJson;
    return Status::OK();
  }
  SEL_RETURN_NOT_OK(SendRaw(SerializeHello(preferred, max_version) + "\n"));
  Result<std::string> line = ReadLine();
  if (!line.ok()) return line.status();
  Result<HelloResult> hello = ParseHelloReply(line.ValueOrDie());
  if (!hello.ok()) {
    // An older server answers with an unknown-cmd error and keeps the
    // connection open — that is the designed JSON fallback, not a failure.
    proto_ = WireProto::kJson;
    return Status::OK();
  }
  proto_ = hello.ValueOrDie().proto;
  return Status::OK();
}

Result<std::string> NetClient::AdminRoundtrip(const std::string& line,
                                              uint64_t tag) {
  if (proto_ == WireProto::kBinary) {
    std::string out;
    AppendAdminFrame(&out, FrameType::kAdmin, tag, line);
    SEL_RETURN_NOT_OK(SendRaw(out));
    FrameHeader hdr;
    Result<std::string> payload = ReadFrame(&hdr);
    if (!payload.ok()) return payload.status();
    if (hdr.type == FrameType::kError) {
      std::string code, message;
      SEL_RETURN_NOT_OK(DecodeErrorPayload(payload.ValueOrDie().data(),
                                           payload.ValueOrDie().size(), &code,
                                           &message));
      return StatusFromWireError(code, message);
    }
    if (hdr.type != FrameType::kAdminReply) {
      return Status::IOError("NetClient: unexpected frame type in admin reply");
    }
    return payload;
  }
  SEL_RETURN_NOT_OK(SendRaw(line + "\n"));
  return ReadLine();
}

Result<ClientReply> NetClient::Call(const ClientCall& call) {
  ClientReply reply;
  if (call.cmd == Command::kEstimate) {
    if (proto_ == WireProto::kBinary) {
      std::string out;
      AppendRequestFrame(&out, call.estimate);
      SEL_RETURN_NOT_OK(SendRaw(out));
      FrameHeader hdr;
      Result<std::string> payload = ReadFrame(&hdr);
      if (!payload.ok()) return payload.status();
      if (hdr.type == FrameType::kError) {
        std::string code, message;
        SEL_RETURN_NOT_OK(DecodeErrorPayload(payload.ValueOrDie().data(),
                                             payload.ValueOrDie().size(),
                                             &code, &message));
        return StatusFromWireError(code, message);
      }
      if (hdr.type != FrameType::kResponse) {
        return Status::IOError("NetClient: unexpected frame type in reply");
      }
      SEL_RETURN_NOT_OK(DecodeResponsePayload(payload.ValueOrDie().data(),
                                              payload.ValueOrDie().size(),
                                              &reply.estimate));
      reply.estimate.tag = hdr.tag;
      return reply;
    }
    SEL_RETURN_NOT_OK(SendRaw(SerializeRequest(call.estimate) + "\n"));
    Result<std::string> line = ReadLine();
    if (!line.ok()) return line.status();
    SEL_RETURN_NOT_OK(ParseResponseLine(line.ValueOrDie(), &reply.estimate));
    return reply;
  }
  if (call.cmd == Command::kHello) {
    const WireProto preferred = call.admin.proto == "json"
                                    ? WireProto::kJson
                                    : WireProto::kBinary;
    const uint8_t max_version = call.admin.max_version == 0
                                    ? kWireVersion
                                    : uint8_t(call.admin.max_version);
    SEL_RETURN_NOT_OK(Hello(preferred, max_version));
    reply.body = WireProtoName(proto_);
    return reply;
  }
  // Admin plane: serialize the registry command, round-trip it in the
  // negotiated framing, parse what structure the reply has.
  AdminRequest admin = call.admin;
  admin.cmd = FindCommand(call.cmd)->name;
  Result<std::string> r = AdminRoundtrip(SerializeAdminRequest(admin),
                                         admin.tag);
  if (!r.ok()) return r.status();
  reply.body = std::move(r).ValueOrDie();
  switch (call.cmd) {
    case Command::kMetrics: {
      Result<std::string> text = ParseMetricsReply(reply.body);
      if (!text.ok()) return text.status();
      reply.text = std::move(text).ValueOrDie();
      break;
    }
    case Command::kStatsWire: {
      Result<StatsSnapshot> snap = ParseStatsWireLine(reply.body);
      if (!snap.ok()) return snap.status();
      reply.stats = std::move(snap).ValueOrDie();
      break;
    }
    case Command::kHealth:
    case Command::kXferBegin:
    case Command::kXferFrame:
    case Command::kXferCommit:
      SEL_RETURN_NOT_OK(ParseAckLine(reply.body, &reply.version));
      break;
    default:
      // kStats / kSlow / kEvents: the raw reply line IS the result.
      break;
  }
  return reply;
}

Result<std::string> NetClient::Admin(const std::string& cmd, uint64_t tag) {
  // Raw surface: returns the reply line even when it is an error reply
  // (failure-path tests assert on it), and passes unknown command names
  // through untouched — only the framing is negotiated.
  JsonWriter w;
  w.Field("cmd", cmd);
  if (tag != 0) w.Field("tag", tag);
  return AdminRoundtrip(w.Finish(), tag);
}

Result<std::string> NetClient::Metrics(uint64_t tag) {
  ClientCall call;
  call.cmd = Command::kMetrics;
  call.admin.tag = tag;
  Result<ClientReply> r = Call(call);
  if (!r.ok()) return r.status();
  return std::move(r).ValueOrDie().text;
}

Result<StatsSnapshot> NetClient::StatsWire(uint64_t tag) {
  ClientCall call;
  call.cmd = Command::kStatsWire;
  call.admin.tag = tag;
  Result<ClientReply> r = Call(call);
  if (!r.ok()) return r.status();
  return std::move(r).ValueOrDie().stats;
}

Result<EstimateResponse> NetClient::Roundtrip(const EstimateRequest& req) {
  ClientCall call;
  call.estimate = req;
  Result<ClientReply> r = Call(call);
  if (!r.ok()) return r.status();
  return std::move(r).ValueOrDie().estimate;
}

}  // namespace selnet::serve
