#include "serve/estimate_cache.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace selnet::serve {

EstimateCache::EstimateCache(const CacheConfig& cfg) : cfg_(cfg) {
  SEL_CHECK(cfg_.capacity > 0);
  size_t shards = std::max<size_t>(1, std::min(cfg_.shards, cfg_.capacity));
  scalars_.Init(cfg_.capacity, shards);
  size_t curve_cap = std::max<size_t>(1, cfg_.curve_capacity);
  curves_.Init(curve_cap, std::max<size_t>(1, std::min(cfg_.shards, curve_cap)));
}

namespace {

// FNV-1a over 64-bit words; inputs are quantized to integers first so that
// bit-identical floats (and floats within one quantum) map to the same key.
inline uint64_t FnvMix(uint64_t h, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffULL;
    h *= kPrime;
  }
  return h;
}

inline int64_t Quantize(float v, float quantum) {
  return static_cast<int64_t>(std::llround(double(v) / double(quantum)));
}

constexpr uint64_t kOffset = 14695981039346656037ULL;
// Distinguishes curve keys from scalar keys built over the same inputs.
constexpr uint64_t kCurveSalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

uint64_t EstimateCache::MakeKey(uint64_t model_version, const float* x,
                                size_t dim, float t) const {
  uint64_t h = FnvMix(kOffset, model_version);
  h = FnvMix(h, static_cast<uint64_t>(dim));
  for (size_t i = 0; i < dim; ++i) {
    h = FnvMix(h, static_cast<uint64_t>(Quantize(x[i], cfg_.query_quantum)));
  }
  h = FnvMix(h, static_cast<uint64_t>(Quantize(t, cfg_.threshold_quantum)));
  return h;
}

uint64_t EstimateCache::MakeCurveKey(uint64_t model_version, const float* x,
                                     size_t dim) const {
  uint64_t h = FnvMix(kOffset, kCurveSalt);
  h = FnvMix(h, model_version);
  h = FnvMix(h, static_cast<uint64_t>(dim));
  for (size_t i = 0; i < dim; ++i) {
    h = FnvMix(h, static_cast<uint64_t>(Quantize(x[i], cfg_.query_quantum)));
  }
  return h;
}

bool EstimateCache::Lookup(uint64_t key, float* value) {
  return scalars_.Lookup(key, value);
}

void EstimateCache::Insert(uint64_t key, float value) {
  scalars_.Insert(key, value);
}

bool EstimateCache::LookupCurve(uint64_t key, CurveEntry* entry) {
  return curves_.Lookup(key, entry);
}

void EstimateCache::InsertCurve(uint64_t key, CurveEntry entry) {
  curves_.Insert(key, std::move(entry));
}

void EstimateCache::Clear() {
  scalars_.Clear();
  curves_.Clear();
}

}  // namespace selnet::serve
