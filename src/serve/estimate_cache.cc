#include "serve/estimate_cache.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace selnet::serve {

EstimateCache::EstimateCache(const CacheConfig& cfg) : cfg_(cfg) {
  SEL_CHECK(cfg_.capacity > 0);
  size_t shards = std::max<size_t>(1, std::min(cfg_.shards, cfg_.capacity));
  per_shard_capacity_ = (cfg_.capacity + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
}

namespace {

// FNV-1a over 64-bit words; inputs are quantized to integers first so that
// bit-identical floats (and floats within one quantum) map to the same key.
inline uint64_t FnvMix(uint64_t h, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffULL;
    h *= kPrime;
  }
  return h;
}

inline int64_t Quantize(float v, float quantum) {
  return static_cast<int64_t>(std::llround(double(v) / double(quantum)));
}

}  // namespace

uint64_t EstimateCache::MakeKey(uint64_t model_version, const float* x,
                                size_t dim, float t) const {
  constexpr uint64_t kOffset = 14695981039346656037ULL;
  uint64_t h = FnvMix(kOffset, model_version);
  h = FnvMix(h, static_cast<uint64_t>(dim));
  for (size_t i = 0; i < dim; ++i) {
    h = FnvMix(h, static_cast<uint64_t>(Quantize(x[i], cfg_.query_quantum)));
  }
  h = FnvMix(h, static_cast<uint64_t>(Quantize(t, cfg_.threshold_quantum)));
  return h;
}

bool EstimateCache::Lookup(uint64_t key, float* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EstimateCache::Insert(uint64_t key, float value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, value);
  shard.index[key] = shard.lru.begin();
}

void EstimateCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t EstimateCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace selnet::serve
