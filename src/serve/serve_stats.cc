#include "serve/serve_stats.h"

#include <algorithm>

#include "tensor/kernel_dispatch.h"
#include "tensor/pack_cache.h"
#include "util/table.h"

namespace selnet::serve {

ServeStats::ServeStats(size_t reservoir_size)
    : latencies_ms_(std::max<size_t>(1, reservoir_size), 0.0),
      start_(std::chrono::steady_clock::now()) {}

void ServeStats::RecordBatch(size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch_size, std::memory_order_relaxed);
}

void ServeStats::RecordLatencyMs(double ms) {
  std::lock_guard<std::mutex> lock(lat_mu_);
  latencies_ms_[lat_next_] = ms;
  lat_next_ = (lat_next_ + 1) % latencies_ms_.size();
  ++lat_count_;
}

void ServeStats::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  batched_requests_.store(0, std::memory_order_relaxed);
  sweeps_.store(0, std::memory_order_relaxed);
  sweep_fastpath_.store(0, std::memory_order_relaxed);
  curve_hits_.store(0, std::memory_order_relaxed);
  curve_misses_.store(0, std::memory_order_relaxed);
  swaps_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(lat_mu_);
  lat_next_ = 0;
  lat_count_ = 0;
  start_ = std::chrono::steady_clock::now();
}

namespace {

double PercentileOf(std::vector<double>* sorted_inout, double p) {
  if (sorted_inout->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * (sorted_inout->size() - 1) + 0.5);
  std::nth_element(sorted_inout->begin(), sorted_inout->begin() + idx,
                   sorted_inout->end());
  return (*sorted_inout)[idx];
}

}  // namespace

StatsSnapshot ServeStats::Snapshot() const {
  StatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.sweep_fastpath = sweep_fastpath_.load(std::memory_order_relaxed);
  s.curve_hits = curve_hits_.load(std::memory_order_relaxed);
  s.curve_misses = curve_misses_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  // Kernel-engine observability: which micro-kernel dispatch resolved to and
  // how often the version-keyed pack cache spared a repack. Process-wide
  // (the packs hang off shared model parameters, not one server).
  tensor::PackStatsSnapshot pack = tensor::PackStats();
  s.pack_hits = pack.hits;
  s.pack_builds = pack.builds;
  s.gemm_kernel = tensor::ActiveKernel().name;

  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    s.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    size_t filled = std::min<uint64_t>(lat_count_, latencies_ms_.size());
    samples.assign(latencies_ms_.begin(), latencies_ms_.begin() + filled);
  }
  if (s.elapsed_seconds > 0) s.qps = double(s.requests) / s.elapsed_seconds;
  uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) s.cache_hit_rate = double(s.cache_hits) / double(lookups);
  if (s.batches > 0) {
    s.avg_batch_size = double(s.batched_requests) / double(s.batches);
  }
  if (!samples.empty()) {
    double sum = 0.0;
    for (double v : samples) sum += v;
    s.latency_mean_ms = sum / samples.size();
    s.latency_p50_ms = PercentileOf(&samples, 0.50);
    s.latency_p99_ms = PercentileOf(&samples, 0.99);
  }
  return s;
}

std::string ServeStats::Report(const std::string& title) const {
  StatsSnapshot s = Snapshot();
  util::AsciiTable table({"metric", "value"});
  table.AddRow({"requests", std::to_string(s.requests)});
  table.AddRow({"qps", util::AsciiTable::Num(s.qps, 1)});
  table.AddRow({"latency p50 (ms)", util::AsciiTable::Num(s.latency_p50_ms, 4)});
  table.AddRow({"latency p99 (ms)", util::AsciiTable::Num(s.latency_p99_ms, 4)});
  table.AddRow({"latency mean (ms)",
                util::AsciiTable::Num(s.latency_mean_ms, 4)});
  table.AddRow({"cache hit rate", util::AsciiTable::Num(s.cache_hit_rate, 4)});
  table.AddRow({"batches", std::to_string(s.batches)});
  table.AddRow({"avg batch size", util::AsciiTable::Num(s.avg_batch_size, 2)});
  table.AddRow({"sweeps", std::to_string(s.sweeps)});
  table.AddRow({"sweep fast-path", std::to_string(s.sweep_fastpath)});
  table.AddRow({"curve-cache hits", std::to_string(s.curve_hits)});
  table.AddRow({"curve-cache misses", std::to_string(s.curve_misses)});
  table.AddRow({"model swaps", std::to_string(s.swaps)});
  table.AddRow({"gemm kernel", s.gemm_kernel});
  table.AddRow({"pack-cache hits", std::to_string(s.pack_hits)});
  table.AddRow({"pack builds", std::to_string(s.pack_builds)});
  return title + "\n" + table.ToString();
}

}  // namespace selnet::serve
