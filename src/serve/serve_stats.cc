#include "serve/serve_stats.h"

#include <algorithm>

#include "tensor/kernel_dispatch.h"
#include "tensor/pack_cache.h"
#include "util/table.h"

namespace selnet::serve {

namespace {

double PercentileOf(std::vector<double>* sorted_inout, double p) {
  if (sorted_inout->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * (sorted_inout->size() - 1) + 0.5);
  std::nth_element(sorted_inout->begin(), sorted_inout->begin() + idx,
                   sorted_inout->end());
  return (*sorted_inout)[idx];
}

}  // namespace

// ------------------------------------------------------- LatencyReservoir ---

LatencyReservoir::LatencyReservoir(size_t capacity)
    : samples_(std::max<size_t>(1, capacity), 0.0) {}

void LatencyReservoir::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_[next_] = ms;
  next_ = (next_ + 1) % samples_.size();
  ++count_;
}

void LatencyReservoir::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
}

void LatencyReservoir::CopySamples(std::vector<double>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t filled = std::min<uint64_t>(count_, samples_.size());
  out->assign(samples_.begin(), samples_.begin() + filled);
}

// ------------------------------------------------------------- RouteStats ---

void ServeStats::RouteStats::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  latency_.Reset();
}

RouteSnapshot ServeStats::RouteStats::Snapshot(const std::string& name) const {
  RouteSnapshot s;
  s.route = name;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = hits_.load(std::memory_order_relaxed);
  s.cache_misses = misses_.load(std::memory_order_relaxed);
  uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) s.cache_hit_rate = double(s.cache_hits) / double(lookups);
  std::vector<double> samples;
  latency_.CopySamples(&samples);
  if (!samples.empty()) {
    s.latency_p50_ms = PercentileOf(&samples, 0.50);
    s.latency_p99_ms = PercentileOf(&samples, 0.99);
  }
  return s;
}

// -------------------------------------------------------------- ServeStats ---

ServeStats::ServeStats(size_t reservoir_size)
    : route_reservoir_(std::max<size_t>(1, reservoir_size / 4)),
      latency_(reservoir_size),
      start_(std::chrono::steady_clock::now()) {}

void ServeStats::RecordBatch(size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch_size, std::memory_order_relaxed);
}

void ServeStats::RecordPipelinePublish() {
  pipeline_publishes_.fetch_add(1, std::memory_order_relaxed);
  int64_t ns;
  {
    std::lock_guard<std::mutex> lock(start_mu_);
    ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
             .count();
  }
  last_publish_ns_.store(ns, std::memory_order_relaxed);
}

ServeStats::RouteStats* ServeStats::Route(const std::string& route) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  auto& slot = routes_[route];
  if (!slot) slot = std::make_unique<RouteStats>(route_reservoir_);
  return slot.get();
}

void ServeStats::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  batched_requests_.store(0, std::memory_order_relaxed);
  sweeps_.store(0, std::memory_order_relaxed);
  sweep_fastpath_.store(0, std::memory_order_relaxed);
  curve_hits_.store(0, std::memory_order_relaxed);
  curve_misses_.store(0, std::memory_order_relaxed);
  swaps_.store(0, std::memory_order_relaxed);
  update_ops_.store(0, std::memory_order_relaxed);
  update_ops_applied_.store(0, std::memory_order_relaxed);
  retrains_.store(0, std::memory_order_relaxed);
  retrain_epochs_.store(0, std::memory_order_relaxed);
  pipeline_publishes_.store(0, std::memory_order_relaxed);
  last_drift_.store(0.0, std::memory_order_relaxed);
  last_publish_ns_.store(-1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    for (auto& [name, rs] : routes_) rs->Reset();
  }
  latency_.Reset();
  std::lock_guard<std::mutex> lock(start_mu_);
  start_ = std::chrono::steady_clock::now();
}

StatsSnapshot ServeStats::Snapshot() const {
  StatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.sweep_fastpath = sweep_fastpath_.load(std::memory_order_relaxed);
  s.curve_hits = curve_hits_.load(std::memory_order_relaxed);
  s.curve_misses = curve_misses_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.update_ops = update_ops_.load(std::memory_order_relaxed);
  s.update_ops_applied = update_ops_applied_.load(std::memory_order_relaxed);
  s.retrains = retrains_.load(std::memory_order_relaxed);
  s.retrain_epochs = retrain_epochs_.load(std::memory_order_relaxed);
  s.pipeline_publishes = pipeline_publishes_.load(std::memory_order_relaxed);
  s.last_drift = last_drift_.load(std::memory_order_relaxed);
  // Kernel-engine observability: which micro-kernel dispatch resolved to and
  // how often the version-keyed pack cache spared a repack. Process-wide
  // (the packs hang off shared model parameters, not one server).
  tensor::PackStatsSnapshot pack = tensor::PackStats();
  s.pack_hits = pack.hits;
  s.pack_builds = pack.builds;
  s.gemm_kernel = tensor::ActiveKernel().name;

  std::vector<double> samples;
  latency_.CopySamples(&samples);
  {
    std::lock_guard<std::mutex> lock(start_mu_);
    s.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
  }
  int64_t publish_ns = last_publish_ns_.load(std::memory_order_relaxed);
  if (publish_ns >= 0) {
    s.last_publish_age_s = s.elapsed_seconds - double(publish_ns) * 1e-9;
  }
  if (s.elapsed_seconds > 0) s.qps = double(s.requests) / s.elapsed_seconds;
  uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) s.cache_hit_rate = double(s.cache_hits) / double(lookups);
  if (s.batches > 0) {
    s.avg_batch_size = double(s.batched_requests) / double(s.batches);
  }
  if (!samples.empty()) {
    double sum = 0.0;
    for (double v : samples) sum += v;
    s.latency_mean_ms = sum / samples.size();
    s.latency_p50_ms = PercentileOf(&samples, 0.50);
    s.latency_p99_ms = PercentileOf(&samples, 0.99);
  }
  // Copy the stable (name, accumulator) pairs under the map lock, then do
  // the percentile work after releasing it — Route() sits on the request
  // admission path and must never wait behind a metrics scrape.
  std::vector<std::pair<std::string, const RouteStats*>> route_ptrs;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    route_ptrs.reserve(routes_.size());
    for (const auto& [name, rs] : routes_) route_ptrs.emplace_back(name, rs.get());
  }
  s.routes.reserve(route_ptrs.size());
  for (const auto& [name, rs] : route_ptrs) s.routes.push_back(rs->Snapshot(name));
  return s;
}

std::string ServeStats::Report(const std::string& title) const {
  StatsSnapshot s = Snapshot();
  util::AsciiTable table({"metric", "value"});
  table.AddRow({"requests", std::to_string(s.requests)});
  table.AddRow({"qps", util::AsciiTable::Num(s.qps, 1)});
  table.AddRow({"latency p50 (ms)", util::AsciiTable::Num(s.latency_p50_ms, 4)});
  table.AddRow({"latency p99 (ms)", util::AsciiTable::Num(s.latency_p99_ms, 4)});
  table.AddRow({"latency mean (ms)",
                util::AsciiTable::Num(s.latency_mean_ms, 4)});
  table.AddRow({"cache hit rate", util::AsciiTable::Num(s.cache_hit_rate, 4)});
  table.AddRow({"batches", std::to_string(s.batches)});
  table.AddRow({"avg batch size", util::AsciiTable::Num(s.avg_batch_size, 2)});
  table.AddRow({"sweeps", std::to_string(s.sweeps)});
  table.AddRow({"sweep fast-path", std::to_string(s.sweep_fastpath)});
  table.AddRow({"curve-cache hits", std::to_string(s.curve_hits)});
  table.AddRow({"curve-cache misses", std::to_string(s.curve_misses)});
  table.AddRow({"model swaps", std::to_string(s.swaps)});
  table.AddRow({"gemm kernel", s.gemm_kernel});
  table.AddRow({"pack-cache hits", std::to_string(s.pack_hits)});
  table.AddRow({"pack builds", std::to_string(s.pack_builds)});
  std::string out = title + "\n" + table.ToString();

  // Update-pipeline section: only once a pipeline has ingested anything.
  if (s.update_ops > 0 || s.pipeline_publishes > 0) {
    util::AsciiTable up({"update pipeline", "value"});
    up.AddRow({"ops ingested", std::to_string(s.update_ops)});
    up.AddRow({"ops applied", std::to_string(s.update_ops_applied)});
    up.AddRow({"retrains triggered", std::to_string(s.retrains)});
    up.AddRow({"retrain epochs", std::to_string(s.retrain_epochs)});
    up.AddRow({"republishes", std::to_string(s.pipeline_publishes)});
    up.AddRow({"last drift (MAE)", util::AsciiTable::Num(s.last_drift, 3)});
    up.AddRow({"last publish age (s)",
               util::AsciiTable::Num(s.last_publish_age_s, 2)});
    out += "\n" + up.ToString();
  }

  // Per-route section: the one-report A/B view.
  if (!s.routes.empty()) {
    util::AsciiTable routes({"route", "requests", "p50 ms", "p99 ms",
                             "hit rate"});
    for (const auto& r : s.routes) {
      routes.AddRow({r.route, std::to_string(r.requests),
                     util::AsciiTable::Num(r.latency_p50_ms, 4),
                     util::AsciiTable::Num(r.latency_p99_ms, 4),
                     util::AsciiTable::Num(r.cache_hit_rate, 4)});
    }
    out += "\n" + routes.ToString();
  }
  return out;
}

StatsSnapshot AggregateSnapshots(const std::vector<StatsSnapshot>& shards) {
  StatsSnapshot agg;
  double mean_weighted = 0.0;
  uint64_t mean_weight = 0;
  for (const StatsSnapshot& s : shards) {
    agg.requests += s.requests;
    agg.cache_hits += s.cache_hits;
    agg.cache_misses += s.cache_misses;
    agg.batches += s.batches;
    agg.batched_requests += s.batched_requests;
    agg.sweeps += s.sweeps;
    agg.sweep_fastpath += s.sweep_fastpath;
    agg.curve_hits += s.curve_hits;
    agg.curve_misses += s.curve_misses;
    agg.swaps += s.swaps;
    agg.update_ops += s.update_ops;
    agg.update_ops_applied += s.update_ops_applied;
    agg.retrains += s.retrains;
    agg.retrain_epochs += s.retrain_epochs;
    agg.pipeline_publishes += s.pipeline_publishes;
    agg.qps += s.qps;
    agg.elapsed_seconds = std::max(agg.elapsed_seconds, s.elapsed_seconds);
    agg.latency_p50_ms = std::max(agg.latency_p50_ms, s.latency_p50_ms);
    agg.latency_p99_ms = std::max(agg.latency_p99_ms, s.latency_p99_ms);
    // Unlike the percentiles, the fleet mean IS computable from per-shard
    // means: weight each by its request count.
    mean_weighted += s.latency_mean_ms * double(s.requests);
    mean_weight += s.requests;
    if (s.last_publish_age_s >= 0.0 &&
        (agg.last_publish_age_s < 0.0 ||
         s.last_publish_age_s < agg.last_publish_age_s)) {
      agg.last_publish_age_s = s.last_publish_age_s;
      agg.last_drift = s.last_drift;
    }
    for (const RouteSnapshot& r : s.routes) agg.routes.push_back(r);
    // Pack stats are process-wide; every shard reports the same numbers.
    agg.pack_hits = s.pack_hits;
    agg.pack_builds = s.pack_builds;
    agg.gemm_kernel = s.gemm_kernel;
  }
  uint64_t lookups = agg.cache_hits + agg.cache_misses;
  if (lookups > 0) {
    agg.cache_hit_rate = double(agg.cache_hits) / double(lookups);
  }
  if (agg.batches > 0) {
    agg.avg_batch_size = double(agg.batched_requests) / double(agg.batches);
  }
  if (mean_weight > 0) {
    agg.latency_mean_ms = mean_weighted / double(mean_weight);
  }
  return agg;
}

}  // namespace selnet::serve
