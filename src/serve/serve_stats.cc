#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "serve/wire.h"
#include "tensor/kernel_dispatch.h"
#include "tensor/pack_cache.h"
#include "util/table.h"

namespace selnet::serve {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t n = sorted.size();
  // Nearest-rank: the ceil(p * n)-th smallest sample, 1-based. The old
  // `p * (n - 1) + 0.5` form overshot on small n (p99 of 3 samples picked
  // the max's neighbor instead of the max).
  size_t rank = size_t(std::ceil(p * double(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

// ------------------------------------------------------------- RouteStats ---

void ServeStats::RouteStats::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  sheds_.store(0, std::memory_order_relaxed);
  latency_.Reset();
}

RouteSnapshot ServeStats::RouteStats::Snapshot(const std::string& name) const {
  RouteSnapshot s;
  s.route = name;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = hits_.load(std::memory_order_relaxed);
  s.cache_misses = misses_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) s.cache_hit_rate = double(s.cache_hits) / double(lookups);
  util::HistogramSnapshot hist = latency_.Snapshot();
  if (!hist.empty()) {
    s.latency_p50_ms = hist.ValueAtQuantile(0.50);
    s.latency_p99_ms = hist.ValueAtQuantile(0.99);
  }
  return s;
}

// -------------------------------------------------------------- ServeStats ---

ServeStats::ServeStats() : start_(std::chrono::steady_clock::now()) {}

void ServeStats::RecordBatch(size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch_size, std::memory_order_relaxed);
}

void ServeStats::ConfigureSlowTrace(double threshold_ms, size_t capacity) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_threshold_ms_ = threshold_ms;
  slow_capacity_ = std::max<size_t>(1, capacity);
  slow_.clear();
  slow_next_ = 0;
  slow_seen_ = 0;
}

void ServeStats::RecordSpan(const SpanRecord& span) {
  for (size_t i = 0; i < kNumStages; ++i) {
    if (span.stage_ms[i] > 0.0) stage_[i].Record(span.stage_ms[i]);
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (span.total_ms < slow_threshold_ms_) return;
  if (slow_.size() < slow_capacity_) {
    slow_.push_back(span);
  } else {
    slow_[slow_next_] = span;
  }
  slow_next_ = (slow_next_ + 1) % slow_capacity_;
  ++slow_seen_;
}

std::vector<SpanRecord> ServeStats::SlowSpans() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  std::vector<SpanRecord> out;
  out.reserve(slow_.size());
  if (slow_.size() < slow_capacity_) {
    out = slow_;  // Ring has not wrapped: insertion order IS oldest-first.
  } else {
    for (size_t i = 0; i < slow_.size(); ++i) {
      out.push_back(slow_[(slow_next_ + i) % slow_.size()]);
    }
  }
  return out;
}

void ServeStats::RecordPipelinePublish() {
  pipeline_publishes_.fetch_add(1, std::memory_order_relaxed);
  int64_t ns;
  {
    std::lock_guard<std::mutex> lock(start_mu_);
    ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
             .count();
  }
  last_publish_ns_.store(ns, std::memory_order_relaxed);
}

ServeStats::RouteStats* ServeStats::Route(const std::string& route) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  auto& slot = routes_[route];
  if (!slot) slot = std::make_unique<RouteStats>();
  return slot.get();
}

void ServeStats::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  batched_requests_.store(0, std::memory_order_relaxed);
  sweeps_.store(0, std::memory_order_relaxed);
  sweep_fastpath_.store(0, std::memory_order_relaxed);
  curve_hits_.store(0, std::memory_order_relaxed);
  curve_misses_.store(0, std::memory_order_relaxed);
  swaps_.store(0, std::memory_order_relaxed);
  traced_.store(0, std::memory_order_relaxed);
  for (auto& shed : sheds_) shed.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  deadline_rows_dropped_.store(0, std::memory_order_relaxed);
  deadline_rows_predicted_.store(0, std::memory_order_relaxed);
  update_ops_.store(0, std::memory_order_relaxed);
  update_ops_applied_.store(0, std::memory_order_relaxed);
  retrains_.store(0, std::memory_order_relaxed);
  retrain_epochs_.store(0, std::memory_order_relaxed);
  pipeline_publishes_.store(0, std::memory_order_relaxed);
  last_drift_.store(0.0, std::memory_order_relaxed);
  last_publish_ns_.store(-1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    for (auto& [name, rs] : routes_) rs->Reset();
  }
  latency_.Reset();
  for (auto& h : stage_) h.Reset();
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_.clear();
    slow_next_ = 0;
    slow_seen_ = 0;
  }
  std::lock_guard<std::mutex> lock(start_mu_);
  start_ = std::chrono::steady_clock::now();
}

StatsSnapshot ServeStats::Snapshot() const {
  StatsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.sweep_fastpath = sweep_fastpath_.load(std::memory_order_relaxed);
  s.curve_hits = curve_hits_.load(std::memory_order_relaxed);
  s.curve_misses = curve_misses_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.traced = traced_.load(std::memory_order_relaxed);
  s.shed_total = 0;
  for (size_t i = 0; i < kNumShedReasons; ++i) {
    s.sheds[i] = sheds_[i].load(std::memory_order_relaxed);
    s.shed_total += s.sheds[i];
  }
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.deadline_rows_dropped =
      deadline_rows_dropped_.load(std::memory_order_relaxed);
  s.deadline_rows_predicted =
      deadline_rows_predicted_.load(std::memory_order_relaxed);
  if (deadline_row_source_) {
    auto [dropped, predicted] = deadline_row_source_();
    s.deadline_rows_dropped += dropped;
    s.deadline_rows_predicted += predicted;
  }
  s.update_ops = update_ops_.load(std::memory_order_relaxed);
  s.update_ops_applied = update_ops_applied_.load(std::memory_order_relaxed);
  s.retrains = retrains_.load(std::memory_order_relaxed);
  s.retrain_epochs = retrain_epochs_.load(std::memory_order_relaxed);
  s.pipeline_publishes = pipeline_publishes_.load(std::memory_order_relaxed);
  s.last_drift = last_drift_.load(std::memory_order_relaxed);
  // Kernel-engine observability: which micro-kernel dispatch resolved to and
  // how often the version-keyed pack cache spared a repack. Process-wide
  // (the packs hang off shared model parameters, not one server).
  tensor::PackStatsSnapshot pack = tensor::PackStats();
  s.pack_hits = pack.hits;
  s.pack_builds = pack.builds;
  s.gemm_kernel = tensor::ActiveKernel().name;

  {
    std::lock_guard<std::mutex> lock(start_mu_);
    s.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
  }
  int64_t publish_ns = last_publish_ns_.load(std::memory_order_relaxed);
  if (publish_ns >= 0) {
    s.last_publish_age_s = s.elapsed_seconds - double(publish_ns) * 1e-9;
  }
  if (s.elapsed_seconds > 0) s.qps = double(s.requests) / s.elapsed_seconds;
  uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) s.cache_hit_rate = double(s.cache_hits) / double(lookups);
  if (s.batches > 0) {
    s.avg_batch_size = double(s.batched_requests) / double(s.batches);
  }
  s.latency_hist = latency_.Snapshot();
  if (!s.latency_hist.empty()) {
    s.latency_p50_ms = s.latency_hist.ValueAtQuantile(0.50);
    s.latency_p99_ms = s.latency_hist.ValueAtQuantile(0.99);
    s.latency_mean_ms = s.latency_hist.MeanMs();
  }
  s.stage_hists.reserve(kNumStages);
  for (const auto& h : stage_) s.stage_hists.push_back(h.Snapshot());
  s.slow_requests = SlowSpans();
  // Copy the stable (name, accumulator) pairs under the map lock, then do
  // the percentile work after releasing it — Route() sits on the request
  // admission path and must never wait behind a metrics scrape.
  std::vector<std::pair<std::string, const RouteStats*>> route_ptrs;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    route_ptrs.reserve(routes_.size());
    for (const auto& [name, rs] : routes_) route_ptrs.emplace_back(name, rs.get());
  }
  s.routes.reserve(route_ptrs.size());
  for (const auto& [name, rs] : route_ptrs) s.routes.push_back(rs->Snapshot(name));
  return s;
}

std::string ServeStats::Report(const std::string& title) const {
  StatsSnapshot s = Snapshot();
  util::AsciiTable table({"metric", "value"});
  table.AddRow({"requests", std::to_string(s.requests)});
  table.AddRow({"qps", util::AsciiTable::Num(s.qps, 1)});
  table.AddRow({"latency p50 (ms)", util::AsciiTable::Num(s.latency_p50_ms, 4)});
  table.AddRow({"latency p99 (ms)", util::AsciiTable::Num(s.latency_p99_ms, 4)});
  table.AddRow({"latency mean (ms)",
                util::AsciiTable::Num(s.latency_mean_ms, 4)});
  table.AddRow({"cache hit rate", util::AsciiTable::Num(s.cache_hit_rate, 4)});
  table.AddRow({"batches", std::to_string(s.batches)});
  table.AddRow({"avg batch size", util::AsciiTable::Num(s.avg_batch_size, 2)});
  table.AddRow({"sweeps", std::to_string(s.sweeps)});
  table.AddRow({"sweep fast-path", std::to_string(s.sweep_fastpath)});
  table.AddRow({"curve-cache hits", std::to_string(s.curve_hits)});
  table.AddRow({"curve-cache misses", std::to_string(s.curve_misses)});
  table.AddRow({"model swaps", std::to_string(s.swaps)});
  table.AddRow({"traced requests", std::to_string(s.traced)});
  table.AddRow({"gemm kernel", s.gemm_kernel});
  table.AddRow({"pack-cache hits", std::to_string(s.pack_hits)});
  table.AddRow({"pack builds", std::to_string(s.pack_builds)});
  std::string out = title + "\n" + table.ToString();

  // Overload section: only once something has been shed, degraded, or
  // deadline-dropped.
  if (s.shed_total > 0 || s.degraded > 0 || s.deadline_rows_dropped > 0 ||
      s.deadline_rows_predicted > 0) {
    util::AsciiTable ov({"overload", "value"});
    for (size_t i = 1; i < kNumShedReasons; ++i) {
      if (s.sheds[i] == 0) continue;
      ov.AddRow({std::string("shed: ") + ShedReasonName(ShedReason(i)),
                 std::to_string(s.sheds[i])});
    }
    ov.AddRow({"shed total", std::to_string(s.shed_total)});
    ov.AddRow({"degraded (cached curve)", std::to_string(s.degraded)});
    ov.AddRow({"deadline rows dropped",
               std::to_string(s.deadline_rows_dropped)});
    ov.AddRow({"deadline rows predicted",
               std::to_string(s.deadline_rows_predicted)});
    out += "\n" + ov.ToString();
  }

  // Per-stage section: only once sampling has traced something.
  bool any_stage = false;
  for (const auto& h : s.stage_hists) any_stage |= !h.empty();
  if (any_stage) {
    util::AsciiTable st({"stage", "samples", "p50 ms", "p99 ms"});
    for (size_t i = 0; i < s.stage_hists.size(); ++i) {
      const auto& h = s.stage_hists[i];
      if (h.empty()) continue;
      st.AddRow({StageName(Stage(i)), std::to_string(h.count),
                 util::AsciiTable::Num(h.ValueAtQuantile(0.50), 4),
                 util::AsciiTable::Num(h.ValueAtQuantile(0.99), 4)});
    }
    out += "\n" + st.ToString();
  }

  // Slow-request section: full span breakdowns of traced outliers.
  if (!s.slow_requests.empty()) {
    std::vector<std::string> headers = {"slow request", "total ms"};
    for (size_t i = 0; i < kNumStages; ++i) {
      headers.push_back(StageName(Stage(i)));
    }
    util::AsciiTable slow(headers);
    for (const auto& span : s.slow_requests) {
      std::vector<std::string> row;
      row.push_back(span.route.empty() ? "(default)" : span.route);
      row.push_back(util::AsciiTable::Num(span.total_ms, 3));
      for (size_t i = 0; i < kNumStages; ++i) {
        row.push_back(util::AsciiTable::Num(span.stage_ms[i], 3));
      }
      slow.AddRow(row);
    }
    out += "\n" + slow.ToString();
  }

  // Update-pipeline section: only once a pipeline has ingested anything.
  if (s.update_ops > 0 || s.pipeline_publishes > 0) {
    util::AsciiTable up({"update pipeline", "value"});
    up.AddRow({"ops ingested", std::to_string(s.update_ops)});
    up.AddRow({"ops applied", std::to_string(s.update_ops_applied)});
    up.AddRow({"retrains triggered", std::to_string(s.retrains)});
    up.AddRow({"retrain epochs", std::to_string(s.retrain_epochs)});
    up.AddRow({"republishes", std::to_string(s.pipeline_publishes)});
    up.AddRow({"last drift (MAE)", util::AsciiTable::Num(s.last_drift, 3)});
    up.AddRow({"last publish age (s)",
               util::AsciiTable::Num(s.last_publish_age_s, 2)});
    out += "\n" + up.ToString();
  }

  // Per-route section: the one-report A/B view.
  if (!s.routes.empty()) {
    util::AsciiTable routes({"route", "requests", "p50 ms", "p99 ms",
                             "hit rate"});
    for (const auto& r : s.routes) {
      routes.AddRow({r.route, std::to_string(r.requests),
                     util::AsciiTable::Num(r.latency_p50_ms, 4),
                     util::AsciiTable::Num(r.latency_p99_ms, 4),
                     util::AsciiTable::Num(r.cache_hit_rate, 4)});
    }
    out += "\n" + routes.ToString();
  }
  return out;
}

StatsSnapshot AggregateSnapshots(const std::vector<StatsSnapshot>& shards) {
  StatsSnapshot agg;
  agg.stage_hists.resize(kNumStages);
  double mean_weighted = 0.0;
  uint64_t mean_weight = 0;
  double worst_p50 = 0.0, worst_p99 = 0.0;
  for (const StatsSnapshot& s : shards) {
    agg.requests += s.requests;
    agg.cache_hits += s.cache_hits;
    agg.cache_misses += s.cache_misses;
    agg.batches += s.batches;
    agg.batched_requests += s.batched_requests;
    agg.sweeps += s.sweeps;
    agg.sweep_fastpath += s.sweep_fastpath;
    agg.curve_hits += s.curve_hits;
    agg.curve_misses += s.curve_misses;
    agg.swaps += s.swaps;
    agg.traced += s.traced;
    for (size_t i = 0; i < kNumShedReasons && i < s.sheds.size(); ++i) {
      agg.sheds[i] += s.sheds[i];
    }
    agg.shed_total += s.shed_total;
    agg.degraded += s.degraded;
    agg.deadline_rows_dropped += s.deadline_rows_dropped;
    agg.deadline_rows_predicted += s.deadline_rows_predicted;
    agg.update_ops += s.update_ops;
    agg.update_ops_applied += s.update_ops_applied;
    agg.retrains += s.retrains;
    agg.retrain_epochs += s.retrain_epochs;
    agg.pipeline_publishes += s.pipeline_publishes;
    agg.qps += s.qps;
    agg.elapsed_seconds = std::max(agg.elapsed_seconds, s.elapsed_seconds);
    agg.latency_hist.Merge(s.latency_hist);
    for (size_t i = 0; i < kNumStages && i < s.stage_hists.size(); ++i) {
      agg.stage_hists[i].Merge(s.stage_hists[i]);
    }
    for (const SpanRecord& span : s.slow_requests) {
      agg.slow_requests.push_back(span);
    }
    worst_p50 = std::max(worst_p50, s.latency_p50_ms);
    worst_p99 = std::max(worst_p99, s.latency_p99_ms);
    mean_weighted += s.latency_mean_ms * double(s.requests);
    mean_weight += s.requests;
    if (s.last_publish_age_s >= 0.0 &&
        (agg.last_publish_age_s < 0.0 ||
         s.last_publish_age_s < agg.last_publish_age_s)) {
      agg.last_publish_age_s = s.last_publish_age_s;
      agg.last_drift = s.last_drift;
    }
    for (const RouteSnapshot& r : s.routes) agg.routes.push_back(r);
    // Pack stats are process-wide; every shard reports the same numbers.
    agg.pack_hits = s.pack_hits;
    agg.pack_builds = s.pack_builds;
    agg.gemm_kernel = s.gemm_kernel;
  }
  uint64_t lookups = agg.cache_hits + agg.cache_misses;
  if (lookups > 0) {
    agg.cache_hit_rate = double(agg.cache_hits) / double(lookups);
  }
  if (agg.batches > 0) {
    agg.avg_batch_size = double(agg.batched_requests) / double(agg.batches);
  }
  if (!agg.latency_hist.empty()) {
    // The real fleet percentiles: quantiles of the bucket-merged histogram
    // are the quantiles of the pooled per-shard samples (within the bucket
    // error bound), because merge is a bucket-wise sum.
    agg.latency_p50_ms = agg.latency_hist.ValueAtQuantile(0.50);
    agg.latency_p99_ms = agg.latency_hist.ValueAtQuantile(0.99);
    agg.latency_mean_ms = agg.latency_hist.MeanMs();
  } else {
    // Summary-only snapshots (no histogram data): fall back to worst-shard
    // percentiles and the request-weighted mean.
    agg.latency_p50_ms = worst_p50;
    agg.latency_p99_ms = worst_p99;
    if (mean_weight > 0) {
      agg.latency_mean_ms = mean_weighted / double(mean_weight);
    }
  }
  return agg;
}

std::string StatsToJson(const StatsSnapshot& s) {
  JsonWriter w;
  if (!s.node_id.empty()) w.Field("node", s.node_id);
  if (s.uptime_s > 0.0) w.Field("uptime_s", s.uptime_s);
  w.Field("requests", s.requests);
  w.Field("qps", s.qps);
  w.Field("elapsed_s", s.elapsed_seconds);
  w.Field("cache_hits", s.cache_hits);
  w.Field("cache_misses", s.cache_misses);
  w.Field("cache_hit_rate", s.cache_hit_rate);
  w.Field("batches", s.batches);
  w.Field("avg_batch_size", s.avg_batch_size);
  w.Field("sweeps", s.sweeps);
  w.Field("sweep_fastpath", s.sweep_fastpath);
  w.Field("curve_hits", s.curve_hits);
  w.Field("curve_misses", s.curve_misses);
  w.Field("swaps", s.swaps);
  w.Field("traced", s.traced);
  {
    JsonWriter ov;
    JsonWriter sheds;
    for (size_t i = 1; i < kNumShedReasons && i < s.sheds.size(); ++i) {
      sheds.Field(ShedReasonName(ShedReason(i)), s.sheds[i]);
    }
    ov.RawField("sheds", sheds.Finish());
    ov.Field("shed_total", s.shed_total);
    ov.Field("degraded", s.degraded);
    ov.Field("deadline_rows_dropped", s.deadline_rows_dropped);
    ov.Field("deadline_rows_predicted", s.deadline_rows_predicted);
    w.RawField("overload", ov.Finish());
  }
  w.Field("pack_hits", s.pack_hits);
  w.Field("pack_builds", s.pack_builds);
  w.Field("gemm_kernel", s.gemm_kernel);
  {
    JsonWriter lat;
    lat.Field("count", s.latency_hist.count);
    lat.Field("p50_ms", s.latency_p50_ms);
    lat.Field("p99_ms", s.latency_p99_ms);
    lat.Field("mean_ms", s.latency_mean_ms);
    w.RawField("latency", lat.Finish());
  }
  {
    JsonWriter stages;
    for (size_t i = 0; i < s.stage_hists.size(); ++i) {
      const util::HistogramSnapshot& h = s.stage_hists[i];
      JsonWriter st;
      st.Field("count", h.count);
      st.Field("p50_ms", h.ValueAtQuantile(0.50));
      st.Field("p99_ms", h.ValueAtQuantile(0.99));
      st.Field("mean_ms", h.MeanMs());
      stages.RawField(StageName(Stage(i)), st.Finish());
    }
    w.RawField("stages", stages.Finish());
  }
  {
    std::string routes = "[";
    for (size_t i = 0; i < s.routes.size(); ++i) {
      const RouteSnapshot& r = s.routes[i];
      JsonWriter rw;
      rw.Field("route", r.route);
      rw.Field("requests", r.requests);
      rw.Field("sheds", r.sheds);
      rw.Field("p50_ms", r.latency_p50_ms);
      rw.Field("p99_ms", r.latency_p99_ms);
      rw.Field("cache_hit_rate", r.cache_hit_rate);
      if (i > 0) routes += ",";
      routes += rw.Finish();
    }
    routes += "]";
    w.RawField("routes", routes);
  }
  if (s.update_ops > 0 || s.pipeline_publishes > 0) {
    JsonWriter up;
    up.Field("ops", s.update_ops);
    up.Field("ops_applied", s.update_ops_applied);
    up.Field("retrains", s.retrains);
    up.Field("retrain_epochs", s.retrain_epochs);
    up.Field("publishes", s.pipeline_publishes);
    up.Field("last_drift", s.last_drift);
    up.Field("last_publish_age_s", s.last_publish_age_s);
    w.RawField("update_pipeline", up.Finish());
  }
  if (!s.slots.empty()) {
    std::string slots = "[";
    for (size_t i = 0; i < s.slots.size(); ++i) {
      const SlotSnapshot& sl = s.slots[i];
      JsonWriter sw;
      sw.Field("slot", uint64_t(sl.slot));
      sw.Field("kind", sl.kind);
      sw.Field("endpoint", sl.endpoint);
      sw.Field("health", sl.health);
      if (!sl.node_id.empty()) sw.Field("node", sl.node_id);
      if (sl.uptime_s > 0.0) sw.Field("uptime_s", sl.uptime_s);
      if (sl.scrape_age_s >= 0.0) sw.Field("scrape_age_s", sl.scrape_age_s);
      if (sl.kind == "remote") sw.Field("pending", sl.pending);
      if (i > 0) slots += ",";
      slots += sw.Finish();
    }
    slots += "]";
    w.RawField("slots", slots);
  }
  w.Field("slow_requests", uint64_t(s.slow_requests.size()));
  return w.Finish();
}

namespace {

void AppendSample(std::string& out, const std::string& name,
                  const std::string& labels, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += name + labels + " " + buf + "\n";
}

void AppendSample(std::string& out, const std::string& name,
                  const std::string& labels, uint64_t value) {
  out += name + labels + " " + std::to_string(value) + "\n";
}

std::string ExpositionLabel(const std::string& key, const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') escaped += '\\';
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped += c;
  }
  return "{" + key + "=\"" + escaped + "\"}";
}

void AppendSummary(std::string& out, const std::string& name,
                   const std::string& label_key, const std::string& label_val,
                   const util::HistogramSnapshot& h) {
  std::string base =
      label_val.empty() ? "" : label_key + "=\"" + label_val + "\",";
  AppendSample(out, name, "{" + base + "quantile=\"0.5\"}",
               h.ValueAtQuantile(0.50));
  AppendSample(out, name, "{" + base + "quantile=\"0.99\"}",
               h.ValueAtQuantile(0.99));
  std::string plain =
      label_val.empty() ? "" : ExpositionLabel(label_key, label_val);
  AppendSample(out, name + "_sum", plain,
               static_cast<double>(h.sum_ticks) / 1000.0);
  AppendSample(out, name + "_count", plain, h.count);
}

}  // namespace

std::string RenderStatsExposition(const StatsSnapshot& s) {
  std::string out;
  out += "# TYPE selnet_requests_total counter\n";
  AppendSample(out, "selnet_requests_total", "", s.requests);
  out += "# TYPE selnet_cache_hits_total counter\n";
  AppendSample(out, "selnet_cache_hits_total", "", s.cache_hits);
  out += "# TYPE selnet_cache_misses_total counter\n";
  AppendSample(out, "selnet_cache_misses_total", "", s.cache_misses);
  out += "# TYPE selnet_batches_total counter\n";
  AppendSample(out, "selnet_batches_total", "", s.batches);
  out += "# TYPE selnet_sweeps_total counter\n";
  AppendSample(out, "selnet_sweeps_total", "", s.sweeps);
  out += "# TYPE selnet_traced_total counter\n";
  AppendSample(out, "selnet_traced_total", "", s.traced);
  out += "# TYPE selnet_model_swaps_total counter\n";
  AppendSample(out, "selnet_model_swaps_total", "", s.swaps);
  out += "# TYPE selnet_sheds_total counter\n";
  for (size_t i = 1; i < kNumShedReasons && i < s.sheds.size(); ++i) {
    AppendSample(out, "selnet_sheds_total",
                 ExpositionLabel("reason", ShedReasonName(ShedReason(i))),
                 s.sheds[i]);
  }
  out += "# TYPE selnet_degraded_total counter\n";
  AppendSample(out, "selnet_degraded_total", "", s.degraded);
  out += "# TYPE selnet_deadline_rows_dropped_total counter\n";
  AppendSample(out, "selnet_deadline_rows_dropped_total", "",
               s.deadline_rows_dropped);
  out += "# TYPE selnet_uptime_seconds gauge\n";
  AppendSample(out, "selnet_uptime_seconds", "",
               s.uptime_s > 0.0 ? s.uptime_s : s.elapsed_seconds);
  out += "# TYPE selnet_latency_ms summary\n";
  AppendSummary(out, "selnet_latency_ms", "", "", s.latency_hist);
  bool any_stage = false;
  for (const auto& h : s.stage_hists) any_stage |= !h.empty();
  if (any_stage) {
    out += "# TYPE selnet_stage_latency_ms summary\n";
    for (size_t i = 0; i < s.stage_hists.size() && i < kNumStages; ++i) {
      if (s.stage_hists[i].empty()) continue;
      AppendSummary(out, "selnet_stage_latency_ms", "stage",
                    StageName(Stage(i)), s.stage_hists[i]);
    }
  }
  if (!s.routes.empty()) {
    // Replicated routes appear in more than one snapshot of a merged fleet
    // view (local shard + remote scrape): sum per route name so no series
    // is emitted twice.
    std::map<std::string, uint64_t> per_route;
    for (const RouteSnapshot& r : s.routes) {
      per_route[r.route.empty() ? "(default)" : r.route] += r.requests;
    }
    out += "# TYPE selnet_route_requests_total counter\n";
    for (const auto& [route, requests] : per_route) {
      AppendSample(out, "selnet_route_requests_total",
                   ExpositionLabel("route", route), requests);
    }
  }
  if (!s.slots.empty()) {
    out += "# TYPE selnet_slot_health gauge\n";
    for (const SlotSnapshot& sl : s.slots) {
      std::string labels = "{slot=\"" + std::to_string(sl.slot) +
                           "\",kind=\"" + sl.kind + "\",endpoint=\"" +
                           sl.endpoint + "\",state=\"" + sl.health + "\"";
      if (!sl.node_id.empty()) labels += ",node=\"" + sl.node_id + "\"";
      labels += "}";
      AppendSample(out, "selnet_slot_health", labels, uint64_t(1));
    }
    out += "# TYPE selnet_slot_scrape_age_seconds gauge\n";
    for (const SlotSnapshot& sl : s.slots) {
      if (sl.kind != "remote") continue;
      AppendSample(out, "selnet_slot_scrape_age_seconds",
                   ExpositionLabel("endpoint", sl.endpoint), sl.scrape_age_s);
    }
  }
  return out;
}

}  // namespace selnet::serve
