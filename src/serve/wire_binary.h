#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/request.h"
#include "util/status.h"

/// \file wire_binary.h
/// \brief The length-prefixed binary framing — the negotiated fast path of
/// the wire protocol in wire.h.
///
/// Why it exists: the JSON framing costs a number-to-decimal conversion per
/// float in both directions, and a blocking one-line-per-round-trip client
/// cannot amortize the network latency. The binary framing ships floats as
/// raw IEEE-754 little-endian words (bit-identical round trip by
/// construction — the same contract the JSON path earns with
/// shortest-round-trip decimals) inside tagged frames a client can pipeline
/// by the hundreds on one connection.
///
/// Frame layout (all multi-byte integers little-endian):
///
///   offset  size  field
///        0     1  magic0 = 0xD5   (never '{' or whitespace, so a JSON line
///        1     1  magic1 = 0x53    can never alias a frame header)
///        2     1  version         (kWireVersion from the hello exchange)
///        3     1  type            (FrameType below)
///        4     4  payload_len     (u32; bounded by the peer's frame cap)
///        8     8  tag             (u64; correlation tag, 0 = untagged)
///       16     .  payload
///
/// Frame types and payloads:
///   * kEstimate (client -> server): flags u8 (bit0 = deadline present,
///     bit1 = trace requested), model (u8 length + bytes), optional
///     deadline_ms f32 (RELATIVE budget, anchored at decode like JSON),
///     x (u32 count + raw f32 words), thresholds (u32 count + raw f32
///     words). The header tag is the request tag.
///   * kResponse (server -> client): flags u8 (bit0 = fast_path, bit1 =
///     degraded), model (u8 length + bytes), version u64, cache_hits u32,
///     estimates (u32 count + f32 words), stage_ms (u32 count + f32 words;
///     non-empty only for wire-traced requests).
///   * kError (server -> client): code (u8 length + bytes; a ShedReasonName
///     or "not_found", empty for untyped failures) + message (u32 length +
///     bytes). Maps to the same typed Status taxonomy as a JSON error line
///     (StatusFromWireError).
///   * kAdmin / kAdminReply: the payload is one JSON admin line / reply
///     (wire.h) WITHOUT the trailing newline. The whole admin plane —
///     stats, metrics, state transfer — rides binary connections unchanged;
///     framing is the only difference.
///
/// Malformed-frame policy (mirrors the JSON oversized-line policy): a header
/// with bad magic, an unknown version, or a payload_len over the receiver's
/// cap means FRAMING IS LOST — the receiver sends one kError frame (tag 0)
/// and closes the connection. A well-framed payload that fails to decode
/// only fails that request: kError with the frame's tag, connection stays
/// open. A truncated frame is not an error — just bytes still in flight.

namespace selnet::serve {

inline constexpr uint8_t kFrameMagic0 = 0xD5;
inline constexpr uint8_t kFrameMagic1 = 0x53;
inline constexpr size_t kFrameHeaderBytes = 16;

enum class FrameType : uint8_t {
  kEstimate = 1,
  kResponse = 2,
  kError = 3,
  kAdmin = 4,
  kAdminReply = 5,
};

/// \brief One decoded frame header.
struct FrameHeader {
  uint8_t version = 0;
  FrameType type = FrameType::kEstimate;
  uint32_t payload_len = 0;
  uint64_t tag = 0;
};

/// \brief What PeelFrameHeader saw at the front of the buffer.
enum class FramePeel {
  kNeedMore,  ///< Fewer than kFrameHeaderBytes buffered — keep reading.
  kFrame,     ///< Valid header in `*hdr`; the payload may still be partial.
  kBad,       ///< Bad magic / version / oversized length: framing is lost.
};

/// \brief Validate the frame header at `data` (first `len` bytes of the
/// receive buffer). kBad fills `*err` with a client-safe reason;
/// payload_len > max_payload is kBad (a hostile length must be rejected
/// before any buffering decision trusts it).
FramePeel PeelFrameHeader(const char* data, size_t len, size_t max_payload,
                          FrameHeader* hdr, std::string* err);

/// \brief Append a whole kEstimate frame for `req` (tag from req.tag; a
/// deadline is encoded as the remaining relative budget, like JSON).
void AppendRequestFrame(std::string* out, const EstimateRequest& req);

/// \brief Append a whole kResponse frame (tag from resp.tag).
void AppendResponseFrame(std::string* out, const EstimateResponse& resp);

/// \brief Append a whole kError frame (`code` may be empty).
void AppendErrorFrame(std::string* out, const std::string& message,
                      const std::string& code, uint64_t tag);

/// \brief Append a kAdmin or kAdminReply frame wrapping one JSON line.
void AppendAdminFrame(std::string* out, FrameType type, uint64_t tag,
                      const std::string& json);

/// \brief Decode a kEstimate payload. `now` anchors a relative deadline to
/// the steady clock — passed in so a batch of frames decoded in one read
/// round shares a single clock sample. The header tag is NOT applied here;
/// the caller sets req->tag from the frame header.
util::Status DecodeRequestPayload(const char* p, size_t len,
                                  std::chrono::steady_clock::time_point now,
                                  EstimateRequest* req);

/// \brief Decode a kResponse payload (tag comes from the header).
util::Status DecodeResponsePayload(const char* p, size_t len,
                                   EstimateResponse* resp);

/// \brief Decode a kError payload into its code token + message. The
/// returned Status is the DECODE result; map the decoded pair through
/// StatusFromWireError for the request's typed failure.
util::Status DecodeErrorPayload(const char* p, size_t len, std::string* code,
                                std::string* message);

}  // namespace selnet::serve
