#pragma once

#include <future>
#include <memory>
#include <string>

#include "serve/batch_scheduler.h"
#include "serve/estimate_cache.h"
#include "serve/model_registry.h"
#include "serve/serve_stats.h"
#include "util/status.h"

/// \file server.h
/// \brief SelNetServer: the serving facade tying registry, scheduler, cache
/// and stats into one estimate endpoint.
///
/// Request path:
///   Estimate(x, t)
///     -> cache lookup on (current model version, quantized x, t)  [hit: done]
///     -> BatchScheduler::Submit                                   [miss]
///     -> batched Predict on the snapshot resolved at flush time
///     -> completion hook fills the cache, future resolves.
///
/// Hot-swap: Publish() installs a new snapshot in the registry. Batches
/// resolve the snapshot when they flush, so in-flight requests finish on
/// whichever version they were batched against and nothing fails mid-swap.
/// Cache keys embed the version, so a swap implicitly invalidates — stale
/// entries stop matching and age out of the LRU.
///
/// Consistency dividend (the paper's monotonicity guarantee): because the
/// served estimator is monotone in t, cached estimates at nearby thresholds
/// bound each other, and threshold-sweep clients can reuse one batch row per
/// (x, t) pair without risking non-monotone artifacts across the sweep.

namespace selnet::serve {

/// \brief Serving configuration.
struct ServerConfig {
  size_t dim = 0;                    ///< Query dimensionality (required).
  std::string model_name = "default";  ///< Registry slot served by default.
  SchedulerConfig scheduler;         ///< scheduler.dim is overwritten by dim.
  CacheConfig cache;
  bool enable_cache = true;
  bool enable_batching = true;  ///< false = direct per-request Predict
                                ///  (the bench baseline).
};

/// \brief A servable selectivity-estimation endpoint.
class SelNetServer {
 public:
  explicit SelNetServer(const ServerConfig& cfg);
  ~SelNetServer();

  SelNetServer(const SelNetServer&) = delete;
  SelNetServer& operator=(const SelNetServer&) = delete;

  /// \brief Publish a trained model under the configured name; returns the
  /// assigned version. The caller must not mutate the model afterwards.
  uint64_t Publish(std::shared_ptr<core::SelNetCt> model);

  /// \brief Load a core::SaveModel file and publish it.
  util::Result<uint64_t> PublishFromFile(const std::string& path);

  /// \brief Asynchronous estimate for one (x, t). `x` must hold dim floats.
  /// The future throws if no model is published or serving fails.
  std::future<float> EstimateAsync(const float* x, float t);

  /// \brief Blocking estimate; NotFound when no model is published.
  util::Result<float> Estimate(const float* x, float t);

  /// \brief Monotone threshold sweep: estimates for one query at each of
  /// `ts` (which must be sorted ascending for the guarantee to be
  /// meaningful). The whole sweep is answered against a single pinned model
  /// snapshot — even across a concurrent republish — so the consistency
  /// guarantee makes the results non-decreasing, which callers may rely on.
  util::Result<std::vector<float>> EstimateSweep(const float* x,
                                                 const std::vector<float>& ts);

  /// \brief Block until every accepted request has been answered.
  void Drain();

  ModelRegistry& registry() { return registry_; }
  EstimateCache& cache() { return cache_; }
  ServeStats& stats() { return stats_; }
  const ServerConfig& config() const { return cfg_; }

  std::string StatsReport() const { return stats_.Report(); }

 private:
  /// Resolve the served snapshot and run one batched Predict on it.
  tensor::Matrix PredictOnCurrent(const tensor::Matrix& x,
                                  const tensor::Matrix& t);

  ServerConfig cfg_;
  ModelRegistry registry_;
  EstimateCache cache_;
  ServeStats stats_;
  std::unique_ptr<BatchScheduler> scheduler_;  ///< Null when batching is off.
};

}  // namespace selnet::serve
