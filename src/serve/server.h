#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/batch_scheduler.h"
#include "serve/estimate_cache.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/serve_stats.h"
#include "util/status.h"

/// \file server.h
/// \brief SelNetServer: the serving facade tying registry, scheduler, cache
/// and stats into one request-object endpoint.
///
/// Request path — Submit(EstimateRequest) -> future<EstimateResponse>:
///   1. resolve the routed registry slot and pin its snapshot;
///   2. cache lookup per threshold on (version, quantized x, t); a fully
///      cached request resolves immediately;
///   3. remaining thresholds:
///        * SweepCapable model and >= sweep_fastpath_min misses -> ONE
///          control-point evaluation answers them all (K PWL lookups instead
///          of K batched Predict rows), on a pool worker;
///        * otherwise -> row expansion into the BatchScheduler, where the
///          rows coalesce with other requests (any model mix; flushes group
///          by route);
///   4. completion fills the cache, repairs sorted sweeps to a non-decreasing
///      column, and resolves the future.
///
/// `Estimate` / `EstimateAsync` / `EstimateSweep` are thin compatibility
/// shims that build the corresponding request object.
///
/// Hot-swap: Publish() installs a new snapshot in the registry. Scheduler
/// rows resolve their snapshot when their batch flushes, so in-flight rows
/// finish on whichever version they were batched against and nothing fails
/// mid-swap; fast-path sweeps run entirely on the snapshot pinned at submit.
/// Cache keys embed the version, so a swap implicitly invalidates — stale
/// entries stop matching and age out of the LRU.
///
/// Consistency dividend (the paper's monotonicity guarantee): because served
/// estimators are monotone in t, a sorted sweep's response column is
/// non-decreasing; the fast path gets this from the monotone PWL directly and
/// the fallback applies a running-max repair across cache-quantum and
/// mid-sweep-swap artifacts.
///
/// Overload behavior (ServerConfig::admission, off by default): before any
/// routing or compute, SubmitWith checks the request's deadline (already
/// expired -> typed kDeadlineExpired shed) and asks the per-server
/// AdmissionController for a ticket (priority-watermarked inflight budget;
/// over budget -> typed kQueueFull / kPriorityShed). A shed route that opted
/// into degrade may instead be answered from the version-keyed cached sweep
/// curve — a local PWL evaluation, zero model compute, response marked
/// `degraded`. Admitted requests release their ticket on completion, and
/// their deadline rides along: the fast path re-checks it at compute start
/// and the BatchScheduler drops expired rows at the batch boundary, so no
/// expired row ever reaches Predict. Every shed is a typed OverloadError and
/// lands in ServeStats per reason.

namespace selnet::serve {

class LiveUpdatePipeline;
struct UpdatePipelineConfig;

/// \brief Serving configuration.
struct ServerConfig {
  size_t dim = 0;  ///< Query dimensionality (required; the single source of
                   ///  truth — scheduler.dim must be 0 ("inherit") or equal).
  std::string model_name = "default";  ///< Registry slot served by default.
  SchedulerConfig scheduler;
  CacheConfig cache;
  bool enable_cache = true;
  bool enable_batching = true;  ///< false = direct per-request Predict
                                ///  (the bench baseline).
  /// Use the SweepCapable control-point path for multi-threshold requests
  /// when the routed model supports it (off = always row-expand; the bench
  /// uses this to measure the fallback).
  bool enable_sweep_fastpath = true;
  /// Minimum uncached thresholds before the fast path engages; below this a
  /// scalar-shaped request batches better with its neighbours.
  size_t sweep_fastpath_min = 2;
  /// Sweep-curve cache: store each query's whole PWL control-point set keyed
  /// on (model version, quantized x) when the routed model reports
  /// eval::SweepCapable::SupportsSweepCurve. A repeat query at NEW
  /// thresholds then skips the network entirely — the server evaluates the
  /// cached PWL, which is bit-identical to the model's own sweep path (same
  /// quantized-neighbour caveat as the scalar cache). Independent of
  /// `enable_cache` (it only feeds the sweep fast path); sized by
  /// CacheConfig::curve_capacity.
  bool enable_curve_cache = false;
  /// Stage-trace sampling: trace 1 in N requests end to end (0 = tracing
  /// off). A request arriving WITH a trace already attached (the NetFrontend
  /// samples wire requests itself, so the decode stage is captured) is
  /// honored regardless of this rate.
  size_t trace_sample_every = 0;
  /// Traced requests slower than this keep their full span breakdown in the
  /// bounded slow-request ring (ServeStats::SlowSpans, the {"cmd":"slow"}
  /// admin request, and the Report() slow section).
  double slow_trace_ms = 50.0;
  size_t slow_trace_capacity = 32;  ///< Slow-ring length.
  /// Overload admission control (AdmissionConfig::enabled = false keeps the
  /// pre-admission behavior bit-for-bit: no ticket, no shed path).
  AdmissionConfig admission;
};

/// \brief Typed "no model published under this route" submit failure.
/// Distinct from a generic runtime_error so the frontend can serialize it
/// with code "not_found" — the replication layer treats a remote replica's
/// not_found as retryable (a restarted shard awaiting re-sync, or a route
/// replicated to local slots only, may still be served by another replica),
/// which a string match could never do safely.
class RouteNotFoundError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// \brief A servable, estimator-agnostic selectivity-estimation endpoint.
class SelNetServer {
 public:
  explicit SelNetServer(const ServerConfig& cfg);
  ~SelNetServer();

  SelNetServer(const SelNetServer&) = delete;
  SelNetServer& operator=(const SelNetServer&) = delete;

  /// \brief Publish a trained estimator under the configured default name;
  /// returns the assigned version. The caller must not mutate the model
  /// afterwards. Any eval::Estimator serves — SelNet or a baseline.
  uint64_t Publish(std::shared_ptr<eval::Estimator> model);

  /// \brief Publish under an explicit registry slot, making served A/B
  /// comparison a one-liner: route requests via EstimateRequest::model.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<eval::Estimator> model);

  /// \brief Load a core::SaveModel file and publish it (default slot).
  util::Result<uint64_t> PublishFromFile(const std::string& path);

  /// \brief Load a core::SaveModel file and publish it under `name`.
  util::Result<uint64_t> PublishFromFile(const std::string& name,
                                         const std::string& path);

  /// \brief Deserialize SaveModel-format bytes (a state transfer) and
  /// publish under `name`; `origin` names the byte source in errors.
  util::Result<uint64_t> PublishFromBytes(const std::string& name,
                                          const std::string& bytes,
                                          const std::string& origin);

  /// \brief The served snapshot of `name` as SaveModel-format bytes — the
  /// state-transfer payload for replicating this route to a remote shard.
  util::Result<std::string> SnapshotModelBytes(const std::string& name) const {
    return registry_.SnapshotBytes(name);
  }

  /// \brief Completion callback for SubmitWith: exactly one of the response
  /// (success) or the exception (failure) is meaningful. May be invoked from
  /// the caller's thread (cache hit, validation error, unbatched path) or a
  /// pool worker.
  using ResponseFn =
      std::function<void(EstimateResponse&& response, std::exception_ptr error)>;

  /// \brief The one entry point: submit a request carrying 1..K thresholds
  /// and receive the response through `done`. A malformed request (wrong x
  /// dimensionality, empty thresholds) or an absent route fails the request,
  /// never the server.
  void SubmitWith(EstimateRequest req, ResponseFn done);

  /// \brief One request + its completion, for the batched entry point.
  struct Submission {
    EstimateRequest req;
    ResponseFn done;
  };

  /// \brief Submit many requests at once (the frontend's batched-decode
  /// path: one read round of binary frames arrives as one call). Semantics
  /// are identical to per-request SubmitWith — validation, admission, cache,
  /// and fast path all run per request — but every scheduler row the batch
  /// produces is enqueued under ONE scheduler lock acquisition with at most
  /// one flusher wake, instead of one per row.
  void SubmitMany(std::vector<Submission> batch);

  /// \brief Future-returning wrapper over SubmitWith.
  std::future<EstimateResponse> Submit(EstimateRequest req);

  /// \brief Shim: asynchronous estimate for one (x, t). `x` must hold dim
  /// floats. The future throws if no model is published or serving fails.
  std::future<float> EstimateAsync(const float* x, float t);

  /// \brief Shim: blocking estimate; NotFound when no model is published.
  util::Result<float> Estimate(const float* x, float t);

  /// \brief Shim: monotone threshold sweep — a Sweep request submitted and
  /// awaited. With `ts` sorted ascending the result column is non-decreasing.
  util::Result<std::vector<float>> EstimateSweep(const float* x,
                                                 const std::vector<float>& ts);

  /// \brief Block until every accepted request has been answered.
  void Drain();

  /// \brief Attach a live-update pipeline to `cfg.model_name` (empty = the
  /// default route): a background thread that ingests UpdateOp batches,
  /// applies them to a shadow copy of `db` + `workload`, retrains a clone of
  /// the served model when validation-MAE drift trips, and republishes
  /// through the registry — serving never blocks. The route must already be
  /// published with a model implementing core::IncrementalModel. Replaces
  /// (stopping) any previously attached pipeline. The server owns the
  /// pipeline; the reference stays valid until Detach or destruction.
  LiveUpdatePipeline& AttachUpdatePipeline(const UpdatePipelineConfig& cfg,
                                           const data::Database& db,
                                           const data::Workload& workload);

  /// \brief Stop and destroy the attached pipeline (no-op when absent).
  void DetachUpdatePipeline();

  /// \brief The attached pipeline, or null.
  LiveUpdatePipeline* update_pipeline() { return pipeline_.get(); }

  ModelRegistry& registry() { return registry_; }
  EstimateCache& cache() { return cache_; }
  ServeStats& stats() { return stats_; }
  const ServerConfig& config() const { return cfg_; }
  /// \brief The admission controller, or null when admission is disabled.
  AdmissionController* admission() { return admission_.get(); }

  std::string StatsReport() const { return stats_.Report(); }

 private:
  struct PendingResponse;

  /// The SubmitWith body, parameterized over where scheduler rows go:
  /// null sink = straight into the scheduler (SubmitWith); non-null =
  /// appended for the caller to hand over in one SubmitRows (SubmitMany).
  void SubmitOne(EstimateRequest req, ResponseFn done,
                 std::vector<BatchScheduler::Row>* row_sink);

  /// Run one batched Predict on `handle`'s snapshot: stats + cache fill.
  tensor::Matrix PredictOnHandle(const ModelHandle& handle,
                                 const tensor::Matrix& x,
                                 const tensor::Matrix& t);
  /// Resolve `model` in the registry (throws on absence) and predict.
  tensor::Matrix PredictOnModel(const std::string& model,
                                const tensor::Matrix& x,
                                const tensor::Matrix& t);
  /// Answer `missing` thresholds of `req` through one SweepCapable pass.
  /// `enqueued` is the submit time, so recorded latency includes pool queue
  /// delay and stays comparable with scheduler-row latency. `route_stats` is
  /// the request's per-route accumulator.
  void RunSweepFastPath(const std::shared_ptr<PendingResponse>& state,
                        const EstimateRequest& req, const ModelHandle& handle,
                        const std::vector<size_t>& missing,
                        std::chrono::steady_clock::time_point enqueued,
                        ServeStats::RouteStats* route_stats);
  /// Degrade instead of shedding: answer `req` from the version-keyed cached
  /// sweep curve (local PWL evaluation, zero model compute) when the curve
  /// cache holds this query's control points. Returns false — caller sheds —
  /// when the curve cache is off, the route is absent, or the curve is not
  /// cached; never computes a fresh curve (that would be the compute the
  /// shed is protecting).
  bool TryDegrade(const EstimateRequest& req, const std::string& route,
                  const ResponseFn& done);

  ServerConfig cfg_;
  ModelRegistry registry_;
  EstimateCache cache_;
  ServeStats stats_;
  std::unique_ptr<AdmissionController> admission_;  ///< Null = admission off.
  std::unique_ptr<BatchScheduler> scheduler_;  ///< Null when batching is off.
  /// Destroyed before the scheduler: the pipeline's final republish must not
  /// outlive the serving machinery it publishes into.
  std::unique_ptr<LiveUpdatePipeline> pipeline_;
  util::ThreadPool* pool_;  ///< Fast-path sweep execution (batching on).

  /// Fast-path jobs in flight on the (possibly shared) pool. Drain and the
  /// destructor wait on this count, not on the whole pool — blocking on
  /// another server's unrelated work would make Drain unbounded.
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  size_t sweep_inflight_ = 0;

  /// Round-robin position for 1-in-N trace sampling; the untraced majority
  /// pays exactly this one relaxed increment.
  std::atomic<uint64_t> trace_counter_{0};
};

}  // namespace selnet::serve
