#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tensor/matrix.h"
#include "util/thread_pool.h"

/// \file batch_scheduler.h
/// \brief Request coalescing: many single (x, t) rows -> few batched Predict
/// calls, routed per model.
///
/// Single-row SelNet prediction pays the full autograd-graph construction
/// cost per call; batching B rows through one forward pass amortizes it and
/// lets the GEMM kernels run at full width. The scheduler buffers incoming
/// rows and flushes a batch when either `max_batch` rows are pending or the
/// oldest pending row has waited `max_delay`. Flushed batches are dispatched
/// to a util::ThreadPool via Submit, so multiple batches can be in flight
/// while the flusher keeps accepting rows.
///
/// Rows carry a model route: a flush groups its rows by model name (in
/// first-appearance order) and issues one batch function call per distinct
/// model, so requests to different registry slots coalesce independently
/// inside one flush window. The batch function resolves the model snapshot
/// per call, which is what makes hot-swap work: a republished model takes
/// effect at the next batch boundary without failing in-flight rows.
///
/// Two submission styles:
///  * `SubmitRow` hands each row a completion callback — the server's
///    request-object path uses this to aggregate K rows of one
///    EstimateRequest without one promise per row;
///  * `Submit` is the future-returning compatibility wrapper on top of it.
///
/// Deadlines: a row may carry a steady-clock deadline. At the batch
/// boundary — the `compute_start` timestamp that also splits queue vs
/// predict time — expired rows are dropped from the group BEFORE the x/t
/// matrices are built, and completed with a typed OverloadError
/// (kDeadlineExpired). A deadline that expires DURING Predict still gets its
/// computed value (the work was already spent); the guarantee is that no row
/// already expired at the batch boundary ever reaches the model.
/// `expired_rows()` counts the drops; `expired_predicted()` re-checks the
/// live set against the same timestamp after Predict and must stay 0 — the
/// scenario harness gates on it.

namespace selnet::serve {

/// \brief Batching policy.
struct SchedulerConfig {
  /// Query dimensionality. Required for standalone use; SelNetServer treats 0
  /// as "inherit ServerConfig::dim" and rejects any other mismatching value.
  size_t dim = 0;
  size_t max_batch = 64;     ///< Flush when this many rows are pending.
  double max_delay_ms = 0.2; ///< Flush when the oldest row is this old.
  util::ThreadPool* pool = nullptr;  ///< Execution pool; null = Global().
};

/// \brief Coalesces single estimate rows into batched Predict calls.
class BatchScheduler {
 public:
  /// Evaluates a B x dim query matrix and B x 1 thresholds against `model`
  /// into B x 1 estimates. Must be safe to call concurrently from pool
  /// workers. Throwing fails every row of that model group.
  using BatchFn = std::function<tensor::Matrix(
      const std::string& model, const tensor::Matrix& x,
      const tensor::Matrix& t)>;
  /// Per-row timing, split at the moment the row's batch started computing:
  /// `queue_ms` is scheduler buffering plus pool wait, `predict_ms` is the
  /// batch-function call the row rode in, and `latency_ms` is their sum
  /// (enqueue to completion).
  struct RowTiming {
    double latency_ms = 0.0;
    double queue_ms = 0.0;
    double predict_ms = 0.0;
  };
  /// Per-row completion: the estimate (or the error that failed its batch)
  /// plus the row's split timing. Invoked from a pool worker.
  using RowDoneFn = std::function<void(float value, std::exception_ptr error,
                                       const RowTiming& timing)>;
  /// Observer invoked once per future-based request after its batch
  /// completes, with the request's tag, computed estimate, and latency
  /// (used for stats; cache fill happens inside the batch fn where the model
  /// version is known).
  using CompletionFn =
      std::function<void(uint64_t tag, float value, double latency_ms)>;

  /// One buffered row. Public so a batched producer (SelNetServer::
  /// SubmitMany decoding a whole read round of wire frames) can build rows
  /// up front and hand them over in one SubmitRows call.
  struct Row {
    std::string model;
    std::vector<float> x;
    float t = 0.0f;
    RowDoneFn done;
    std::chrono::steady_clock::time_point enqueued;
    /// Droppable-row deadline; the default epoch means none.
    std::chrono::steady_clock::time_point deadline{};
  };

  BatchScheduler(const SchedulerConfig& cfg, BatchFn batch_fn,
                 CompletionFn on_complete = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// \brief Enqueue one row routed to `model`; `done` fires when its batch
  /// runs (immediately, with an error, if the scheduler is shut down). `x`
  /// must point at `dim` floats (copied before returning). A non-default
  /// `deadline` marks the row droppable: expired at the batch boundary ->
  /// completed with OverloadError(kDeadlineExpired) instead of predicted.
  void SubmitRow(std::string model, const float* x, float t, RowDoneFn done,
                 std::chrono::steady_clock::time_point deadline = {});

  /// \brief Enqueue many rows under ONE lock acquisition: the batched-decode
  /// path's amortization (a frontend read round that decoded N frames pays
  /// one mutex + at most one flusher wake instead of N of each). Each row's
  /// `done` must be set; `enqueued` is stamped here with a single shared
  /// clock sample. Full batches dispatch inline, exactly as if the rows had
  /// arrived through SubmitRow one at a time.
  void SubmitRows(std::vector<Row> rows);

  /// \brief Future-returning wrapper over SubmitRow. `tag` is passed through
  /// to the completion observer.
  std::future<float> Submit(const float* x, float t, uint64_t tag = 0,
                            std::string model = "");

  /// \brief Block until every row submitted so far has been answered.
  void Drain();

  /// \brief Stop accepting work and drain; called by the destructor.
  void Shutdown();

  const SchedulerConfig& config() const { return cfg_; }

  /// \brief Rows dropped (typed kDeadlineExpired) at a batch boundary.
  uint64_t expired_rows() const {
    return expired_rows_.load(std::memory_order_relaxed);
  }
  /// \brief Invariant probe: rows that were ALREADY expired at their batch
  /// boundary yet rode a Predict anyway. Re-measured after every batch
  /// against the same compute_start timestamp the drop used; always 0 unless
  /// the drop filter regresses.
  uint64_t expired_predicted() const {
    return expired_predicted_.load(std::memory_order_relaxed);
  }

 private:
  void FlusherLoop();
  /// Moves `pending_` out and dispatches it to the pool. Caller holds mu_.
  void DispatchLocked(std::unique_lock<std::mutex>* lock);
  /// Runs one flush on a pool worker: group rows by model, one batch fn call
  /// per group.
  void RunBatch(std::vector<Row> batch);

  SchedulerConfig cfg_;
  BatchFn batch_fn_;
  CompletionFn on_complete_;
  util::ThreadPool* pool_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Wakes the flusher.
  std::condition_variable drain_cv_;  ///< Wakes Drain()/Shutdown().
  std::vector<Row> pending_;
  size_t in_flight_batches_ = 0;
  bool stop_ = false;
  std::thread flusher_;

  std::atomic<uint64_t> expired_rows_{0};
  std::atomic<uint64_t> expired_predicted_{0};
};

}  // namespace selnet::serve
