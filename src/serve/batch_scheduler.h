#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/matrix.h"
#include "util/thread_pool.h"

/// \file batch_scheduler.h
/// \brief Request coalescing: many single (x, t) estimates -> few batched
/// Predict calls.
///
/// Single-row SelNet prediction pays the full autograd-graph construction
/// cost per call; batching B rows through one forward pass amortizes it and
/// lets the GEMM kernels run at full width. The scheduler buffers incoming
/// requests and flushes a batch when either `max_batch` requests are pending
/// or the oldest pending request has waited `max_delay`. Flushed batches are
/// dispatched to a util::ThreadPool via SubmitWithResult, so multiple batches
/// can be in flight while the flusher keeps accepting requests.
///
/// The batch function is grabbed per flush, which is what makes hot-swap
/// work: the server installs a function that resolves the current registry
/// snapshot at flush time, so a republished model takes effect at the next
/// batch boundary without failing in-flight requests.

namespace selnet::serve {

/// \brief Batching policy.
struct SchedulerConfig {
  size_t dim = 0;            ///< Query dimensionality (required).
  size_t max_batch = 64;     ///< Flush when this many requests are pending.
  double max_delay_ms = 0.2; ///< Flush when the oldest request is this old.
  util::ThreadPool* pool = nullptr;  ///< Execution pool; null = Global().
};

/// \brief Coalesces single estimate requests into batched Predict calls.
class BatchScheduler {
 public:
  /// Evaluates a B x dim query matrix and B x 1 thresholds into B x 1
  /// estimates. Must be safe to call concurrently from pool workers.
  using BatchFn =
      std::function<tensor::Matrix(const tensor::Matrix& x,
                                   const tensor::Matrix& t)>;
  /// Observer invoked once per request after its batch completes, with the
  /// request's tag, computed estimate, and queue+compute latency in
  /// milliseconds (used for stats; cache fill happens inside the batch fn
  /// where the model version is known).
  using CompletionFn =
      std::function<void(uint64_t tag, float value, double latency_ms)>;

  BatchScheduler(const SchedulerConfig& cfg, BatchFn batch_fn,
                 CompletionFn on_complete = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// \brief Enqueue one request; the future resolves when its batch runs.
  /// `x` must point at `dim` floats (copied before returning). `tag` is
  /// passed through to the completion observer.
  std::future<float> Submit(const float* x, float t, uint64_t tag = 0);

  /// \brief Block until every request submitted so far has been answered.
  void Drain();

  /// \brief Stop accepting work and drain; called by the destructor.
  void Shutdown();

  const SchedulerConfig& config() const { return cfg_; }

 private:
  struct Request {
    std::vector<float> x;
    float t = 0.0f;
    uint64_t tag = 0;
    std::promise<float> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void FlusherLoop();
  /// Moves `pending_` out and dispatches it to the pool. Caller holds mu_.
  void DispatchLocked(std::unique_lock<std::mutex>* lock);
  /// Runs one batch on a pool worker.
  void RunBatch(std::vector<Request> batch);

  SchedulerConfig cfg_;
  BatchFn batch_fn_;
  CompletionFn on_complete_;
  util::ThreadPool* pool_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Wakes the flusher.
  std::condition_variable drain_cv_;  ///< Wakes Drain()/Shutdown().
  std::vector<Request> pending_;
  size_t in_flight_batches_ = 0;
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace selnet::serve
