#include "serve/batch_scheduler.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace selnet::serve {

BatchScheduler::BatchScheduler(const SchedulerConfig& cfg, BatchFn batch_fn,
                               CompletionFn on_complete)
    : cfg_(cfg),
      batch_fn_(std::move(batch_fn)),
      on_complete_(std::move(on_complete)),
      pool_(cfg.pool != nullptr ? cfg.pool : &util::ThreadPool::Global()) {
  SEL_CHECK(cfg_.dim > 0);
  SEL_CHECK(cfg_.max_batch > 0);
  SEL_CHECK(batch_fn_ != nullptr);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchScheduler::~BatchScheduler() { Shutdown(); }

std::future<float> BatchScheduler::Submit(const float* x, float t,
                                          uint64_t tag) {
  Request req;
  req.x.assign(x, x + cfg_.dim);
  req.t = t;
  req.tag = tag;
  req.enqueued = std::chrono::steady_clock::now();
  std::future<float> result = req.promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    req.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("BatchScheduler is shut down")));
    return result;
  }
  pending_.push_back(std::move(req));
  if (pending_.size() >= cfg_.max_batch) {
    DispatchLocked(&lock);
  } else if (pending_.size() == 1) {
    // Only the empty->non-empty transition needs to arm the flusher's delay
    // timer; waking it per request would cost a futex wake on the hot path.
    work_cv_.notify_one();
  }
  return result;
}

void BatchScheduler::DispatchLocked(std::unique_lock<std::mutex>* lock) {
  if (pending_.empty()) return;
  std::vector<Request> batch;
  batch.swap(pending_);
  ++in_flight_batches_;
  lock->unlock();
  // Wrapped in shared_ptr because std::function requires a copyable callable
  // and Request holds a move-only promise.
  auto shared_batch = std::make_shared<std::vector<Request>>(std::move(batch));
  pool_->Submit([this, shared_batch] { RunBatch(std::move(*shared_batch)); });
  lock->lock();
}

void BatchScheduler::RunBatch(std::vector<Request> batch) {
  tensor::Matrix x(batch.size(), cfg_.dim);
  tensor::Matrix t(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::copy(batch[i].x.begin(), batch[i].x.end(), x.row(i));
    t(i, 0) = batch[i].t;
  }
  try {
    tensor::Matrix y = batch_fn_(x, t);
    SEL_CHECK_EQ(y.rows(), batch.size());
    auto done = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (on_complete_) {
        double latency_ms =
            std::chrono::duration<double, std::milli>(done -
                                                      batch[i].enqueued)
                .count();
        on_complete_(batch[i].tag, y(i, 0), latency_ms);
      }
      batch[i].promise.set_value(y(i, 0));
    }
  } catch (...) {
    std::exception_ptr err = std::current_exception();
    for (auto& req : batch) req.promise.set_exception(err);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_batches_;
    // Notify under the lock: once the count hits zero with the lock free, a
    // waiter in Drain()/Shutdown() may return and destroy this object, so an
    // unlocked notify could touch a destroyed condition_variable.
    drain_cv_.notify_all();
  }
}

void BatchScheduler::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  auto delay = std::chrono::duration<double, std::milli>(cfg_.max_delay_ms);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_ && pending_.empty()) return;
    // Oldest request sets the deadline; flush when it expires or the batch
    // fills (Submit dispatches full batches itself, so waking with an empty
    // queue just loops back to waiting).
    auto deadline = pending_.front().enqueued +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(delay);
    work_cv_.wait_until(lock, deadline, [this, deadline] {
      return stop_ || pending_.empty() ||
             std::chrono::steady_clock::now() >= deadline;
    });
    if (!pending_.empty()) DispatchLocked(&lock);
    if (stop_ && pending_.empty()) return;
  }
}

void BatchScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!pending_.empty()) DispatchLocked(&lock);
  drain_cv_.wait(lock, [this] {
    return pending_.empty() && in_flight_batches_ == 0;
  });
}

void BatchScheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ && !flusher_.joinable()) return;
    stop_ = true;
    if (!pending_.empty()) DispatchLocked(&lock);
  }
  work_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.empty() && in_flight_batches_ == 0;
  });
}

}  // namespace selnet::serve
