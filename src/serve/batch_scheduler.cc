#include "serve/batch_scheduler.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "serve/admission.h"
#include "util/check.h"

namespace selnet::serve {

BatchScheduler::BatchScheduler(const SchedulerConfig& cfg, BatchFn batch_fn,
                               CompletionFn on_complete)
    : cfg_(cfg),
      batch_fn_(std::move(batch_fn)),
      on_complete_(std::move(on_complete)),
      pool_(cfg.pool != nullptr ? cfg.pool : &util::ThreadPool::Global()) {
  SEL_CHECK(cfg_.dim > 0);
  SEL_CHECK(cfg_.max_batch > 0);
  SEL_CHECK(batch_fn_ != nullptr);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchScheduler::~BatchScheduler() { Shutdown(); }

void BatchScheduler::SubmitRow(std::string model, const float* x, float t,
                               RowDoneFn done,
                               std::chrono::steady_clock::time_point deadline) {
  SEL_CHECK(done != nullptr);
  Row row;
  row.model = std::move(model);
  row.x.assign(x, x + cfg_.dim);
  row.t = t;
  row.done = std::move(done);
  row.enqueued = std::chrono::steady_clock::now();
  row.deadline = deadline;

  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    lock.unlock();
    row.done(0.0f,
             std::make_exception_ptr(OverloadError(
                 ShedReason::kShutdown, "BatchScheduler is shut down")),
             RowTiming{});
    return;
  }
  pending_.push_back(std::move(row));
  if (pending_.size() >= cfg_.max_batch) {
    DispatchLocked(&lock);
  } else if (pending_.size() == 1) {
    // Only the empty->non-empty transition needs to arm the flusher's delay
    // timer; waking it per row would cost a futex wake on the hot path.
    work_cv_.notify_one();
  }
}

void BatchScheduler::SubmitRows(std::vector<Row> rows) {
  if (rows.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (Row& row : rows) {
    SEL_CHECK(row.done != nullptr);
    row.enqueued = now;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    lock.unlock();
    auto err = std::make_exception_ptr(
        OverloadError(ShedReason::kShutdown, "BatchScheduler is shut down"));
    for (Row& row : rows) row.done(0.0f, err, RowTiming{});
    return;
  }
  const bool was_empty = pending_.empty();
  std::vector<Row> rejected;
  for (Row& row : rows) {
    // DispatchLocked drops the lock around the pool handoff, so Shutdown can
    // slip in mid-call: re-check and fail the remainder like SubmitRow would.
    if (stop_) {
      rejected.push_back(std::move(row));
      continue;
    }
    pending_.push_back(std::move(row));
    if (pending_.size() >= cfg_.max_batch) DispatchLocked(&lock);
  }
  // One wake at most, and only on the empty->non-empty transition — the same
  // delay-timer arming rule as SubmitRow.
  if (was_empty && !pending_.empty()) work_cv_.notify_one();
  lock.unlock();
  if (!rejected.empty()) {
    auto err = std::make_exception_ptr(
        OverloadError(ShedReason::kShutdown, "BatchScheduler is shut down"));
    for (Row& row : rejected) row.done(0.0f, err, RowTiming{});
  }
}

std::future<float> BatchScheduler::Submit(const float* x, float t,
                                          uint64_t tag, std::string model) {
  auto promise = std::make_shared<std::promise<float>>();
  std::future<float> result = promise->get_future();
  // `this` stays valid for the callback's lifetime: rows only complete while
  // a flush is in flight, and Shutdown() (run by the destructor) waits for
  // in-flight flushes to drain.
  SubmitRow(std::move(model), x, t,
            [this, promise, tag](float value, std::exception_ptr error,
                                 const RowTiming& timing) {
              if (error) {
                promise->set_exception(error);
                return;
              }
              if (on_complete_) on_complete_(tag, value, timing.latency_ms);
              promise->set_value(value);
            });
  return result;
}

void BatchScheduler::DispatchLocked(std::unique_lock<std::mutex>* lock) {
  if (pending_.empty()) return;
  std::vector<Row> batch;
  batch.swap(pending_);
  ++in_flight_batches_;
  lock->unlock();
  // Wrapped in shared_ptr because std::function requires a copyable callable
  // and copying a full batch of query vectors per dispatch would be wasteful.
  auto shared_batch = std::make_shared<std::vector<Row>>(std::move(batch));
  pool_->Submit([this, shared_batch] { RunBatch(std::move(*shared_batch)); });
  lock->lock();
}

void BatchScheduler::RunBatch(std::vector<Row> batch) {
  // Group rows by model route, preserving first-appearance order. The common
  // case is every row on one model; the linear scan over a handful of groups
  // is cheaper than hashing per row.
  std::vector<std::pair<const std::string*, std::vector<size_t>>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return *g.first == batch[i].model;
    });
    if (it == groups.end()) {
      groups.emplace_back(&batch[i].model, std::vector<size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }

  for (const auto& [model, rows] : groups) {
    // Everything before this timestamp is queueing (scheduler buffering plus
    // pool wait); everything after is the batched compute the row rode in.
    // It is also the deadline cut: rows already expired here are dropped
    // before the matrices are built, so they never reach Predict.
    auto compute_start = std::chrono::steady_clock::now();
    auto timing_for = [&](const Row& row,
                          std::chrono::steady_clock::time_point done) {
      RowTiming timing;
      timing.queue_ms = std::chrono::duration<double, std::milli>(
                            compute_start - row.enqueued)
                            .count();
      timing.predict_ms =
          std::chrono::duration<double, std::milli>(done - compute_start)
              .count();
      timing.latency_ms =
          std::chrono::duration<double, std::milli>(done - row.enqueued)
              .count();
      return timing;
    };
    auto expired_at = [&](const Row& row,
                          std::chrono::steady_clock::time_point when) {
      return row.deadline != std::chrono::steady_clock::time_point{} &&
             row.deadline < when;
    };
    std::vector<size_t> live;
    live.reserve(rows.size());
    for (size_t i : rows) {
      if (expired_at(batch[i], compute_start)) {
        expired_rows_.fetch_add(1, std::memory_order_relaxed);
        batch[i].done(
            0.0f,
            std::make_exception_ptr(OverloadError(
                ShedReason::kDeadlineExpired,
                "BatchScheduler: deadline expired before Predict")),
            timing_for(batch[i], compute_start));
      } else {
        live.push_back(i);
      }
    }
    if (live.empty()) continue;
    tensor::Matrix x(live.size(), cfg_.dim);
    tensor::Matrix t(live.size(), 1);
    for (size_t i = 0; i < live.size(); ++i) {
      const Row& row = batch[live[i]];
      std::copy(row.x.begin(), row.x.end(), x.row(i));
      t(i, 0) = row.t;
    }
    try {
      tensor::Matrix y = batch_fn_(*model, x, t);
      SEL_CHECK_EQ(y.rows(), live.size());
      auto done = std::chrono::steady_clock::now();
      for (size_t i = 0; i < live.size(); ++i) {
        Row& row = batch[live[i]];
        // Invariant probe, same predicate and timestamp as the drop above:
        // a row expired at the batch boundary must never have been in the
        // live set. Stays 0 unless the filter regresses.
        if (expired_at(row, compute_start)) {
          expired_predicted_.fetch_add(1, std::memory_order_relaxed);
        }
        row.done(y(i, 0), nullptr, timing_for(row, done));
      }
    } catch (...) {
      std::exception_ptr err = std::current_exception();
      auto done = std::chrono::steady_clock::now();
      for (size_t i : live) {
        batch[i].done(0.0f, err, timing_for(batch[i], done));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_batches_;
    // Notify under the lock: once the count hits zero with the lock free, a
    // waiter in Drain()/Shutdown() may return and destroy this object, so an
    // unlocked notify could touch a destroyed condition_variable.
    drain_cv_.notify_all();
  }
}

void BatchScheduler::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  auto delay = std::chrono::duration<double, std::milli>(cfg_.max_delay_ms);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_ && pending_.empty()) return;
    // Oldest row sets the deadline; flush when it expires or the batch fills
    // (SubmitRow dispatches full batches itself, so waking with an empty
    // queue just loops back to waiting).
    auto deadline = pending_.front().enqueued +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(delay);
    work_cv_.wait_until(lock, deadline, [this, deadline] {
      return stop_ || pending_.empty() ||
             std::chrono::steady_clock::now() >= deadline;
    });
    if (!pending_.empty()) DispatchLocked(&lock);
    if (stop_ && pending_.empty()) return;
  }
}

void BatchScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!pending_.empty()) DispatchLocked(&lock);
  drain_cv_.wait(lock, [this] {
    return pending_.empty() && in_flight_batches_ == 0;
  });
}

void BatchScheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ && !flusher_.joinable()) return;
    stop_ = true;
    if (!pending_.empty()) DispatchLocked(&lock);
  }
  work_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.empty() && in_flight_batches_ == 0;
  });
}

}  // namespace selnet::serve
