#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

/// \file request.h
/// \brief The serving protocol: EstimateRequest in, EstimateResponse out.
///
/// One request carries one query vector and one *or many* thresholds, plus an
/// optional model route. This is the single entry shape for every serving
/// pattern:
///  * a scalar estimate is a request with one threshold — it joins the
///    cross-request coalesced batch like before;
///  * a threshold sweep is a request with K thresholds — answered in one pass
///    through the SweepCapable fast path when the routed model supports it,
///    or transparently row-expanded into the batch scheduler when it does
///    not;
///  * A/B serving is two requests differing only in `model`.
///
/// The request owns its data (`x` and `thresholds` are copied in), so the
/// caller's buffers may be reused the moment Submit returns.
///
/// Both shapes travel over the wire as JSON lines (wire.h) or binary frames
/// (wire_binary.h), negotiated per connection. The binary frame carries `x`,
/// `thresholds`, and `estimates` as raw IEEE-754 little-endian bytes — a
/// remote estimate round-trips bit-identical to an in-process Submit,
/// whereas the JSON path quantizes through decimal printing.

namespace selnet::serve {

class RequestTrace;

/// \brief One estimation request: a query, 1..K thresholds, and a route.
struct EstimateRequest {
  /// Registry slot to answer from; empty routes to the server's default
  /// model (`ServerConfig::model_name`).
  std::string model;
  /// The query vector; must hold exactly `ServerConfig::dim` floats.
  std::vector<float> x;
  /// Thresholds to estimate at; must be non-empty. When sorted ascending the
  /// response column is guaranteed non-decreasing (the paper's consistency
  /// guarantee, plus a running-max repair across cache-quantum artifacts).
  std::vector<float> thresholds;
  /// Opaque caller tag, echoed in the response.
  uint64_t tag = 0;
  /// Optional completion deadline on the STEADY monotonic clock (the
  /// default-constructed epoch means "no deadline"). A request whose
  /// deadline has passed is shed with a typed kDeadlineExpired error the
  /// moment the serving stack notices — at submit, or at the batch boundary
  /// before Predict (expired rows never reach the model). On the wire the
  /// deadline travels as a RELATIVE `deadline_ms` budget, anchored to this
  /// clock at decode time.
  std::chrono::steady_clock::time_point deadline{};

  /// \brief True when a deadline was set.
  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  /// Stage-trace span for a SAMPLED request (see trace.h); null for the
  /// untraced majority. Set by the NetFrontend (wire requests, so the decode
  /// stage is captured) or by SelNetServer::SubmitWith (in-process requests).
  /// The trace OBJECT never crosses the wire — a traced request serializes a
  /// `"trace":true` flag instead (see `wire_trace`), and the remote's
  /// response carries a per-stage timing block back.
  std::shared_ptr<RequestTrace> trace;
  /// True when the WIRE asked for tracing (`"trace":true` on the request
  /// line, the caller's `tag` doubling as its trace id): the frontend
  /// attaches a trace regardless of its sampling counter and returns the
  /// span's stage block in the response so the caller can attribute this
  /// process's share of the latency. Set by ParseRequestLine; serialized by
  /// SerializeRequest (also implied when `trace` is non-null — RemoteShard
  /// propagates a sampled trace downstream this way).
  bool wire_trace = false;

  /// \brief A single-threshold request (the scalar compatibility shape).
  static EstimateRequest Point(const float* x, size_t dim, float t,
                               std::string model = "") {
    EstimateRequest req;
    req.model = std::move(model);
    req.x.assign(x, x + dim);
    req.thresholds.assign(1, t);
    return req;
  }

  /// \brief A threshold-sweep request; pass `ts` sorted ascending to get the
  /// monotone-column guarantee.
  static EstimateRequest Sweep(const float* x, size_t dim,
                               std::vector<float> ts, std::string model = "") {
    EstimateRequest req;
    req.model = std::move(model);
    req.x.assign(x, x + dim);
    req.thresholds = std::move(ts);
    return req;
  }
};

/// \brief The answer to one EstimateRequest.
struct EstimateResponse {
  /// One estimate per requested threshold, in request order.
  std::vector<float> estimates;
  /// Registry slot that answered.
  std::string model;
  /// Model version the request was admitted against. Rows that miss the
  /// cache resolve their snapshot at batch-flush time, so after a concurrent
  /// republish individual estimates may come from a newer version.
  uint64_t version = 0;
  /// How many thresholds were answered from the cache.
  uint32_t cache_hits = 0;
  /// True when the SweepCapable control-point fast path answered the
  /// uncached thresholds in one pass.
  bool fast_path = false;
  /// Echo of EstimateRequest::tag.
  uint64_t tag = 0;
  /// True when the admission controller shed the request but the route opted
  /// into degrade and the version-keyed cached sweep curve answered instead:
  /// estimates came from local PWL lookups, not a fresh model evaluation
  /// (bit-identical to the fast path for the cached version, but possibly a
  /// version behind the latest publish).
  bool degraded = false;
  /// Per-stage timing block for a WIRE-TRACED request (`"trace":true`): the
  /// answering frontend's span, one float per serve::Stage in enum order
  /// (the remote stages stay 0 — a shard_node reports only its own view;
  /// encode is also 0 since the block is serialized inside encode). Empty
  /// for untraced requests. RemoteShard consumes and STRIPS this before the
  /// caller's completion fires — it merges into the caller's RequestTrace,
  /// it is not part of the caller-visible response.
  std::vector<float> stage_ms;
};

}  // namespace selnet::serve
