#include "serve/wire.h"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/metrics.h"

namespace selnet::serve {

using util::Status;

namespace {

/// Strict single-pass tokenizer over one protocol line. The protocol only
/// ever nests one level (arrays of numbers inside the top object), so a full
/// DOM is overkill — the parser walks the object once and dispatches on
/// field name.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  Status Fail(const std::string& msg) const {
    return Status::Invalid("wire: " + msg + " at byte " + std::to_string(i_));
  }

  void SkipSpace() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return i_ >= s_.size();
  }

  /// Parse a quoted string (escapes: \" \\ \/ \n \t \r \b \f; \uXXXX is
  /// rejected — the protocol's strings are routes and error text, ASCII in
  /// practice, and raw UTF-8 passes through unescaped).
  Status String(std::string* out) {
    SkipSpace();
    if (i_ >= s_.size() || s_[i_] != '"') return Fail("expected string");
    ++i_;
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (i_ >= s_.size()) return Fail("dangling escape");
      char e = s_[i_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        default: return Fail("unsupported escape");
      }
    }
    if (i_ >= s_.size()) return Fail("unterminated string");
    ++i_;  // Closing quote.
    return Status::OK();
  }

  /// The raw token of a JSON number: [-]digits[.digits][e[+-]digits].
  Status NumberToken(const char** begin, const char** end) {
    SkipSpace();
    size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    size_t digits = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    if (i_ == digits) return Fail("expected number");
    *begin = s_.data() + start;
    *end = s_.data() + i_;
    return Status::OK();
  }

  /// from_chars on the raw token: the shortest-round-trip decimal written by
  /// AppendFloat parses back to the bit-identical float.
  Status Float(float* out) {
    const char* b = nullptr;
    const char* e = nullptr;
    SEL_RETURN_NOT_OK(NumberToken(&b, &e));
    auto [ptr, ec] = std::from_chars(b, e, *out);
    if (ec != std::errc() || ptr != e) return Fail("unparsable number");
    return Status::OK();
  }

  Status Uint(uint64_t* out) {
    const char* b = nullptr;
    const char* e = nullptr;
    SEL_RETURN_NOT_OK(NumberToken(&b, &e));
    auto [ptr, ec] = std::from_chars(b, e, *out);
    if (ec != std::errc() || ptr != e) {
      return Fail("expected unsigned integer");
    }
    return Status::OK();
  }

  Status FloatArray(std::vector<float>* out) {
    if (!Eat('[')) return Fail("expected array");
    out->clear();
    if (Eat(']')) return Status::OK();
    for (;;) {
      float v;
      SEL_RETURN_NOT_OK(Float(&v));
      out->push_back(v);
      if (Eat(']')) return Status::OK();
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  Status Bool(bool* out) {
    SkipSpace();
    if (s_.compare(i_, 4, "true") == 0) {
      i_ += 4;
      *out = true;
      return Status::OK();
    }
    if (s_.compare(i_, 5, "false") == 0) {
      i_ += 5;
      *out = false;
      return Status::OK();
    }
    return Fail("expected boolean");
  }

 private:
  const std::string& s_;
  size_t i_ = 0;
};

/// Walk `{ "key": <value>, ... }`, dispatching each field to `on_field`.
template <typename FieldFn>
Status ParseObject(LineParser* p, FieldFn on_field) {
  if (!p->Eat('{')) return p->Fail("expected request object");
  if (!p->Eat('}')) {
    for (;;) {
      std::string key;
      SEL_RETURN_NOT_OK(p->String(&key));
      if (!p->Eat(':')) return p->Fail("expected ':'");
      SEL_RETURN_NOT_OK(on_field(key));
      if (p->Eat('}')) break;
      if (!p->Eat(',')) return p->Fail("expected ',' or '}'");
    }
  }
  if (!p->AtEnd()) return p->Fail("trailing bytes after object");
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------- command registry ---

const char* WireProtoName(WireProto proto) {
  return proto == WireProto::kBinary ? "binary" : "json";
}

namespace {

/// The one place a command's wire name and version live. Order matches the
/// enum so FindCommand(Command) is an index.
constexpr CommandInfo kCommands[kNumCommands] = {
    {Command::kEstimate, "estimate", 1},
    {Command::kHello, "hello", 1},
    {Command::kStats, "stats", 1},
    {Command::kSlow, "slow", 1},
    {Command::kHealth, "health", 1},
    {Command::kMetrics, "metrics", 1},
    {Command::kEvents, "events", 1},
    {Command::kStatsWire, "stats_wire", 1},
    {Command::kXferBegin, "xfer_begin", 1},
    {Command::kXferFrame, "xfer_frame", 1},
    {Command::kXferCommit, "xfer_commit", 1},
};

}  // namespace

const CommandInfo* FindCommand(const std::string& name) {
  for (const CommandInfo& info : kCommands) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const CommandInfo* FindCommand(Command cmd) {
  const size_t i = size_t(cmd);
  return i < kNumCommands ? &kCommands[i] : nullptr;
}

Status StatusFromWireError(const std::string& code,
                           const std::string& message) {
  // The `code` token types the failure; it deliberately mirrors
  // ShedReasonName so clients never string-match the human message.
  if (code == "deadline_exceeded") return Status::DeadlineExceeded(message);
  if (code == "queue_full" || code == "priority_shed" || code == "shutdown") {
    return Status::Unavailable(message);
  }
  if (code == "not_found") return Status::NotFound(message);
  return Status::Internal(message);
}

void AppendFloat(std::string* out, float v) {
  if (!std::isfinite(v)) {
    out->append("null");  // Estimates are finite; keep the line valid JSON.
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 32 bytes always suffice for a shortest float.
  out->append(buf, ptr);
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\t': out.append("\\t"); break;
      case '\r': out.append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

Status ParseRequestLine(const std::string& line, EstimateRequest* req) {
  EstimateRequest parsed;
  bool have_x = false;
  bool have_ts = false;
  LineParser p(line);
  SEL_RETURN_NOT_OK(ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "x") {
      have_x = true;
      return p.FloatArray(&parsed.x);
    }
    if (key == "thresholds") {
      have_ts = true;
      return p.FloatArray(&parsed.thresholds);
    }
    if (key == "model") return p.String(&parsed.model);
    if (key == "tag") return p.Uint(&parsed.tag);
    if (key == "deadline_ms") {
      // Relative budget, anchored to the steady clock HERE (decode time) —
      // the wire never carries an absolute timestamp. A non-positive budget
      // yields an already-past deadline, shed before any compute.
      float budget_ms = 0.0f;
      SEL_RETURN_NOT_OK(p.Float(&budget_ms));
      parsed.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(budget_ms));
      return Status::OK();
    }
    if (key == "trace") return p.Bool(&parsed.wire_trace);
    return p.Fail("unknown request field '" + key + "'");
  }));
  if (!have_x || parsed.x.empty()) {
    return Status::Invalid("wire: request needs a non-empty \"x\" array");
  }
  if (!have_ts || parsed.thresholds.empty()) {
    return Status::Invalid(
        "wire: request needs a non-empty \"thresholds\" array");
  }
  *req = std::move(parsed);
  return Status::OK();
}

bool LineLooksAdmin(const std::string& line) {
  // Skip the opening '{' and whitespace; an admin line leads with "cmd".
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                             line[i] == '\r')) {
    ++i;
  }
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                             line[i] == '\r')) {
    ++i;
  }
  return line.compare(i, 5, "\"cmd\"") == 0;
}

Status ParseAdminLine(const std::string& line, AdminRequest* req) {
  AdminRequest parsed;
  LineParser p(line);
  SEL_RETURN_NOT_OK(ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "cmd") return p.String(&parsed.cmd);
    if (key == "tag") return p.Uint(&parsed.tag);
    if (key == "model") return p.String(&parsed.model);
    if (key == "data") return p.String(&parsed.data);
    if (key == "seq") return p.Uint(&parsed.seq);
    if (key == "crc") return p.Uint(&parsed.crc);
    if (key == "size") return p.Uint(&parsed.size);
    if (key == "frames") return p.Uint(&parsed.frames);
    if (key == "proto") return p.String(&parsed.proto);
    if (key == "max_version") return p.Uint(&parsed.max_version);
    return p.Fail("unknown admin field '" + key + "'");
  }));
  if (parsed.cmd.empty()) {
    return Status::Invalid("wire: admin request needs a \"cmd\" string");
  }
  *req = std::move(parsed);
  return Status::OK();
}

std::string SerializeAdminRequest(const AdminRequest& req) {
  JsonWriter w;
  w.Field("cmd", req.cmd);
  if (!req.model.empty()) w.Field("model", req.model);
  if (!req.data.empty()) w.Field("data", req.data);
  if (req.seq != 0) w.Field("seq", req.seq);
  if (req.crc != 0) w.Field("crc", req.crc);
  if (req.size != 0) w.Field("size", req.size);
  if (req.frames != 0) w.Field("frames", req.frames);
  if (!req.proto.empty()) w.Field("proto", req.proto);
  if (req.max_version != 0) w.Field("max_version", req.max_version);
  if (req.tag != 0) w.Field("tag", req.tag);
  return w.Finish();
}

std::string SerializeHello(WireProto preferred, uint8_t max_version) {
  AdminRequest hello;
  hello.cmd = "hello";
  hello.proto = WireProtoName(preferred);
  hello.max_version = max_version;
  return SerializeAdminRequest(hello);
}

util::Result<HelloResult> ParseHelloReply(const std::string& line) {
  bool ok = false;
  std::string proto;
  std::string error;
  std::string code;
  uint64_t version = 0;
  uint64_t tag = 0;
  LineParser p(line);
  SEL_RETURN_NOT_OK(ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "ok") return p.Bool(&ok);
    if (key == "proto") return p.String(&proto);
    if (key == "version") return p.Uint(&version);
    if (key == "tag") return p.Uint(&tag);
    if (key == "error") return p.String(&error);
    if (key == "code") return p.String(&code);
    return p.Fail("unknown hello field '" + key + "'");
  }));
  if (!error.empty()) return StatusFromWireError(code, error);
  if (!ok) return Status::Internal("wire: hello reply without ok or error");
  HelloResult result;
  result.proto = proto == "binary" ? WireProto::kBinary : WireProto::kJson;
  result.version =
      uint8_t(version == 0 || version > kWireVersion ? 1 : version);
  return result;
}

Status ParseAckLine(const std::string& line, uint64_t* version) {
  bool ok = false;
  std::string error;
  std::string code;
  uint64_t ver = 0;
  uint64_t tag = 0;
  LineParser p(line);
  SEL_RETURN_NOT_OK(ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "ok") return p.Bool(&ok);
    if (key == "version") return p.Uint(&ver);
    if (key == "tag") return p.Uint(&tag);
    if (key == "error") return p.String(&error);
    if (key == "code") return p.String(&code);
    return p.Fail("unknown ack field '" + key + "'");
  }));
  if (!error.empty()) return StatusFromWireError(code, error);
  if (!ok) return Status::Internal("wire: ack line without ok or error");
  if (version != nullptr) *version = ver;
  return Status::OK();
}

std::string SerializeRequest(const EstimateRequest& req) {
  JsonWriter w;
  w.Field("x", req.x);
  w.Field("thresholds", req.thresholds);
  if (!req.model.empty()) w.Field("model", req.model);
  if (req.tag != 0) w.Field("tag", req.tag);
  if (req.has_deadline()) {
    // The budget REMAINING at serialization time; clamped so a deadline that
    // expired client-side still crosses the wire as an expired (0) budget
    // rather than a negative token.
    double remaining_ms =
        std::chrono::duration<double, std::milli>(
            req.deadline - std::chrono::steady_clock::now())
            .count();
    w.Field("deadline_ms", remaining_ms > 0.0 ? remaining_ms : 0.0);
  }
  // A caller-side sampled trace propagates as a flag: the remote attaches
  // its own RequestTrace and reports the stage block back in the response.
  if (req.wire_trace || req.trace) w.Field("trace", true);
  return w.Finish();
}

std::string SerializeResponse(const EstimateResponse& resp) {
  JsonWriter w;
  w.Field("estimates", resp.estimates);
  w.Field("model", resp.model);
  w.Field("version", resp.version);
  w.Field("cache_hits", uint64_t(resp.cache_hits));
  w.Field("fast_path", resp.fast_path);
  // Written only when set: pre-degrade responses stay byte-identical.
  if (resp.degraded) w.Field("degraded", true);
  // Wire-traced requests only: the answering process's per-stage span.
  if (!resp.stage_ms.empty()) w.Field("stage_ms", resp.stage_ms);
  if (resp.tag != 0) w.Field("tag", resp.tag);
  return w.Finish();
}

uint64_t ExtractTagBestEffort(const std::string& line) {
  size_t pos = line.find("\"tag\"");
  if (pos == std::string::npos) return 0;
  pos += 5;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size() || line[pos] != ':') return 0;
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  uint64_t tag = 0;
  auto [ptr, ec] =
      std::from_chars(line.data() + pos, line.data() + line.size(), tag);
  (void)ptr;
  return ec == std::errc() ? tag : 0;
}

std::string SerializeError(const std::string& message, uint64_t tag) {
  return SerializeError(message, std::string(), tag);
}

std::string SerializeError(const std::string& message, const std::string& code,
                           uint64_t tag) {
  JsonWriter w;
  w.Field("error", message);
  if (!code.empty()) w.Field("code", code);
  if (tag != 0) w.Field("tag", tag);
  return w.Finish();
}

Status ParseResponseLine(const std::string& line, EstimateResponse* resp) {
  EstimateResponse parsed;
  std::string error;
  std::string code;
  uint64_t cache_hits = 0;
  LineParser p(line);
  SEL_RETURN_NOT_OK(ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "estimates") return p.FloatArray(&parsed.estimates);
    if (key == "model") return p.String(&parsed.model);
    if (key == "version") return p.Uint(&parsed.version);
    if (key == "cache_hits") return p.Uint(&cache_hits);
    if (key == "fast_path") {
      bool b = false;
      SEL_RETURN_NOT_OK(p.Bool(&b));
      parsed.fast_path = b;
      return Status::OK();
    }
    if (key == "degraded") {
      bool b = false;
      SEL_RETURN_NOT_OK(p.Bool(&b));
      parsed.degraded = b;
      return Status::OK();
    }
    if (key == "stage_ms") return p.FloatArray(&parsed.stage_ms);
    if (key == "tag") return p.Uint(&parsed.tag);
    if (key == "error") return p.String(&error);
    if (key == "code") return p.String(&code);
    return p.Fail("unknown response field '" + key + "'");
  }));
  if (!error.empty()) return StatusFromWireError(code, error);
  parsed.cache_hits = uint32_t(cache_hits);
  *resp = std::move(parsed);
  return Status::OK();
}

// ------------------------------------------------------- stats_wire codec ---

std::string SerializeStatsWire(const StatsSnapshot& s, uint64_t tag) {
  JsonWriter w;
  if (!s.node_id.empty()) w.Field("node", s.node_id);
  double uptime = s.uptime_s > 0.0 ? s.uptime_s : s.elapsed_seconds;
  w.Field("uptime_s", uptime);
  w.Field("requests", s.requests);
  w.Field("cache_hits", s.cache_hits);
  w.Field("cache_misses", s.cache_misses);
  w.Field("batches", s.batches);
  w.Field("batched_requests", s.batched_requests);
  w.Field("sweeps", s.sweeps);
  w.Field("sweep_fastpath", s.sweep_fastpath);
  w.Field("curve_hits", s.curve_hits);
  w.Field("curve_misses", s.curve_misses);
  w.Field("swaps", s.swaps);
  w.Field("traced", s.traced);
  for (size_t i = 1; i < kNumShedReasons && i < s.sheds.size(); ++i) {
    if (s.sheds[i] == 0) continue;
    w.Field(std::string("shed_") + ShedReasonName(ShedReason(i)), s.sheds[i]);
  }
  w.Field("degraded", s.degraded);
  w.Field("deadline_rows_dropped", s.deadline_rows_dropped);
  w.Field("deadline_rows_predicted", s.deadline_rows_predicted);
  w.Field("qps", s.qps);
  w.Field("elapsed_s", s.elapsed_seconds);
  w.Field("hist_latency", util::EncodeHistogramSnapshot(s.latency_hist));
  for (size_t i = 0; i < s.stage_hists.size() && i < kNumStages; ++i) {
    if (s.stage_hists[i].empty()) continue;
    w.Field(std::string("hist_stage_") + StageName(Stage(i)),
            util::EncodeHistogramSnapshot(s.stage_hists[i]));
  }
  if (tag != 0) w.Field("tag", tag);
  return w.Finish();
}

util::Result<StatsSnapshot> ParseStatsWireLine(const std::string& line) {
  StatsSnapshot s;
  s.stage_hists.resize(kNumStages);
  std::string error;
  std::string code;
  LineParser p(line);
  auto parse_float = [&p](double* out) -> Status {
    float v = 0.0f;
    SEL_RETURN_NOT_OK(p.Float(&v));
    *out = double(v);
    return Status::OK();
  };
  auto parse_hist = [&p](util::HistogramSnapshot* out) -> Status {
    std::string text;
    SEL_RETURN_NOT_OK(p.String(&text));
    auto decoded = util::DecodeHistogramSnapshot(text);
    if (!decoded.ok()) return decoded.status();
    *out = std::move(decoded).ValueOrDie();
    return Status::OK();
  };
  uint64_t tag = 0;
  Status st = ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "node") return p.String(&s.node_id);
    if (key == "uptime_s") return parse_float(&s.uptime_s);
    if (key == "requests") return p.Uint(&s.requests);
    if (key == "cache_hits") return p.Uint(&s.cache_hits);
    if (key == "cache_misses") return p.Uint(&s.cache_misses);
    if (key == "batches") return p.Uint(&s.batches);
    if (key == "batched_requests") return p.Uint(&s.batched_requests);
    if (key == "sweeps") return p.Uint(&s.sweeps);
    if (key == "sweep_fastpath") return p.Uint(&s.sweep_fastpath);
    if (key == "curve_hits") return p.Uint(&s.curve_hits);
    if (key == "curve_misses") return p.Uint(&s.curve_misses);
    if (key == "swaps") return p.Uint(&s.swaps);
    if (key == "traced") return p.Uint(&s.traced);
    if (key.rfind("shed_", 0) == 0) {
      std::string reason = key.substr(5);
      for (size_t i = 1; i < kNumShedReasons; ++i) {
        if (reason == ShedReasonName(ShedReason(i))) {
          return p.Uint(&s.sheds[i]);
        }
      }
      return p.Fail("unknown shed reason '" + reason + "'");
    }
    if (key == "degraded") return p.Uint(&s.degraded);
    if (key == "deadline_rows_dropped") return p.Uint(&s.deadline_rows_dropped);
    if (key == "deadline_rows_predicted") {
      return p.Uint(&s.deadline_rows_predicted);
    }
    if (key == "qps") return parse_float(&s.qps);
    if (key == "elapsed_s") return parse_float(&s.elapsed_seconds);
    if (key == "hist_latency") return parse_hist(&s.latency_hist);
    if (key.rfind("hist_stage_", 0) == 0) {
      std::string stage = key.substr(11);
      for (size_t i = 0; i < kNumStages; ++i) {
        if (stage == StageName(Stage(i))) return parse_hist(&s.stage_hists[i]);
      }
      return p.Fail("unknown stage '" + stage + "'");
    }
    if (key == "tag") return p.Uint(&tag);
    if (key == "error") return p.String(&error);
    if (key == "code") return p.String(&code);
    return p.Fail("unknown stats_wire field '" + key + "'");
  });
  if (!st.ok()) return st;
  if (!error.empty()) return Status::Internal(error);
  for (uint64_t shed : s.sheds) s.shed_total += shed;
  if (!s.latency_hist.empty()) {
    s.latency_p50_ms = s.latency_hist.ValueAtQuantile(0.50);
    s.latency_p99_ms = s.latency_hist.ValueAtQuantile(0.99);
    s.latency_mean_ms = s.latency_hist.MeanMs();
  }
  uint64_t lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) s.cache_hit_rate = double(s.cache_hits) / double(lookups);
  if (s.batches > 0) {
    s.avg_batch_size = double(s.batched_requests) / double(s.batches);
  }
  return s;
}

util::Result<std::string> ParseMetricsReply(const std::string& line) {
  std::string metrics;
  std::string error;
  std::string code;
  uint64_t tag = 0;
  bool have_metrics = false;
  LineParser p(line);
  Status st = ParseObject(&p, [&](const std::string& key) -> Status {
    if (key == "metrics") {
      have_metrics = true;
      return p.String(&metrics);
    }
    if (key == "tag") return p.Uint(&tag);
    if (key == "error") return p.String(&error);
    if (key == "code") return p.String(&code);
    return p.Fail("unknown metrics field '" + key + "'");
  });
  if (!st.ok()) return st;
  if (!error.empty()) return Status::Internal(error);
  if (!have_metrics) {
    return Status::Internal("wire: metrics reply without metrics or error");
  }
  return metrics;
}

// ------------------------------------------------------------- JsonWriter ---

void JsonWriter::Key(const std::string& key) {
  if (!first_) out_.push_back(',');
  first_ = false;
  out_.append(JsonQuote(key));
  out_.push_back(':');
}

JsonWriter& JsonWriter::Field(const std::string& key,
                              const std::string& value) {
  Key(key);
  out_.append(JsonQuote(value));
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, const char* value) {
  return Field(key, std::string(value));
}

JsonWriter& JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  if (!std::isfinite(value)) {
    out_.append("null");
    return *this;
  }
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key,
                              const std::vector<float>& values) {
  Key(key);
  out_.push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_.push_back(',');
    AppendFloat(&out_, values[i]);
  }
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::RawField(const std::string& key,
                                 const std::string& raw) {
  Key(key);
  out_.append(raw);
  return *this;
}

std::string JsonWriter::Finish() {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace selnet::serve
