#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"
#include "serve/serve_stats.h"
#include "util/status.h"

/// \file wire.h
/// \brief The network wire format: the JSON text protocol (one object per
/// line, newline framed), plus the command registry and protocol-negotiation
/// types shared with the binary framing in wire_binary.h.
///
/// Two framings, one protocol. Every connection starts in JSON mode; a
/// client that wants the binary framing sends one hello line
/// ({"cmd":"hello","proto":"binary","max_version":1}) and, on an
/// {"ok":true,"proto":"binary","version":1} ack, both directions switch to
/// the length-prefixed frames of wire_binary.h. A server that predates the
/// hello command answers with the usual unknown-cmd error and keeps the
/// connection open, so a new client falls back to JSON — mixed fleets
/// interop during rollout. JSON stays fully supported as the negotiated
/// debug/compat mode; the command set, error taxonomy, and bit-exact float
/// contract are identical across both framings.
///
/// Request line (client -> server):
///   {"x":[0.1,0.2],"thresholds":[0.5,0.8],"model":"default","tag":7}
///     * `x` — required, the query vector (ServerConfig::dim floats);
///     * `thresholds` — required, 1..K thresholds (sorted ascending buys the
///       monotone-column guarantee, exactly like the in-process API);
///     * `model` — optional registry route (default route when absent);
///     * `tag` — optional uint64, echoed verbatim in the response. Responses
///       on one connection may complete out of order under load; the tag is
///       how a pipelining client matches them up;
///     * `deadline_ms` — optional RELATIVE completion budget in milliseconds,
///       anchored to the server's steady clock at decode time (wall clocks
///       never cross the wire). A non-positive budget is already expired and
///       sheds before any compute;
///     * `trace` — optional bool. `true` asks the server to stage-trace THIS
///       request regardless of its sampling counter and return the timing
///       block below; the caller's `tag` doubles as the trace id. This is
///       how a coordinator's sampled trace propagates to the remote replica
///       that actually served the request.
///
/// Response line (server -> client):
///   {"estimates":[...],"model":"default","version":3,"cache_hits":1,
///    "fast_path":true,"tag":7}
/// A wire-traced request's response additionally carries
/// `"stage_ms":[...]` — one float per serve::Stage in enum order, the
/// answering process's own span (its remote stages and encode are 0).
/// RemoteShard merges this block into the caller's RequestTrace as the
/// remote_queue / remote_predict stages and strips it from the response.
/// plus `"degraded":true` when an overloaded route answered from the cached
/// sweep curve instead of the model; or, when the request failed (malformed
/// JSON, unknown route, bad shape):
///   {"error":"...","tag":7}
/// Overload rejections additionally carry a machine-readable `code` — a
/// ShedReasonName ("queue_full", "priority_shed", "deadline_exceeded",
/// "shutdown") the client maps back to a typed Status without string-matching
/// the human-readable message:
///   {"error":"...","code":"queue_full","tag":7}
///
/// Admin line (client -> server), the metrics/admin plane:
///   {"cmd":"stats","tag":7}   -> {"stats":{...fleet StatsSnapshot...},"tag":7}
///   {"cmd":"slow","tag":7}    -> {"slow":[{...span...},...],"tag":7}
///   {"cmd":"health","tag":7}  -> {"ok":true,"tag":7}
///   {"cmd":"metrics","tag":7} -> {"metrics":"<Prometheus text>","tag":7}
///     (the exposition text travels as ONE JSON string — JsonQuote escapes
///      the newlines; NetClient::Metrics() unescapes them back)
///   {"cmd":"events","tag":7}  -> {"events":[{...},...],"tag":7}
///     (the coordinator's health/transfer flight-recorder ring)
///   {"cmd":"stats_wire","tag":7} -> a FLAT machine-parseable snapshot: the
///     counters as plain uint fields plus every histogram as one compact
///     string token (util::EncodeHistogramSnapshot) — this is what a
///     coordinator's scrape tick fetches from each remote and bucket-merges
///     into the fleet view (the nested {"cmd":"stats"} reply is for humans
///     and external scrapers; the strict LineParser cannot walk it).
///     Per-route rows do NOT cross this wire — a remote's routes fold into
///     the fleet totals, not the per-route table.
/// `cmd` must be the FIRST field so the frontend can dispatch without
/// attempting an estimate parse (LineLooksAdmin); unknown commands get the
/// usual {"error":...} reply. Admin requests are answered synchronously on
/// the frontend's poll loop — a stats scrape never queues behind estimates.
///
/// State transfer (see state_transfer.h) rides the admin plane as three
/// commands, each answered with an {"ok":true,...} ack or an error:
///   {"cmd":"xfer_begin","model":"r","size":N,"frames":K,"tag":t}
///   {"cmd":"xfer_frame","seq":i,"crc":C,"data":"<base64>","tag":t}
///   {"cmd":"xfer_commit","model":"r","crc":W,"tag":t}
/// The commit ack carries the published version: {"ok":true,"version":V}.
///
/// Floats travel as shortest-round-trip decimals (std::to_chars) and are
/// parsed back with std::from_chars on the raw token, so a served estimate
/// round-trips the wire BIT-IDENTICALLY — the frontend test diffs wire
/// responses against in-process SelNetServer::Submit with EXPECT_EQ.
///
/// The parser is a strict, minimal JSON subset: one object of scalar /
/// flat-array fields, no nesting deeper than the protocol needs, no
/// comments, UTF-8 passed through opaquely. Unknown fields are rejected —
/// a typo'd field name should fail loudly, not silently serve defaults.

namespace selnet::serve {

/// \brief Highest protocol version this build speaks. Version 1 covers the
/// whole command set below plus the binary framing; the hello exchange picks
/// min(client max, server max) per connection.
inline constexpr uint8_t kWireVersion = 1;

/// \brief The framing a connection speaks (selected by the hello exchange;
/// JSON until negotiated otherwise).
enum class WireProto : uint8_t {
  kJson = 0,    ///< Line-delimited JSON (the debug/compat mode).
  kBinary = 1,  ///< Length-prefixed frames (wire_binary.h).
};

const char* WireProtoName(WireProto proto);

/// \brief Every command the protocol knows, shared by the JSON dispatcher,
/// the binary framing, and the typed client surface. Adding a command means
/// adding an enumerator here plus a row in the registry table in wire.cc —
/// the frontend dispatches through an exhaustive switch, so a missing
/// handler is a compile-time warning, not a silent unknown-cmd error.
enum class Command : uint8_t {
  kEstimate = 0,  ///< The data plane (not a {"cmd":...} line; listed so the
                  ///  typed client Call() surface covers both planes).
  kHello,         ///< Protocol negotiation (proto + max_version).
  kStats,         ///< Human/scraper-facing nested fleet snapshot.
  kSlow,          ///< Retained slow-request spans.
  kHealth,        ///< Liveness ack.
  kMetrics,       ///< Prometheus-style exposition text.
  kEvents,        ///< Coordinator flight-recorder ring.
  kStatsWire,     ///< Flat machine-scrape snapshot (coordinator merge).
  kXferBegin,     ///< State transfer: announce size/frames.
  kXferFrame,     ///< State transfer: one CRC'd base64 frame.
  kXferCommit,    ///< State transfer: verify + publish.
};
inline constexpr size_t kNumCommands = 11;

/// \brief One registry row: the wire name and the protocol version that
/// introduced the command (a peer negotiated below it must not send it).
struct CommandInfo {
  Command cmd;
  const char* name;
  uint8_t since_version;
};

/// \brief Look a command up by wire name; null for unknown commands (the
/// caller owns the unknown-cmd error so its text can echo the name).
const CommandInfo* FindCommand(const std::string& name);
/// \brief The registry row for `cmd` (never null; the table is exhaustive).
const CommandInfo* FindCommand(Command cmd);

/// \brief Parse one request line. On error the returned Status carries a
/// client-safe message (no server internals) and `req` is untouched.
util::Status ParseRequestLine(const std::string& line, EstimateRequest* req);

/// \brief One metrics/admin-plane request ({"cmd":"stats"} / {"cmd":"slow"} /
/// {"cmd":"health"} / the xfer_* state-transfer family).
struct AdminRequest {
  std::string cmd;
  uint64_t tag = 0;
  // State-transfer fields; zero/empty except on xfer_* commands.
  std::string model;   ///< Target route (xfer_begin / xfer_commit).
  std::string data;    ///< Base64 frame payload (xfer_frame).
  uint64_t seq = 0;    ///< Frame index (xfer_frame).
  uint64_t crc = 0;    ///< Frame CRC-32 (xfer_frame) / whole-payload CRC-32
                       ///  (xfer_commit).
  uint64_t size = 0;   ///< Total payload bytes (xfer_begin).
  uint64_t frames = 0; ///< Total frame count (xfer_begin).
  // Negotiation fields; empty/zero except on hello.
  std::string proto;        ///< Requested framing ("binary" / "json").
  uint64_t max_version = 0; ///< Highest version the client speaks (0 = 1).
};

/// \brief Serialize an admin request (client side; no trailing newline).
/// Only the fields the command uses are emitted, so a hand-written line and
/// this serializer produce the same bytes.
std::string SerializeAdminRequest(const AdminRequest& req);

/// \brief The negotiated outcome of a hello exchange.
struct HelloResult {
  WireProto proto = WireProto::kJson;
  uint8_t version = 1;
};

/// \brief Build the hello line requesting `preferred` framing.
std::string SerializeHello(WireProto preferred,
                           uint8_t max_version = kWireVersion);

/// \brief Parse the server's hello ack. An {"error":...} reply (an old
/// server that predates hello) surfaces as the typed error Status — callers
/// treat any error as "speak JSON" and keep the connection.
util::Result<HelloResult> ParseHelloReply(const std::string& line);

/// \brief Map a wire error `code` token + message to the typed Status every
/// parser on the client side hands back: deadline_exceeded ->
/// kDeadlineExceeded; queue_full / priority_shed / shutdown -> kUnavailable;
/// not_found -> kNotFound; anything else -> kInternal. One mapping for the
/// JSON and binary framings — the taxonomy is the protocol, not the framing.
util::Status StatusFromWireError(const std::string& code,
                                 const std::string& message);

/// \brief Cheap pre-dispatch: does this line open with a `"cmd"` field? Used
/// by the frontend to route admin lines away from the estimate parser without
/// paying a failed parse per estimate request.
bool LineLooksAdmin(const std::string& line);

/// \brief Parse one admin line (strict: only the AdminRequest fields are
/// accepted; `cmd` is required).
util::Status ParseAdminLine(const std::string& line, AdminRequest* req);

/// \brief Parse an admin ack line. {"ok":true,...} -> OK (with `*version`
/// filled from an optional "version" field when non-null); an {"error":...}
/// reply maps to a typed Status exactly like ParseResponseLine; a line that
/// is neither is kInternal.
util::Status ParseAckLine(const std::string& line, uint64_t* version = nullptr);

/// \brief Serialize a response (no trailing newline; the framing layer owns
/// the '\n').
std::string SerializeResponse(const EstimateResponse& resp);

/// \brief Serialize an error reply for `tag` (no trailing newline).
std::string SerializeError(const std::string& message, uint64_t tag);

/// \brief Serialize a typed error reply: `code` is a machine-readable token
/// (a ShedReasonName for overload sheds) emitted alongside the message;
/// empty `code` degrades to the plain form.
std::string SerializeError(const std::string& message, const std::string& code,
                           uint64_t tag);

/// \brief Best-effort tag recovery from a line that FAILED ParseRequestLine
/// (a raw scan for a `"tag":<digits>` field), so even the error reply for a
/// malformed request can echo the client's correlation tag. Returns 0 when
/// no tag is recoverable.
uint64_t ExtractTagBestEffort(const std::string& line);

/// \brief Serialize a request (client side; no trailing newline).
std::string SerializeRequest(const EstimateRequest& req);

/// \brief Parse one response line into `resp`; a wire-level error reply comes
/// back as a non-OK status carrying the server's message — typed by the
/// reply's `code` when present (deadline_exceeded -> kDeadlineExceeded;
/// queue_full / priority_shed / shutdown -> kUnavailable), kInternal
/// otherwise.
util::Status ParseResponseLine(const std::string& line,
                               EstimateResponse* resp);

/// \brief Serialize the flat machine-scrape form of a snapshot (the
/// {"cmd":"stats_wire"} reply body, tag included when non-zero). Counters
/// become plain uint fields; each histogram becomes one compact string
/// token. Per-route rows, slow spans, and slot tables are NOT carried —
/// they fold into totals or stay local.
std::string SerializeStatsWire(const StatsSnapshot& s, uint64_t tag);

/// \brief Parse a stats_wire reply back into a snapshot (untrusted input:
/// malformed histograms or unknown fields are typed errors, never a crash).
util::Result<StatsSnapshot> ParseStatsWireLine(const std::string& line);

/// \brief Extract the exposition text from a {"metrics":"..."} reply (or the
/// typed error the server sent instead).
util::Result<std::string> ParseMetricsReply(const std::string& line);

/// \brief Append `v` to `out` as the shortest decimal that parses back to
/// exactly `v` (std::to_chars; "nan"/"inf" are never produced by serving but
/// render as null to stay valid JSON).
void AppendFloat(std::string* out, float v);

/// \brief Incremental JSON writer for flat objects — shared by the wire
/// codec and the bench harness's machine-readable gate output.
class JsonWriter {
 public:
  JsonWriter() { out_ = "{"; }

  JsonWriter& Field(const std::string& key, const std::string& value);
  JsonWriter& Field(const std::string& key, const char* value);
  JsonWriter& Field(const std::string& key, double value);
  JsonWriter& Field(const std::string& key, uint64_t value);
  JsonWriter& Field(const std::string& key, bool value);
  JsonWriter& Field(const std::string& key, const std::vector<float>& values);
  /// \brief Embed `raw` verbatim (a nested object already serialized).
  JsonWriter& RawField(const std::string& key, const std::string& raw);

  /// \brief Close the object and return it.
  std::string Finish();

 private:
  void Key(const std::string& key);

  std::string out_;
  bool first_ = true;
};

/// \brief Escape a string for embedding in a JSON document (adds quotes).
std::string JsonQuote(const std::string& s);

}  // namespace selnet::serve
