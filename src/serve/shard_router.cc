#include "serve/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <iterator>
#include <thread>
#include <utility>

#include "core/model_io.h"
#include "core/selnet_ct.h"
#include "serve/admission.h"
#include "serve/state_transfer.h"
#include "serve/update_pipeline.h"
#include "serve/wire.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/table.h"

namespace selnet::serve {

using util::Result;
using util::Status;

// --------------------------------------------------------------- HashRing ---

uint64_t HashRing::Hash(const std::string& s) {
  // FNV-1a 64-bit with a murmur3 finalizer. FNV alone is stable but its
  // high bits cluster badly on short sequential strings ("shard-0#1",
  // "route/17"…) — measured 4-shard loads of 400/500/1000/100 — and ring
  // balance lives entirely in the hash's uniformity; the finalizer's
  // avalanche restores it. Not std::hash: placement is a wire-visible
  // contract and must agree across binaries and library versions.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(size_t shards, size_t virtual_nodes)
    : num_shards_(shards) {
  SEL_CHECK_MSG(shards >= 1, "HashRing needs at least one shard");
  size_t points = std::max<size_t>(1, virtual_nodes);
  ring_.reserve(shards * points);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t v = 0; v < points; ++v) {
      ring_.push_back(Point{
          Hash("shard-" + std::to_string(s) + "#" + std::to_string(v)),
          uint32_t(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t HashRing::ShardOf(const std::string& route) const {
  if (num_shards_ == 1) return 0;
  uint64_t h = Hash(route);
  // First ring point clockwise from the route's hash; wrap to the start.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{h, 0});
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::vector<size_t> HashRing::ReplicasOf(const std::string& route,
                                         size_t r) const {
  r = std::min(std::max<size_t>(1, r), num_shards_);
  std::vector<size_t> out;
  out.reserve(r);
  if (num_shards_ == 1 || r == 1) {
    out.push_back(ShardOf(route));
    return out;
  }
  uint64_t h = Hash(route);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{h, 0});
  // Walk clockwise collecting DISTINCT shards; the first is ShardOf by
  // construction, so replica sets always extend the primary placement.
  for (size_t steps = 0; steps < ring_.size() && out.size() < r; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    size_t shard = it->shard;
    if (std::find(out.begin(), out.end(), shard) == out.end()) {
      out.push_back(shard);
    }
    ++it;
  }
  return out;
}

const char* ShardHealthName(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy:   return "healthy";
    case ShardHealth::kSuspect:   return "suspect";
    case ShardHealth::kDead:      return "dead";
    case ShardHealth::kResyncing: return "resyncing";
  }
  return "unknown";
}

// --------------------------------------------------------- ShardedRegistry ---

ShardedRegistry::ShardedRegistry(const ShardedConfig& cfg)
    : cfg_(cfg),
      ring_(std::max<size_t>(1, cfg.num_shards) + cfg.remotes.size(),
            cfg.virtual_nodes) {
  SEL_CHECK_MSG(cfg_.server.scheduler.pool == nullptr,
                "ShardedConfig.server.scheduler.pool must be null: each "
                "shard owns its pool slice");
  size_t shards = std::max<size_t>(1, cfg_.num_shards);
  size_t threads = cfg_.threads_per_shard;
  if (threads == 0) {
    size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    threads = std::max<size_t>(1, hw / shards);
  }
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool = std::make_unique<util::ThreadPool>(threads);
    ServerConfig scfg = cfg_.server;
    scfg.scheduler.pool = shard->pool.get();
    shard->server = std::make_unique<SelNetServer>(scfg);
    shards_.push_back(std::move(shard));
  }
  remotes_.reserve(cfg_.remotes.size());
  for (const RemoteShardConfig& rcfg : cfg_.remotes) {
    auto remote = std::make_unique<Remote>();
    remote->shard = std::make_unique<RemoteShard>(rcfg);
    remotes_.push_back(std::move(remote));
  }
  // Admit reachable remotes synchronously so a fleet whose nodes are already
  // up serves from the first request; the rest stay dead until the health
  // loop brings them in.
  for (size_t i = 0; i < remotes_.size(); ++i) {
    Status st = AdmitRemote(i);
    SetRemoteHealth(i, st.ok() ? ShardHealth::kHealthy : ShardHealth::kDead);
  }
  if (!remotes_.empty()) {
    health_ = std::thread(&ShardedRegistry::HealthLoop, this);
  }
}

ShardedRegistry::~ShardedRegistry() {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_.joinable()) health_.join();
  // Fail every remote's in-flight completions while the failover chain can
  // still land retries on live slots.
  for (auto& remote : remotes_) remote->shard->CloseData();
  // Servers first (each drains onto its pool), then the pools they used.
  for (auto& shard : shards_) shard->server.reset();
  for (auto& shard : shards_) shard->pool.reset();
}

size_t ShardedRegistry::ShardOf(const std::string& route) const {
  return ring_.ShardOf(route.empty() ? cfg_.server.model_name : route);
}

std::vector<size_t> ShardedRegistry::ReplicasOf(
    const std::string& route) const {
  return ring_.ReplicasOf(route.empty() ? cfg_.server.model_name : route,
                          std::max<size_t>(1, cfg_.replication));
}

const std::string& ShardedRegistry::EffectiveRoute(
    const EstimateRequest& req) const {
  return req.model.empty() ? cfg_.server.model_name : req.model;
}

ShardHealth ShardedRegistry::slot_health(size_t slot) const {
  if (IsLocalSlot(slot)) return ShardHealth::kHealthy;
  return ShardHealth(remotes_[slot - shards_.size()]->health.load(
      std::memory_order_acquire));
}

void ShardedRegistry::NudgeHealth() {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_nudge_ = true;
  }
  health_cv_.notify_all();
}

void ShardedRegistry::MarkSuspect(size_t slot) {
  if (IsLocalSlot(slot)) return;
  size_t i = slot - shards_.size();
  Remote& remote = *remotes_[i];
  int expected = int(ShardHealth::kHealthy);
  if (remote.health.compare_exchange_strong(expected,
                                            int(ShardHealth::kSuspect),
                                            std::memory_order_acq_rel)) {
    RecordTransition(i, ShardHealth::kHealthy, ShardHealth::kSuspect);
    NudgeHealth();
  }
}

void ShardedRegistry::SetRemoteHealth(size_t i, ShardHealth to) {
  Remote& remote = *remotes_[i];
  auto from = ShardHealth(
      remote.health.exchange(int(to), std::memory_order_acq_rel));
  if (from != to) RecordTransition(i, from, to);
}

void ShardedRegistry::RecordTransition(size_t i, ShardHealth from,
                                       ShardHealth to) {
  Remote& remote = *remotes_[i];
  {
    std::lock_guard<std::mutex> lock(remote.scrape_mu);
    remote.state_since = Clock::now();
  }
  const std::string ep = remote.shard->endpoint();
  metrics_
      .GetCounter("selnet_health_transitions_total",
                  {{"endpoint", ep},
                   {"from", ShardHealthName(from)},
                   {"to", ShardHealthName(to)}})
      ->Increment();
  events_.Push("health", ep, ShardHealthName(from), ShardHealthName(to));
}

void ShardedRegistry::RecordPublishResult(size_t slot, bool accepted,
                                          size_t bytes_sent) {
  const std::string replica =
      IsLocalSlot(slot) ? "shard-" + std::to_string(slot)
                        : remotes_[slot - shards_.size()]->shard->endpoint();
  metrics_
      .GetCounter("selnet_publish_replica_total",
                  {{"replica", replica},
                   {"result", accepted ? "accept" : "reject"}})
      ->Increment();
  if (!accepted) {
    events_.Push("publish", replica, "", "reject");
    return;
  }
  if (bytes_sent > 0) {
    // A remote accept rode the state-transfer protocol: count the shipped
    // volume (frames = how SendModelState chunks the payload).
    metrics_
        .GetCounter("selnet_transfer_tx_bytes_total", {{"replica", replica}})
        ->Increment(bytes_sent);
    metrics_
        .GetCounter("selnet_transfer_tx_frames_total", {{"replica", replica}})
        ->Increment((bytes_sent + kDefaultFrameBytes - 1) / kDefaultFrameBytes);
    events_.Push("transfer", replica, "",
                 std::to_string(bytes_sent) + " bytes");
  }
}

void ShardedRegistry::StorePublishedBytes(const std::string& name,
                                          const std::string& bytes) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  published_bytes_[name] = bytes;
}

uint64_t ShardedRegistry::Publish(std::shared_ptr<eval::Estimator> model) {
  return Publish(cfg_.server.model_name, std::move(model));
}

uint64_t ShardedRegistry::Publish(const std::string& name,
                                  std::shared_ptr<eval::Estimator> model) {
  std::vector<size_t> replicas = ReplicasOf(name);
  // Serialize once when the fleet has remote slots: remote replicas receive
  // bytes over state transfer, and the SAME bytes are retained so a crashed
  // replica can be re-synced. Models without SaveModel support (anything
  // that is not a SelNetCt) replicate to local slots only.
  std::string bytes;
  bool have_bytes = false;
  if (!remotes_.empty()) {
    if (const auto* ct = dynamic_cast<const core::SelNetCt*>(model.get())) {
      auto serialized = core::SaveModelBytes(*ct);
      if (serialized.ok()) {
        bytes = serialized.MoveValueUnsafe();
        have_bytes = true;
        StorePublishedBytes(name, bytes);
      }
    }
    if (!have_bytes) {
      // Loud, not silent: the ring may still place this route's primary on
      // a remote slot, which will answer not_found (the failover chain then
      // falls through to the local replicas that do hold it).
      util::LogInfo(
          "shard_router: route '%s': model cannot serialize for state "
          "transfer; replicating to local slots only (remote replicas will "
          "answer not_found and failover falls through)",
          name.c_str());
    }
  }
  // The returned version is the FIRST replica that accepted — the primary
  // when it is healthy. A failed remote primary falls back to the next
  // accepting replica (mirroring PublishFromBytes) instead of returning a
  // meaningless 0 alongside successful secondaries.
  uint64_t version = 0;
  bool have_version = false;
  for (size_t slot : replicas) {
    if (IsLocalSlot(slot)) {
      uint64_t v = shards_[slot]->server->Publish(name, model);
      RecordPublishResult(slot, /*accepted=*/true, /*bytes_sent=*/0);
      if (!have_version) {
        version = v;
        have_version = true;
      }
    } else if (have_bytes) {
      auto v = remote_shard(slot).PublishBytes(name, bytes);
      if (!v.ok()) {
        RecordPublishResult(slot, /*accepted=*/false, /*bytes_sent=*/0);
        MarkSuspect(slot);  // The health loop re-syncs it from the bytes.
        continue;
      }
      RecordPublishResult(slot, /*accepted=*/true, bytes.size());
      if (!have_version) {
        version = v.ValueOrDie();
        have_version = true;
      }
    }
  }
  if (!have_version) {
    util::LogInfo(
        "shard_router: publish of route '%s' reached no replica; returning "
        "version 0 (the health loop re-syncs remotes from retained bytes)",
        name.c_str());
  }
  return version;
}

Result<uint64_t> ShardedRegistry::PublishFromFile(const std::string& name,
                                                  const std::string& path) {
  if (remotes_.empty() && cfg_.replication <= 1) {
    return shards_[ShardOf(name)]->server->PublishFromFile(name, path);
  }
  // Fleet mode: the file's raw bytes ARE the replication payload.
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open model file " + path);
  }
  std::string bytes;
  char buf[64 << 10];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("cannot read model file " + path);
  return PublishFromBytes(name, bytes, path);
}

Result<uint64_t> ShardedRegistry::PublishFromBytes(const std::string& name,
                                                   const std::string& bytes,
                                                   const std::string& origin) {
  std::vector<size_t> replicas = ReplicasOf(name);
  // The FIRST replica that accepts decides the call: a publish must not be
  // blocked by one dead replica (the health loop re-syncs it from the
  // retained bytes), but genuinely bad bytes fail on every replica and so
  // fail the call — nothing is retained for them.
  bool accepted = false;
  uint64_t version = 0;
  Status last_error = Status::Internal("no replicas");
  for (size_t slot : replicas) {
    Result<uint64_t> v =
        IsLocalSlot(slot)
            ? shards_[slot]->server->PublishFromBytes(name, bytes, origin)
            : remote_shard(slot).PublishBytes(name, bytes);
    RecordPublishResult(slot, v.ok(),
                        v.ok() && !IsLocalSlot(slot) ? bytes.size() : 0);
    if (!v.ok()) {
      last_error = v.status();
      MarkSuspect(slot);  // No-op for local slots.
      continue;
    }
    if (!accepted) {
      accepted = true;
      version = v.ValueOrDie();
      if (!remotes_.empty()) StorePublishedBytes(name, bytes);
    }
  }
  if (!accepted) return last_error;
  return version;
}

void ShardedRegistry::SubmitWith(EstimateRequest req,
                                 SelNetServer::ResponseFn done) {
  std::vector<size_t> replicas = OrderedReplicas(EffectiveRoute(req));
  if (replicas.size() == 1 && IsLocalSlot(replicas[0])) {
    // Pre-fleet fast path: no request copy, no failover frame.
    shards_[replicas[0]]->server->SubmitWith(std::move(req), std::move(done));
    return;
  }
  auto fo = std::make_shared<Failover>();
  fo->req = std::move(req);
  fo->done = std::move(done);
  fo->replicas = std::move(replicas);
  TryReplica(fo, 0, nullptr);
}

namespace {

/// How a failed attempt steers the failover chain.
enum class RetryClass {
  kFinal,        ///< Deterministic verdict (bad shape, overload shed).
  kNextReplica,  ///< Another replica might answer; this one is healthy.
  kMarkSuspect,  ///< Another replica might answer; this one looks down/gray.
};

/// Typed RemoteErrors only: kUnavailable (never sent) / kIoError (possibly
/// completed — estimates are pure reads, so re-asking is safe) /
/// kDeadlineExceeded (the RECV bound, a gray shard; the request's own
/// deadline is checked separately) mark the replica suspect and move on.
/// kNotFound means THAT replica doesn't hold the route — a rejoining shard
/// awaiting re-sync, or a route that replicates to local slots only — while
/// another replica may; the replica itself answered promptly, so it stays
/// healthy (marking it suspect would tear down its data connection on every
/// request to such a route). Anything else is deterministic or final.
RetryClass ClassifyFailure(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const RemoteError& e) {
    switch (e.code()) {
      case util::StatusCode::kUnavailable:
      case util::StatusCode::kIoError:
      case util::StatusCode::kDeadlineExceeded:
        return RetryClass::kMarkSuspect;
      case util::StatusCode::kNotFound:
        return RetryClass::kNextReplica;
      default:
        return RetryClass::kFinal;
    }
  } catch (...) {
    return RetryClass::kFinal;
  }
}

/// Stable label value for the failover attempt counter — the same taxonomy
/// ClassifyFailure keys on, one token per failure flavor.
const char* FailureReasonName(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const RemoteError& e) {
    switch (e.code()) {
      case util::StatusCode::kUnavailable:       return "unavailable";
      case util::StatusCode::kIoError:           return "io_error";
      case util::StatusCode::kDeadlineExceeded:  return "recv_timeout";
      case util::StatusCode::kNotFound:          return "not_found";
      default:                                   return "internal";
    }
  } catch (const OverloadError&) {
    return "overload";
  } catch (...) {
    return "other";
  }
}

}  // namespace

std::vector<size_t> ShardedRegistry::OrderedReplicas(
    const std::string& route) const {
  std::vector<size_t> ring_order =
      ring_.ReplicasOf(route, std::max<size_t>(1, cfg_.replication));
  if (ring_order.size() <= 1) return ring_order;
  std::vector<size_t> out;
  out.reserve(ring_order.size());
  for (size_t slot : ring_order) {
    if (slot_health(slot) == ShardHealth::kHealthy) out.push_back(slot);
  }
  for (size_t slot : ring_order) {
    if (slot_health(slot) != ShardHealth::kHealthy) out.push_back(slot);
  }
  return out;
}

void ShardedRegistry::SlotSubmit(size_t slot, EstimateRequest req,
                                 SelNetServer::ResponseFn done) {
  if (IsLocalSlot(slot)) {
    shards_[slot]->server->SubmitWith(std::move(req), std::move(done));
  } else {
    remotes_[slot - shards_.size()]->shard->SubmitWith(std::move(req),
                                                       std::move(done));
  }
}

void ShardedRegistry::TryReplica(const std::shared_ptr<Failover>& fo,
                                 size_t idx, std::exception_ptr last_error) {
  if (idx >= fo->replicas.size()) {
    EstimateResponse resp;
    resp.tag = fo->req.tag;
    if (!last_error) {
      last_error = std::make_exception_ptr(RemoteError(
          util::StatusCode::kUnavailable,
          "route \"" + fo->req.model + "\": no replica answered"));
    }
    fo->done(std::move(resp), last_error);
    return;
  }
  if (idx > 0 && fo->req.has_deadline() &&
      Clock::now() >= fo->req.deadline) {
    EstimateResponse resp;
    resp.tag = fo->req.tag;
    fo->done(std::move(resp),
             std::make_exception_ptr(OverloadError(
                 ShedReason::kDeadlineExpired,
                 "deadline exhausted during replica failover")));
    return;
  }
  size_t slot = fo->replicas[idx];
  EstimateRequest attempt = fo->req;  // Retries need the original intact.
  SlotSubmit(slot, std::move(attempt),
             [this, fo, idx, slot](EstimateResponse&& resp,
                                   std::exception_ptr error) {
               if (error == nullptr) {
                 if (idx > 0) {
                   // The request survived a failover: idx replicas were
                   // walked past before this one answered.
                   metrics_.GetCounter("selnet_failover_successes_total")
                       ->Increment();
                   metrics_
                       .GetCounter("selnet_failover_replicas_walked_total")
                       ->Increment(idx);
                   events_.Push("failover", EffectiveRoute(fo->req),
                                "slot " + std::to_string(fo->replicas[0]),
                                "slot " + std::to_string(slot));
                 }
                 fo->done(std::move(resp), nullptr);
                 return;
               }
               metrics_
                   .GetCounter("selnet_failover_attempts_total",
                               {{"reason", FailureReasonName(error)}})
                   ->Increment();
               RetryClass rc = ClassifyFailure(error);
               if (rc != RetryClass::kFinal) {
                 if (rc == RetryClass::kMarkSuspect) MarkSuspect(slot);
                 TryReplica(fo, idx + 1, error);
                 return;
               }
               fo->done(std::move(resp), error);
             });
}

std::future<EstimateResponse> ShardedRegistry::Submit(EstimateRequest req) {
  auto promise = std::make_shared<std::promise<EstimateResponse>>();
  std::future<EstimateResponse> fut = promise->get_future();
  SubmitWith(std::move(req),
             [promise](EstimateResponse&& resp, std::exception_ptr error) {
               if (error) {
                 promise->set_exception(error);
               } else {
                 promise->set_value(std::move(resp));
               }
             });
  return fut;
}

Result<float> ShardedRegistry::Estimate(const float* x, float t) {
  size_t primary = ShardOf("");
  if (IsLocalSlot(primary) && cfg_.replication <= 1) {
    return shards_[primary]->server->Estimate(x, t);
  }
  std::future<EstimateResponse> fut =
      Submit(EstimateRequest::Point(x, cfg_.server.dim, t));
  try {
    EstimateResponse resp = fut.get();
    if (resp.estimates.empty()) {
      return Status::Internal("empty estimate response");
    }
    return resp.estimates[0];
  } catch (const RemoteError& e) {
    return Status(e.code(), e.what());
  } catch (const OverloadError& e) {
    return Status::Unavailable(e.what());
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

void ShardedRegistry::HealthLoop() {
  std::unique_lock<std::mutex> lock(health_mu_);
  while (!health_stop_) {
    health_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            std::max(1.0, cfg_.health_interval_ms)),
        [this] { return health_stop_ || health_nudge_; });
    bool forced = health_nudge_;  // A nudge overrides per-slot backoff gates.
    health_nudge_ = false;
    if (health_stop_) return;
    lock.unlock();
    Clock::time_point now = Clock::now();
    for (size_t i = 0; i < remotes_.size(); ++i) {
      Remote& remote = *remotes_[i];
      auto h = ShardHealth(remote.health.load(std::memory_order_acquire));
      if (h == ShardHealth::kHealthy) continue;
      if (!forced && remote.not_before != Clock::time_point{} &&
          now < remote.not_before) {
        continue;
      }
      Clock::time_point probe_start = Clock::now();
      Status st = AdmitRemote(i);
      metrics_
          .GetSummary("selnet_health_probe_ms",
                      {{"endpoint", remote.shard->endpoint()}})
          ->Record(std::chrono::duration<double, std::milli>(Clock::now() -
                                                             probe_start)
                       .count());
      if (st.ok()) {
        SetRemoteHealth(i, ShardHealth::kHealthy);
        remote.backoff.Reset();
        remote.not_before = {};
      } else {
        SetRemoteHealth(i, ShardHealth::kDead);
        remote.not_before =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    remote.backoff.NextDelayMs()));
      }
    }
    // Scrape tick: piggybacks on the health cadence (so the effective scrape
    // period is max(scrape_interval_ms, health_interval_ms)), touching only
    // HEALTHY remotes — probing the sick ones is the job above.
    if (cfg_.scrape_interval_ms > 0) {
      Clock::time_point snow = Clock::now();
      if (next_scrape_ == Clock::time_point{} || snow >= next_scrape_) {
        ScrapeNow();
        next_scrape_ =
            snow + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           cfg_.scrape_interval_ms));
      }
    }
    lock.lock();
  }
}

void ShardedRegistry::ScrapeRemote(size_t i) {
  Remote& remote = *remotes_[i];
  if (ShardHealth(remote.health.load(std::memory_order_acquire)) !=
      ShardHealth::kHealthy) {
    return;
  }
  const std::string ep = remote.shard->endpoint();
  Result<StatsSnapshot> snap = remote.shard->ScrapeStats();
  if (!snap.ok()) {
    // Best-effort: the fleet view just ages; actual failure handling belongs
    // to the health machinery (the data path or next probe will notice).
    metrics_
        .GetCounter("selnet_scrape_total",
                    {{"endpoint", ep}, {"result", "error"}})
        ->Increment();
    return;
  }
  metrics_
      .GetCounter("selnet_scrape_total", {{"endpoint", ep}, {"result", "ok"}})
      ->Increment();
  std::lock_guard<std::mutex> lock(remote.scrape_mu);
  remote.scrape = snap.MoveValueUnsafe();
  remote.scrape_at = Clock::now();
}

void ShardedRegistry::ScrapeNow() {
  for (size_t i = 0; i < remotes_.size(); ++i) ScrapeRemote(i);
}

Status ShardedRegistry::AdmitRemote(size_t i) {
  Remote& remote = *remotes_[i];
  RemoteShard& shard = *remote.shard;
  // Tear down whatever data connection is left (a gray shard's connection
  // may still be "up" TCP-wise). Safe here: this runs on the health loop or
  // the constructor, never on the shard's own reader thread.
  shard.CloseData();
  SEL_RETURN_NOT_OK(shard.HealthCheck());
  SetRemoteHealth(i, ShardHealth::kResyncing);
  // Re-publish every route this slot replicates. A restarted shard_node is
  // EMPTY — re-admitting without this would serve NotFound from a "healthy"
  // replica. Publishing is idempotent on content (versions bump, estimates
  // stay bit-identical), so a surviving process just gets a redundant swap.
  size_t slot = shards_.size() + i;
  std::vector<std::pair<std::string, std::string>> owned;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    for (const auto& [route, bytes] : published_bytes_) {
      std::vector<size_t> replicas = ReplicasOf(route);
      if (std::find(replicas.begin(), replicas.end(), slot) !=
          replicas.end()) {
        owned.emplace_back(route, bytes);
      }
    }
  }
  for (const auto& [route, bytes] : owned) {
    auto v = shard.PublishBytes(route, bytes);
    RecordPublishResult(slot, v.ok(), v.ok() ? bytes.size() : 0);
    if (!v.ok()) return v.status();
  }
  return shard.Connect();
}

LiveUpdatePipeline& ShardedRegistry::AttachUpdatePipeline(
    const UpdatePipelineConfig& cfg, const data::Database& db,
    const data::Workload& workload) {
  const std::string& route =
      cfg.model_name.empty() ? cfg_.server.model_name : cfg.model_name;
  SelNetServer& shard = *shards_[ShardOf(route)]->server;
  // Each SelNetServer holds ONE pipeline slot, and its AttachUpdatePipeline
  // replaces whatever is there. Replacing the SAME route is the documented
  // re-attach semantics; silently stopping a DIFFERENT route's pipeline just
  // because the two routes hash to one shard would be a placement-dependent
  // surprise — fail loudly instead.
  LiveUpdatePipeline* existing = shard.update_pipeline();
  SEL_CHECK_MSG(existing == nullptr || existing->route() == route,
                "ShardedRegistry: shard already runs an update pipeline for "
                "another route; one pipeline per shard");
  return shard.AttachUpdatePipeline(cfg, db, workload);
}

void ShardedRegistry::Drain() {
  for (auto& shard : shards_) shard->server->Drain();
  if (remotes_.empty()) return;
  // Remote in-flight requests complete on their reader threads (a reply, a
  // recv-timeout expiry, or a connection loss all fire the completion), so
  // waiting on pending() converges; the bound covers a remote configured
  // with no recv timeout and requests with no deadline.
  Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             std::max(0.0, cfg_.drain_remote_timeout_ms)));
  for (auto& remote : remotes_) {
    while (remote->shard->pending() > 0 && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

std::vector<StatsSnapshot> ShardedRegistry::ShardSnapshots() const {
  std::vector<StatsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->server->stats().Snapshot());
  }
  return out;
}

StatsSnapshot ShardedRegistry::AggregateSnapshot() const {
  std::vector<StatsSnapshot> snaps = ShardSnapshots();
  const Clock::time_point now = Clock::now();
  std::vector<SlotSnapshot> slots;
  slots.reserve(num_slots());
  const double local_uptime_s =
      std::chrono::duration<double>(now - start_).count();
  for (size_t s = 0; s < shards_.size(); ++s) {
    SlotSnapshot slot;
    slot.slot = s;
    slot.kind = "local";
    slot.endpoint = "in-process";
    slot.health = ShardHealthName(ShardHealth::kHealthy);
    slot.node_id = cfg_.node_id;
    slot.uptime_s = local_uptime_s;
    slots.push_back(std::move(slot));
  }
  // Fold in each remote's cached scrape: bucket-merging its histograms with
  // the local shards' gives TRUE pooled fleet percentiles (histogram merge
  // is associative — see util/histogram.h). A scrape older than the TTL is
  // still shown in the slot table (age-stamped) but excluded from the
  // merged counters, so a long-dead node cannot freeze the fleet view.
  for (size_t i = 0; i < remotes_.size(); ++i) {
    const Remote& remote = *remotes_[i];
    SlotSnapshot slot;
    slot.slot = shards_.size() + i;
    slot.kind = "remote";
    slot.endpoint = remote.shard->endpoint();
    slot.health = ShardHealthName(
        ShardHealth(remote.health.load(std::memory_order_acquire)));
    slot.pending = remote.shard->pending();
    {
      std::lock_guard<std::mutex> lock(remote.scrape_mu);
      if (remote.scrape_at != Clock::time_point{}) {
        const double age_ms =
            std::chrono::duration<double, std::milli>(now - remote.scrape_at)
                .count();
        slot.scrape_age_s = age_ms / 1000.0;
        slot.node_id = remote.scrape.node_id;
        slot.uptime_s = remote.scrape.uptime_s;
        if (cfg_.scrape_ttl_ms <= 0 || age_ms <= cfg_.scrape_ttl_ms) {
          snaps.push_back(remote.scrape);
        }
      }
    }
    slots.push_back(std::move(slot));
  }
  StatsSnapshot agg = AggregateSnapshots(snaps);
  agg.node_id = cfg_.node_id;
  agg.uptime_s = local_uptime_s;
  agg.slots = std::move(slots);
  return agg;
}

std::string ShardedRegistry::MetricsText() const {
  // Refresh the time-in-state gauges right before rendering — Gauge is
  // set-based, and "how long in the current state" only has a value at
  // observation time. Which state it is lives in the snapshot's slot table
  // (selnet_slot_health); this series is just the clock.
  const Clock::time_point now = Clock::now();
  for (size_t i = 0; i < remotes_.size(); ++i) {
    const Remote& remote = *remotes_[i];
    Clock::time_point since;
    {
      std::lock_guard<std::mutex> lock(remote.scrape_mu);
      since = remote.state_since;
    }
    if (since == Clock::time_point{}) since = start_;
    metrics_
        .GetGauge("selnet_slot_state_seconds",
                  {{"endpoint", remote.shard->endpoint()}})
        ->Set(std::chrono::duration<double>(now - since).count());
  }
  return metrics_.RenderText();
}

std::string ShardedRegistry::EventsJson() const {
  std::vector<util::Event> events = events_.Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    JsonWriter w;
    w.Field("seq", events[i].seq);
    w.Field("unix_ms", uint64_t(events[i].unix_ms));
    w.Field("kind", events[i].kind);
    w.Field("target", events[i].target);
    if (!events[i].from.empty()) w.Field("from", events[i].from);
    w.Field("to", events[i].to);
    out += w.Finish();
  }
  out += "]";
  return out;
}

std::vector<SpanRecord> ShardedRegistry::SlowSpans() const {
  std::vector<SpanRecord> out;
  for (const auto& shard : shards_) {
    std::vector<SpanRecord> spans = shard->server->stats().SlowSpans();
    out.insert(out.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
  }
  return out;
}

std::string ShardedRegistry::StatsReport() const {
  std::vector<StatsSnapshot> snaps = ShardSnapshots();
  util::AsciiTable table({"shard", "routes", "requests", "qps", "p50 ms",
                          "p99 ms", "hit rate", "swaps"});
  for (size_t s = 0; s < snaps.size(); ++s) {
    table.AddRow({std::to_string(s), std::to_string(snaps[s].routes.size()),
                  std::to_string(snaps[s].requests),
                  util::AsciiTable::Num(snaps[s].qps, 1),
                  util::AsciiTable::Num(snaps[s].latency_p50_ms, 4),
                  util::AsciiTable::Num(snaps[s].latency_p99_ms, 4),
                  util::AsciiTable::Num(snaps[s].cache_hit_rate, 4),
                  std::to_string(snaps[s].swaps)});
  }
  StatsSnapshot agg = AggregateSnapshots(snaps);
  table.AddRow({"total", std::to_string(agg.routes.size()),
                std::to_string(agg.requests),
                util::AsciiTable::Num(agg.qps, 1),
                util::AsciiTable::Num(agg.latency_p50_ms, 4),
                util::AsciiTable::Num(agg.latency_p99_ms, 4),
                util::AsciiTable::Num(agg.cache_hit_rate, 4),
                std::to_string(agg.swaps)});
  std::string out = "sharded serving (" + std::to_string(shards_.size()) +
                    " shards)\n" + table.ToString();
  // Per-route placement: which shard owns what (the A/B view, sharded).
  if (!agg.routes.empty()) {
    util::AsciiTable routes({"route", "shard", "requests", "p50 ms", "p99 ms",
                             "hit rate"});
    for (size_t s = 0; s < snaps.size(); ++s) {
      for (const auto& r : snaps[s].routes) {
        routes.AddRow({r.route, std::to_string(s),
                       std::to_string(r.requests),
                       util::AsciiTable::Num(r.latency_p50_ms, 4),
                       util::AsciiTable::Num(r.latency_p99_ms, 4),
                       util::AsciiTable::Num(r.cache_hit_rate, 4)});
      }
    }
    out += "\n" + routes.ToString();
  }
  // Fleet view: remote replicas, their failover state, and how fresh the
  // coordinator's view of each one is.
  if (!remotes_.empty()) {
    const Clock::time_point now = Clock::now();
    util::AsciiTable fleet({"slot", "endpoint", "health", "in state s",
                            "scrape age s", "node", "pending"});
    for (size_t i = 0; i < remotes_.size(); ++i) {
      const Remote& r = *remotes_[i];
      Clock::time_point since;
      double scrape_age_s = -1.0;
      std::string node;
      {
        std::lock_guard<std::mutex> lock(r.scrape_mu);
        since = r.state_since;
        if (r.scrape_at != Clock::time_point{}) {
          scrape_age_s =
              std::chrono::duration<double>(now - r.scrape_at).count();
          node = r.scrape.node_id;
        }
      }
      if (since == Clock::time_point{}) since = start_;
      fleet.AddRow(
          {std::to_string(shards_.size() + i), r.shard->endpoint(),
           ShardHealthName(
               ShardHealth(r.health.load(std::memory_order_acquire))),
           util::AsciiTable::Num(
               std::chrono::duration<double>(now - since).count(), 1),
           scrape_age_s < 0 ? "never" : util::AsciiTable::Num(scrape_age_s, 1),
           node.empty() ? "-" : node, std::to_string(r.shard->pending())});
    }
    out += "\nremote replicas (replication R=" +
           std::to_string(std::max<size_t>(1, cfg_.replication)) + ")\n" +
           fleet.ToString();
    // The failover/transfer story in one line (summed over labels).
    out += "fleet counters: transitions=" +
           std::to_string(metrics_.CounterTotal(
               "selnet_health_transitions_total")) +
           " failover_attempts=" +
           std::to_string(
               metrics_.CounterTotal("selnet_failover_attempts_total")) +
           " failover_successes=" +
           std::to_string(
               metrics_.CounterTotal("selnet_failover_successes_total")) +
           " publishes=" +
           std::to_string(
               metrics_.CounterTotal("selnet_publish_replica_total")) +
           " transfer_tx_bytes=" +
           std::to_string(
               metrics_.CounterTotal("selnet_transfer_tx_bytes_total")) +
           " scrapes=" +
           std::to_string(metrics_.CounterTotal("selnet_scrape_total")) + "\n";
  }
  return out;
}

}  // namespace selnet::serve
