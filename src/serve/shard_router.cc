#include "serve/shard_router.h"

#include <algorithm>
#include <iterator>
#include <thread>
#include <utility>

#include "serve/update_pipeline.h"
#include "util/check.h"
#include "util/table.h"

namespace selnet::serve {

using util::Result;

// --------------------------------------------------------------- HashRing ---

uint64_t HashRing::Hash(const std::string& s) {
  // FNV-1a 64-bit with a murmur3 finalizer. FNV alone is stable but its
  // high bits cluster badly on short sequential strings ("shard-0#1",
  // "route/17"…) — measured 4-shard loads of 400/500/1000/100 — and ring
  // balance lives entirely in the hash's uniformity; the finalizer's
  // avalanche restores it. Not std::hash: placement is a wire-visible
  // contract and must agree across binaries and library versions.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(size_t shards, size_t virtual_nodes)
    : num_shards_(shards) {
  SEL_CHECK_MSG(shards >= 1, "HashRing needs at least one shard");
  size_t points = std::max<size_t>(1, virtual_nodes);
  ring_.reserve(shards * points);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t v = 0; v < points; ++v) {
      ring_.push_back(Point{
          Hash("shard-" + std::to_string(s) + "#" + std::to_string(v)),
          uint32_t(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t HashRing::ShardOf(const std::string& route) const {
  if (num_shards_ == 1) return 0;
  uint64_t h = Hash(route);
  // First ring point clockwise from the route's hash; wrap to the start.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{h, 0});
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

// --------------------------------------------------------- ShardedRegistry ---

ShardedRegistry::ShardedRegistry(const ShardedConfig& cfg)
    : cfg_(cfg), ring_(std::max<size_t>(1, cfg.num_shards),
                       cfg.virtual_nodes) {
  SEL_CHECK_MSG(cfg_.server.scheduler.pool == nullptr,
                "ShardedConfig.server.scheduler.pool must be null: each "
                "shard owns its pool slice");
  size_t shards = std::max<size_t>(1, cfg_.num_shards);
  size_t threads = cfg_.threads_per_shard;
  if (threads == 0) {
    size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    threads = std::max<size_t>(1, hw / shards);
  }
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool = std::make_unique<util::ThreadPool>(threads);
    ServerConfig scfg = cfg_.server;
    scfg.scheduler.pool = shard->pool.get();
    shard->server = std::make_unique<SelNetServer>(scfg);
    shards_.push_back(std::move(shard));
  }
}

ShardedRegistry::~ShardedRegistry() {
  // Servers first (each drains onto its pool), then the pools they used.
  for (auto& shard : shards_) shard->server.reset();
  for (auto& shard : shards_) shard->pool.reset();
}

size_t ShardedRegistry::ShardOf(const std::string& route) const {
  return ring_.ShardOf(route.empty() ? cfg_.server.model_name : route);
}

const std::string& ShardedRegistry::EffectiveRoute(
    const EstimateRequest& req) const {
  return req.model.empty() ? cfg_.server.model_name : req.model;
}

uint64_t ShardedRegistry::Publish(std::shared_ptr<eval::Estimator> model) {
  return Publish(cfg_.server.model_name, std::move(model));
}

uint64_t ShardedRegistry::Publish(const std::string& name,
                                  std::shared_ptr<eval::Estimator> model) {
  return shards_[ShardOf(name)]->server->Publish(name, std::move(model));
}

Result<uint64_t> ShardedRegistry::PublishFromFile(const std::string& name,
                                                  const std::string& path) {
  return shards_[ShardOf(name)]->server->PublishFromFile(name, path);
}

void ShardedRegistry::SubmitWith(EstimateRequest req,
                                 SelNetServer::ResponseFn done) {
  size_t shard = ShardOf(EffectiveRoute(req));
  shards_[shard]->server->SubmitWith(std::move(req), std::move(done));
}

std::future<EstimateResponse> ShardedRegistry::Submit(EstimateRequest req) {
  size_t shard = ShardOf(EffectiveRoute(req));
  return shards_[shard]->server->Submit(std::move(req));
}

Result<float> ShardedRegistry::Estimate(const float* x, float t) {
  return shards_[ShardOf("")]->server->Estimate(x, t);
}

LiveUpdatePipeline& ShardedRegistry::AttachUpdatePipeline(
    const UpdatePipelineConfig& cfg, const data::Database& db,
    const data::Workload& workload) {
  const std::string& route =
      cfg.model_name.empty() ? cfg_.server.model_name : cfg.model_name;
  SelNetServer& shard = *shards_[ShardOf(route)]->server;
  // Each SelNetServer holds ONE pipeline slot, and its AttachUpdatePipeline
  // replaces whatever is there. Replacing the SAME route is the documented
  // re-attach semantics; silently stopping a DIFFERENT route's pipeline just
  // because the two routes hash to one shard would be a placement-dependent
  // surprise — fail loudly instead.
  LiveUpdatePipeline* existing = shard.update_pipeline();
  SEL_CHECK_MSG(existing == nullptr || existing->route() == route,
                "ShardedRegistry: shard already runs an update pipeline for "
                "another route; one pipeline per shard");
  return shard.AttachUpdatePipeline(cfg, db, workload);
}

void ShardedRegistry::Drain() {
  for (auto& shard : shards_) shard->server->Drain();
}

std::vector<StatsSnapshot> ShardedRegistry::ShardSnapshots() const {
  std::vector<StatsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->server->stats().Snapshot());
  }
  return out;
}

StatsSnapshot ShardedRegistry::AggregateSnapshot() const {
  return AggregateSnapshots(ShardSnapshots());
}

std::vector<SpanRecord> ShardedRegistry::SlowSpans() const {
  std::vector<SpanRecord> out;
  for (const auto& shard : shards_) {
    std::vector<SpanRecord> spans = shard->server->stats().SlowSpans();
    out.insert(out.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
  }
  return out;
}

std::string ShardedRegistry::StatsReport() const {
  std::vector<StatsSnapshot> snaps = ShardSnapshots();
  util::AsciiTable table({"shard", "routes", "requests", "qps", "p50 ms",
                          "p99 ms", "hit rate", "swaps"});
  for (size_t s = 0; s < snaps.size(); ++s) {
    table.AddRow({std::to_string(s), std::to_string(snaps[s].routes.size()),
                  std::to_string(snaps[s].requests),
                  util::AsciiTable::Num(snaps[s].qps, 1),
                  util::AsciiTable::Num(snaps[s].latency_p50_ms, 4),
                  util::AsciiTable::Num(snaps[s].latency_p99_ms, 4),
                  util::AsciiTable::Num(snaps[s].cache_hit_rate, 4),
                  std::to_string(snaps[s].swaps)});
  }
  StatsSnapshot agg = AggregateSnapshots(snaps);
  table.AddRow({"total", std::to_string(agg.routes.size()),
                std::to_string(agg.requests),
                util::AsciiTable::Num(agg.qps, 1),
                util::AsciiTable::Num(agg.latency_p50_ms, 4),
                util::AsciiTable::Num(agg.latency_p99_ms, 4),
                util::AsciiTable::Num(agg.cache_hit_rate, 4),
                std::to_string(agg.swaps)});
  std::string out = "sharded serving (" + std::to_string(shards_.size()) +
                    " shards)\n" + table.ToString();
  // Per-route placement: which shard owns what (the A/B view, sharded).
  if (!agg.routes.empty()) {
    util::AsciiTable routes({"route", "shard", "requests", "p50 ms", "p99 ms",
                             "hit rate"});
    for (size_t s = 0; s < snaps.size(); ++s) {
      for (const auto& r : snaps[s].routes) {
        routes.AddRow({r.route, std::to_string(s),
                       std::to_string(r.requests),
                       util::AsciiTable::Num(r.latency_p50_ms, 4),
                       util::AsciiTable::Num(r.latency_p99_ms, 4),
                       util::AsciiTable::Num(r.cache_hit_rate, 4)});
      }
    }
    out += "\n" + routes.ToString();
  }
  return out;
}

}  // namespace selnet::serve
