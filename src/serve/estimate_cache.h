#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

/// \file estimate_cache.h
/// \brief Sharded LRU cache for selectivity estimates.
///
/// Keys are built by quantizing the query vector and threshold to a fixed
/// grid and hashing them together with the model version, so (a) numerically
/// identical repeat queries hit, (b) near-identical queries within one
/// quantum collapse to one entry, and (c) entries computed by a superseded
/// model version can never be returned after a hot-swap — stale entries
/// simply age out of the LRU.
///
/// Sharding: the key's low bits pick one of `shards` independent LRU maps,
/// each with its own mutex, so concurrent clients rarely contend.

namespace selnet::serve {

/// \brief Cache sizing and quantization knobs.
struct CacheConfig {
  size_t capacity = 1 << 16;  ///< Total entries across all shards.
  size_t shards = 16;         ///< Power of two recommended.
  /// Quantization grid for query coordinates and thresholds. Estimates for
  /// inputs closer than one quantum are considered interchangeable.
  float query_quantum = 1e-5f;
  float threshold_quantum = 1e-5f;
};

/// \brief Thread-safe sharded LRU mapping quantized (version, x, t) -> value.
class EstimateCache {
 public:
  explicit EstimateCache(const CacheConfig& cfg = CacheConfig());

  /// \brief Hash a (model version, query, threshold) triple into a cache key.
  uint64_t MakeKey(uint64_t model_version, const float* x, size_t dim,
                   float t) const;

  /// \brief Look up a key; on hit copies the value and refreshes recency.
  bool Lookup(uint64_t key, float* value);

  /// \brief Insert or overwrite; evicts the shard's LRU entry when full.
  void Insert(uint64_t key, float value);

  /// \brief Drop every entry (stats counters are kept).
  void Clear();

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most-recent entries at the front; pairs of (key, value).
    std::list<std::pair<uint64_t, float>> lru;
    std::unordered_map<uint64_t,
                       std::list<std::pair<uint64_t, float>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t key) { return shards_[key % shards_.size()]; }

  CacheConfig cfg_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace selnet::serve
