#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file estimate_cache.h
/// \brief Sharded LRU caches for selectivity estimates and sweep curves.
///
/// Keys are built by quantizing the query vector (and, for scalar entries,
/// the threshold) to a fixed grid and hashing them together with the model
/// version, so (a) numerically identical repeat queries hit, (b)
/// near-identical queries within one quantum collapse to one entry, and (c)
/// entries computed by a superseded model version can never be returned
/// after a hot-swap — stale entries simply age out of the LRU.
///
/// Two entry kinds share the machinery:
///  * scalar — (version, x, t) -> estimate, the per-threshold cache;
///  * curve  — (version, x) -> the query's whole PWL control-point set
///    (eval::SweepCapable::SweepCurve). A repeat query at NEW thresholds
///    skips the network entirely: the server evaluates the cached PWL, which
///    is bit-identical to the model's own sweep path.
///
/// Sharding: the key's low bits pick one of `shards` independent LRU maps,
/// each with its own mutex, so concurrent clients rarely contend.

namespace selnet::serve {

/// \brief Cache sizing and quantization knobs.
struct CacheConfig {
  size_t capacity = 1 << 16;  ///< Scalar entries across all shards.
  size_t shards = 16;         ///< Power of two recommended.
  /// Sweep-curve entries across all shards (each holds 2(L+2) floats).
  /// Only used when ServerConfig::enable_curve_cache is on.
  size_t curve_capacity = 1 << 12;
  /// Quantization grid for query coordinates and thresholds. Estimates for
  /// inputs closer than one quantum are considered interchangeable.
  float query_quantum = 1e-5f;
  float threshold_quantum = 1e-5f;
};

/// \brief One cached sweep curve: the PWL control points of a query's
/// estimate-vs-threshold function.
struct CurveEntry {
  std::vector<float> tau;  ///< Knot positions (non-decreasing).
  std::vector<float> p;    ///< Knot values.
};

/// \brief Thread-safe sharded LRU map uint64 key -> V (values copied out).
template <typename V>
class ShardedLru {
 public:
  void Init(size_t capacity, size_t shards) {
    per_shard_capacity_ = (capacity + shards - 1) / shards;
    shards_ = std::vector<Shard>(shards);
  }

  /// \brief On hit copies the value out and refreshes recency.
  bool Lookup(uint64_t key, V* value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *value = it->second->second;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// \brief Insert or overwrite; evicts the shard's LRU entry when full.
  void Insert(uint64_t key, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index[key] = shard.lru.begin();
  }

  /// \brief Drop every entry (stats counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most-recent entries at the front; pairs of (key, value).
    std::list<std::pair<uint64_t, V>> lru;
    std::unordered_map<uint64_t,
                       typename std::list<std::pair<uint64_t, V>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t key) { return shards_[key % shards_.size()]; }

  size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// \brief The serving cache: quantized (version, x, t) -> estimate plus the
/// optional (version, x) -> sweep-curve side table.
class EstimateCache {
 public:
  explicit EstimateCache(const CacheConfig& cfg = CacheConfig());

  /// \brief Hash a (model version, query, threshold) triple into a cache key.
  uint64_t MakeKey(uint64_t model_version, const float* x, size_t dim,
                   float t) const;

  /// \brief Look up a key; on hit copies the value and refreshes recency.
  bool Lookup(uint64_t key, float* value);

  /// \brief Insert or overwrite; evicts the shard's LRU entry when full.
  void Insert(uint64_t key, float value);

  /// \brief Hash a (model version, query) pair into a curve-cache key
  /// (threshold-free; salted so it can never collide semantically with
  /// MakeKey output).
  uint64_t MakeCurveKey(uint64_t model_version, const float* x,
                        size_t dim) const;

  /// \brief Look up a cached sweep curve.
  bool LookupCurve(uint64_t key, CurveEntry* entry);

  /// \brief Insert or overwrite a sweep curve.
  void InsertCurve(uint64_t key, CurveEntry entry);

  /// \brief Drop every entry of both tables (stats counters are kept).
  void Clear();

  size_t size() const { return scalars_.size(); }
  uint64_t hits() const { return scalars_.hits(); }
  uint64_t misses() const { return scalars_.misses(); }
  uint64_t evictions() const { return scalars_.evictions(); }

  size_t curve_size() const { return curves_.size(); }
  uint64_t curve_hits() const { return curves_.hits(); }
  uint64_t curve_misses() const { return curves_.misses(); }

  const CacheConfig& config() const { return cfg_; }

 private:
  CacheConfig cfg_;
  ShardedLru<float> scalars_;
  ShardedLru<CurveEntry> curves_;
};

}  // namespace selnet::serve
