#include "serve/trace.h"

#include "serve/wire.h"

namespace selnet::serve {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kDecode: return "decode";
    case Stage::kRoute: return "route";
    case Stage::kCache: return "cache";
    case Stage::kQueue: return "queue";
    case Stage::kPredict: return "predict";
    case Stage::kEncode: return "encode";
    case Stage::kRemoteQueue: return "remote_queue";
    case Stage::kRemotePredict: return "remote_predict";
    case Stage::kRemoteWire: return "remote_wire";
  }
  return "unknown";
}

std::string SpanRecord::ToJson() const {
  JsonWriter w;
  w.Field("route", route);
  if (tag != 0) w.Field("tag", tag);
  w.Field("total_ms", total_ms);
  for (size_t i = 0; i < kNumStages; ++i) {
    w.Field(std::string(StageName(Stage(i))) + "_ms", stage_ms[i]);
  }
  return w.Finish();
}

}  // namespace selnet::serve
