#include "serve/update_pipeline.h"

#include <utility>

#include "nn/module.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/logging.h"

#if defined(__linux__)
#include <sched.h>
#include <sys/resource.h>
#endif

namespace selnet::serve {

LiveUpdatePipeline::LiveUpdatePipeline(SelNetServer* server,
                                       const UpdatePipelineConfig& cfg,
                                       const data::Database& db,
                                       const data::Workload& workload)
    : server_(server),
      cfg_(cfg),
      route_(cfg.model_name.empty() ? server->config().model_name
                                    : cfg.model_name),
      db_(db),
      workload_(workload) {
  SEL_CHECK(server != nullptr);
  util::Result<ModelHandle> handle = server_->registry().Get(route_);
  SEL_CHECK_MSG(handle.ok(),
                "LiveUpdatePipeline: no model published under the route");
  const auto* incremental = dynamic_cast<const core::IncrementalModel*>(
      handle.ValueOrDie().model.get());
  SEL_CHECK_MSG(incremental != nullptr,
                "LiveUpdatePipeline: served model is not incrementally "
                "trainable (core::IncrementalModel)");
  shadow_ = incremental->CloneServable();
  SEL_CHECK_MSG(shadow_ != nullptr,
                "LiveUpdatePipeline: served model does not support "
                "CloneServable");
  shadow_inc_ = dynamic_cast<core::IncrementalModel*>(shadow_.get());
  SEL_CHECK_MSG(shadow_inc_ != nullptr,
                "LiveUpdatePipeline: clone lost the IncrementalModel view");

  // The manager drives the Section 5.4 loop over the SHADOW triple; its
  // constructor computes the drift baseline (one validation pass). Label
  // patching stays serial on this (deprioritized) thread: ParallelFor would
  // fan normal-priority chunks onto the pool the serve path runs on.
  core::UpdatePolicy policy = cfg_.policy;
  policy.parallel_label_patch = false;
  eval::TrainContext ctx;  // db/workload are overwritten by the manager.
  manager_ = std::make_unique<core::UpdateManager>(&db_, &workload_,
                                                   shadow_inc_, ctx, policy);
  baseline_mae_.store(manager_->baseline_mae(), std::memory_order_relaxed);
  worker_ = std::thread([this] { WorkerLoop(); });
}

LiveUpdatePipeline::~LiveUpdatePipeline() { Stop(); }

bool LiveUpdatePipeline::Submit(core::UpdateOp op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= cfg_.max_pending_ops) {
      ops_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(op));
  }
  ops_ingested_.fetch_add(1, std::memory_order_relaxed);
  server_->stats().RecordUpdateOps(1);
  work_cv_.notify_one();
  return true;
}

void LiveUpdatePipeline::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void LiveUpdatePipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

UpdatePipelineState LiveUpdatePipeline::Snapshot() const {
  UpdatePipelineState s;
  s.ops_ingested = ops_ingested_.load(std::memory_order_relaxed);
  s.ops_rejected = ops_rejected_.load(std::memory_order_relaxed);
  s.ops_applied = ops_applied_.load(std::memory_order_relaxed);
  s.ops_failed = ops_failed_.load(std::memory_order_relaxed);
  s.records_inserted = records_inserted_.load(std::memory_order_relaxed);
  s.records_deleted = records_deleted_.load(std::memory_order_relaxed);
  s.retrains_triggered = retrains_.load(std::memory_order_relaxed);
  s.epochs_run = epochs_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.last_drift = last_drift_.load(std::memory_order_relaxed);
  s.baseline_mae = baseline_mae_.load(std::memory_order_relaxed);
  s.last_mae = last_mae_.load(std::memory_order_relaxed);
  s.last_published_version = last_version_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.idle = queue_.empty() && !busy_;
  }
  return s;
}

std::vector<tensor::Matrix> LiveUpdatePipeline::ShadowParamsSnapshot() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  // The worker is parked on work_cv_ (or exited); its writes to the shadow
  // happened-before our mutex acquisition, so reading here is race-free.
  const auto* module = dynamic_cast<const nn::Module*>(shadow_.get());
  if (module == nullptr) return {};
  return nn::SnapshotParams(module->Params());
}

void LiveUpdatePipeline::WorkerLoop() {
#if defined(__linux__)
  // Retraining is throughput work and must lose scheduling ties to the
  // latency-sensitive serve threads. SCHED_IDLE (unprivileged) runs this
  // thread only in their gaps; the nice fallback still biases the CFS
  // weights when idle-class is unavailable or disabled. who=0 with
  // PRIO_PROCESS addresses the calling thread on Linux.
  bool idle_applied = false;
  if (cfg_.background_idle_sched) {
    struct sched_param param = {};
    idle_applied = sched_setscheduler(0, SCHED_IDLE, &param) == 0;
  }
  if (!idle_applied && cfg_.background_nice != 0) {
    setpriority(PRIO_PROCESS, 0, cfg_.background_nice);
  }
#endif
  for (;;) {
    core::UpdateOp op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) idle_cv_.notify_all();
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        idle_cv_.notify_all();
        return;
      }
      op = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    // A shadow-side failure (training allocation, a model bug) must never
    // escape the thread — that would std::terminate the serving process the
    // pipeline exists to protect. Drop the op, count it, keep running.
    try {
      ApplyOne(op);
    } catch (const std::exception& e) {
      ops_failed_.fetch_add(1, std::memory_order_relaxed);
      util::LogInfo("update pipeline: op dropped, apply threw: %s", e.what());
    } catch (...) {
      ops_failed_.fetch_add(1, std::memory_order_relaxed);
      util::LogInfo("update pipeline: op dropped, apply threw");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void LiveUpdatePipeline::ApplyOne(const core::UpdateOp& op) {
  double baseline_before = manager_->baseline_mae();
  core::UpdateResult result = manager_->Apply(op);

  if (op.is_insert) {
    records_inserted_.fetch_add(op.vectors.size(), std::memory_order_relaxed);
  } else {
    records_deleted_.fetch_add(op.ids.size(), std::memory_order_relaxed);
  }
  double drift = result.mae_before - baseline_before;
  last_drift_.store(drift, std::memory_order_relaxed);
  last_mae_.store(result.mae_after, std::memory_order_relaxed);
  baseline_mae_.store(manager_->baseline_mae(), std::memory_order_relaxed);
  server_->stats().RecordDriftCheck(drift, result.retrained, result.epochs);

  if (result.retrained) {
    retrains_.fetch_add(1, std::memory_order_relaxed);
    epochs_.fetch_add(result.epochs, std::memory_order_relaxed);
    // Republish a deep copy of the retrained shadow: the served snapshot is
    // immutable from birth (fresh leaves, invalidated fold/pack caches — the
    // CloneServable contract), so the pipeline may keep training the shadow
    // while this version serves. Publish itself is one registry pointer swap;
    // in-flight batches finish on the snapshot they pinned.
    std::shared_ptr<eval::Estimator> snapshot = shadow_inc_->CloneServable();
    uint64_t version = server_->Publish(route_, std::move(snapshot));
    last_version_.store(version, std::memory_order_relaxed);
    publishes_.fetch_add(1, std::memory_order_relaxed);
    server_->stats().RecordPipelinePublish();
    util::LogDebug(
        "update pipeline: drift %.3f tripped on '%s'; retrained %zu epochs "
        "(MAE %.2f -> %.2f), republished as v%llu",
        drift, route_.c_str(), result.epochs, result.mae_before,
        result.mae_after, (unsigned long long)version);
  }
  ops_applied_.fetch_add(1, std::memory_order_relaxed);
  server_->stats().RecordUpdateApplied(1);
}

}  // namespace selnet::serve
