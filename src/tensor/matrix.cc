#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace selnet::tensor {

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  SEL_CHECK_EQ(data_.size(), rows_ * cols_);
}

Matrix Matrix::Eye(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::Uniform(size_t rows, size_t cols, util::Rng* rng, float lo, float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng->Uniform(lo, hi));
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, util::Rng* rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = static_cast<float>(rng->Normal(0.0, stddev));
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Apply(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* src = row(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  SEL_CHECK(begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::copy(row(begin), row(begin) + (end - begin) * cols_, out.data());
  return out;
}

Matrix Matrix::ColSlice(size_t begin, size_t end) const {
  SEL_CHECK(begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(row(r) + begin, row(r) + end, out.row(r));
  }
  return out;
}

Matrix Matrix::Reshaped(size_t rows, size_t cols) const {
  SEL_CHECK_EQ(rows * cols, data_.size());
  Matrix out = *this;
  out.rows_ = rows;
  out.cols_ = cols;
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

float Matrix::Max() const {
  SEL_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Matrix::Min() const {
  SEL_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

bool Matrix::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream out;
  out << "Matrix(" << rows_ << "x" << cols_ << ")\n";
  size_t rr = std::min<size_t>(rows_, static_cast<size_t>(max_rows));
  size_t cc = std::min<size_t>(cols_, static_cast<size_t>(max_cols));
  for (size_t r = 0; r < rr; ++r) {
    out << "  [";
    for (size_t c = 0; c < cc; ++c) {
      out << (c > 0 ? ", " : "") << (*this)(r, c);
    }
    if (cc < cols_) out << ", ...";
    out << "]\n";
  }
  if (rr < rows_) out << "  ...\n";
  return out.str();
}

}  // namespace selnet::tensor
