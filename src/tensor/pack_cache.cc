#include "tensor/pack_cache.h"

#include <algorithm>

namespace selnet::tensor {

namespace {
std::atomic<uint64_t> g_pack_hits{0};
std::atomic<uint64_t> g_pack_builds{0};
std::atomic<uint64_t> g_pack_invalidations{0};
std::atomic<bool> g_pack_cache_enabled{true};
}  // namespace

void PackBInto(const Matrix& b, float* dst) {
  size_t k = b.rows(), n = b.cols();
  size_t num_panels = (n + kPanelWidth - 1) / kPanelWidth;
  for (size_t pa = 0; pa < num_panels; ++pa) {
    size_t j0 = pa * kPanelWidth;
    size_t jn = std::min(kPanelWidth, n - j0);
    float* panel = dst + pa * k * kPanelWidth;
    for (size_t p = 0; p < k; ++p) {
      const float* src = b.row(p) + j0;
      float* out = panel + p * kPanelWidth;
      for (size_t j = 0; j < jn; ++j) out[j] = src[j];
      for (size_t j = jn; j < kPanelWidth; ++j) out[j] = 0.0f;
    }
  }
}

void PackB(const Matrix& b, PackedWeights* out) {
  out->k = b.rows();
  out->n = b.cols();
  out->num_panels = (b.cols() + kPanelWidth - 1) / kPanelWidth;
  out->data.resize(out->num_panels * out->k * kPanelWidth);
  PackBInto(b, out->data.data());
}

PackStatsSnapshot PackStats() {
  PackStatsSnapshot s;
  s.hits = g_pack_hits.load(std::memory_order_relaxed);
  s.builds = g_pack_builds.load(std::memory_order_relaxed);
  s.invalidations = g_pack_invalidations.load(std::memory_order_relaxed);
  return s;
}

void ResetPackStats() {
  g_pack_hits.store(0, std::memory_order_relaxed);
  g_pack_builds.store(0, std::memory_order_relaxed);
  g_pack_invalidations.store(0, std::memory_order_relaxed);
}

void SetPackCacheEnabled(bool enabled) {
  g_pack_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool PackCacheEnabled() {
  return g_pack_cache_enabled.load(std::memory_order_relaxed);
}

std::shared_ptr<const PackedWeights> PackCache::Get(const Matrix& b) const {
  if (PackCacheEnabled()) {
    std::shared_ptr<const PackedWeights> cached = std::atomic_load(&cache_);
    // Validity is decided HERE, not at publish time: the snapshot must carry
    // the current generation (a builder preempted across an Invalidate() may
    // publish a stale pack, but its stale generation makes it unservable)
    // and the shape must match (guards the rare reuse of one slot for
    // different-shaped values).
    if (cached && cached->generation == gen_.load() &&
        cached->k == b.rows() && cached->n == b.cols()) {
      g_pack_hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  // Sample the generation BEFORE reading the weights: a build that raced a
  // mutation+Invalidate() carries the pre-bump generation, so even if it
  // wins the publish race below it can never be served (see the hit path).
  uint64_t gen = gen_.load();
  auto built = std::make_shared<PackedWeights>();
  PackB(b, built.get());
  built->generation = gen;
  g_pack_builds.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const PackedWeights> result = std::move(built);
  if (PackCacheEnabled() && gen_.load() == gen) {
    std::atomic_store(&cache_, result);
  }
  return result;
}

void PackCache::Invalidate() const {
  // Bump BEFORE clearing so an in-flight build observes the new generation
  // and cannot republish a stale pack (same ordering as the fold cache).
  gen_.fetch_add(1);
  std::atomic_store(&cache_, std::shared_ptr<const PackedWeights>(nullptr));
  g_pack_invalidations.fetch_add(1, std::memory_order_relaxed);
}

float* PackScratch::Acquire(size_t n) {
  high_water_ = std::max(high_water_, n);
  if (++calls_ >= kShrinkPeriod) {
    // Re-fit to the demand actually seen this period; a one-off giant GEMM
    // stops pinning its footprint within kShrinkPeriod calls.
    if (high_water_ < buf_.capacity() / 2) {
      buf_.resize(high_water_);
      buf_.shrink_to_fit();
    }
    calls_ = 0;
    high_water_ = n;
  }
  if (buf_.size() < n) buf_.resize(n);
  return buf_.data();
}

PackScratch& PackScratch::ThreadLocal() {
  thread_local PackScratch scratch;
  return scratch;
}

}  // namespace selnet::tensor
