#pragma once

#include "tensor/matrix.h"
#include "tensor/pack_cache.h"

/// \file blas.h
/// \brief Hot numeric kernels over Matrix: GEMM variants, axpy, reductions.
///
/// These are the only loops that matter for training and serving throughput.
/// The NN GEMM is a small kernel engine: batch size picks between a saxpy
/// loop (1-3 rows), a 4-row blocked kernel (4-15 rows), and a BLIS-style
/// packed path (16+ rows) whose 4x16 micro-kernel is runtime-dispatched
/// across scalar/AVX2/AVX-512/NEON implementations (kernel_dispatch.h) and
/// sharded across cores above kGemmParallelMinRows. Weight packing is either
/// cached per parameter version (pack_cache.h, via GemmNNPrepacked) or done
/// into a bounded thread-local scratch arena.
///
/// Bit-identity: with beta == 0, every GemmNN path — any batch size, any
/// dispatched ISA, any core count — keeps one per-element accumulation order
/// (ascending k, two separately rounded ops per term), so results are
/// bit-identical across kernels. Batched serving returns exactly what a
/// single-row Predict would; see kernel_dispatch.h for how the SIMD variants
/// uphold this.

namespace selnet::tensor {

/// \brief Row count at which GemmNN switches to the packed micro-kernel.
inline constexpr size_t kGemmPackMinRows = 16;

/// \brief Row count at which the packed path shards 4-row blocks across
/// util::ParallelFor. Serial fallback on single-threaded hosts and inside
/// pool workers — so BatchScheduler flushes stay serial per flush (their
/// multi-core story is several flushes in flight across workers); the
/// sharded path serves direct large batched Predicts on non-pool threads.
inline constexpr size_t kGemmParallelMinRows = 128;

/// \brief Forced kernel choice for GemmNNWithKernel (tests and benches pin
/// each path; production code uses the batch-size auto dispatch).
enum class GemmKernel { kAuto, kSaxpy, kBlocked, kPacked, kPackedParallel };

/// \brief out = alpha * A(^T?) * B(^T?) + beta * out.
///
/// `out` must be pre-shaped to the product shape; `beta == 0` overwrites.
void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out);

/// \brief out += alpha * A * B through an explicitly chosen NN kernel
/// (callers zero `out` first for the plain product).
void GemmNNWithKernel(const Matrix& a, const Matrix& b, float alpha,
                      Matrix* out, GemmKernel kernel);

/// \brief out += alpha * A * packed(B), skipping the pack pass entirely —
/// the serving hot path, fed by a version-keyed PackCache snapshot.
/// Bit-identical to GemmNNWithKernel(..., kPacked) on the unpacked B.
void GemmNNPrepacked(const Matrix& a, const PackedWeights& packed, float alpha,
                     Matrix* out);

/// \brief C = A * B convenience wrapper.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// \brief y += alpha * x (same shape).
void Axpy(float alpha, const Matrix& x, Matrix* y);

/// \brief out = a + b (same shape).
Matrix Add(const Matrix& a, const Matrix& b);

/// \brief out = a - b (same shape).
Matrix Sub(const Matrix& a, const Matrix& b);

/// \brief out = a ⊙ b elementwise (same shape).
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// \brief out = a * scalar.
Matrix Scale(const Matrix& a, float s);

/// \brief Add a 1xC row vector to every row of `m` in place.
void AddRowVectorInPlace(Matrix* m, const Matrix& row_vec);

/// \brief Column-wise sums of `m` as a 1xC matrix.
Matrix ColSums(const Matrix& m);

/// \brief Row-wise sums of `m` as an Rx1 matrix.
Matrix RowSums(const Matrix& m);

/// \brief Dot product of two equally-sized float spans.
float Dot(const float* a, const float* b, size_t n);

/// \brief Squared Euclidean distance between two float spans.
float SquaredL2(const float* a, const float* b, size_t n);

}  // namespace selnet::tensor
