#pragma once

#include "tensor/matrix.h"

/// \file blas.h
/// \brief Hot numeric kernels over Matrix: GEMM variants, axpy, reductions.
///
/// These are the only loops that matter for training throughput; they are
/// written i-k-j (saxpy order) so the inner loop is a contiguous FMA stream
/// that GCC vectorizes with AVX2.

namespace selnet::tensor {

/// \brief out = alpha * A(^T?) * B(^T?) + beta * out.
///
/// `out` must be pre-shaped to the product shape; `beta == 0` overwrites.
void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out);

/// \brief C = A * B convenience wrapper.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// \brief y += alpha * x (same shape).
void Axpy(float alpha, const Matrix& x, Matrix* y);

/// \brief out = a + b (same shape).
Matrix Add(const Matrix& a, const Matrix& b);

/// \brief out = a - b (same shape).
Matrix Sub(const Matrix& a, const Matrix& b);

/// \brief out = a ⊙ b elementwise (same shape).
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// \brief out = a * scalar.
Matrix Scale(const Matrix& a, float s);

/// \brief Add a 1xC row vector to every row of `m` in place.
void AddRowVectorInPlace(Matrix* m, const Matrix& row_vec);

/// \brief Column-wise sums of `m` as a 1xC matrix.
Matrix ColSums(const Matrix& m);

/// \brief Row-wise sums of `m` as an Rx1 matrix.
Matrix RowSums(const Matrix& m);

/// \brief Dot product of two equally-sized float spans.
float Dot(const float* a, const float* b, size_t n);

/// \brief Squared Euclidean distance between two float spans.
float SquaredL2(const float* a, const float* b, size_t n);

}  // namespace selnet::tensor
