#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/kernel_dispatch.h"
#include "tensor/matrix.h"

/// \file pack_cache.h
/// \brief Version-keyed cache of packed GEMM weight panels.
///
/// `GemmNN` above the packing threshold first repacks B's 16-column panels
/// into a p-major layout the micro-kernel streams sequentially. Weights only
/// change at update/publish boundaries, so repacking per call is pure waste
/// on the serving path. A `PackCache` keys one immutable `PackedWeights`
/// snapshot to a monotonically increasing generation — the exact discipline
/// `core::ControlHeads` uses for its folded-tail cache (`fold_gen_`):
///
///  * readers `Get()` lock-free (atomic shared_ptr load); concurrent builds
///    race harmlessly because packing is a pure function of B;
///  * writers call `Invalidate()` after mutating the weights. The generation
///    is bumped BEFORE the slot is cleared, so an in-flight build that
///    sampled the old weights fails its generation check and never publishes
///    a stale pack. Invalidation is wired through every point that mutates
///    parameter values: `nn::Optimizer::Step`, `nn::LoadParams` /
///    `core::LoadModel`, and `ControlHeads::InvalidateInferenceCache`
///    (which `serve::ModelRegistry::PublishFromFile` triggers).
///
/// Callers that have no stable weight identity (transposed copies, transient
/// activation products) instead pack into a bounded thread-local
/// `PackScratch` arena.

namespace selnet::tensor {

/// \brief An immutable packed snapshot of one weight matrix B (k x n):
/// ceil(n / kPanelWidth) panels, each k rows of kPanelWidth floats (p-major,
/// zero-padded past column n).
struct PackedWeights {
  size_t k = 0;
  size_t n = 0;
  size_t num_panels = 0;
  /// PackCache generation sampled before the weights were read; the hit path
  /// serves a snapshot only while this matches the cache's current
  /// generation, which closes the publish-after-invalidate race (a builder
  /// preempted between its generation check and its store cannot make a
  /// stale pack servable — readers see the generation mismatch and rebuild).
  uint64_t generation = 0;
  std::vector<float> data;

  const float* panel(size_t pa) const {
    return data.data() + pa * k * kPanelWidth;
  }
};

/// \brief Pack B into `out` (resizing it); layout documented on
/// PackedWeights. `dst` buffers from PackScratch use PackBInto.
void PackB(const Matrix& b, PackedWeights* out);

/// \brief Pack B into a raw buffer of at least
/// ceil(n / kPanelWidth) * k * kPanelWidth floats (the PackScratch path).
void PackBInto(const Matrix& b, float* dst);

/// \brief Process-wide pack-cache observability counters (serve stats and
/// tests read these; all relaxed atomics).
struct PackStatsSnapshot {
  uint64_t hits = 0;          ///< Get() served from the cached snapshot.
  uint64_t builds = 0;        ///< Get() had to pack.
  uint64_t invalidations = 0;
};
PackStatsSnapshot PackStats();
void ResetPackStats();

/// \brief Kill switch: when disabled, Get() packs fresh on every call (the
/// pre-cache behavior). Benches use this for an honest cold-pack baseline;
/// ops can flip it if a stale-pack bug is ever suspected in production.
void SetPackCacheEnabled(bool enabled);
bool PackCacheEnabled();

/// \brief One weight matrix's version-keyed pack slot (see file comment).
class PackCache {
 public:
  PackCache() = default;
  PackCache(const PackCache&) = delete;
  PackCache& operator=(const PackCache&) = delete;

  /// \brief The packed panels for `b`, built lazily and cached until
  /// Invalidate(). Thread-safe; the returned snapshot is immutable and
  /// outlives any later invalidation.
  std::shared_ptr<const PackedWeights> Get(const Matrix& b) const;

  /// \brief Drop the cached pack; must follow any mutation of the weight
  /// values this cache shadows. Thread-safe.
  void Invalidate() const;

  /// \brief Generation counter (bumps on every Invalidate).
  uint64_t generation() const { return gen_.load(std::memory_order_relaxed); }

 private:
  mutable std::shared_ptr<const PackedWeights> cache_;
  mutable std::atomic<uint64_t> gen_{0};
};

/// \brief Bounded thread-local packing arena for cache-less GemmNN calls.
///
/// Replaces the unbounded `thread_local std::vector<float>` that grew
/// monotonically with the largest B ever packed on a thread: capacity is
/// re-fit to the observed high-water mark every `kShrinkPeriod` acquisitions,
/// so one huge one-off GEMM no longer pins its footprint forever.
class PackScratch {
 public:
  /// \brief A buffer of at least `n` floats, valid until the next Acquire on
  /// this thread.
  float* Acquire(size_t n);

  size_t capacity() const { return buf_.capacity(); }

  /// \brief Calling thread's arena (what GemmNN uses).
  static PackScratch& ThreadLocal();

  static constexpr size_t kShrinkPeriod = 64;

 private:
  std::vector<float> buf_;
  size_t high_water_ = 0;  ///< Largest demand in the current period.
  size_t calls_ = 0;
};

}  // namespace selnet::tensor
