#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

/// \file matrix.h
/// \brief Dense row-major float matrix — the value type of the autograd tape.
///
/// Vectors are represented as 1xN or Nx1 matrices. All neural network math in
/// the library flows through this type, so the hot kernels (see blas.h) are
/// written to auto-vectorize under -O3 -march=native.

namespace selnet::tensor {

/// \brief Dense row-major float matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// \brief Build from a flat row-major buffer (size must be rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<float> data);

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols, 0.0f); }
  static Matrix Ones(size_t rows, size_t cols) { return Matrix(rows, cols, 1.0f); }
  static Matrix Full(size_t rows, size_t cols, float v) { return Matrix(rows, cols, v); }
  /// \brief Identity matrix of size n.
  static Matrix Eye(size_t n);
  /// \brief i.i.d. U(lo, hi) entries.
  static Matrix Uniform(size_t rows, size_t cols, util::Rng* rng, float lo = -1.0f,
                        float hi = 1.0f);
  /// \brief i.i.d. N(0, stddev^2) entries.
  static Matrix Gaussian(size_t rows, size_t cols, util::Rng* rng,
                         float stddev = 1.0f);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) {
    SEL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    SEL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// \brief Reset every entry to `v`.
  void Fill(float v);
  /// \brief Elementwise in-place transform.
  void Apply(const std::function<float(float)>& fn);
  /// \brief Transposed copy.
  Matrix Transposed() const;
  /// \brief Copy of rows [begin, end).
  Matrix RowSlice(size_t begin, size_t end) const;
  /// \brief Copy of columns [begin, end).
  Matrix ColSlice(size_t begin, size_t end) const;
  /// \brief Reshape view-copy; total size must be preserved.
  Matrix Reshaped(size_t rows, size_t cols) const;

  /// \brief Sum of all entries.
  double Sum() const;
  /// \brief Max entry (requires non-empty).
  float Max() const;
  /// \brief Min entry (requires non-empty).
  float Min() const;
  /// \brief Frobenius norm.
  double Norm() const;

  /// \brief True iff all entries are finite.
  bool AllFinite() const;

  /// \brief Debug rendering (small matrices only).
  std::string ToString(int max_rows = 8, int max_cols = 10) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace selnet::tensor
