#include "tensor/kernel_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace selnet::tensor {

namespace internal {
// Each SIMD translation unit defines its probe; it returns nullptr when the
// variant is not compiled in (portable build) or the CPU lacks the ISA.
const KernelInfo* Avx2Kernel();
const KernelInfo* Avx512Kernel();
const KernelInfo* NeonKernel();
}  // namespace internal

namespace {

// The portable reference kernel. Every other implementation is held,
// bit-for-bit, to this one's per-element operation sequence (see the
// bit-identity contract in kernel_dispatch.h).
void MicroKernelScalar(const float* a0, const float* a1, const float* a2,
                       const float* a3, size_t k, float alpha,
                       const float* panel, float* acc) {
  float* acc0 = acc;
  float* acc1 = acc + kPanelWidth;
  float* acc2 = acc + 2 * kPanelWidth;
  float* acc3 = acc + 3 * kPanelWidth;
  for (size_t p = 0; p < k; ++p) {
    const float* b_row = panel + p * kPanelWidth;
    float v0 = alpha * a0[p];
    float v1 = alpha * a1[p];
    float v2 = alpha * a2[p];
    float v3 = alpha * a3[p];
    for (size_t j = 0; j < kPanelWidth; ++j) {
      float bv = b_row[j];
      acc0[j] += v0 * bv;
      acc1[j] += v1 * bv;
      acc2[j] += v2 * bv;
      acc3[j] += v3 * bv;
    }
  }
}

constexpr KernelInfo kScalarKernel{"scalar", MicroKernelScalar};

std::vector<KernelInfo> BuildAvailable() {
  std::vector<KernelInfo> kernels{kScalarKernel};
  if (const KernelInfo* k = internal::NeonKernel()) kernels.push_back(*k);
  if (const KernelInfo* k = internal::Avx2Kernel()) kernels.push_back(*k);
  if (const KernelInfo* k = internal::Avx512Kernel()) kernels.push_back(*k);
  return kernels;
}

const KernelInfo* ResolveDefault() {
  const std::vector<KernelInfo>& kernels = AvailableKernels();
  if (const char* name = std::getenv("SELNET_KERNEL")) {
    for (const KernelInfo& k : kernels) {
      if (std::strcmp(k.name, name) == 0) return &k;
    }
    // Unknown/unsupported override: fall through to the widest kernel rather
    // than fail — serving must come up on any host.
  }
  return &kernels.back();  // Registration order is narrowest to widest.
}

std::atomic<const KernelInfo*>& ActiveSlot() {
  static std::atomic<const KernelInfo*> active{ResolveDefault()};
  return active;
}

}  // namespace

const std::vector<KernelInfo>& AvailableKernels() {
  static const std::vector<KernelInfo> kernels = BuildAvailable();
  return kernels;
}

const KernelInfo& ActiveKernel() { return *ActiveSlot().load(); }

bool SetActiveKernel(const std::string& name) {
  for (const KernelInfo& k : AvailableKernels()) {
    if (name == k.name) {
      ActiveSlot().store(&k);
      return true;
    }
  }
  return false;
}

}  // namespace selnet::tensor
