#include "tensor/kernel_dispatch.h"

/// \file kernels_avx2.cc
/// \brief AVX2 variant of the 4x16 packed micro-kernel.
///
/// Compiled with -mavx2 only when SELNET_ENABLE_SIMD is ON (or the whole
/// build already targets an AVX2 host via -march=native); guarded again at
/// runtime by CPUID, so the binary stays safe on older x86.
///
/// Bit-identity: vectorization is across the 16-column panel axis only. Each
/// output element still sees `v = alpha * a[p]` then `acc += v * b` as two
/// separately rounded ops in ascending-p order — deliberately mul+add, NOT
/// FMA, to round exactly like the portable scalar kernel (the TU is built
/// with -ffp-contract=off so the compiler cannot fuse them either).

#if defined(SELNET_ENABLE_SIMD) && defined(__AVX2__)

#include <immintrin.h>

namespace selnet::tensor::internal {

namespace {

void MicroKernelAvx2(const float* a0, const float* a1, const float* a2,
                     const float* a3, size_t k, float alpha, const float* panel,
                     float* acc) {
  // 4 rows x 16 columns = 8 ymm accumulators; panel rows are unaligned-safe.
  __m256 c00 = _mm256_loadu_ps(acc + 0);
  __m256 c01 = _mm256_loadu_ps(acc + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 16);
  __m256 c11 = _mm256_loadu_ps(acc + 24);
  __m256 c20 = _mm256_loadu_ps(acc + 32);
  __m256 c21 = _mm256_loadu_ps(acc + 40);
  __m256 c30 = _mm256_loadu_ps(acc + 48);
  __m256 c31 = _mm256_loadu_ps(acc + 56);
  for (size_t p = 0; p < k; ++p) {
    const float* b_row = panel + p * kPanelWidth;
    __m256 b0 = _mm256_loadu_ps(b_row);
    __m256 b1 = _mm256_loadu_ps(b_row + 8);
    __m256 v0 = _mm256_set1_ps(alpha * a0[p]);
    __m256 v1 = _mm256_set1_ps(alpha * a1[p]);
    __m256 v2 = _mm256_set1_ps(alpha * a2[p]);
    __m256 v3 = _mm256_set1_ps(alpha * a3[p]);
    c00 = _mm256_add_ps(c00, _mm256_mul_ps(v0, b0));
    c01 = _mm256_add_ps(c01, _mm256_mul_ps(v0, b1));
    c10 = _mm256_add_ps(c10, _mm256_mul_ps(v1, b0));
    c11 = _mm256_add_ps(c11, _mm256_mul_ps(v1, b1));
    c20 = _mm256_add_ps(c20, _mm256_mul_ps(v2, b0));
    c21 = _mm256_add_ps(c21, _mm256_mul_ps(v2, b1));
    c30 = _mm256_add_ps(c30, _mm256_mul_ps(v3, b0));
    c31 = _mm256_add_ps(c31, _mm256_mul_ps(v3, b1));
  }
  _mm256_storeu_ps(acc + 0, c00);
  _mm256_storeu_ps(acc + 8, c01);
  _mm256_storeu_ps(acc + 16, c10);
  _mm256_storeu_ps(acc + 24, c11);
  _mm256_storeu_ps(acc + 32, c20);
  _mm256_storeu_ps(acc + 40, c21);
  _mm256_storeu_ps(acc + 48, c30);
  _mm256_storeu_ps(acc + 56, c31);
}

constexpr KernelInfo kAvx2Kernel{"avx2", MicroKernelAvx2};

}  // namespace

const KernelInfo* Avx2Kernel() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernel : nullptr;
}

}  // namespace selnet::tensor::internal

#else  // portable build or non-x86 target

namespace selnet::tensor::internal {
const KernelInfo* Avx2Kernel() { return nullptr; }
}  // namespace selnet::tensor::internal

#endif
