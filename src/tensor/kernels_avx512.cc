#include "tensor/kernel_dispatch.h"

/// \file kernels_avx512.cc
/// \brief AVX-512F variant of the 4x16 packed micro-kernel: one zmm register
/// covers a whole 16-column panel row, so the inner loop is 4 broadcasts,
/// 4 multiplies and 4 adds per p. Same bit-identity rules as kernels_avx2.cc
/// (mul+add, no FMA, -ffp-contract=off, column-axis vectorization only).

#if defined(SELNET_ENABLE_SIMD) && defined(__AVX512F__)

#include <immintrin.h>

namespace selnet::tensor::internal {

namespace {

void MicroKernelAvx512(const float* a0, const float* a1, const float* a2,
                       const float* a3, size_t k, float alpha,
                       const float* panel, float* acc) {
  static_assert(kPanelWidth == 16, "one zmm per panel row");
  __m512 c0 = _mm512_loadu_ps(acc + 0);
  __m512 c1 = _mm512_loadu_ps(acc + 16);
  __m512 c2 = _mm512_loadu_ps(acc + 32);
  __m512 c3 = _mm512_loadu_ps(acc + 48);
  for (size_t p = 0; p < k; ++p) {
    __m512 b = _mm512_loadu_ps(panel + p * kPanelWidth);
    c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(alpha * a0[p]), b));
    c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(alpha * a1[p]), b));
    c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(alpha * a2[p]), b));
    c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(alpha * a3[p]), b));
  }
  _mm512_storeu_ps(acc + 0, c0);
  _mm512_storeu_ps(acc + 16, c1);
  _mm512_storeu_ps(acc + 32, c2);
  _mm512_storeu_ps(acc + 48, c3);
}

constexpr KernelInfo kAvx512Kernel{"avx512", MicroKernelAvx512};

}  // namespace

const KernelInfo* Avx512Kernel() {
  return __builtin_cpu_supports("avx512f") ? &kAvx512Kernel : nullptr;
}

}  // namespace selnet::tensor::internal

#else  // portable build or non-x86 target

namespace selnet::tensor::internal {
const KernelInfo* Avx512Kernel() { return nullptr; }
}  // namespace selnet::tensor::internal

#endif
