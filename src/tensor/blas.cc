#include "tensor/blas.h"

#include <algorithm>

#include "tensor/kernel_dispatch.h"
#include "util/thread_pool.h"

namespace selnet::tensor {

namespace {

// Plain saxpy rows [begin, m) of C += alpha * A * B; the zero-skip makes
// post-ReLU-sparse activations cheap.
void GemmNNSaxpyRows(const Matrix& a, const Matrix& b, float alpha,
                     Matrix* out, size_t begin) {
  size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = begin; i < m; ++i) {
    float* c_row = out->row(i);
    const float* a_row = a.row(i);
    for (size_t p = 0; p < k; ++p) {
      float av = alpha * a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b.row(p);
      for (size_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// Small-m kernel: rows in blocks of 4, C tiled in cache-resident column
// strips, B streamed contiguously. Loads each B row once per 4-row block
// instead of once per row.
void GemmNNBlocked(const Matrix& a, const Matrix& b, float alpha,
                   Matrix* out) {
  size_t m = a.rows(), k = a.cols(), n = b.cols();
  constexpr size_t kRowBlock = 4;
  constexpr size_t kColTile = 1024;
  size_t i = 0;
  for (; i + kRowBlock <= m; i += kRowBlock) {
    for (size_t j0 = 0; j0 < n; j0 += kColTile) {
      size_t jn = std::min(kColTile, n - j0);
      float* c0 = out->row(i) + j0;
      float* c1 = out->row(i + 1) + j0;
      float* c2 = out->row(i + 2) + j0;
      float* c3 = out->row(i + 3) + j0;
      for (size_t p = 0; p < k; ++p) {
        float a0 = alpha * a.row(i)[p];
        float a1 = alpha * a.row(i + 1)[p];
        float a2 = alpha * a.row(i + 2)[p];
        float a3 = alpha * a.row(i + 3)[p];
        if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
        const float* b_row = b.row(p) + j0;
        for (size_t j = 0; j < jn; ++j) {
          float bv = b_row[j];
          c0[j] += a0 * bv;
          c1[j] += a1 * bv;
          c2[j] += a2 * bv;
          c3[j] += a3 * bv;
        }
      }
    }
  }
  GemmNNSaxpyRows(a, b, alpha, out, i);
}

// Batched path: BLIS-style. B lives in 16-column micro-panels laid out
// p-major (packed by the caller — once per weight version through a
// PackCache, or per call into the bounded PackScratch arena), so the 4x16
// micro-kernel reads B perfectly sequentially (prefetch-friendly) and each
// weight byte is streamed once per 4 batch rows instead of once per row.
// The micro-kernel itself is runtime-dispatched (scalar/AVX2/AVX-512/NEON;
// see kernel_dispatch.h). This is the path that makes batched serving pay:
// at m = 1 a forward pass is bound by streaming the weight matrix, at m = 64
// the stream is amortized ~16-fold and the micro-kernel runs at full width.
//
// Rounding: for each C element the sum over p runs in ascending p order with
// two separately rounded ops per term, the same order as the saxpy kernels
// and every dispatched ISA variant, so (with beta == 0) results are
// bit-identical across kernels — batched serving returns exactly what a
// single-row Predict would.

// Rows [row_begin, row_end) of C += alpha * A * packed(B); row_end -
// row_begin must be a multiple of kMicroRows (the caller peels the tail).
void PackedRowBlocks(const Matrix& a, const float* packed, size_t n,
                     float alpha, Matrix* out, size_t row_begin,
                     size_t row_end) {
  size_t k = a.cols();
  size_t num_panels = (n + kPanelWidth - 1) / kPanelWidth;
  const MicroKernelFn kernel = ActiveKernel().fn;
  for (size_t i = row_begin; i + kMicroRows <= row_end; i += kMicroRows) {
    for (size_t pa = 0; pa < num_panels; ++pa) {
      size_t j0 = pa * kPanelWidth;
      size_t jn = std::min(kPanelWidth, n - j0);
      const float* bp = packed + pa * k * kPanelWidth;
      float acc[kMicroRows * kPanelWidth] = {};
      kernel(a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3), k, alpha, bp,
             acc);
      for (size_t r = 0; r < kMicroRows; ++r) {
        float* c = out->row(i + r) + j0;
        const float* acc_r = acc + r * kPanelWidth;
        for (size_t j = 0; j < jn; ++j) c[j] += acc_r[j];
      }
    }
  }
}

// Tail rows (fewer than kMicroRows) over the packed layout. Same per-element
// sequence as the micro-kernel (and as the saxpy kernel: products of exact
// zeros only ever add ±0 to a +0-seeded accumulation, which cannot change
// the result for finite inputs).
void PackedTailRows(const Matrix& a, const float* packed, size_t n,
                    float alpha, Matrix* out, size_t row_begin,
                    size_t row_end) {
  size_t k = a.cols();
  size_t num_panels = (n + kPanelWidth - 1) / kPanelWidth;
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a.row(i);
    for (size_t pa = 0; pa < num_panels; ++pa) {
      size_t j0 = pa * kPanelWidth;
      size_t jn = std::min(kPanelWidth, n - j0);
      const float* bp = packed + pa * k * kPanelWidth;
      float acc[kPanelWidth] = {};
      for (size_t p = 0; p < k; ++p) {
        const float* b_row = bp + p * kPanelWidth;
        float v = alpha * a_row[p];
        for (size_t j = 0; j < kPanelWidth; ++j) acc[j] += v * b_row[j];
      }
      float* c = out->row(i) + j0;
      for (size_t j = 0; j < jn; ++j) c[j] += acc[j];
    }
  }
}

// How eagerly PackedCompute shards row blocks across the global pool.
enum class Sharding {
  kNever,      // Always serial (deterministic single-thread reference).
  kByRowCount, // Shard at >= kGemmParallelMinRows rows (production auto).
  kAlways,     // Shard any row count (tests exercise the decomposition).
};

// Serial or row-sharded run over an already packed B. Sharding splits whole
// 4-row blocks across the global pool (disjoint C rows, identical per-block
// arithmetic, so results do not depend on the schedule); ParallelFor falls
// back to a serial loop on 1-thread hosts and inside pool workers — in
// particular BatchScheduler flushes stay serial per flush, because the
// scheduler's multi-core story is several flushes in flight across workers,
// not intra-GEMM sharding (nested sharding could starve the fixed pool).
// The sharded path serves direct large batched Predict calls on non-pool
// threads: bulk scoring, eval sweeps, the server's unbatched fallback.
void PackedCompute(const Matrix& a, const float* packed, size_t n, float alpha,
                   Matrix* out, Sharding sharding) {
  size_t m = a.rows();
  size_t full = m - m % kMicroRows;
  size_t num_blocks = full / kMicroRows;
  bool shard = sharding == Sharding::kAlways ||
               (sharding == Sharding::kByRowCount &&
                m >= kGemmParallelMinRows &&
                util::ThreadPool::Global().num_threads() > 1);
  if (shard) {
    util::ParallelFor(
        0, num_blocks,
        [&](size_t blk) {
          PackedRowBlocks(a, packed, n, alpha, out, blk * kMicroRows,
                          (blk + 1) * kMicroRows);
        },
        /*grain=*/2);
  } else {
    PackedRowBlocks(a, packed, n, alpha, out, 0, full);
  }
  PackedTailRows(a, packed, n, alpha, out, full, m);
}

// Cache-less packed GEMM: packs into the bounded thread-local arena.
void GemmNNPacked(const Matrix& a, const Matrix& b, float alpha, Matrix* out,
                  Sharding sharding) {
  size_t k = b.rows(), n = b.cols();
  size_t num_panels = (n + kPanelWidth - 1) / kPanelWidth;
  float* packed =
      PackScratch::ThreadLocal().Acquire(num_panels * k * kPanelWidth);
  PackBInto(b, packed);
  PackedCompute(a, packed, n, alpha, out, sharding);
}

// C(m x n) += alpha * A(m x k) * B(k x n), row-major. Kernel choice by batch
// size: packing pays for itself once B's stream is reused across >= ~8 rows.
void GemmNN(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  if (a.rows() >= kGemmPackMinRows) {
    GemmNNPacked(a, b, alpha, out, Sharding::kByRowCount);
  } else if (a.rows() >= 4) {
    GemmNNBlocked(a, b, alpha, out);
  } else {
    GemmNNSaxpyRows(a, b, alpha, out, 0);
  }
}

// C(m x n) += alpha * A^T(m x k) * B(k x n) where A is (k x m).
void GemmTN(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p);
    const float* b_row = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      float av = alpha * a_row[i];
      if (av == 0.0f) continue;
      float* c_row = out->row(i);
      for (size_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// C(m x n) += alpha * A(m x k) * B^T(k x n) where B is (n x k): dot products.
void GemmNT(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* c_row = out->row(i);
    for (size_t j = 0; j < n; ++j) {
      c_row[j] += alpha * Dot(a_row, b.row(j), k);
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B^T(k x n); rare, done via explicit copy.
void GemmTT(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  Matrix at = a.Transposed();
  Matrix bt = b.Transposed();
  GemmNN(at, bt, alpha, out);
}

}  // namespace

void GemmNNWithKernel(const Matrix& a, const Matrix& b, float alpha,
                      Matrix* out, GemmKernel kernel) {
  SEL_CHECK_EQ(a.cols(), b.rows());
  SEL_CHECK_EQ(out->rows(), a.rows());
  SEL_CHECK_EQ(out->cols(), b.cols());
  switch (kernel) {
    case GemmKernel::kAuto:
      GemmNN(a, b, alpha, out);
      break;
    case GemmKernel::kSaxpy:
      GemmNNSaxpyRows(a, b, alpha, out, 0);
      break;
    case GemmKernel::kBlocked:
      GemmNNBlocked(a, b, alpha, out);
      break;
    case GemmKernel::kPacked:
      GemmNNPacked(a, b, alpha, out, Sharding::kNever);
      break;
    case GemmKernel::kPackedParallel:
      // Forced block sharding regardless of m, so tests exercise the
      // decomposition even for small inputs.
      GemmNNPacked(a, b, alpha, out, Sharding::kAlways);
      break;
  }
}

void GemmNNPrepacked(const Matrix& a, const PackedWeights& packed, float alpha,
                     Matrix* out) {
  SEL_CHECK_EQ(a.cols(), packed.k);
  SEL_CHECK_EQ(out->rows(), a.rows());
  SEL_CHECK_EQ(out->cols(), packed.n);
  PackedCompute(a, packed.data.data(), packed.n, alpha, out,
                Sharding::kByRowCount);
}

float Dot(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return s0 + s1 + s2 + s3;
}

float SquaredL2(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  if (i < n) {
    float d = a[i] - b[i];
    s0 += d * d;
  }
  return s0 + s1;
}

void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out) {
  size_t m = trans_a ? a.cols() : a.rows();
  size_t ka = trans_a ? a.rows() : a.cols();
  size_t kb = trans_b ? b.cols() : b.rows();
  size_t n = trans_b ? b.rows() : b.cols();
  SEL_CHECK_EQ(ka, kb);
  SEL_CHECK_EQ(out->rows(), m);
  SEL_CHECK_EQ(out->cols(), n);
  if (beta == 0.0f) {
    out->Fill(0.0f);
  } else if (beta != 1.0f) {
    for (size_t i = 0; i < out->size(); ++i) out->data()[i] *= beta;
  }
  if (!trans_a && !trans_b) {
    GemmNN(a, b, alpha, out);
  } else if (trans_a && !trans_b) {
    GemmTN(a, b, alpha, out);
  } else if (!trans_a && trans_b) {
    GemmNT(a, b, alpha, out);
  } else {
    GemmTT(a, b, alpha, out);
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  Gemm(a, false, b, false, 1.0f, 0.0f, &out);
  return out;
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  SEL_CHECK(x.SameShape(*y));
  const float* xd = x.data();
  float* yd = y->data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

Matrix Add(const Matrix& a, const Matrix& b) {
  SEL_CHECK(a.SameShape(b));
  Matrix out = a;
  Axpy(1.0f, b, &out);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  SEL_CHECK(a.SameShape(b));
  Matrix out = a;
  Axpy(-1.0f, b, &out);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SEL_CHECK(a.SameShape(b));
  Matrix out = a;
  float* od = out.data();
  const float* bd = b.data();
  for (size_t i = 0; i < out.size(); ++i) od[i] *= bd[i];
  return out;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out = a;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  return out;
}

void AddRowVectorInPlace(Matrix* m, const Matrix& row_vec) {
  SEL_CHECK_EQ(row_vec.rows(), 1u);
  SEL_CHECK_EQ(row_vec.cols(), m->cols());
  const float* v = row_vec.data();
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->row(r);
    for (size_t c = 0; c < m->cols(); ++c) row[c] += v[c];
  }
}

Matrix ColSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* o = out.data();
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    for (size_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
  return out;
}

Matrix RowSums(const Matrix& m) {
  Matrix out(m.rows(), 1);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    float s = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) s += row[c];
    out(r, 0) = s;
  }
  return out;
}

}  // namespace selnet::tensor
