#include "tensor/blas.h"

namespace selnet::tensor {

namespace {

// C(m x n) += alpha * A(m x k) * B(k x n), row-major, saxpy (i-k-j) order.
void GemmNN(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    float* c_row = out->row(i);
    const float* a_row = a.row(i);
    for (size_t p = 0; p < k; ++p) {
      float av = alpha * a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b.row(p);
      for (size_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B(k x n) where A is (k x m).
void GemmTN(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* a_row = a.row(p);
    const float* b_row = b.row(p);
    for (size_t i = 0; i < m; ++i) {
      float av = alpha * a_row[i];
      if (av == 0.0f) continue;
      float* c_row = out->row(i);
      for (size_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// C(m x n) += alpha * A(m x k) * B^T(k x n) where B is (n x k): dot products.
void GemmNT(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* c_row = out->row(i);
    for (size_t j = 0; j < n; ++j) {
      c_row[j] += alpha * Dot(a_row, b.row(j), k);
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B^T(k x n); rare, done via explicit copy.
void GemmTT(const Matrix& a, const Matrix& b, float alpha, Matrix* out) {
  Matrix at = a.Transposed();
  Matrix bt = b.Transposed();
  GemmNN(at, bt, alpha, out);
}

}  // namespace

float Dot(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return s0 + s1 + s2 + s3;
}

float SquaredL2(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  if (i < n) {
    float d = a[i] - b[i];
    s0 += d * d;
  }
  return s0 + s1;
}

void Gemm(const Matrix& a, bool trans_a, const Matrix& b, bool trans_b,
          float alpha, float beta, Matrix* out) {
  size_t m = trans_a ? a.cols() : a.rows();
  size_t ka = trans_a ? a.rows() : a.cols();
  size_t kb = trans_b ? b.cols() : b.rows();
  size_t n = trans_b ? b.rows() : b.cols();
  SEL_CHECK_EQ(ka, kb);
  SEL_CHECK_EQ(out->rows(), m);
  SEL_CHECK_EQ(out->cols(), n);
  if (beta == 0.0f) {
    out->Fill(0.0f);
  } else if (beta != 1.0f) {
    for (size_t i = 0; i < out->size(); ++i) out->data()[i] *= beta;
  }
  if (!trans_a && !trans_b) {
    GemmNN(a, b, alpha, out);
  } else if (trans_a && !trans_b) {
    GemmTN(a, b, alpha, out);
  } else if (!trans_a && trans_b) {
    GemmNT(a, b, alpha, out);
  } else {
    GemmTT(a, b, alpha, out);
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  Gemm(a, false, b, false, 1.0f, 0.0f, &out);
  return out;
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  SEL_CHECK(x.SameShape(*y));
  const float* xd = x.data();
  float* yd = y->data();
  for (size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

Matrix Add(const Matrix& a, const Matrix& b) {
  SEL_CHECK(a.SameShape(b));
  Matrix out = a;
  Axpy(1.0f, b, &out);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  SEL_CHECK(a.SameShape(b));
  Matrix out = a;
  Axpy(-1.0f, b, &out);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SEL_CHECK(a.SameShape(b));
  Matrix out = a;
  float* od = out.data();
  const float* bd = b.data();
  for (size_t i = 0; i < out.size(); ++i) od[i] *= bd[i];
  return out;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out = a;
  for (size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  return out;
}

void AddRowVectorInPlace(Matrix* m, const Matrix& row_vec) {
  SEL_CHECK_EQ(row_vec.rows(), 1u);
  SEL_CHECK_EQ(row_vec.cols(), m->cols());
  const float* v = row_vec.data();
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->row(r);
    for (size_t c = 0; c < m->cols(); ++c) row[c] += v[c];
  }
}

Matrix ColSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* o = out.data();
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    for (size_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
  return out;
}

Matrix RowSums(const Matrix& m) {
  Matrix out(m.rows(), 1);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    float s = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) s += row[c];
    out(r, 0) = s;
  }
  return out;
}

}  // namespace selnet::tensor
