#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file kernel_dispatch.h
/// \brief Runtime ISA dispatch for the packed GEMM micro-kernel.
///
/// Every `GemmNN` above the packing threshold bottoms out in one 4x16
/// micro-kernel: four A rows against one 16-column packed B panel. This file
/// owns the table of available implementations (portable scalar, AVX2,
/// AVX-512, NEON) and resolves the widest one the running CPU supports once
/// at startup.
///
/// Bit-identity contract: for each output element, every implementation must
/// perform the identical per-element operation sequence — `v = alpha * a[p]`
/// then `acc += v * b` as two separately rounded float ops, p ascending.
/// Vectorization is over the 16-column panel axis only (element-independent),
/// so any kernel, on any host, produces bit-identical GEMM results. This is
/// what lets batched serving, the sweep fast path, and replicas on mixed
/// hardware return exactly the same estimates. SIMD kernels therefore use
/// separate mul/add intrinsics (no FMA), and the kernel translation units are
/// compiled with -ffp-contract=off so the compiler cannot re-fuse them.
///
/// Selection order: AVX-512F > AVX2 > NEON > scalar, overridable via the
/// `SELNET_KERNEL` environment variable (value = kernel name) or
/// `SetActiveKernel` (tests and benches pin each path explicitly).

namespace selnet::tensor {

/// \brief Packed-panel width (micro-kernel column tile). Matrix B is packed
/// into p-major panels of this many columns; see pack_cache.h.
inline constexpr size_t kPanelWidth = 16;

/// \brief Micro-kernel row tile: A rows processed per invocation.
inline constexpr size_t kMicroRows = 4;

/// \brief The 4x16 packed micro-kernel.
///
/// `panel` holds k rows of kPanelWidth floats (p-major, zero-padded);
/// `acc` is kMicroRows x kPanelWidth row-major and is accumulated into
/// (callers zero it). Computes, for p = 0..k-1 in ascending order:
///   acc[r][j] += (alpha * a_r[p]) * panel[p * kPanelWidth + j]
using MicroKernelFn = void (*)(const float* a0, const float* a1,
                               const float* a2, const float* a3, size_t k,
                               float alpha, const float* panel, float* acc);

/// \brief One dispatchable micro-kernel implementation.
struct KernelInfo {
  const char* name;    ///< "scalar", "avx2", "avx512", "neon".
  MicroKernelFn fn;
};

/// \brief Kernels compiled in AND supported by the running CPU, scalar first.
const std::vector<KernelInfo>& AvailableKernels();

/// \brief The kernel every packed GemmNN currently dispatches to. Resolved
/// once (widest available, or the SELNET_KERNEL override) on first use.
const KernelInfo& ActiveKernel();

/// \brief Pin dispatch to the named kernel; false if it is not available on
/// this host. Used by tests (bit-identity across paths) and benches
/// (per-kernel GFLOP/s); thread-safe.
bool SetActiveKernel(const std::string& name);

}  // namespace selnet::tensor
