#include "tensor/kernel_dispatch.h"

/// \file kernels_neon.cc
/// \brief NEON variant of the 4x16 packed micro-kernel for aarch64 hosts
/// (NEON is baseline there, so no per-file flags and no runtime probe).
/// Bit-identity rules as in kernels_avx2.cc: separate vmul/vadd — never
/// vmla/fmla, which fuse — and column-axis vectorization only.

#if defined(SELNET_ENABLE_SIMD) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace selnet::tensor::internal {

namespace {

void MicroKernelNeon(const float* a0, const float* a1, const float* a2,
                     const float* a3, size_t k, float alpha, const float* panel,
                     float* acc) {
  // 4 rows x 16 columns = 16 q-register accumulators.
  float32x4_t c[4][4];
  const float* rows[4] = {a0, a1, a2, a3};
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) c[r][s] = vld1q_f32(acc + r * 16 + s * 4);
  }
  for (size_t p = 0; p < k; ++p) {
    const float* b_row = panel + p * kPanelWidth;
    float32x4_t b[4] = {vld1q_f32(b_row), vld1q_f32(b_row + 4),
                        vld1q_f32(b_row + 8), vld1q_f32(b_row + 12)};
    for (int r = 0; r < 4; ++r) {
      float32x4_t v = vdupq_n_f32(alpha * rows[r][p]);
      for (int s = 0; s < 4; ++s) {
        c[r][s] = vaddq_f32(c[r][s], vmulq_f32(v, b[s]));
      }
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) vst1q_f32(acc + r * 16 + s * 4, c[r][s]);
  }
}

constexpr KernelInfo kNeonKernel{"neon", MicroKernelNeon};

}  // namespace

const KernelInfo* NeonKernel() { return &kNeonKernel; }

}  // namespace selnet::tensor::internal

#else  // portable build or non-ARM target

namespace selnet::tensor::internal {
const KernelInfo* NeonKernel() { return nullptr; }
}  // namespace selnet::tensor::internal

#endif
