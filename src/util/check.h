#pragma once

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// \brief CHECK macros for programmer-error invariants (abort on violation).
///
/// `SEL_CHECK` is always on; `SEL_DCHECK` compiles out in NDEBUG builds and is
/// used on hot paths. These mirror the Arrow DCHECK conventions.

#define SEL_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SEL_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SEL_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SEL_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SEL_CHECK_EQ(a, b) SEL_CHECK((a) == (b))
#define SEL_CHECK_NE(a, b) SEL_CHECK((a) != (b))
#define SEL_CHECK_LT(a, b) SEL_CHECK((a) < (b))
#define SEL_CHECK_LE(a, b) SEL_CHECK((a) <= (b))
#define SEL_CHECK_GT(a, b) SEL_CHECK((a) > (b))
#define SEL_CHECK_GE(a, b) SEL_CHECK((a) >= (b))

#ifdef NDEBUG
#define SEL_DCHECK(cond) \
  do {                   \
  } while (0)
#define SEL_DCHECK_EQ(a, b) SEL_DCHECK((a) == (b))
#define SEL_DCHECK_LT(a, b) SEL_DCHECK((a) < (b))
#define SEL_DCHECK_LE(a, b) SEL_DCHECK((a) <= (b))
#else
#define SEL_DCHECK(cond) SEL_CHECK(cond)
#define SEL_DCHECK_EQ(a, b) SEL_CHECK_EQ(a, b)
#define SEL_DCHECK_LT(a, b) SEL_CHECK_LT(a, b)
#define SEL_DCHECK_LE(a, b) SEL_CHECK_LE(a, b)
#endif
