#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/status.h"

/// \file metrics.h
/// \brief Labeled counter/gauge/summary registry with Prometheus-style text
/// exposition, plus a bounded event ring (flight recorder).
///
/// The serving stack's per-request numbers live in serve::ServeStats — this
/// registry is for the CONTROL plane: health-state transitions, failover
/// retries, publish fan-out verdicts, state-transfer volume. Those events are
/// rare (hertz, not kilohertz), so the registry optimizes for exposition
/// fidelity over write throughput: series resolution takes a mutex once
/// (callers cache the returned handle, which is stable for the registry's
/// lifetime), while the cached handle's Increment/Set is a single relaxed
/// atomic — safe from any thread, including the data-path completion that
/// marks a replica suspect.
///
/// Exposition (`RenderText`) follows the Prometheus text format:
///
///   # TYPE selnet_health_transitions_total counter
///   selnet_health_transitions_total{endpoint="h:p",from="healthy",
///                                   to="suspect"} 3
///
/// Summaries render as `name{quantile="..."}` samples plus `name_sum` /
/// `name_count`, backed by the same log-linear util::LatencyHistogram the
/// serving path records into (values in milliseconds). `LintExposition`
/// checks the grammar — every `# TYPE` precedes its first sample, no
/// duplicate series — and is shared by the unit tests and the CI smoke.
///
/// EventRing is the "what happened, in order" companion: a bounded deque of
/// wall-clock-stamped transitions (kind + target + from→to), overwriting
/// oldest-first, so a coordinator can answer "what did the fleet do in the
/// last minute" without logs.

namespace selnet::util {

/// \brief One monotonically increasing series. Handle is valid for the
/// registry's lifetime; Increment is lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief One instantaneous-value series (doubles; Set overwrites).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Sorted label pairs; the series identity is (name, labels).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Labeled metric registry with text exposition.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Resolve (create on first use) a counter series. The pointer is
  /// stable until the registry dies; cache it off the hot path.
  Counter* GetCounter(const std::string& name, MetricLabels labels = {});

  /// \brief Resolve a gauge series.
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});

  /// \brief Resolve a summary series (a mergeable latency histogram;
  /// Record() milliseconds on it).
  LatencyHistogram* GetSummary(const std::string& name,
                               MetricLabels labels = {});

  /// \brief Sum of every counter sample sharing `name` (tests, digests).
  uint64_t CounterTotal(const std::string& name) const;

  /// \brief Prometheus text exposition of every series, deterministically
  /// ordered (name, then label set). One `# TYPE` per metric name, before
  /// its first sample.
  std::string RenderText() const;

 private:
  enum class Kind { kCounter, kGauge, kSummary };
  struct Series {
    Kind kind;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> summary;
  };
  /// Key: name, then the rendered label set (sorted pairs).
  using Key = std::pair<std::string, MetricLabels>;

  Series* Resolve(const std::string& name, MetricLabels labels, Kind kind);

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Series>> series_;
};

/// \brief One flight-recorder entry: a state transition (or any discrete
/// occurrence) with a wall-clock stamp and a monotone sequence number.
struct Event {
  uint64_t seq = 0;      ///< Monotone per ring; gaps mean overwritten events.
  int64_t unix_ms = 0;   ///< Wall clock, milliseconds since the epoch.
  std::string kind;      ///< e.g. "health", "transfer".
  std::string target;    ///< e.g. the endpoint or route the event is about.
  std::string from;      ///< Prior state ("" when not a transition).
  std::string to;        ///< New state / verdict.
};

/// \brief Bounded, thread-safe ring of recent events (oldest overwritten).
class EventRing {
 public:
  explicit EventRing(size_t capacity = 256) : capacity_(capacity) {}
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  void Push(const std::string& kind, const std::string& target,
            const std::string& from, const std::string& to);

  /// \brief Oldest-to-newest copy of the retained events.
  std::vector<Event> Snapshot() const;

  /// \brief Events ever pushed (>= Snapshot().size(); the gap is what the
  /// ring overwrote).
  uint64_t TotalPushed() const;

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_seq_ = 0;
  std::deque<Event> ring_;
};

/// \brief Validate Prometheus text-exposition output: every non-comment line
/// matches `name{label="value",...} number`, each metric name's `# TYPE`
/// line precedes its first sample, no series (name + label set) appears
/// twice. `_sum` / `_count` / `{quantile=...}` samples attach to their
/// summary's TYPE line. Returns the first violation.
Status LintExposition(const std::string& text);

/// \brief Compact single-token encoding of a HistogramSnapshot —
/// "count;sum_ticks;idx:cnt,idx:cnt,..." (sparse, decimal) — safe to carry
/// as a JSON string value on the flat admin wire.
std::string EncodeHistogramSnapshot(const HistogramSnapshot& s);

/// \brief Inverse of EncodeHistogramSnapshot; typed error on malformed input
/// (wire data is untrusted).
Result<HistogramSnapshot> DecodeHistogramSnapshot(const std::string& text);

}  // namespace selnet::util
