#pragma once

#include <cstdio>
#include <string>

/// \file logging.h
/// \brief Tiny leveled logger (stderr). Controlled by SELNET_LOG_LEVEL env:
/// 0=quiet, 1=info (default), 2=debug.

namespace selnet::util {

enum class LogLevel : int { kQuiet = 0, kInfo = 1, kDebug = 2 };

/// \brief Current process-wide log level (read once from the environment).
LogLevel GetLogLevel();

/// \brief Override the level programmatically (tests, benches).
void SetLogLevel(LogLevel level);

/// \brief printf-style log at info level.
void LogInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief printf-style log at debug level.
void LogDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace selnet::util
