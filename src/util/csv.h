#pragma once

#include <string>
#include <vector>

#include "util/status.h"

/// \file csv.h
/// \brief Minimal CSV writing with RFC-4180 quoting.
///
/// Bench binaries print ASCII tables for humans; CSV export (enabled by
/// SELNET_CSV_DIR) makes the same rows consumable by plotting scripts.

namespace selnet::util {

/// \brief Accumulates rows and writes them out as a CSV file.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// \brief Append one row (must match header arity).
  void AddRow(std::vector<std::string> row);

  /// \brief Serialize to a string with proper quoting.
  std::string ToString() const;

  /// \brief Write to `path`; parent directory must exist.
  Status WriteFile(const std::string& path) const;

  /// \brief Quote a field per RFC 4180 (only when needed).
  static std::string Escape(const std::string& field);

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace selnet::util
