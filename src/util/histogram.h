#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

/// \file histogram.h
/// \brief Mergeable, lock-free latency histogram (HdrHistogram-style
/// log-linear buckets).
///
/// Values are recorded in milliseconds and binned into microsecond "ticks":
/// the first 32 buckets are exact (1us wide), and every subsequent octave
/// [2^k, 2^(k+1)) ticks is split into 32 linear sub-buckets. That covers
/// 1us .. ~67s (anything larger clamps into the top bucket) in 704 fixed
/// buckets (~5.5 KiB of counters) with bounded relative error: a bucket's
/// width is at most lo/32, so reporting the bucket midpoint is within
/// ~1/64 (~1.6%) of the true value, plus the 0.5us tick-rounding — see
/// HistogramSnapshot::kRelativeErrorBound.
///
/// Recording is one relaxed fetch_add on the bucket counter (plus count and
/// sum), so any number of serving threads can record concurrently with no
/// lock and no coordination; totals are exact regardless of interleaving.
/// Histograms MERGE by summing bucket counts, which makes cross-shard
/// percentiles real numbers instead of a worst-shard guess: the merged
/// quantile is exactly the quantile of the pooled samples, up to the same
/// per-bucket error bound.
///
/// Snapshot() copies the counters into a plain HistogramSnapshot (buckets
/// trimmed to the last non-zero), which is what travels inside
/// serve::StatsSnapshot and what AggregateSnapshots merges. A snapshot taken
/// while recorders are active may be mid-update by a few counts (relaxed
/// atomics, no global ordering); totals converge once recording quiesces.

namespace selnet::util {

/// \brief A point-in-time, copyable, mergeable histogram state.
struct HistogramSnapshot {
  /// Worst-case relative error of a reported quantile vs the true recorded
  /// value (bucket half-width / value), excluding the 0.5us tick rounding.
  static constexpr double kRelativeErrorBound = 1.0 / 32.0;

  std::vector<uint64_t> buckets;  ///< Trimmed at the last non-zero bucket.
  uint64_t count = 0;             ///< Total recorded samples.
  uint64_t sum_ticks = 0;         ///< Sum of clamped microsecond ticks.

  bool empty() const { return count == 0; }

  /// \brief Bucket-wise sum with `other` (associative and commutative).
  void Merge(const HistogramSnapshot& other);

  /// \brief Nearest-rank quantile (q in (0, 1]): the midpoint of the bucket
  /// holding the ceil(q * count)-th smallest sample, in milliseconds.
  /// Returns 0 when empty.
  double ValueAtQuantile(double q) const;

  /// \brief Mean of the recorded samples in milliseconds (tick-quantized).
  double MeanMs() const;
};

/// \brief Fixed-size, lock-free recording side (see file comment).
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 32;  ///< Linear buckets per octave.
  /// Ticks clamp here: (2^26 - 1) us ~= 67s, so the top bucket absorbs any
  /// "minutes-stuck" outlier without widening the array.
  static constexpr uint64_t kMaxTicks = (uint64_t(1) << 26) - 1;
  static constexpr size_t kNumBuckets = 704;  ///< Index of kMaxTicks + 1.

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// \brief Record one latency (milliseconds; negatives clamp to 0).
  /// Lock-free; safe from any thread.
  void Record(double ms);

  /// \brief Zero every counter. Not atomic with concurrent Record calls:
  /// callers quiesce recording or accept a few stragglers, same contract as
  /// the counter Reset in ServeStats.
  void Reset();

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// \brief Copy out the current state (buckets trimmed).
  HistogramSnapshot Snapshot() const;

  /// \brief Shorthand: Snapshot().ValueAtQuantile(q).
  double ValueAtQuantile(double q) const {
    return Snapshot().ValueAtQuantile(q);
  }

  /// \brief Bucket index for a tick count (exposed for tests).
  static size_t BucketIndex(uint64_t ticks);
  /// \brief Inclusive lower bound of bucket `index`, in milliseconds.
  static double BucketLowMs(size_t index);
  /// \brief Exclusive upper bound of bucket `index`, in milliseconds.
  static double BucketHighMs(size_t index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ticks_{0};
};

}  // namespace selnet::util
