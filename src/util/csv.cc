#include "util/csv.h"

#include <cstdio>
#include <memory>
#include <sstream>

#include "util/check.h"

namespace selnet::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  SEL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';  // double the quote
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << Escape(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) return Status::IOError("cannot open for write: " + path);
  std::string content = ToString();
  if (std::fwrite(content.data(), 1, content.size(), f.get()) != content.size()) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace selnet::util
