#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace selnet::util {

namespace {

constexpr size_t kSubBits = 5;  // log2(LatencyHistogram::kSubBuckets).

}  // namespace

size_t LatencyHistogram::BucketIndex(uint64_t ticks) {
  if (ticks > kMaxTicks) ticks = kMaxTicks;
  if (ticks < kSubBuckets) return size_t(ticks);
  // Shift so the value lands in [32, 64): the shift count is the octave, the
  // shifted value's low 5 bits are the linear sub-bucket within it.
  int msb = 63 - __builtin_clzll(ticks);
  int exponent = msb - int(kSubBits);
  return size_t(exponent + 1) * kSubBuckets +
         size_t((ticks >> exponent) - kSubBuckets);
}

double LatencyHistogram::BucketLowMs(size_t index) {
  uint64_t lo;
  if (index < kSubBuckets) {
    lo = index;
  } else {
    size_t exponent = index / kSubBuckets - 1;
    lo = uint64_t(kSubBuckets + index % kSubBuckets) << exponent;
  }
  return double(lo) * 1e-3;
}

double LatencyHistogram::BucketHighMs(size_t index) {
  uint64_t width = index < kSubBuckets
                       ? 1
                       : uint64_t(1) << (index / kSubBuckets - 1);
  return BucketLowMs(index) + double(width) * 1e-3;
}

void LatencyHistogram::Record(double ms) {
  if (!(ms > 0.0)) ms = 0.0;  // Negatives and NaN clamp to the first bucket.
  double ticks_d = ms * 1e3 + 0.5;  // Round to the nearest microsecond tick.
  uint64_t ticks = ticks_d >= double(kMaxTicks) ? kMaxTicks : uint64_t(ticks_d);
  buckets_[BucketIndex(ticks)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ticks_.fetch_add(ticks, std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ticks_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ticks = sum_ticks_.load(std::memory_order_relaxed);
  size_t last = 0;
  uint64_t raw[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    raw[i] = buckets_[i].load(std::memory_order_relaxed);
    if (raw[i] != 0) last = i + 1;
  }
  s.buckets.assign(raw, raw + last);
  return s;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.buckets.size() > buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_ticks += other.sum_ticks;
}

double HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = uint64_t(std::ceil(q * double(count)));
  rank = std::min<uint64_t>(std::max<uint64_t>(rank, 1), count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return 0.5 * (LatencyHistogram::BucketLowMs(i) +
                    LatencyHistogram::BucketHighMs(i));
    }
  }
  // Unreachable when buckets/count agree; be graceful if they tore.
  return LatencyHistogram::BucketHighMs(
      buckets.empty() ? 0 : buckets.size() - 1);
}

double HistogramSnapshot::MeanMs() const {
  return count == 0 ? 0.0 : double(sum_ticks) * 1e-3 / double(count);
}

}  // namespace selnet::util
