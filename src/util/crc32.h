#pragma once

#include <cstddef>
#include <cstdint>

/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the zlib
/// checksum, computed without the dependency.
///
/// Used to seal parameter payloads (nn/serialize) and model-state transfer
/// frames (serve/state_transfer): a truncated or bit-flipped payload must
/// fail loudly with a location, never load as garbage weights. CRC-32 is a
/// corruption detector, not an authenticator — serving sits behind the trust
/// boundary, and what we defend against is torn writes, truncated copies and
/// flaky transports.

namespace selnet::util {

/// \brief CRC of `len` bytes, continuing from `seed` (pass the previous
/// return value to checksum a payload in chunks; start with 0).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace selnet::util
