#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

/// \file rng.h
/// \brief Deterministic random number generation.
///
/// Every stochastic component in the library takes an explicit seed so that
/// experiments are reproducible run-to-run. `Rng` wraps std::mt19937_64 with
/// the handful of draws the library needs.

namespace selnet::util {

/// \brief Seeded pseudo-random generator used throughout the library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SEL_DCHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// \brief Standard normal draw scaled by `stddev` around `mean`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// \brief Gamma(shape, scale) draw; used for Beta sampling.
  double Gamma(double shape, double scale = 1.0) {
    std::gamma_distribution<double> dist(shape, scale);
    return dist(engine_);
  }

  /// \brief Beta(alpha, beta) draw via two Gamma draws.
  double Beta(double alpha, double beta) {
    double x = Gamma(alpha);
    double y = Gamma(beta);
    double s = x + y;
    if (s <= 0.0) return 0.5;
    return x / s;
  }

  /// \brief Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// \brief Sample `k` distinct indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Fork a child generator with a decorrelated seed stream.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace selnet::util
