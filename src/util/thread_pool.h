#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

/// \file thread_pool.h
/// \brief Minimal fixed-size thread pool plus a blocking ParallelFor helper.
///
/// Used for embarrassingly parallel work: exact selectivity scans, workload
/// label generation, and batched model evaluation. The pool is intentionally
/// simple — tasks may not spawn nested tasks into the same pool.

namespace selnet::util {

/// \brief Fixed-size worker pool executing queued tasks FIFO.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueue a task; returns immediately.
  void Submit(std::function<void()> task);

  /// \brief Enqueue a callable and get a future for its result.
  ///
  /// Exceptions thrown by `fn` propagate through the future. Do not block on
  /// the future from inside a pool worker — the pool does not support nested
  /// waits (same restriction as Wait()).
  template <typename F>
  auto SubmitWithResult(F&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit([task]() { (*task)(); });
    return result;
  }

  /// \brief Block until every queued and running task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// \brief Process-wide shared pool (lazily constructed).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers: task available / stop
  std::condition_variable done_cv_;   // signals Wait(): all work drained
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Run `fn(i)` for i in [begin, end) across the global pool.
///
/// Blocks until all iterations complete. Falls back to a serial loop for
/// small ranges or when called from within a pool worker.
void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t grain = 64);

}  // namespace selnet::util
