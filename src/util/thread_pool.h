#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// \brief Minimal fixed-size thread pool plus a blocking ParallelFor helper.
///
/// Used for embarrassingly parallel work: exact selectivity scans, workload
/// label generation, and batched model evaluation. The pool is intentionally
/// simple — tasks may not spawn nested tasks into the same pool.

namespace selnet::util {

/// \brief Fixed-size worker pool executing queued tasks FIFO.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueue a task; returns immediately.
  void Submit(std::function<void()> task);

  /// \brief Block until every queued and running task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// \brief Process-wide shared pool (lazily constructed).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers: task available / stop
  std::condition_variable done_cv_;   // signals Wait(): all work drained
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Run `fn(i)` for i in [begin, end) across the global pool.
///
/// Blocks until all iterations complete. Falls back to a serial loop for
/// small ranges or when called from within a pool worker.
void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t grain = 64);

}  // namespace selnet::util
