#include "util/rng.h"

#include <numeric>

namespace selnet::util {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SEL_CHECK_LE(k, n);
  // Partial Fisher-Yates: O(n) memory but only k swaps.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i),
                                              static_cast<int64_t>(n - 1)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace selnet::util
