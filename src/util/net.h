#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file net.h
/// \brief Minimal POSIX socket/poll wrapper for the serving frontend.
///
/// Just enough networking for a line-delimited request protocol on loopback
/// or a trusted LAN: an RAII fd, a TCP listener, blocking connect for
/// clients, and a poll() wrapper with a self-pipe wakeup so completion
/// callbacks on pool workers can nudge the event loop. No TLS, no
/// resolver — serving sits behind the query optimizer's trust boundary, and
/// keeping this layer tiny keeps it auditable.

namespace selnet::util {

/// \brief RAII file descriptor (close on destruction; movable, not copyable).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// \brief Relinquish ownership without closing.
  int Release();
  void Close();

 private:
  int fd_ = -1;
};

/// \brief Put a descriptor into non-blocking mode.
Status SetNonBlocking(int fd);

/// \brief Disable Nagle batching (one request line = one user-visible
/// round-trip; latency beats byte packing here).
Status SetNoDelay(int fd);

/// \brief A listening TCP socket bound to `address:port`.
///
/// Pass port 0 to bind an ephemeral port and read it back via port() — the
/// tests and the demo use this so parallel runs never collide.
class TcpListener {
 public:
  TcpListener() = default;

  /// \brief Bind + listen (SO_REUSEADDR, non-blocking). With `reuse_port`,
  /// SO_REUSEPORT is set before bind so several listeners can share one
  /// port and the kernel load-balances accepts across them — the
  /// multi-loop frontend's per-loop-listener mode.
  Status Listen(const std::string& address, uint16_t port, int backlog = 64,
                bool reuse_port = false);

  /// \brief Accept one pending connection into `out` (non-blocking: returns
  /// false with OK status when no connection is waiting).
  Result<bool> Accept(Fd* out);

  uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }
  bool listening() const { return fd_.valid(); }
  void Close() { fd_.Close(); }

 private:
  Fd fd_;
  uint16_t port_ = 0;
};

/// \brief Blocking TCP connect to `address:port` (client side). A peer that
/// is not accepting (ECONNREFUSED and friends) comes back as kUnavailable —
/// nothing was sent, so retrying is always safe; other failures are
/// kIoError. Failover layers key their retry policy on that distinction.
Result<Fd> TcpConnect(const std::string& address, uint16_t port);

/// \brief Read up to `len` bytes. Returns the count (0 = orderly peer close),
/// or -1 via Status when the socket would block (kOutOfRange) or failed.
Result<int64_t> ReadSome(int fd, char* buf, size_t len);

/// \brief Write up to `len` bytes, returning the count actually written
/// (possibly 0 when the send buffer is full on a non-blocking socket).
Result<int64_t> WriteSome(int fd, const char* buf, size_t len);

/// \brief Write the whole buffer on a BLOCKING socket (client helper).
Status WriteAll(int fd, const char* buf, size_t len);

/// \brief Self-pipe wakeup: completion threads call Notify(), the poll loop
/// includes read_fd() in its set and calls Drain() when it fires.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe() = default;

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// \brief Wake the poller (async-signal-safe, never blocks: the pipe is
  /// non-blocking and a full pipe already guarantees a pending wakeup).
  void Notify();
  /// \brief Consume every pending wakeup byte.
  void Drain();

  int read_fd() const { return read_end_.get(); }
  bool valid() const { return read_end_.valid() && write_end_.valid(); }

 private:
  Fd read_end_;
  Fd write_end_;
};

/// \brief One descriptor's poll() interest and result.
struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;   ///< Out: POLLIN (or HUP/ERR, so reads see the EOF).
  bool writable = false;   ///< Out: POLLOUT.
  bool error = false;      ///< Out: POLLERR | POLLNVAL.
};

/// \brief poll() over `entries` with a millisecond timeout (-1 = infinite).
/// Returns the number of ready descriptors (0 on timeout).
Result<int> Poll(std::vector<PollEntry>* entries, int timeout_ms);

}  // namespace selnet::util
