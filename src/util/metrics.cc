#include "util/metrics.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <set>

namespace selnet::util {

namespace {

/// Label values travel inside double quotes in the exposition format; the
/// format's own escaping covers backslash, quote and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

MetricLabels SortedLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

MetricsRegistry::Series* MetricsRegistry::Resolve(const std::string& name,
                                                  MetricLabels labels,
                                                  Kind kind) {
  Key key{name, SortedLabels(std::move(labels))};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    auto s = std::make_unique<Series>();
    s->kind = kind;
    s->labels = key.second;
    switch (kind) {
      case Kind::kCounter:
        s->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        s->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kSummary:
        s->summary = std::make_unique<LatencyHistogram>();
        break;
    }
    it = series_.emplace(std::move(key), std::move(s)).first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  return Resolve(name, std::move(labels), Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  return Resolve(name, std::move(labels), Kind::kGauge)->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetSummary(const std::string& name,
                                              MetricLabels labels) {
  return Resolve(name, std::move(labels), Kind::kSummary)->summary.get();
}

uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const auto& [key, s] : series_) {
    if (key.first == name && s->kind == Kind::kCounter)
      total += s->counter->Value();
  }
  return total;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  std::string last_name;  // series_ is ordered by name: one TYPE line each.
  for (const auto& [key, s] : series_) {
    const std::string& name = key.first;
    if (name != last_name) {
      out += "# TYPE " + name + " ";
      switch (s->kind) {
        case Kind::kCounter:
          out += "counter";
          break;
        case Kind::kGauge:
          out += "gauge";
          break;
        case Kind::kSummary:
          out += "summary";
          break;
      }
      out += "\n";
      last_name = name;
    }
    switch (s->kind) {
      case Kind::kCounter:
        out += name + RenderLabels(s->labels) + " " +
               std::to_string(s->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += name + RenderLabels(s->labels) + " " +
               FormatNumber(s->gauge->Value()) + "\n";
        break;
      case Kind::kSummary: {
        HistogramSnapshot snap = s->summary->Snapshot();
        for (double q : {0.5, 0.99}) {
          MetricLabels with_q = s->labels;
          with_q.emplace_back("quantile", q == 0.5 ? "0.5" : "0.99");
          out += name + RenderLabels(with_q) + " " +
                 FormatNumber(snap.ValueAtQuantile(q)) + "\n";
        }
        out += name + "_sum" + RenderLabels(s->labels) + " " +
               FormatNumber(static_cast<double>(snap.sum_ticks) / 1000.0) +
               "\n";
        out += name + "_count" + RenderLabels(s->labels) + " " +
               std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

void EventRing::Push(const std::string& kind, const std::string& target,
                     const std::string& from, const std::string& to) {
  Event e;
  e.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
  e.kind = kind;
  e.target = target;
  e.from = from;
  e.to = to;
  std::lock_guard<std::mutex> lk(mu_);
  e.seq = next_seq_++;
  ring_.push_back(std::move(e));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<Event> EventRing::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

uint64_t EventRing::TotalPushed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_seq_;
}

namespace {

bool ValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

bool ValidNumber(const std::string& s) {
  if (s.empty()) return false;
  if (s == "NaN" || s == "+Inf" || s == "-Inf") return true;
  double v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && p == s.data() + s.size();
}

/// A sample name resolves to the metric whose TYPE line must precede it:
/// `foo_sum` / `foo_count` belong to summary `foo` when `foo` is typed.
std::string BaseMetricOf(const std::string& sample,
                         const std::set<std::string>& typed) {
  if (typed.count(sample)) return sample;
  for (const char* suffix : {"_sum", "_count", "_bucket"}) {
    size_t n = std::string(suffix).size();
    if (sample.size() > n &&
        sample.compare(sample.size() - n, n, suffix) == 0) {
      std::string base = sample.substr(0, sample.size() - n);
      if (typed.count(base)) return base;
    }
  }
  return "";
}

}  // namespace

Status LintExposition(const std::string& text) {
  if (text.empty()) return Status::Invalid("exposition: empty output");
  std::set<std::string> typed;        // names with a # TYPE line seen.
  std::set<std::string> sampled;      // base names with >= 1 sample seen.
  std::set<std::string> series_seen;  // full "name{labels}" identities.
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos >= text.size()) break;  // trailing newline
      continue;
    }
    auto fail = [&](const std::string& why) {
      return Status::Invalid("exposition line " + std::to_string(line_no) +
                             ": " + why + ": " + line);
    };
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line.rfind("# TYPE ", 0) != 0) return fail("unknown comment form");
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      if (sp == std::string::npos) return fail("TYPE missing kind");
      std::string name = rest.substr(0, sp);
      std::string kind = rest.substr(sp + 1);
      if (!ValidMetricName(name)) return fail("bad metric name in TYPE");
      if (kind != "counter" && kind != "gauge" && kind != "summary" &&
          kind != "histogram" && kind != "untyped")
        return fail("bad kind in TYPE");
      if (typed.count(name)) return fail("duplicate TYPE for metric");
      if (sampled.count(name)) return fail("TYPE after first sample");
      typed.insert(name);
      continue;
    }
    // Sample line: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("no value");
    std::string name = line.substr(0, name_end);
    if (!ValidMetricName(name)) return fail("bad metric name");
    size_t value_start;
    std::string series_id = name;
    if (line[name_end] == '{') {
      size_t close = name_end + 1;
      bool in_quote = false;
      for (; close < line.size(); ++close) {
        char c = line[close];
        if (in_quote) {
          if (c == '\\') {
            ++close;  // skip escaped char
            continue;
          }
          if (c == '"') in_quote = false;
        } else if (c == '"') {
          in_quote = true;
        } else if (c == '}') {
          break;
        }
      }
      if (close >= line.size()) return fail("unterminated label set");
      // Validate the label pairs: k="v" separated by commas.
      std::string body = line.substr(name_end + 1, close - name_end - 1);
      size_t lp = 0;
      while (lp < body.size()) {
        size_t eq = body.find('=', lp);
        if (eq == std::string::npos) return fail("label missing '='");
        std::string lname = body.substr(lp, eq - lp);
        if (!ValidMetricName(lname)) return fail("bad label name");
        if (eq + 1 >= body.size() || body[eq + 1] != '"')
          return fail("label value not quoted");
        size_t vp = eq + 2;
        while (vp < body.size()) {
          if (body[vp] == '\\') {
            vp += 2;
            continue;
          }
          if (body[vp] == '"') break;
          ++vp;
        }
        if (vp >= body.size()) return fail("unterminated label value");
        lp = vp + 1;
        if (lp < body.size()) {
          if (body[lp] != ',') return fail("expected ',' between labels");
          ++lp;
        }
      }
      series_id += "{" + body + "}";
      if (close + 1 >= line.size() || line[close + 1] != ' ')
        return fail("no space before value");
      value_start = close + 2;
    } else {
      value_start = name_end + 1;
    }
    std::string value = line.substr(value_start);
    if (!ValidNumber(value)) return fail("bad sample value");
    std::string base = BaseMetricOf(name, typed);
    if (base.empty()) return fail("sample without preceding TYPE");
    sampled.insert(base);
    if (series_seen.count(series_id)) return fail("duplicate series");
    series_seen.insert(series_id);
    if (pos > text.size()) break;
  }
  if (series_seen.empty()) return Status::Invalid("exposition: no samples");
  return Status::OK();
}

std::string EncodeHistogramSnapshot(const HistogramSnapshot& s) {
  std::string out = std::to_string(s.count) + ";" +
                    std::to_string(s.sum_ticks) + ";";
  bool first = true;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    if (s.buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += std::to_string(i) + ":" + std::to_string(s.buckets[i]);
  }
  return out;
}

namespace {

Result<uint64_t> ParseU64(const std::string& s, size_t begin, size_t end) {
  uint64_t v = 0;
  if (begin >= end) return Status::Invalid("histogram: empty number");
  auto [p, ec] = std::from_chars(s.data() + begin, s.data() + end, v);
  if (ec != std::errc() || p != s.data() + end)
    return Status::Invalid("histogram: bad number '" +
                           s.substr(begin, end - begin) + "'");
  return v;
}

}  // namespace

Result<HistogramSnapshot> DecodeHistogramSnapshot(const std::string& text) {
  HistogramSnapshot s;
  size_t sep1 = text.find(';');
  if (sep1 == std::string::npos)
    return Status::Invalid("histogram: missing count");
  size_t sep2 = text.find(';', sep1 + 1);
  if (sep2 == std::string::npos)
    return Status::Invalid("histogram: missing sum");
  Result<uint64_t> count = ParseU64(text, 0, sep1);
  if (!count.ok()) return count.status();
  s.count = count.ValueOrDie();
  Result<uint64_t> sum = ParseU64(text, sep1 + 1, sep2);
  if (!sum.ok()) return sum.status();
  s.sum_ticks = sum.ValueOrDie();
  size_t pos = sep2 + 1;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    size_t colon = text.find(':', pos);
    if (colon == std::string::npos || colon >= comma)
      return Status::Invalid("histogram: bad bucket entry");
    Result<uint64_t> idx = ParseU64(text, pos, colon);
    if (!idx.ok()) return idx.status();
    Result<uint64_t> cnt = ParseU64(text, colon + 1, comma);
    if (!cnt.ok()) return cnt.status();
    if (idx.ValueOrDie() >= LatencyHistogram::kNumBuckets)
      return Status::Invalid("histogram: bucket index out of range");
    if (idx.ValueOrDie() >= s.buckets.size())
      s.buckets.resize(idx.ValueOrDie() + 1, 0);
    s.buckets[idx.ValueOrDie()] = cnt.ValueOrDie();
    if (comma != text.size() && comma + 1 == text.size())
      return Status::Invalid("histogram: trailing comma");
    pos = comma + 1;
  }
  return s;
}

}  // namespace selnet::util
