#include "util/thread_pool.h"

#include <atomic>

namespace selnet::util {

namespace {
thread_local bool tls_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t grain) {
  if (end <= begin) return;
  size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  // Serial fallback: tiny ranges, single-threaded pools, or nested calls from
  // inside a worker (the simple pool does not support nested waits).
  if (n <= grain || pool.num_threads() <= 1 || tls_in_pool_worker) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  size_t num_chunks = std::min(n / grain + 1, pool.num_threads() * 4);
  std::atomic<size_t> next{begin};
  std::atomic<size_t> done_chunks{0};
  std::mutex mu;
  std::condition_variable cv;
  for (size_t c = 0; c < num_chunks; ++c) {
    pool.Submit([&, grain] {
      for (;;) {
        size_t chunk_begin = next.fetch_add(grain);
        if (chunk_begin >= end) break;
        size_t chunk_end = std::min(chunk_begin + grain, end);
        for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      }
      if (done_chunks.fetch_add(1) + 1 == num_chunks) {
        std::unique_lock<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done_chunks.load() == num_chunks; });
}

}  // namespace selnet::util
