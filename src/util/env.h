#pragma once

#include <cstdint>
#include <string>

/// \file env.h
/// \brief Experiment scaling knobs read from the environment.
///
/// The paper trains on million-vector corpora with 0.25M queries for 1500
/// epochs on a server; this repository must regenerate every table on a small
/// CPU box. `SELNET_SCALE` selects a preset: `smoke` (seconds; used by ctest
/// fixtures), `default` (minutes; used by `bench/*` with no arguments), and
/// `large` (closer to paper scale). Individual knobs can be overridden with
/// SELNET_N, SELNET_DIM, SELNET_QUERIES, SELNET_EPOCHS.

namespace selnet::util {

/// \brief Preset workload scales.
enum class Scale { kSmoke, kDefault, kLarge };

/// \brief Resolved experiment scale parameters.
struct ScaleConfig {
  Scale scale = Scale::kDefault;
  /// Database size per synthetic corpus.
  size_t n = 6000;
  /// Embedding dimensionality (fasttext/face-like corpora; YouTube uses 2x).
  size_t dim = 24;
  /// Number of query objects (each paired with `w` thresholds).
  size_t num_queries = 240;
  /// Thresholds per query (the paper's w; geometric selectivity ladder).
  size_t w = 16;
  /// Training epochs for neural models.
  size_t epochs = 30;
  /// Control points L for SelNet.
  size_t control_points = 16;
  /// Default number of data partitions K.
  size_t partitions = 3;

  std::string name() const;
};

/// \brief Read SELNET_SCALE (+ overrides) from the environment.
ScaleConfig GetScaleConfig();

/// \brief Integer env var with default.
int64_t EnvInt(const char* name, int64_t def);

/// \brief String env var with default.
std::string EnvString(const char* name, const std::string& def);

}  // namespace selnet::util
