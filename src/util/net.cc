#include "util/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace selnet::util {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + ::strerror(errno));
}

/// Parse a dotted-quad address into a sockaddr_in ("" = INADDR_ANY).
Status MakeAddr(const std::string& address, uint16_t port,
                sockaddr_in* out) {
  ::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (address.empty()) {
    out->sin_addr.s_addr = htonl(INADDR_ANY);
    return Status::OK();
  }
  if (::inet_pton(AF_INET, address.c_str(), &out->sin_addr) != 1) {
    return Status::Invalid("net: unparsable IPv4 address '" + address + "'");
  }
  return Status::OK();
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("net: fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("net: setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status TcpListener::Listen(const std::string& address, uint16_t port,
                           int backlog, bool reuse_port) {
  sockaddr_in addr;
  SEL_RETURN_NOT_OK(MakeAddr(address, port, &addr));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("net: socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
        0) {
      return Errno("net: setsockopt(SO_REUSEPORT)");
    }
#else
    return Status::NotImplemented("net: SO_REUSEPORT unsupported here");
#endif
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("net: bind " + address + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("net: listen");
  SEL_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  // Read the ephemeral port back so callers can Listen(addr, 0).
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return Errno("net: getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  return Status::OK();
}

Result<bool> TcpListener::Accept(Fd* out) {
  if (!fd_.valid()) return Status::Internal("net: Accept on closed listener");
  int conn = ::accept(fd_.get(), nullptr, nullptr);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return false;
    }
    return Errno("net: accept");
  }
  *out = Fd(conn);
  return true;
}

Result<Fd> TcpConnect(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  SEL_RETURN_NOT_OK(MakeAddr(address.empty() ? "127.0.0.1" : address, port,
                             &addr));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("net: socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::string what =
        "net: connect " + address + ":" + std::to_string(port) + ": " +
        ::strerror(errno);
    // A peer that is not there (yet) is kUnavailable — the request was never
    // sent, so a failover layer may retry another replica (or the same one
    // after backoff) with no idempotency concern. Anything else stays a
    // generic kIoError.
    if (errno == ECONNREFUSED || errno == EHOSTUNREACH ||
        errno == ENETUNREACH || errno == ETIMEDOUT || errno == ECONNABORTED) {
      return Status::Unavailable(what);
    }
    return Status::IOError(what);
  }
  SetNoDelay(fd.get());
  return fd;
}

Result<int64_t> ReadSome(int fd, char* buf, size_t len) {
  for (;;) {
    ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return int64_t(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::OutOfRange("net: read would block");
    }
    return Errno("net: read");
  }
}

Result<int64_t> WriteSome(int fd, const char* buf, size_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as EPIPE,
    // not kill the process with SIGPIPE.
    ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return int64_t(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return int64_t(0);
    return Errno("net: write");
  }
}

Status WriteAll(int fd, const char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    Result<int64_t> n = WriteSome(fd, buf + off, len - off);
    if (!n.ok()) return n.status();
    if (n.ValueOrDie() == 0) {
      // Blocking socket: a zero-length send means the peer is gone.
      return Status::IOError("net: short write");
    }
    off += size_t(n.ValueOrDie());
  }
  return Status::OK();
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) == 0) {
    read_end_ = Fd(fds[0]);
    write_end_ = Fd(fds[1]);
    SetNonBlocking(fds[0]);
    SetNonBlocking(fds[1]);
  }
}

void WakePipe::Notify() {
  if (!write_end_.valid()) return;
  char byte = 1;
  // A full pipe means a wakeup is already pending — dropping this byte is
  // fine, the poller will drain and re-scan everything.
  [[maybe_unused]] ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakePipe::Drain() {
  if (!read_end_.valid()) return;
  char buf[256];
  while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

Result<int> Poll(std::vector<PollEntry>* entries, int timeout_ms) {
  std::vector<pollfd> fds(entries->size());
  for (size_t i = 0; i < entries->size(); ++i) {
    fds[i].fd = (*entries)[i].fd;
    fds[i].events = 0;
    if ((*entries)[i].want_read) fds[i].events |= POLLIN;
    if ((*entries)[i].want_write) fds[i].events |= POLLOUT;
    fds[i].revents = 0;
  }
  int ready;
  for (;;) {
    ready = ::poll(fds.data(), nfds_t(fds.size()), timeout_ms);
    if (ready >= 0) break;
    if (errno != EINTR) return Errno("net: poll");
  }
  for (size_t i = 0; i < entries->size(); ++i) {
    // HUP counts as readable: the next read returns 0 and the caller sees a
    // clean EOF instead of spinning on a dead descriptor.
    (*entries)[i].readable = (fds[i].revents & (POLLIN | POLLHUP)) != 0;
    (*entries)[i].writable = (fds[i].revents & POLLOUT) != 0;
    (*entries)[i].error = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
  }
  return ready;
}

}  // namespace selnet::util
