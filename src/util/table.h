#pragma once

#include <string>
#include <vector>

/// \file table.h
/// \brief ASCII table rendering for bench harness output.
///
/// Every experiment binary prints its results in the same row/column layout
/// the paper's tables use; this helper keeps the formatting consistent.

namespace selnet::util {

/// \brief Simple column-aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// \brief Append one row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// \brief Render with column alignment and a separator under the header.
  std::string ToString() const;

  /// \brief Convenience: render and print to stdout with a title line.
  void Print(const std::string& title) const;

  /// \brief Format a double with `digits` significant decimals.
  static std::string Num(double v, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace selnet::util
