#include "util/base64.h"

#include <cstdint>

namespace selnet::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Reverse alphabet: value, or -1 (invalid), or -2 ('=').
struct DecodeTable {
  int8_t t[256];
  DecodeTable() {
    for (int i = 0; i < 256; ++i) t[i] = -1;
    for (int i = 0; i < 64; ++i) {
      t[static_cast<unsigned char>(kAlphabet[i])] = int8_t(i);
    }
    t[static_cast<unsigned char>('=')] = -2;
  }
};

}  // namespace

std::string Base64Encode(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve((len + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= len; i += 3) {
    uint32_t v = uint32_t(p[i]) << 16 | uint32_t(p[i + 1]) << 8 | p[i + 2];
    out.push_back(kAlphabet[v >> 18]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  size_t rem = len - i;
  if (rem == 1) {
    uint32_t v = uint32_t(p[i]) << 16;
    out.push_back(kAlphabet[v >> 18]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    uint32_t v = uint32_t(p[i]) << 16 | uint32_t(p[i + 1]) << 8;
    out.push_back(kAlphabet[v >> 18]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(const std::string& s) {
  static const DecodeTable table;
  if (s.size() % 4 != 0) {
    return Status::Invalid("base64: length " + std::to_string(s.size()) +
                           " is not a multiple of 4");
  }
  std::string out;
  out.reserve(s.size() / 4 * 3);
  for (size_t i = 0; i < s.size(); i += 4) {
    int8_t a = table.t[static_cast<unsigned char>(s[i])];
    int8_t b = table.t[static_cast<unsigned char>(s[i + 1])];
    int8_t c = table.t[static_cast<unsigned char>(s[i + 2])];
    int8_t d = table.t[static_cast<unsigned char>(s[i + 3])];
    bool last = i + 4 == s.size();
    // Padding may only appear as the last one or two characters.
    if (a < 0 || b < 0 || (c == -1) || (d == -1) ||
        (c == -2 && d != -2) || ((c == -2 || d == -2) && !last)) {
      return Status::Invalid("base64: invalid character or padding at byte " +
                             std::to_string(i));
    }
    uint32_t v = uint32_t(a) << 18 | uint32_t(b) << 12;
    out.push_back(char(v >> 16));
    if (c == -2) continue;
    v |= uint32_t(c) << 6;
    out.push_back(char((v >> 8) & 0xFF));
    if (d == -2) continue;
    v |= uint32_t(d);
    out.push_back(char(v & 0xFF));
  }
  return out;
}

}  // namespace selnet::util
