#include "util/logging.h"

#include <cstdarg>
#include <cstdlib>

namespace selnet::util {

namespace {
LogLevel g_level = [] {
  const char* env = std::getenv("SELNET_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  int v = std::atoi(env);
  if (v <= 0) return LogLevel::kQuiet;
  if (v == 1) return LogLevel::kInfo;
  return LogLevel::kDebug;
}();

void VLog(const char* tag, const char* fmt, va_list args) {
  std::fprintf(stderr, "[selnet:%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fprintf(stderr, "\n");
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogInfo(const char* fmt, ...) {
  if (static_cast<int>(g_level) < static_cast<int>(LogLevel::kInfo)) return;
  va_list args;
  va_start(args, fmt);
  VLog("info", fmt, args);
  va_end(args);
}

void LogDebug(const char* fmt, ...) {
  if (static_cast<int>(g_level) < static_cast<int>(LogLevel::kDebug)) return;
  va_list args;
  va_start(args, fmt);
  VLog("debug", fmt, args);
  va_end(args);
}

}  // namespace selnet::util
