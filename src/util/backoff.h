#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

/// \file backoff.h
/// \brief Decorrelated-jitter exponential backoff (the AWS architecture-blog
/// variant): each delay is drawn uniformly from [base, prev * multiplier],
/// capped.
///
/// Why decorrelated jitter and not plain exponential: when a shard process
/// dies, every client that had requests in flight hits the retry path at the
/// same instant. Deterministic exponential backoff keeps them synchronized —
/// wave after wave of simultaneous reconnects (the thundering herd the
/// backoff was supposed to prevent). Drawing each delay from a range keyed
/// on the PREVIOUS delay decorrelates the herd within a couple of rounds
/// while preserving the exponential envelope.
///
/// The generator is seeded, so tests get reproducible delay sequences:
/// `Backoff(cfg, seed)` with a fixed seed always yields the same schedule.
/// Callers own the sleep — the helper only computes delays — which keeps it
/// usable from poll loops (as a timeout) as well as blocking retry loops.

namespace selnet::util {

/// \brief Backoff policy knobs. Defaults suit a LAN reconnect: first retry
/// within ~5 ms, settling under the 500 ms cap after a few failures.
struct BackoffConfig {
  double base_ms = 5.0;    ///< Minimum (and first) delay.
  double cap_ms = 500.0;   ///< Upper bound on any delay.
  double multiplier = 3.0; ///< Range growth: next in [base, prev * this].
};

/// \brief One retry loop's delay schedule. Not thread-safe; make one per
/// retrying connection/loop.
class Backoff {
 public:
  explicit Backoff(const BackoffConfig& cfg = BackoffConfig(),
                   uint64_t seed = 1)
      : cfg_(cfg), rng_(seed), prev_ms_(cfg.base_ms) {}

  /// \brief The next delay in milliseconds. First call returns base_ms
  /// exactly (an immediate-ish first retry is almost always right — the
  /// common failure is a refused connect that resolves on the next attempt);
  /// subsequent calls jitter inside the growing envelope.
  double NextDelayMs() {
    ++attempts_;
    if (attempts_ == 1) {
      prev_ms_ = cfg_.base_ms;
      return prev_ms_;
    }
    double hi = std::min(cfg_.cap_ms, prev_ms_ * cfg_.multiplier);
    prev_ms_ = rng_.Uniform(cfg_.base_ms, std::max(cfg_.base_ms, hi));
    return prev_ms_;
  }

  /// \brief Forget the failure streak (call after a success, so the next
  /// failure starts from base again).
  void Reset() {
    attempts_ = 0;
    prev_ms_ = cfg_.base_ms;
  }

  size_t attempts() const { return attempts_; }
  const BackoffConfig& config() const { return cfg_; }

 private:
  BackoffConfig cfg_;
  Rng rng_;
  double prev_ms_;
  size_t attempts_ = 0;
};

}  // namespace selnet::util
