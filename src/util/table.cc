#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace selnet::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  SEL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
      out << ' ';
    }
    out << "|\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << "|-";
    for (size_t i = 0; i < width[c]; ++i) out << '-';
    out << '-';
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void AsciiTable::Print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

}  // namespace selnet::util
