#include "util/status.h"

namespace selnet::util {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIoError: return "IOError";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace selnet::util
