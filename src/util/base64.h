#pragma once

#include <string>

#include "util/status.h"

/// \file base64.h
/// \brief Standard (RFC 4648) base64, used to embed binary model-state
/// frames in the line-delimited JSON wire protocol. The 33% size overhead is
/// acceptable for state transfer (a publish-time event, not per-request);
/// inventing a binary framing layer just for it would complicate every
/// reader of the protocol.

namespace selnet::util {

/// \brief Encode `len` bytes at `data` (with '=' padding).
std::string Base64Encode(const void* data, size_t len);

inline std::string Base64Encode(const std::string& s) {
  return Base64Encode(s.data(), s.size());
}

/// \brief Decode a padded base64 string. Rejects characters outside the
/// alphabet and misplaced padding — a corrupted frame must fail loudly here,
/// before its CRC is even consulted.
Result<std::string> Base64Decode(const std::string& s);

}  // namespace selnet::util
