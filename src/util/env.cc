#include "util/env.h"

#include <cstdlib>

namespace selnet::util {

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtoll(v, nullptr, 10);
}

std::string EnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return v;
}

std::string ScaleConfig::name() const {
  switch (scale) {
    case Scale::kSmoke: return "smoke";
    case Scale::kDefault: return "default";
    case Scale::kLarge: return "large";
  }
  return "unknown";
}

ScaleConfig GetScaleConfig() {
  ScaleConfig cfg;
  std::string s = EnvString("SELNET_SCALE", "default");
  if (s == "smoke") {
    cfg.scale = Scale::kSmoke;
    cfg.n = 1500;
    cfg.dim = 12;
    cfg.num_queries = 60;
    cfg.w = 8;
    cfg.epochs = 8;
    cfg.control_points = 8;
    cfg.partitions = 2;
  } else if (s == "large") {
    cfg.scale = Scale::kLarge;
    cfg.n = 40000;
    cfg.dim = 48;
    cfg.num_queries = 1000;
    cfg.w = 24;
    cfg.epochs = 120;
    cfg.control_points = 32;
    cfg.partitions = 3;
  } else {
    cfg.scale = Scale::kDefault;
  }
  cfg.n = static_cast<size_t>(EnvInt("SELNET_N", static_cast<int64_t>(cfg.n)));
  cfg.dim = static_cast<size_t>(EnvInt("SELNET_DIM", static_cast<int64_t>(cfg.dim)));
  cfg.num_queries = static_cast<size_t>(
      EnvInt("SELNET_QUERIES", static_cast<int64_t>(cfg.num_queries)));
  cfg.epochs =
      static_cast<size_t>(EnvInt("SELNET_EPOCHS", static_cast<int64_t>(cfg.epochs)));
  return cfg;
}

}  // namespace selnet::util
