#pragma once

#include <chrono>

/// \file stopwatch.h
/// \brief Wall-clock timer for the estimation-time experiments.

namespace selnet::util {

/// \brief Steady-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace selnet::util
