#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// \brief Arrow/RocksDB-style error propagation for recoverable failures.
///
/// Public APIs that can fail for reasons other than programmer error return
/// `Status` (or `Result<T>` when they produce a value). Programmer errors are
/// handled with `SEL_CHECK`/`SEL_DCHECK` from check.h instead.

namespace selnet::util {

/// \brief Coarse error taxonomy, modeled after arrow::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kNotImplemented,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// \brief Lightweight status object: an `Ok` singleton or a code + message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief Human-readable rendering, e.g. "InvalidArgument: bad shape".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A value or an error, Arrow-style.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : repr_(std::move(value)) {}  // NOLINT
  /*implicit*/ Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// \brief Access the value; callers must check ok() first (checked in debug).
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(repr_)); }

  /// \brief Move the value out; callers must check ok() first.
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace selnet::util

/// \brief Propagate a non-OK Status out of the enclosing function.
#define SEL_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::selnet::util::Status _st = (expr);        \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// \brief Bind `lhs` to the value of a Result-returning expression or return.
#define SEL_ASSIGN_OR_RETURN(lhs, expr)          \
  auto _res_##__LINE__ = (expr);                 \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).ValueOrDie();
