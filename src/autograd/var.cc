#include "autograd/var.h"

#include <unordered_set>

#include "util/check.h"

namespace selnet::ag {

Var Constant(tensor::Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  node->op = "const";
  return node;
}

Var Param(tensor::Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->EnsureGrad();
  node->op = "param";
  return node;
}

Var MakeNode(tensor::Matrix value, std::vector<Var> parents,
             std::function<void(Node*)> backward, const char* op) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (const auto& p : parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  node->parents = std::move(parents);
  if (node->requires_grad) node->backward = std::move(backward);
  node->op = op;
  return node;
}

namespace {

// Iterative post-order DFS producing a reverse-topological evaluation order.
void TopoSort(const Var& root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) {
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  SEL_CHECK_MSG(root->requires_grad, "Backward on a constant graph");
  std::vector<Node*> order;  // post-order: parents before children
  TopoSort(root, &order);
  // Zero interior gradients (parameter grads persist across micro-batches and
  // are managed by ZeroGrad), then seed the root with ones.
  for (Node* n : order) {
    n->EnsureGrad();
    if (n->backward) n->grad.Fill(0.0f);  // interior node
  }
  root->EnsureGrad();
  root->grad.Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward) n->backward(n);
  }
}

void ZeroGrad(const std::vector<Var>& params) {
  for (const auto& p : params) {
    p->EnsureGrad();
    p->grad.Fill(0.0f);
  }
}

void InvalidatePackCaches(const std::vector<Var>& params) {
  for (const auto& p : params) p->pack_cache.Invalidate();
}

}  // namespace selnet::ag
