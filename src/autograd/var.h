#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/pack_cache.h"

/// \file var.h
/// \brief Reverse-mode automatic differentiation over matrices.
///
/// A `Var` is a shared handle to a tape node holding a Matrix value, an
/// optionally-materialized gradient, its parents, and a backward closure that
/// scatters the node's gradient into its parents. Graphs are built eagerly per
/// batch and freed when the last handle drops; nodes number in the tens, so
/// GEMM dominates and tape overhead is negligible.

namespace selnet::ag {

class Node;
using Var = std::shared_ptr<Node>;

/// \brief One tape node: value + gradient + backward closure.
class Node {
 public:
  tensor::Matrix value;
  tensor::Matrix grad;
  bool requires_grad = false;
  std::vector<Var> parents;
  /// Scatters `grad` into parents' grads; null for leaves.
  std::function<void(Node*)> backward;
  /// Op name, for debugging and error messages.
  const char* op = "leaf";

  /// Version-keyed packed-weight panels for `value` when this node is the B
  /// operand of a batched MatMul (weights and folded constants — leaves that
  /// persist across calls). Filled lazily by ag::MatMul; anything that
  /// mutates `value` in place must call pack_cache.Invalidate() — the
  /// optimizers and parameter loaders do (see tensor/pack_cache.h).
  tensor::PackCache pack_cache;

  size_t rows() const { return value.rows(); }
  size_t cols() const { return value.cols(); }

  /// \brief Allocate (zeroed) gradient storage if absent.
  void EnsureGrad() {
    if (!grad.SameShape(value)) grad = tensor::Matrix(value.rows(), value.cols());
  }
};

/// \brief Wrap a value as a non-differentiable leaf.
Var Constant(tensor::Matrix value);

/// \brief Wrap a value as a trainable parameter (gradient is accumulated).
Var Param(tensor::Matrix value);

/// \brief Create an interior node; requires_grad is inherited from parents.
Var MakeNode(tensor::Matrix value, std::vector<Var> parents,
             std::function<void(Node*)> backward, const char* op);

/// \brief Run reverse-mode accumulation from `root` (seeds d root = 1).
///
/// `root` is typically a 1x1 loss. Gradients accumulate into every node with
/// requires_grad on the tape; call ZeroGrad on parameters between steps.
void Backward(const Var& root);

/// \brief Zero the gradient buffers of `params`.
void ZeroGrad(const std::vector<Var>& params);

/// \brief Drop the packed-weight caches of `params`; required after mutating
/// their values outside the optimizer/loader paths (which invalidate
/// themselves). Thread-safe, cheap when nothing is cached.
void InvalidatePackCaches(const std::vector<Var>& params);

}  // namespace selnet::ag
