#pragma once

#include <functional>
#include <vector>

#include "autograd/var.h"

/// \file gradcheck.h
/// \brief Numerical gradient verification used by the autograd test suite.

namespace selnet::ag {

/// \brief Compare analytic gradients against central finite differences.
///
/// \param params leaves to perturb (must have requires_grad)
/// \param loss_fn rebuilds the scalar loss graph from current param values
/// \param eps finite-difference step
/// \param tol max allowed |analytic - numeric| / max(1, |numeric|)
/// \return maximum relative error observed across all parameter entries
double MaxGradError(const std::vector<Var>& params,
                    const std::function<Var()>& loss_fn, double eps = 1e-3,
                    double tol = 5e-2);

}  // namespace selnet::ag
