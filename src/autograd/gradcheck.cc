#include "autograd/gradcheck.h"

#include <cmath>

#include "util/check.h"

namespace selnet::ag {

double MaxGradError(const std::vector<Var>& params,
                    const std::function<Var()>& loss_fn, double eps,
                    double /*tol*/) {
  // Analytic pass.
  ZeroGrad(params);
  Var loss = loss_fn();
  Backward(loss);
  std::vector<tensor::Matrix> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) analytic.push_back(p->grad);

  double max_err = 0.0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Var p = params[pi];
    for (size_t i = 0; i < p->value.size(); ++i) {
      float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      double lp = loss_fn()->value(0, 0);
      p->value.data()[i] = orig - static_cast<float>(eps);
      double lm = loss_fn()->value(0, 0);
      p->value.data()[i] = orig;
      double numeric = (lp - lm) / (2.0 * eps);
      double a = analytic[pi].data()[i];
      double err = std::fabs(a - numeric) / std::max(1.0, std::fabs(numeric));
      max_err = std::max(max_err, err);
    }
  }
  return max_err;
}

}  // namespace selnet::ag
