#pragma once

#include "autograd/var.h"

/// \file ops.h
/// \brief Differentiable operations over `Var`.
///
/// Besides the standard NN vocabulary, this implements the paper-specific
/// pieces of SelNet's Figure 1 exactly:
///  * `NormL2Rows` — the Norml2 normalized-square map onto the simplex used to
///    generate threshold increments (Section 5.2),
///  * `CumsumRows` — the prefix-sum matrix `M_psum` applied to increments,
///  * `GroupedLinear` — model M's per-control-point decoder heads,
///  * `PiecewiseLinearGather` — the Σ* operator evaluating the learned
///    piece-wise linear function at threshold t (Equation 1),
///  * `HuberLogLoss` — Huber(delta=1.345) on log-space residuals (Section 5.1),
/// plus `TopKSoftmaxRows` (MoE gating) and `MulColBroadcast` (UMNN's
/// Clenshaw–Curtis weighting).

namespace selnet::ag {

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// \brief Matrix product a(BxK) * b(KxN).
Var MatMul(const Var& a, const Var& b);

/// \brief Elementwise sum (same shape).
Var Add(const Var& a, const Var& b);

/// \brief Add a 1xC bias row to every row of m.
Var AddRowBroadcast(const Var& m, const Var& row);

/// \brief Elementwise difference (same shape).
Var Sub(const Var& a, const Var& b);

/// \brief Elementwise (Hadamard) product (same shape).
Var Mul(const Var& a, const Var& b);

/// \brief Multiply row r of m(BxC) by col(Bx1)[r].
Var MulColBroadcast(const Var& m, const Var& col);

/// \brief Scalar scaling.
Var Scale(const Var& a, float s);

/// \brief Add a scalar constant to every entry.
Var AddScalar(const Var& a, float s);

// ---------------------------------------------------------------------------
// Elementwise nonlinearities
// ---------------------------------------------------------------------------

Var Relu(const Var& a);
Var LeakyRelu(const Var& a, float slope = 0.01f);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
/// \brief Natural log; inputs must be strictly positive.
Var Log(const Var& a);
/// \brief Numerically stable log(1 + exp(a)).
Var Softplus(const Var& a);
Var Square(const Var& a);

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

/// \brief Horizontal concatenation [a | b] (equal row counts).
Var ConcatCols(const Var& a, const Var& b);

/// \brief Copy of columns [begin, end).
Var SliceCols(const Var& a, size_t begin, size_t end);

/// \brief Reshape preserving total size (row-major order).
Var Reshape(const Var& a, size_t rows, size_t cols);

/// \brief Broadcast a 1xC row to n rows; gradients column-sum back into it.
Var RepeatRows(const Var& row, size_t n);

// ---------------------------------------------------------------------------
// Reductions & row-wise structure
// ---------------------------------------------------------------------------

/// \brief Sum of all entries (1x1).
Var SumAll(const Var& a);

/// \brief Mean of all entries (1x1).
Var MeanAll(const Var& a);

/// \brief Row-wise sums (Bx1).
Var RowSums(const Var& a);

/// \brief Row-wise inclusive prefix sums (the M_psum operator).
Var CumsumRows(const Var& a);

/// \brief Row-wise softmax.
Var SoftmaxRows(const Var& a);

/// \brief Row-wise sparse softmax: softmax restricted to each row's top-k
/// logits, other entries exactly zero (MoE gating).
Var TopKSoftmaxRows(const Var& a, size_t k);

/// \brief The paper's Norml2 map (Section 5.2), applied per row:
/// out_j = (a_j^2 + eps/d) / (sum_k a_k^2 + eps). Rows land on the simplex
/// with strictly positive entries, so cumsum yields strictly increasing taus.
Var NormL2Rows(const Var& a, float eps = 1e-4f);

// ---------------------------------------------------------------------------
// Paper-specific composite ops
// ---------------------------------------------------------------------------

/// \brief Model M decoder: x(B x G*H), w(G x H), b(1 x G) ->
/// out(B x G) with out[i,g] = dot(w[g], x[i, g*H:(g+1)*H]) + b[g].
Var GroupedLinear(const Var& x, const Var& w, const Var& b);

/// \brief Evaluate the continuous piece-wise linear function per row.
///
/// \param tau Bx(L+2) non-decreasing knots (tau_0 <= ... <= tau_{L+1})
/// \param p   Bx(L+2) knot values
/// \param t   Bx1 constant query thresholds
/// \return    Bx1 interpolated values; t below tau_0 clamps to p_0, above
///            tau_{L+1} clamps to p_{L+1} (gradients flow to the active knots).
Var PiecewiseLinearGather(const Var& tau, const Var& p, const Var& t);

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

/// \brief Mean Huber loss on log residuals r = log(y+eps) - log(yhat+eps).
///
/// \param yhat Bx1 non-negative predictions (graph)
/// \param y    Bx1 non-negative ground truth (constant)
Var HuberLogLoss(const Var& yhat, const Var& y, float delta = 1.345f,
                 float eps = 1.0f);

/// \brief Mean Huber loss directly on (pred - target); used by baselines that
/// regress log-selectivity directly.
Var HuberLoss(const Var& pred, const Var& target, float delta = 1.345f);

/// \brief Mean squared error (pred - target)^2.
Var MseLoss(const Var& pred, const Var& target);

}  // namespace selnet::ag
