#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/blas.h"
#include "util/check.h"

namespace selnet::ag {

using tensor::Matrix;

namespace {

// Elementwise-op helper: out = fn(a); backward dA += g ⊙ dfn(a, out).
// Templated (not std::function) so the per-element forward loop inlines and
// vectorizes — activations sit on the serving hot path.
template <typename Fn, typename Dfn>
Var ElementwiseOp(const Var& a, const char* name, Fn fn, Dfn dfn) {
  Matrix out = a->value;
  float* od = out.data();
  for (size_t i = 0; i < out.size(); ++i) od[i] = fn(od[i]);
  return MakeNode(std::move(out), {a},
                  [dfn](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    const float* av = a->value.data();
                    const float* ov = self->value.data();
                    const float* g = self->grad.data();
                    float* ag = a->grad.data();
                    for (size_t i = 0; i < self->value.size(); ++i) {
                      ag[i] += g[i] * dfn(av[i], ov[i]);
                    }
                  },
                  name);
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  SEL_CHECK_EQ(a->cols(), b->rows());
  Matrix out(a->rows(), b->cols());
  if (a->rows() >= tensor::kGemmPackMinRows && b->parents.empty() &&
      tensor::PackCacheEnabled()) {
    // Batched product against a leaf (a parameter or a cached folded
    // constant): leaves persist across calls, so their packed panels are
    // cached per weight version instead of repacked per call. Bit-identical
    // to the Gemm path below — only the pack pass is skipped. `out` is
    // zero-constructed, matching beta == 0.
    std::shared_ptr<const tensor::PackedWeights> packed =
        b->pack_cache.Get(b->value);
    tensor::GemmNNPrepacked(a->value, *packed, 1.0f, &out);
  } else {
    tensor::Gemm(a->value, false, b->value, false, 1.0f, 0.0f, &out);
  }
  return MakeNode(std::move(out), {a, b},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    Node* b = self->parents[1].get();
                    if (a->requires_grad) {
                      // dA += dC * B^T
                      tensor::Gemm(self->grad, false, b->value, true, 1.0f, 1.0f,
                                   &a->grad);
                    }
                    if (b->requires_grad) {
                      // dB += A^T * dC
                      tensor::Gemm(a->value, true, self->grad, false, 1.0f, 1.0f,
                                   &b->grad);
                    }
                  },
                  "matmul");
}

Var Add(const Var& a, const Var& b) {
  SEL_CHECK(a->value.SameShape(b->value));
  return MakeNode(tensor::Add(a->value, b->value), {a, b},
                  [](Node* self) {
                    for (int i = 0; i < 2; ++i) {
                      Node* p = self->parents[i].get();
                      if (p->requires_grad) tensor::Axpy(1.0f, self->grad, &p->grad);
                    }
                  },
                  "add");
}

Var AddRowBroadcast(const Var& m, const Var& row) {
  SEL_CHECK_EQ(row->rows(), 1u);
  SEL_CHECK_EQ(row->cols(), m->cols());
  Matrix out = m->value;
  tensor::AddRowVectorInPlace(&out, row->value);
  return MakeNode(std::move(out), {m, row},
                  [](Node* self) {
                    Node* m = self->parents[0].get();
                    Node* row = self->parents[1].get();
                    if (m->requires_grad) tensor::Axpy(1.0f, self->grad, &m->grad);
                    if (row->requires_grad) {
                      Matrix sums = tensor::ColSums(self->grad);
                      tensor::Axpy(1.0f, sums, &row->grad);
                    }
                  },
                  "add_row");
}

Var Sub(const Var& a, const Var& b) {
  SEL_CHECK(a->value.SameShape(b->value));
  return MakeNode(tensor::Sub(a->value, b->value), {a, b},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    Node* b = self->parents[1].get();
                    if (a->requires_grad) tensor::Axpy(1.0f, self->grad, &a->grad);
                    if (b->requires_grad) tensor::Axpy(-1.0f, self->grad, &b->grad);
                  },
                  "sub");
}

Var Mul(const Var& a, const Var& b) {
  SEL_CHECK(a->value.SameShape(b->value));
  return MakeNode(tensor::Hadamard(a->value, b->value), {a, b},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    Node* b = self->parents[1].get();
                    if (a->requires_grad) {
                      Matrix t = tensor::Hadamard(self->grad, b->value);
                      tensor::Axpy(1.0f, t, &a->grad);
                    }
                    if (b->requires_grad) {
                      Matrix t = tensor::Hadamard(self->grad, a->value);
                      tensor::Axpy(1.0f, t, &b->grad);
                    }
                  },
                  "mul");
}

Var MulColBroadcast(const Var& m, const Var& col) {
  SEL_CHECK_EQ(col->cols(), 1u);
  SEL_CHECK_EQ(col->rows(), m->rows());
  Matrix out = m->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    float s = col->value(r, 0);
    float* row = out.row(r);
    for (size_t c = 0; c < out.cols(); ++c) row[c] *= s;
  }
  return MakeNode(std::move(out), {m, col},
                  [](Node* self) {
                    Node* m = self->parents[0].get();
                    Node* col = self->parents[1].get();
                    size_t rows = self->rows(), cols = self->cols();
                    for (size_t r = 0; r < rows; ++r) {
                      const float* g = self->grad.row(r);
                      float s = col->value(r, 0);
                      if (m->requires_grad) {
                        float* mg = m->grad.row(r);
                        for (size_t c = 0; c < cols; ++c) mg[c] += g[c] * s;
                      }
                      if (col->requires_grad) {
                        const float* mv = m->value.row(r);
                        float acc = 0.0f;
                        for (size_t c = 0; c < cols; ++c) acc += g[c] * mv[c];
                        col->grad(r, 0) += acc;
                      }
                    }
                  },
                  "mul_col");
}

Var Scale(const Var& a, float s) {
  return MakeNode(tensor::Scale(a->value, s), {a},
                  [s](Node* self) {
                    Node* a = self->parents[0].get();
                    if (a->requires_grad) tensor::Axpy(s, self->grad, &a->grad);
                  },
                  "scale");
}

Var AddScalar(const Var& a, float s) {
  Matrix out = a->value;
  float* od = out.data();
  for (size_t i = 0; i < out.size(); ++i) od[i] += s;
  return MakeNode(std::move(out), {a},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    if (a->requires_grad) tensor::Axpy(1.0f, self->grad, &a->grad);
                  },
                  "add_scalar");
}

Var Relu(const Var& a) {
  return ElementwiseOp(
      a, "relu", [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Var LeakyRelu(const Var& a, float slope) {
  return ElementwiseOp(
      a, "leaky_relu", [slope](float v) { return v > 0.0f ? v : slope * v; },
      [slope](float v, float) { return v > 0.0f ? 1.0f : slope; });
}

Var Sigmoid(const Var& a) {
  return ElementwiseOp(
      a, "sigmoid",
      [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float o) { return o * (1.0f - o); });
}

Var Tanh(const Var& a) {
  return ElementwiseOp(
      a, "tanh", [](float v) { return std::tanh(v); },
      [](float, float o) { return 1.0f - o * o; });
}

Var Exp(const Var& a) {
  return ElementwiseOp(
      a, "exp", [](float v) { return std::exp(std::min(v, 30.0f)); },
      [](float, float o) { return o; });
}

Var Log(const Var& a) {
  return ElementwiseOp(
      a, "log",
      [](float v) {
        SEL_DCHECK(v > 0.0f);
        return std::log(v);
      },
      [](float v, float) { return 1.0f / v; });
}

Var Softplus(const Var& a) {
  return ElementwiseOp(
      a, "softplus",
      [](float v) {
        // Stable: log(1+e^v) = max(v,0) + log1p(exp(-|v|)).
        return std::max(v, 0.0f) + std::log1p(std::exp(-std::fabs(v)));
      },
      [](float v, float) { return 1.0f / (1.0f + std::exp(-v)); });
}

Var Square(const Var& a) {
  return ElementwiseOp(
      a, "square", [](float v) { return v * v; },
      [](float v, float) { return 2.0f * v; });
}

Var ConcatCols(const Var& a, const Var& b) {
  SEL_CHECK_EQ(a->rows(), b->rows());
  size_t ca = a->cols(), cb = b->cols();
  Matrix out(a->rows(), ca + cb);
  for (size_t r = 0; r < out.rows(); ++r) {
    std::copy(a->value.row(r), a->value.row(r) + ca, out.row(r));
    std::copy(b->value.row(r), b->value.row(r) + cb, out.row(r) + ca);
  }
  return MakeNode(std::move(out), {a, b},
                  [ca, cb](Node* self) {
                    Node* a = self->parents[0].get();
                    Node* b = self->parents[1].get();
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* g = self->grad.row(r);
                      if (a->requires_grad) {
                        float* ag = a->grad.row(r);
                        for (size_t c = 0; c < ca; ++c) ag[c] += g[c];
                      }
                      if (b->requires_grad) {
                        float* bg = b->grad.row(r);
                        for (size_t c = 0; c < cb; ++c) bg[c] += g[ca + c];
                      }
                    }
                  },
                  "concat_cols");
}

Var SliceCols(const Var& a, size_t begin, size_t end) {
  SEL_CHECK(begin <= end && end <= a->cols());
  return MakeNode(a->value.ColSlice(begin, end), {a},
                  [begin, end](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* g = self->grad.row(r);
                      float* ag = a->grad.row(r);
                      for (size_t c = begin; c < end; ++c) ag[c] += g[c - begin];
                    }
                  },
                  "slice_cols");
}

Var Reshape(const Var& a, size_t rows, size_t cols) {
  return MakeNode(a->value.Reshaped(rows, cols), {a},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    // Row-major contiguous: flat accumulate.
                    const float* g = self->grad.data();
                    float* ag = a->grad.data();
                    for (size_t i = 0; i < self->value.size(); ++i) ag[i] += g[i];
                  },
                  "reshape");
}

Var RepeatRows(const Var& row, size_t n) {
  SEL_CHECK_EQ(row->rows(), 1u);
  size_t cols = row->cols();
  Matrix out(n, cols);
  for (size_t r = 0; r < n; ++r) {
    std::copy(row->value.data(), row->value.data() + cols, out.row(r));
  }
  return MakeNode(std::move(out), {row},
                  [](Node* self) {
                    Node* row = self->parents[0].get();
                    if (!row->requires_grad) return;
                    Matrix sums = tensor::ColSums(self->grad);
                    tensor::Axpy(1.0f, sums, &row->grad);
                  },
                  "repeat_rows");
}

Var SumAll(const Var& a) {
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(a->value.Sum());
  return MakeNode(std::move(out), {a},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    float g = self->grad(0, 0);
                    float* ag = a->grad.data();
                    for (size_t i = 0; i < a->value.size(); ++i) ag[i] += g;
                  },
                  "sum_all");
}

Var MeanAll(const Var& a) {
  size_t n = a->value.size();
  SEL_CHECK_GT(n, 0u);
  return Scale(SumAll(a), 1.0f / static_cast<float>(n));
}

Var RowSums(const Var& a) {
  return MakeNode(tensor::RowSums(a->value), {a},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    for (size_t r = 0; r < a->rows(); ++r) {
                      float g = self->grad(r, 0);
                      float* ag = a->grad.row(r);
                      for (size_t c = 0; c < a->cols(); ++c) ag[c] += g;
                    }
                  },
                  "row_sums");
}

Var CumsumRows(const Var& a) {
  Matrix out = a->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < out.cols(); ++c) {
      acc += row[c];
      row[c] = acc;
    }
  }
  return MakeNode(std::move(out), {a},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    // d a[k] = sum_{j >= k} g[j]: reverse suffix sums.
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* g = self->grad.row(r);
                      float* ag = a->grad.row(r);
                      float acc = 0.0f;
                      for (size_t c = self->cols(); c-- > 0;) {
                        acc += g[c];
                        ag[c] += acc;
                      }
                    }
                  },
                  "cumsum_rows");
}

Var SoftmaxRows(const Var& a) {
  Matrix out = a->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    float mx = row[0];
    for (size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < out.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (size_t c = 0; c < out.cols(); ++c) row[c] /= sum;
  }
  return MakeNode(std::move(out), {a},
                  [](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* s = self->value.row(r);
                      const float* g = self->grad.row(r);
                      float dot = 0.0f;
                      for (size_t c = 0; c < self->cols(); ++c) dot += g[c] * s[c];
                      float* ag = a->grad.row(r);
                      for (size_t c = 0; c < self->cols(); ++c) {
                        ag[c] += s[c] * (g[c] - dot);
                      }
                    }
                  },
                  "softmax_rows");
}

Var TopKSoftmaxRows(const Var& a, size_t k) {
  size_t rows = a->rows(), cols = a->cols();
  SEL_CHECK(k >= 1 && k <= cols);
  Matrix out(rows, cols);
  auto mask = std::make_shared<std::vector<uint8_t>>(rows * cols, uint8_t{0});
  std::vector<size_t> idx(cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a->value.row(r);
    std::iota(idx.begin(), idx.end(), size_t{0});
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](size_t i, size_t j) { return row[i] > row[j]; });
    float mx = row[idx[0]];
    float sum = 0.0f;
    for (size_t i = 0; i < k; ++i) {
      float e = std::exp(row[idx[i]] - mx);
      out(r, idx[i]) = e;
      (*mask)[r * cols + idx[i]] = 1;
      sum += e;
    }
    for (size_t i = 0; i < k; ++i) out(r, idx[i]) /= sum;
  }
  return MakeNode(std::move(out), {a},
                  [mask](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    size_t cols = self->cols();
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* s = self->value.row(r);
                      const float* g = self->grad.row(r);
                      const uint8_t* m = mask->data() + r * cols;
                      float dot = 0.0f;
                      for (size_t c = 0; c < cols; ++c) {
                        if (m[c]) dot += g[c] * s[c];
                      }
                      float* ag = a->grad.row(r);
                      for (size_t c = 0; c < cols; ++c) {
                        if (m[c]) ag[c] += s[c] * (g[c] - dot);
                      }
                    }
                  },
                  "topk_softmax");
}

Var NormL2Rows(const Var& a, float eps) {
  size_t rows = a->rows(), cols = a->cols();
  SEL_CHECK_GT(cols, 0u);
  float pad = eps / static_cast<float>(cols);
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* av = a->value.row(r);
    float s = eps;
    for (size_t c = 0; c < cols; ++c) s += av[c] * av[c];
    float* ov = out.row(r);
    for (size_t c = 0; c < cols; ++c) ov[c] = (av[c] * av[c] + pad) / s;
  }
  return MakeNode(std::move(out), {a},
                  [eps](Node* self) {
                    Node* a = self->parents[0].get();
                    if (!a->requires_grad) return;
                    size_t cols = self->cols();
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* av = a->value.row(r);
                      const float* ov = self->value.row(r);
                      const float* g = self->grad.row(r);
                      float s = eps;
                      for (size_t c = 0; c < cols; ++c) s += av[c] * av[c];
                      float gdoto = 0.0f;
                      for (size_t c = 0; c < cols; ++c) gdoto += g[c] * ov[c];
                      float* ag = a->grad.row(r);
                      for (size_t c = 0; c < cols; ++c) {
                        ag[c] += (2.0f * av[c] / s) * (g[c] - gdoto);
                      }
                    }
                  },
                  "norml2_rows");
}

Var GroupedLinear(const Var& x, const Var& w, const Var& b) {
  size_t groups = w->rows(), h = w->cols();
  SEL_CHECK_EQ(x->cols(), groups * h);
  SEL_CHECK_EQ(b->rows(), 1u);
  SEL_CHECK_EQ(b->cols(), groups);
  size_t rows = x->rows();
  Matrix out(rows, groups);
  for (size_t r = 0; r < rows; ++r) {
    const float* xv = x->value.row(r);
    float* ov = out.row(r);
    for (size_t g = 0; g < groups; ++g) {
      ov[g] = tensor::Dot(w->value.row(g), xv + g * h, h) + b->value(0, g);
    }
  }
  return MakeNode(std::move(out), {x, w, b},
                  [groups, h](Node* self) {
                    Node* x = self->parents[0].get();
                    Node* w = self->parents[1].get();
                    Node* b = self->parents[2].get();
                    for (size_t r = 0; r < self->rows(); ++r) {
                      const float* g = self->grad.row(r);
                      const float* xv = x->value.row(r);
                      for (size_t gi = 0; gi < groups; ++gi) {
                        float gv = g[gi];
                        if (gv == 0.0f) continue;
                        const float* wrow = w->value.row(gi);
                        if (x->requires_grad) {
                          float* xg = x->grad.row(r) + gi * h;
                          for (size_t c = 0; c < h; ++c) xg[c] += gv * wrow[c];
                        }
                        if (w->requires_grad) {
                          float* wg = w->grad.row(gi);
                          const float* xs = xv + gi * h;
                          for (size_t c = 0; c < h; ++c) wg[c] += gv * xs[c];
                        }
                        if (b->requires_grad) b->grad(0, gi) += gv;
                      }
                    }
                  },
                  "grouped_linear");
}

Var PiecewiseLinearGather(const Var& tau, const Var& p, const Var& t) {
  SEL_CHECK(tau->value.SameShape(p->value));
  SEL_CHECK_EQ(t->cols(), 1u);
  SEL_CHECK_EQ(t->rows(), tau->rows());
  size_t rows = tau->rows(), knots = tau->cols();
  SEL_CHECK_GE(knots, 2u);
  Matrix out(rows, 1);
  // Per-row segment index; -1 = clamped left, knots-1 = clamped right.
  auto seg = std::make_shared<std::vector<int>>(rows);
  for (size_t r = 0; r < rows; ++r) {
    const float* tv = tau->value.row(r);
    const float* pv = p->value.row(r);
    float tr = t->value(r, 0);
    if (tr <= tv[0]) {
      (*seg)[r] = -1;
      out(r, 0) = pv[0];
    } else if (tr >= tv[knots - 1]) {
      (*seg)[r] = static_cast<int>(knots) - 1;
      out(r, 0) = pv[knots - 1];
    } else {
      // Largest i with tau[i] <= tr: linear scan is fine for small knot counts
      // but use binary search to stay O(log L).
      const float* hi = std::upper_bound(tv, tv + knots, tr);
      int i = static_cast<int>(hi - tv);  // tau[i-1] <= tr < tau[i]
      i = std::clamp(i, 1, static_cast<int>(knots) - 1);
      (*seg)[r] = i;
      float a = tv[i - 1], b = tv[i];
      float width = b - a;
      if (width <= 1e-12f) {
        out(r, 0) = pv[i - 1];
      } else {
        float wfrac = (tr - a) / width;
        out(r, 0) = pv[i - 1] + wfrac * (pv[i] - pv[i - 1]);
      }
    }
  }
  return MakeNode(
      std::move(out), {tau, p, t},
      [seg, knots](Node* self) {
        Node* tau = self->parents[0].get();
        Node* p = self->parents[1].get();
        Node* t = self->parents[2].get();
        for (size_t r = 0; r < self->rows(); ++r) {
          float g = self->grad(r, 0);
          if (g == 0.0f) continue;
          int i = (*seg)[r];
          if (i < 0) {
            if (p->requires_grad) p->grad(r, 0) += g;
            continue;
          }
          if (i == static_cast<int>(knots) - 1 &&
              t->value(r, 0) >= tau->value(r, knots - 1)) {
            if (p->requires_grad) p->grad(r, knots - 1) += g;
            continue;
          }
          float a = tau->value(r, i - 1), b = tau->value(r, i);
          float width = b - a;
          if (width <= 1e-12f) {
            if (p->requires_grad) p->grad(r, i - 1) += g;
            continue;
          }
          float tr = t->value(r, 0);
          float wfrac = (tr - a) / width;
          float dp = p->value(r, i) - p->value(r, i - 1);
          if (p->requires_grad) {
            p->grad(r, i - 1) += g * (1.0f - wfrac);
            p->grad(r, i) += g * wfrac;
          }
          if (tau->requires_grad) {
            // dw/da = (t-b)/(b-a)^2, dw/db = -(t-a)/(b-a)^2.
            float inv_w2 = 1.0f / (width * width);
            tau->grad(r, i - 1) += g * dp * (tr - b) * inv_w2;
            tau->grad(r, i) += g * dp * (a - tr) * inv_w2;
          }
        }
      },
      "pwl_gather");
}

namespace {
inline float HuberPrime(float r, float delta) {
  if (r > delta) return delta;
  if (r < -delta) return -delta;
  return r;
}
}  // namespace

Var HuberLogLoss(const Var& yhat, const Var& y, float delta, float eps) {
  SEL_CHECK(yhat->value.SameShape(y->value));
  SEL_CHECK_EQ(yhat->cols(), 1u);
  size_t n = yhat->rows();
  SEL_CHECK_GT(n, 0u);
  Matrix out(1, 1);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    float yv = std::max(y->value(r, 0), 0.0f);
    float yh = std::max(yhat->value(r, 0), 0.0f);
    float res = std::log(yv + eps) - std::log(yh + eps);
    float a = std::fabs(res);
    total += (a <= delta) ? 0.5 * res * res : delta * (a - 0.5 * delta);
  }
  out(0, 0) = static_cast<float>(total / static_cast<double>(n));
  return MakeNode(std::move(out), {yhat, y},
                  [delta, eps, n](Node* self) {
                    Node* yhat = self->parents[0].get();
                    Node* y = self->parents[1].get();
                    if (!yhat->requires_grad) return;
                    float g = self->grad(0, 0) / static_cast<float>(n);
                    for (size_t r = 0; r < n; ++r) {
                      float yv = std::max(y->value(r, 0), 0.0f);
                      float yh = std::max(yhat->value(r, 0), 0.0f);
                      float res = std::log(yv + eps) - std::log(yh + eps);
                      // d res / d yhat = -1 / (yhat + eps); clamp at 0 is
                      // inactive when yhat > 0 (guaranteed by construction).
                      yhat->grad(r, 0) +=
                          g * HuberPrime(res, delta) * (-1.0f / (yh + eps));
                    }
                  },
                  "huber_log_loss");
}

Var HuberLoss(const Var& pred, const Var& target, float delta) {
  SEL_CHECK(pred->value.SameShape(target->value));
  size_t n = pred->value.size();
  SEL_CHECK_GT(n, 0u);
  Matrix out(1, 1);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    float res = pred->value.data()[i] - target->value.data()[i];
    float a = std::fabs(res);
    total += (a <= delta) ? 0.5 * res * res : delta * (a - 0.5 * delta);
  }
  out(0, 0) = static_cast<float>(total / static_cast<double>(n));
  return MakeNode(std::move(out), {pred, target},
                  [delta, n](Node* self) {
                    Node* pred = self->parents[0].get();
                    Node* target = self->parents[1].get();
                    if (!pred->requires_grad) return;
                    float g = self->grad(0, 0) / static_cast<float>(n);
                    for (size_t i = 0; i < n; ++i) {
                      float res = pred->value.data()[i] - target->value.data()[i];
                      pred->grad.data()[i] += g * HuberPrime(res, delta);
                    }
                  },
                  "huber_loss");
}

Var MseLoss(const Var& pred, const Var& target) {
  SEL_CHECK(pred->value.SameShape(target->value));
  size_t n = pred->value.size();
  SEL_CHECK_GT(n, 0u);
  Matrix out(1, 1);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    float d = pred->value.data()[i] - target->value.data()[i];
    total += static_cast<double>(d) * d;
  }
  out(0, 0) = static_cast<float>(total / static_cast<double>(n));
  return MakeNode(std::move(out), {pred, target},
                  [n](Node* self) {
                    Node* pred = self->parents[0].get();
                    Node* target = self->parents[1].get();
                    if (!pred->requires_grad) return;
                    float g = self->grad(0, 0) * 2.0f / static_cast<float>(n);
                    for (size_t i = 0; i < n; ++i) {
                      float d = pred->value.data()[i] - target->value.data()[i];
                      pred->grad.data()[i] += g * d;
                    }
                  },
                  "mse_loss");
}

}  // namespace selnet::ag
