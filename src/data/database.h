#pragma once

#include <cstdint>
#include <vector>

#include "data/distance.h"
#include "tensor/matrix.h"

/// \file database.h
/// \brief The vector database D: storage, liveness (for updates), and exact
/// selectivity scans (ground-truth labels).

namespace selnet::data {

/// \brief A collection of d-dimensional vectors with insert/delete support.
///
/// Rows are append-only; deletion flips a liveness bit so object ids stay
/// stable across the update experiments (Section 5.4 / Figure 5).
class Database {
 public:
  Database() : dim_(0) {}
  Database(tensor::Matrix vectors, Metric metric);

  size_t dim() const { return dim_; }
  Metric metric() const { return metric_; }

  /// \brief Number of live objects.
  size_t size() const { return live_count_; }
  /// \brief Number of slots including deleted ones.
  size_t capacity() const { return vectors_.rows(); }

  bool alive(size_t id) const { return alive_[id] != 0; }
  const float* vector(size_t id) const { return vectors_.row(id); }
  const tensor::Matrix& raw() const { return vectors_; }

  /// \brief Append a new object; returns its id.
  size_t Insert(const std::vector<float>& v);

  /// \brief Mark an object deleted (id must be alive).
  void Delete(size_t id);

  /// \brief Ids of all live objects.
  std::vector<size_t> LiveIds() const;

  /// \brief Dense copy of the live vectors (row i = i-th live object).
  tensor::Matrix DenseView() const;

  /// \brief Exact selectivity |{o in D : dist(q, o) <= t}| by linear scan.
  size_t ExactSelectivity(const float* query, float t) const;

  /// \brief All distances from `query` to live objects, unsorted.
  std::vector<float> DistancesFrom(const float* query) const;

 private:
  tensor::Matrix vectors_;
  std::vector<uint8_t> alive_;
  size_t live_count_ = 0;
  size_t dim_;
  Metric metric_ = Metric::kEuclidean;
};

}  // namespace selnet::data
