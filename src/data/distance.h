#pragma once

#include <cstddef>

#include "tensor/matrix.h"

/// \file distance.h
/// \brief Distance functions used by the estimators and the exact scans.
///
/// The paper evaluates Euclidean (l2) distance and cosine distance, and uses
/// the unit-vector identity cos(u,v) = 1 - ||u-v||^2 / 2 to carry metric-space
/// machinery (cover tree, KDE) over to the cosine setting.

namespace selnet::data {

/// \brief Supported distance functions.
enum class Metric {
  /// Euclidean distance ||a-b||_2. A proper metric.
  kEuclidean,
  /// Cosine distance 1 - cos_sim(a, b), in [0, 2]. On unit vectors this is a
  /// monotone transform of Euclidean distance, so triangle-inequality
  /// machinery applies after normalization.
  kCosine,
};

/// \brief Distance between two d-dimensional float spans under `metric`.
float Distance(const float* a, const float* b, size_t d, Metric metric);

/// \brief Distance between rows of two matrices.
float RowDistance(const tensor::Matrix& a, size_t ra, const tensor::Matrix& b,
                  size_t rb, Metric metric);

/// \brief Project every row of `m` onto the unit sphere (zero rows unchanged).
void NormalizeRows(tensor::Matrix* m);

/// \brief Convert a cosine-distance threshold to the equivalent Euclidean
/// threshold on unit vectors: ||u-v|| = sqrt(2 * t_cos).
float CosineToEuclideanThreshold(float t_cos);

/// \brief Inverse of CosineToEuclideanThreshold.
float EuclideanToCosineThreshold(float t_l2);

/// \brief Metric name for table output ("l2" / "cos").
const char* MetricName(Metric metric);

}  // namespace selnet::data
