#pragma once

#include <cstdint>
#include <vector>

#include "data/database.h"
#include "tensor/matrix.h"
#include "util/rng.h"

/// \file workload.h
/// \brief Query workload generation and label maintenance.
///
/// Follows the paper's protocol (Appendix B.1, after Mattig et al.): queries
/// are sampled from the database; per query a geometric ladder of w target
/// selectivities in [1, |D|/100] is converted into distance thresholds via the
/// query's exact distance profile; the resulting (query, t, y) triples are
/// split 80:10:10 *by query object* so test queries are never seen in
/// training. Section 7.9's variant samples thresholds from Beta(3, 2.5)
/// instead.

namespace selnet::data {

/// \brief One labelled training/evaluation point.
struct QuerySample {
  uint32_t query_id = 0;  ///< Row into Workload::queries.
  float t = 0.0f;         ///< Distance threshold.
  float y = 0.0f;         ///< Exact selectivity (label); patched on updates.
};

/// \brief A generated workload with its query matrix and split samples.
struct Workload {
  tensor::Matrix queries;  ///< Q x d query objects.
  std::vector<QuerySample> train;
  std::vector<QuerySample> valid;
  std::vector<QuerySample> test;
  float tmax = 1.0f;  ///< PWL domain upper end (covers all thresholds).
  Metric metric = Metric::kEuclidean;
  size_t w = 0;  ///< Thresholds per query.
};

/// \brief Workload generation parameters.
struct WorkloadSpec {
  size_t num_queries = 280;
  size_t w = 16;                   ///< Thresholds per query.
  double max_sel_fraction = 0.01;  ///< Ladder top = n * fraction (paper: 1%).
  uint64_t seed = 23;
};

/// \brief Geometric-selectivity workload (the paper's default protocol).
Workload GenerateWorkload(const Database& db, const WorkloadSpec& spec);

/// \brief Section 7.9 variant: thresholds drawn from Beta(alpha, beta) over a
/// global range instead of per-query selectivity targets.
Workload GenerateBetaWorkload(const Database& db, const WorkloadSpec& spec,
                              double alpha = 3.0, double beta = 2.5);

/// \brief Patch labels after inserting (`delta`=+1) or deleting (`delta`=-1)
/// the object `vec`; every sample whose query ball contains it is adjusted.
/// With `parallel` the per-sample distance tests shard over util::ParallelFor
/// (each sample is independent, so the result is bit-identical to the serial
/// pass). Pass false from background threads that must not fan work onto the
/// shared pool — the serving stack's update pipeline does.
void PatchLabels(const tensor::Matrix& queries, Metric metric, const float* vec,
                 int delta, std::vector<QuerySample>* samples,
                 bool parallel = true);

/// \brief Recompute all labels exactly against the current database state.
void RelabelExact(const Database& db, const tensor::Matrix& queries,
                  std::vector<QuerySample>* samples);

/// \brief Dense (X, t, y) matrices for a set of samples.
struct Batch {
  tensor::Matrix x;  ///< B x d
  tensor::Matrix t;  ///< B x 1
  tensor::Matrix y;  ///< B x 1
};

/// \brief Materialize the samples at `indices` into dense matrices.
Batch MaterializeBatch(const tensor::Matrix& queries,
                       const std::vector<QuerySample>& samples,
                       const std::vector<size_t>& indices);

/// \brief Materialize all `samples` in order.
Batch MaterializeAll(const tensor::Matrix& queries,
                     const std::vector<QuerySample>& samples);

}  // namespace selnet::data
