#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace selnet::data {

namespace {

// Geometric ladder of w selectivity targets in [1, max_sel].
std::vector<double> SelectivityLadder(size_t w, double max_sel) {
  SEL_CHECK_GE(w, 2u);
  max_sel = std::max(max_sel, 2.0);
  std::vector<double> out(w);
  double log_max = std::log(max_sel);
  for (size_t j = 0; j < w; ++j) {
    out[j] = std::exp(log_max * static_cast<double>(j) /
                      static_cast<double>(w - 1));
  }
  return out;
}

// Sample query objects from the database and copy them into a matrix.
tensor::Matrix SampleQueries(const Database& db, size_t num_queries,
                             util::Rng* rng) {
  std::vector<size_t> live = db.LiveIds();
  SEL_CHECK_GE(live.size(), num_queries);
  std::vector<size_t> picks =
      rng->SampleWithoutReplacement(live.size(), num_queries);
  tensor::Matrix queries(num_queries, db.dim());
  for (size_t i = 0; i < num_queries; ++i) {
    const float* src = db.vector(live[picks[i]]);
    std::copy(src, src + db.dim(), queries.row(i));
  }
  return queries;
}

// 80:10:10 split by query id, then scatter samples accordingly.
void SplitByQuery(size_t num_queries, const std::vector<QuerySample>& all,
                  util::Rng* rng, Workload* out) {
  std::vector<size_t> qids(num_queries);
  for (size_t i = 0; i < num_queries; ++i) qids[i] = i;
  rng->Shuffle(&qids);
  // 0 = train, 1 = valid, 2 = test.
  std::vector<uint8_t> role(num_queries, 0);
  size_t n_train = num_queries * 8 / 10;
  size_t n_valid = num_queries / 10;
  for (size_t i = 0; i < num_queries; ++i) {
    if (i < n_train) {
      role[qids[i]] = 0;
    } else if (i < n_train + n_valid) {
      role[qids[i]] = 1;
    } else {
      role[qids[i]] = 2;
    }
  }
  for (const auto& s : all) {
    switch (role[s.query_id]) {
      case 0: out->train.push_back(s); break;
      case 1: out->valid.push_back(s); break;
      default: out->test.push_back(s); break;
    }
  }
}

}  // namespace

Workload GenerateWorkload(const Database& db, const WorkloadSpec& spec) {
  util::Rng rng(spec.seed);
  Workload wl;
  wl.metric = db.metric();
  wl.w = spec.w;
  wl.queries = SampleQueries(db, spec.num_queries, &rng);

  std::vector<double> ladder =
      SelectivityLadder(spec.w, static_cast<double>(db.size()) * spec.max_sel_fraction);

  std::vector<QuerySample> all(spec.num_queries * spec.w);
  util::ParallelFor(0, spec.num_queries, [&](size_t q) {
    std::vector<float> dists = db.DistancesFrom(wl.queries.row(q));
    std::sort(dists.begin(), dists.end());
    for (size_t j = 0; j < spec.w; ++j) {
      size_t rank = static_cast<size_t>(std::llround(ladder[j]));
      rank = std::clamp<size_t>(rank, 1, dists.size());
      float t = dists[rank - 1];
      // Exact label: count of distances <= t (ties make it >= rank).
      auto ub = std::upper_bound(dists.begin(), dists.end(), t);
      QuerySample& s = all[q * spec.w + j];
      s.query_id = static_cast<uint32_t>(q);
      s.t = t;
      s.y = static_cast<float>(ub - dists.begin());
    }
  });

  float tmax = 0.0f;
  for (const auto& s : all) tmax = std::max(tmax, s.t);
  wl.tmax = tmax * 1.05f;

  SplitByQuery(spec.num_queries, all, &rng, &wl);
  return wl;
}

Workload GenerateBetaWorkload(const Database& db, const WorkloadSpec& spec,
                              double alpha, double beta) {
  util::Rng rng(spec.seed + 1);
  Workload wl;
  wl.metric = db.metric();
  wl.w = spec.w;
  wl.queries = SampleQueries(db, spec.num_queries, &rng);

  // Global range: median of each query's 5%-selectivity distance, so the
  // high-probability region of the Beta covers rapidly-changing selectivities
  // and the ladder top exceeds the default workload's 1% cap (Section 7.9:
  // "the range of selectivity values in this workload is larger").
  size_t probe_rank = std::max<size_t>(2, db.size() / 20);
  std::vector<float> caps(spec.num_queries);
  std::vector<std::vector<float>> sorted_dists(spec.num_queries);
  util::ParallelFor(0, spec.num_queries, [&](size_t q) {
    std::vector<float> dists = db.DistancesFrom(wl.queries.row(q));
    std::sort(dists.begin(), dists.end());
    caps[q] = dists[std::min(probe_rank, dists.size()) - 1];
    sorted_dists[q] = std::move(dists);
  });
  std::vector<float> caps_sorted = caps;
  std::nth_element(caps_sorted.begin(), caps_sorted.begin() + caps_sorted.size() / 2,
                   caps_sorted.end());
  float range = caps_sorted[caps_sorted.size() / 2];

  std::vector<QuerySample> all(spec.num_queries * spec.w);
  for (size_t q = 0; q < spec.num_queries; ++q) {
    const auto& dists = sorted_dists[q];
    for (size_t j = 0; j < spec.w; ++j) {
      float t = static_cast<float>(rng.Beta(alpha, beta)) * range;
      auto ub = std::upper_bound(dists.begin(), dists.end(), t);
      QuerySample& s = all[q * spec.w + j];
      s.query_id = static_cast<uint32_t>(q);
      s.t = t;
      s.y = static_cast<float>(ub - dists.begin());
    }
  }

  float tmax = 0.0f;
  for (const auto& s : all) tmax = std::max(tmax, s.t);
  wl.tmax = tmax * 1.05f;

  SplitByQuery(spec.num_queries, all, &rng, &wl);
  return wl;
}

void PatchLabels(const tensor::Matrix& queries, Metric metric, const float* vec,
                 int delta, std::vector<QuerySample>* samples, bool parallel) {
  size_t dim = queries.cols();
  auto patch_one = [&](size_t i) {
    QuerySample& s = (*samples)[i];
    float d = Distance(queries.row(s.query_id), vec, dim, metric);
    if (d <= s.t) s.y += static_cast<float>(delta);
  };
  if (!parallel) {
    for (size_t i = 0; i < samples->size(); ++i) patch_one(i);
    return;
  }
  // Each sample's patch is independent (one distance test, one conditional
  // add on its own label), so sharding the loop is bit-identical to the
  // serial pass regardless of interleaving. The grain keeps small workloads
  // on the calling thread.
  util::ParallelFor(0, samples->size(), patch_one, /*grain=*/512);
}

void RelabelExact(const Database& db, const tensor::Matrix& queries,
                  std::vector<QuerySample>* samples) {
  util::ParallelFor(0, samples->size(), [&](size_t i) {
    QuerySample& s = (*samples)[i];
    s.y = static_cast<float>(db.ExactSelectivity(queries.row(s.query_id), s.t));
  });
}

Batch MaterializeBatch(const tensor::Matrix& queries,
                       const std::vector<QuerySample>& samples,
                       const std::vector<size_t>& indices) {
  Batch b;
  size_t dim = queries.cols();
  b.x = tensor::Matrix(indices.size(), dim);
  b.t = tensor::Matrix(indices.size(), 1);
  b.y = tensor::Matrix(indices.size(), 1);
  for (size_t i = 0; i < indices.size(); ++i) {
    const QuerySample& s = samples[indices[i]];
    std::copy(queries.row(s.query_id), queries.row(s.query_id) + dim, b.x.row(i));
    b.t(i, 0) = s.t;
    b.y(i, 0) = s.y;
  }
  return b;
}

Batch MaterializeAll(const tensor::Matrix& queries,
                     const std::vector<QuerySample>& samples) {
  std::vector<size_t> idx(samples.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return MaterializeBatch(queries, samples, idx);
}

}  // namespace selnet::data
