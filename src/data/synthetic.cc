#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "data/distance.h"
#include "util/check.h"

namespace selnet::data {

namespace {

struct Mixture {
  tensor::Matrix centers;        // k x dim
  std::vector<float> stds;       // k
  std::vector<double> cum_mass;  // k, cumulative sampling weights
  std::vector<float> axis_scale; // dim, anisotropy
};

// The mixture shape (centers, spreads, weights) is derived only from
// spec.seed so that update streams can draw fresh points from the same
// distribution later.
Mixture BuildMixture(const SyntheticSpec& spec) {
  SEL_CHECK_GT(spec.num_clusters, 0u);
  util::Rng rng(spec.seed);
  Mixture mix;
  mix.centers = tensor::Matrix::Gaussian(spec.num_clusters, spec.dim, &rng,
                                         spec.center_std);
  mix.stds.resize(spec.num_clusters);
  for (auto& s : mix.stds) {
    s = static_cast<float>(rng.Uniform(spec.cluster_std_min, spec.cluster_std_max));
  }
  mix.axis_scale.assign(spec.dim, 1.0f);
  if (spec.anisotropy > 1.0f) {
    for (auto& a : mix.axis_scale) {
      a = static_cast<float>(
          std::exp(rng.Uniform(-std::log(spec.anisotropy), std::log(spec.anisotropy))));
    }
  }
  // Zipf-skewed cluster masses: w_r = r^{-s}.
  mix.cum_mass.resize(spec.num_clusters);
  double total = 0.0;
  for (size_t r = 0; r < spec.num_clusters; ++r) {
    total += std::pow(static_cast<double>(r + 1), -spec.zipf_s);
    mix.cum_mass[r] = total;
  }
  for (auto& m : mix.cum_mass) m /= total;
  return mix;
}

size_t SampleCluster(const Mixture& mix, util::Rng* rng) {
  double u = rng->Uniform();
  auto it = std::lower_bound(mix.cum_mass.begin(), mix.cum_mass.end(), u);
  size_t k = static_cast<size_t>(it - mix.cum_mass.begin());
  return std::min(k, mix.cum_mass.size() - 1);
}

tensor::Matrix Sample(const SyntheticSpec& spec, const Mixture& mix, size_t count,
                      util::Rng* rng) {
  tensor::Matrix out(count, spec.dim);
  for (size_t i = 0; i < count; ++i) {
    size_t k = SampleCluster(mix, rng);
    float* row = out.row(i);
    const float* center = mix.centers.row(k);
    for (size_t c = 0; c < spec.dim; ++c) {
      row[c] = center[c] + static_cast<float>(rng->Normal(0.0, mix.stds[k])) *
                               mix.axis_scale[c];
    }
  }
  if (spec.normalize) NormalizeRows(&out);
  return out;
}

}  // namespace

SyntheticSpec SpecFor(Corpus corpus, const util::ScaleConfig& cfg) {
  SyntheticSpec spec;
  spec.n = cfg.n;
  spec.dim = cfg.dim;
  switch (corpus) {
    case Corpus::kFasttextLike:
      // Word embeddings: moderately many clusters, skewed sizes, anisotropic,
      // NOT normalized (the paper evaluates both cos and l2 on it).
      spec.num_clusters = 40;
      spec.zipf_s = 1.0;
      spec.cluster_std_min = 0.08f;
      spec.cluster_std_max = 0.45f;
      spec.anisotropy = 2.0f;
      spec.normalize = false;
      spec.seed = 11;
      break;
    case Corpus::kFaceLike:
      // FaceNet-style: many tight identity clusters on the unit sphere.
      spec.num_clusters = 96;
      spec.zipf_s = 0.4;
      spec.cluster_std_min = 0.04f;
      spec.cluster_std_max = 0.15f;
      spec.anisotropy = 1.0f;
      spec.normalize = true;
      spec.seed = 13;
      break;
    case Corpus::kYoutubeLike:
      // Wide, normalized, higher intrinsic dimension, fewer broad clusters.
      spec.dim = cfg.dim * 2;
      spec.num_clusters = 12;
      spec.zipf_s = 0.6;
      spec.cluster_std_min = 0.25f;
      spec.cluster_std_max = 0.6f;
      spec.anisotropy = 1.5f;
      spec.normalize = true;
      spec.seed = 17;
      break;
  }
  return spec;
}

tensor::Matrix GenerateMixture(const SyntheticSpec& spec) {
  Mixture mix = BuildMixture(spec);
  util::Rng rng(spec.seed * 6364136223846793005ull + 1442695040888963407ull);
  return Sample(spec, mix, spec.n, &rng);
}

tensor::Matrix DrawFromSameMixture(const SyntheticSpec& spec, size_t count,
                                   uint64_t stream_seed) {
  Mixture mix = BuildMixture(spec);
  util::Rng rng(stream_seed ^ 0xabcdef1234567890ull);
  return Sample(spec, mix, count, &rng);
}

const char* CorpusName(Corpus corpus) {
  switch (corpus) {
    case Corpus::kFasttextLike: return "fasttext";
    case Corpus::kFaceLike: return "face";
    case Corpus::kYoutubeLike: return "YouTube";
  }
  return "unknown";
}

}  // namespace selnet::data
