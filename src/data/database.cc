#include "data/database.h"

#include <algorithm>

#include "util/check.h"

namespace selnet::data {

Database::Database(tensor::Matrix vectors, Metric metric)
    : vectors_(std::move(vectors)),
      alive_(vectors_.rows(), uint8_t{1}),
      live_count_(vectors_.rows()),
      dim_(vectors_.cols()),
      metric_(metric) {}

size_t Database::Insert(const std::vector<float>& v) {
  SEL_CHECK_EQ(v.size(), dim_);
  size_t rows = vectors_.rows();
  tensor::Matrix grown(rows + 1, dim_);
  std::copy(vectors_.data(), vectors_.data() + vectors_.size(), grown.data());
  std::copy(v.begin(), v.end(), grown.row(rows));
  vectors_ = std::move(grown);
  alive_.push_back(1);
  ++live_count_;
  return rows;
}

void Database::Delete(size_t id) {
  SEL_CHECK_LT(id, alive_.size());
  SEL_CHECK_MSG(alive_[id] != 0, "double delete");
  alive_[id] = 0;
  --live_count_;
}

std::vector<size_t> Database::LiveIds() const {
  std::vector<size_t> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) out.push_back(i);
  }
  return out;
}

tensor::Matrix Database::DenseView() const {
  tensor::Matrix out(live_count_, dim_);
  size_t r = 0;
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) continue;
    std::copy(vectors_.row(i), vectors_.row(i) + dim_, out.row(r++));
  }
  return out;
}

size_t Database::ExactSelectivity(const float* query, float t) const {
  size_t count = 0;
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) continue;
    if (Distance(query, vectors_.row(i), dim_, metric_) <= t) ++count;
  }
  return count;
}

std::vector<float> Database::DistancesFrom(const float* query) const {
  std::vector<float> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) continue;
    out.push_back(Distance(query, vectors_.row(i), dim_, metric_));
  }
  return out;
}

}  // namespace selnet::data
