#include "data/distance.h"

#include <cmath>

#include "tensor/blas.h"
#include "util/check.h"

namespace selnet::data {

float Distance(const float* a, const float* b, size_t d, Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return std::sqrt(tensor::SquaredL2(a, b, d));
    case Metric::kCosine: {
      float dot = 0.0f, na = 0.0f, nb = 0.0f;
      for (size_t i = 0; i < d; ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
      }
      float denom = std::sqrt(na) * std::sqrt(nb);
      if (denom <= 1e-20f) return 1.0f;
      float sim = dot / denom;
      sim = std::fmax(-1.0f, std::fmin(1.0f, sim));
      return 1.0f - sim;
    }
  }
  return 0.0f;
}

float RowDistance(const tensor::Matrix& a, size_t ra, const tensor::Matrix& b,
                  size_t rb, Metric metric) {
  SEL_DCHECK_EQ(a.cols(), b.cols());
  return Distance(a.row(ra), b.row(rb), a.cols(), metric);
}

void NormalizeRows(tensor::Matrix* m) {
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->row(r);
    float norm = std::sqrt(tensor::Dot(row, row, m->cols()));
    if (norm <= 1e-20f) continue;
    float inv = 1.0f / norm;
    for (size_t c = 0; c < m->cols(); ++c) row[c] *= inv;
  }
}

float CosineToEuclideanThreshold(float t_cos) {
  return std::sqrt(std::fmax(0.0f, 2.0f * t_cos));
}

float EuclideanToCosineThreshold(float t_l2) { return 0.5f * t_l2 * t_l2; }

const char* MetricName(Metric metric) {
  return metric == Metric::kEuclidean ? "l2" : "cos";
}

}  // namespace selnet::data
