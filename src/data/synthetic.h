#pragma once

#include <cstdint>

#include "tensor/matrix.h"
#include "util/env.h"
#include "util/rng.h"

/// \file synthetic.h
/// \brief Synthetic embedding corpora standing in for the paper's datasets.
///
/// The paper evaluates on fasttext (1M x 300, unnormalized), face (2M x 128
/// FaceNet embeddings, normalized) and YouTube (0.35M x 1770, normalized).
/// None are available offline, so each is simulated by a Gaussian mixture
/// whose structure matches the property that drives the estimator's
/// behaviour: clustered mass with heavy-tailed cluster sizes produces the
/// flat-steep-saturating selectivity curves of Figure 4. See DESIGN.md §4 for
/// the substitution rationale.

namespace selnet::data {

/// \brief Parameters of a Gaussian-mixture corpus.
struct SyntheticSpec {
  size_t n = 8000;
  size_t dim = 24;
  size_t num_clusters = 32;
  /// Cluster size skew: sizes proportional to rank^{-zipf_s}.
  double zipf_s = 0.8;
  /// Per-cluster stddev drawn uniformly from this range.
  float cluster_std_min = 0.05f;
  float cluster_std_max = 0.25f;
  /// Spread of cluster centers (stddev of center coordinates).
  float center_std = 1.0f;
  /// Per-dimension anisotropic scaling in [1/a, a]; 1 = isotropic.
  float anisotropy = 1.0f;
  /// Project rows to the unit sphere after generation.
  bool normalize = false;
  uint64_t seed = 7;
};

/// \brief The three corpora of the evaluation section.
enum class Corpus { kFasttextLike, kFaceLike, kYoutubeLike };

/// \brief Spec presets matching DESIGN.md §4, scaled by `cfg`.
SyntheticSpec SpecFor(Corpus corpus, const util::ScaleConfig& cfg);

/// \brief Draw a corpus from its mixture spec.
tensor::Matrix GenerateMixture(const SyntheticSpec& spec);

/// \brief Draw `count` fresh objects from the same mixture (for inserts).
tensor::Matrix DrawFromSameMixture(const SyntheticSpec& spec, size_t count,
                                   uint64_t stream_seed);

/// \brief Corpus name for table output.
const char* CorpusName(Corpus corpus);

}  // namespace selnet::data
