#pragma once

#include <vector>

/// \file isotonic.h
/// \brief Isotonic regression via Pool-Adjacent-Violators (PAVA).
///
/// Referenced by the paper's related-work discussion as the classic free-form
/// monotone fit; used here as a testing utility (projecting arbitrary curves
/// onto the monotone cone) and in the density example for post-hoc smoothing.

namespace selnet::bl {

/// \brief Weighted L2 isotonic (non-decreasing) fit of `y`.
///
/// \param y values in x-order
/// \param w optional positive weights (empty = uniform)
/// \return fitted non-decreasing sequence of the same length
std::vector<double> PavaIsotonic(const std::vector<double>& y,
                                 const std::vector<double>& w = {});

/// \brief True iff `y` is non-decreasing.
bool IsNonDecreasing(const std::vector<double>& y, double tol = 0.0);

}  // namespace selnet::bl
