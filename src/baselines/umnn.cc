#include "baselines/umnn.h"

#include <cmath>

#include "util/check.h"

namespace selnet::bl {

void ClenshawCurtisRule(size_t n, std::vector<double>* nodes,
                        std::vector<double>* weights) {
  SEL_CHECK_GE(n, 2u);
  SEL_CHECK_EQ(n % 2, 0u);  // even N keeps the closed-form weights simple
  nodes->resize(n + 1);
  weights->resize(n + 1);
  const double pi = std::acos(-1.0);
  for (size_t j = 0; j <= n; ++j) {
    (*nodes)[j] = std::cos(static_cast<double>(j) * pi / static_cast<double>(n));
    // w_j = (c_j / n) * (1 - sum_{k=1}^{n/2} b_k / (4k^2 - 1) * cos(2 k j pi / n))
    double sum = 0.0;
    for (size_t k = 1; k <= n / 2; ++k) {
      double bk = (k == n / 2) ? 1.0 : 2.0;
      sum += bk / (4.0 * static_cast<double>(k) * k - 1.0) *
             std::cos(2.0 * static_cast<double>(k) * j * pi / n);
    }
    double cj = (j == 0 || j == n) ? 1.0 : 2.0;
    (*weights)[j] = cj / static_cast<double>(n) * (1.0 - sum);
  }
}

UmnnEstimator::UmnnEstimator(const UmnnConfig& cfg, uint64_t seed)
    : DeepRegressor([&] {
        DeepConfig base;
        base.input_dim = cfg.input_dim;
        base.lr = cfg.lr;
        base.batch_size = cfg.batch_size;
        base.huber_delta = cfg.huber_delta;
        base.log_eps = cfg.log_eps;
        return base;
      }()),
      umnn_cfg_(cfg),
      rng_(seed) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  integrand_ = nn::Mlp({cfg.input_dim + 1, cfg.hidden, cfg.hidden, 1}, &rng_,
                       nn::Activation::kRelu, nn::Activation::kSoftplus);
  bias_net_ = nn::Mlp({cfg.input_dim, cfg.hidden / 2, 1}, &rng_,
                      nn::Activation::kRelu, nn::Activation::kSoftplus);
  ClenshawCurtisRule(cfg.quad_points, &nodes_, &weights_);
}

ag::Var UmnnEstimator::Forward(const ag::Var& x, const ag::Var& t) const {
  size_t batch = x->rows();
  size_t d = x->cols();
  size_t q = nodes_.size();
  // Stack (x_b, s_{b,j}) rows, b-major, so Reshape below recovers B x Q.
  tensor::Matrix stacked(batch * q, d + 1);
  for (size_t b = 0; b < batch; ++b) {
    double tb = t->value(b, 0);
    const float* xb = x->value.row(b);
    for (size_t j = 0; j < q; ++j) {
      float* row = stacked.row(b * q + j);
      std::copy(xb, xb + d, row);
      row[d] = static_cast<float>(tb * (nodes_[j] + 1.0) * 0.5);  // [0, t]
    }
  }
  ag::Var g = integrand_.Forward(ag::Constant(std::move(stacked)));
  ag::Var grid = ag::Reshape(g, batch, q);  // B x Q positive integrand values
  // Row-constant quadrature weights; the t/2 interval scaling is applied as a
  // per-row factor.
  tensor::Matrix w(1, q);
  for (size_t j = 0; j < q; ++j) w(0, j) = static_cast<float>(weights_[j]);
  ag::Var weighted = ag::Mul(grid, ag::RepeatRows(ag::Constant(std::move(w)), batch));
  tensor::Matrix half_t = t->value;
  half_t.Apply([](float v) { return 0.5f * v; });
  ag::Var integral =
      ag::MulColBroadcast(ag::RowSums(weighted), ag::Constant(std::move(half_t)));
  ag::Var bias = bias_net_.Forward(x);  // >= 0 via Softplus
  return ag::Add(integral, bias);
}

ag::Var UmnnEstimator::LossFor(const ag::Var& pred,
                               const data::Batch& batch) const {
  return ag::HuberLogLoss(pred, ag::Constant(batch.y), cfg_.huber_delta,
                          cfg_.log_eps);
}

tensor::Matrix UmnnEstimator::ToSelectivity(const tensor::Matrix& raw) const {
  tensor::Matrix out = raw;
  out.Apply([](float v) { return std::max(v, 0.0f); });
  return out;
}

std::vector<ag::Var> UmnnEstimator::Params() const {
  std::vector<ag::Var> out = integrand_.Params();
  for (const auto& p : bias_net_.Params()) out.push_back(p);
  return out;
}

}  // namespace selnet::bl
