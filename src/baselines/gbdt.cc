#include "baselines/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/common.h"
#include "util/check.h"

namespace selnet::bl {

namespace {

// Quantile bin edges for one feature column; at most num_bins-1 edges.
std::vector<float> QuantileEdges(std::vector<float> values, size_t num_bins) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<float> edges;
  if (values.size() <= num_bins) {
    // Few distinct values: one edge between each pair.
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      edges.push_back(0.5f * (values[i] + values[i + 1]));
    }
    return edges;
  }
  for (size_t b = 1; b < num_bins; ++b) {
    size_t idx = b * values.size() / num_bins;
    edges.push_back(values[std::min(idx, values.size() - 1)]);
  }
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

inline uint16_t BinOf(float v, const std::vector<float>& edges) {
  return static_cast<uint16_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
}

}  // namespace

float GbdtEstimator::Tree::Eval(const float* features) const {
  int idx = 0;
  while (nodes[idx].feature >= 0) {
    const Node& n = nodes[idx];
    idx = (features[n.feature] <= n.threshold) ? n.left : n.right;
  }
  return nodes[idx].value;
}

void GbdtEstimator::BuildTree(const std::vector<std::vector<uint16_t>>& bins,
                              const std::vector<std::vector<float>>& edges,
                              const std::vector<float>& residual,
                              std::vector<uint32_t> samples, size_t depth,
                              float lo, float hi, Tree* tree, int* node_index) {
  int self = *node_index;
  SEL_CHECK_EQ(static_cast<size_t>(self), tree->nodes.size());
  tree->nodes.emplace_back();
  ++*node_index;

  double sum = 0.0;
  for (uint32_t s : samples) sum += residual[s];
  double mean = sum / std::max<size_t>(1, samples.size());
  float leaf_value =
      std::clamp(static_cast<float>(mean), lo, hi) * cfg_.learning_rate;

  const size_t t_feature = num_features_ - 1;
  bool can_split = depth < cfg_.max_depth && samples.size() >= 2 * cfg_.min_leaf;
  int best_feature = -1;
  size_t best_bin = 0;
  double best_gain = 1e-7;  // require strictly positive gain
  double best_lmean = 0.0, best_rmean = 0.0;

  if (can_split) {
    double total_sum = sum;
    size_t total_n = samples.size();
    for (size_t f = 0; f < num_features_; ++f) {
      size_t nbins = edges[f].size() + 1;
      if (nbins < 2) continue;
      // Histogram of residual sums/counts per bin.
      std::vector<double> hsum(nbins, 0.0);
      std::vector<size_t> hcnt(nbins, 0);
      for (uint32_t s : samples) {
        uint16_t b = bins[f][s];
        hsum[b] += residual[s];
        ++hcnt[b];
      }
      double lsum = 0.0;
      size_t lcnt = 0;
      for (size_t b = 0; b + 1 < nbins; ++b) {
        lsum += hsum[b];
        lcnt += hcnt[b];
        size_t rcnt = total_n - lcnt;
        if (lcnt < cfg_.min_leaf || rcnt < cfg_.min_leaf) continue;
        double rsum = total_sum - lsum;
        // SSE reduction for mean-fitting: sum_l^2/n_l + sum_r^2/n_r - S^2/n.
        double gain = lsum * lsum / static_cast<double>(lcnt) +
                      rsum * rsum / static_cast<double>(rcnt) -
                      total_sum * total_sum / static_cast<double>(total_n);
        if (gain <= best_gain) continue;
        double lmean = lsum / static_cast<double>(lcnt);
        double rmean = rsum / static_cast<double>(rcnt);
        if (cfg_.monotone_t && f == t_feature && lmean > rmean) {
          continue;  // would violate monotonicity in t
        }
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = b;
        best_lmean = lmean;
        best_rmean = rmean;
      }
    }
  }

  if (best_feature < 0) {
    tree->nodes[self].value = leaf_value;
    return;
  }

  // Children bounds: only a monotone split on t tightens them.
  float llo = lo, lhi = hi, rlo = lo, rhi = hi;
  if (cfg_.monotone_t && best_feature == static_cast<int>(t_feature)) {
    float mid = static_cast<float>(0.5 * (best_lmean + best_rmean));
    lhi = std::min(lhi, mid);
    rlo = std::max(rlo, mid);
  }

  std::vector<uint32_t> left, right;
  left.reserve(samples.size());
  right.reserve(samples.size());
  for (uint32_t s : samples) {
    if (bins[best_feature][s] <= best_bin) {
      left.push_back(s);
    } else {
      right.push_back(s);
    }
  }
  samples.clear();
  samples.shrink_to_fit();

  tree->nodes[self].feature = best_feature;
  tree->nodes[self].threshold = edges[best_feature][best_bin];
  tree->nodes[self].left = *node_index;
  BuildTree(bins, edges, residual, std::move(left), depth + 1, llo, lhi, tree,
            node_index);
  tree->nodes[self].right = *node_index;
  BuildTree(bins, edges, residual, std::move(right), depth + 1, rlo, rhi, tree,
            node_index);
}

void GbdtEstimator::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.workload != nullptr);
  const auto& wl = *ctx.workload;
  SEL_CHECK(!wl.train.empty());
  data::Batch all = data::MaterializeAll(wl.queries, wl.train);
  size_t n = all.x.rows(), d = all.x.cols();
  num_features_ = d + 1;

  // Feature matrix [x; t] stored column-wise for histogram building.
  std::vector<std::vector<float>> columns(num_features_, std::vector<float>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < d; ++f) columns[f][i] = all.x(i, f);
    columns[d][i] = all.t(i, 0);
  }
  std::vector<std::vector<float>> edges(num_features_);
  std::vector<std::vector<uint16_t>> bins(num_features_,
                                          std::vector<uint16_t>(n));
  for (size_t f = 0; f < num_features_; ++f) {
    edges[f] = QuantileEdges(columns[f], cfg_.num_bins);
    for (size_t i = 0; i < n; ++i) bins[f][i] = BinOf(columns[f][i], edges[f]);
  }

  tensor::Matrix target = LogTargets(all.y, cfg_.log_eps);
  double mean = target.Sum() / static_cast<double>(n);
  base_score_ = static_cast<float>(mean);

  std::vector<float> pred(n, base_score_);
  std::vector<float> residual(n);
  std::vector<uint32_t> root_samples(n);
  for (size_t i = 0; i < n; ++i) root_samples[i] = static_cast<uint32_t>(i);

  trees_.clear();
  trees_.reserve(cfg_.num_trees);
  constexpr float kInf = std::numeric_limits<float>::max();
  for (size_t m = 0; m < cfg_.num_trees; ++m) {
    for (size_t i = 0; i < n; ++i) residual[i] = target(i, 0) - pred[i];
    Tree tree;
    int node_index = 0;
    BuildTree(bins, edges, residual, root_samples, 0, -kInf, kInf, &tree,
              &node_index);
    // Update predictions with this tree.
    std::vector<float> features(num_features_);
    for (size_t i = 0; i < n; ++i) {
      for (size_t f = 0; f < d; ++f) features[f] = all.x(i, f);
      features[d] = all.t(i, 0);
      pred[i] += tree.Eval(features.data());
    }
    trees_.push_back(std::move(tree));
  }
}

tensor::Matrix GbdtEstimator::Predict(const tensor::Matrix& x,
                                      const tensor::Matrix& t) {
  SEL_CHECK_EQ(x.rows(), t.rows());
  tensor::Matrix log_pred(x.rows(), 1);
  std::vector<float> features(num_features_);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t f = 0; f + 1 < num_features_; ++f) features[f] = x(r, f);
    features[num_features_ - 1] = t(r, 0);
    float acc = base_score_;
    for (const auto& tree : trees_) acc += tree.Eval(features.data());
    log_pred(r, 0) = acc;
  }
  return ExpPredictions(log_pred, cfg_.log_eps);
}

}  // namespace selnet::bl
