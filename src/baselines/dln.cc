#include "baselines/dln.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace selnet::bl {

namespace {

// Multilinear interpolation over the 2^m unit hypercube vertices.
// z: B x m in [0,1]; theta: 1 x 2^m vertex values. out[b] =
// sum_v theta_v * prod_i (v_i ? z_i : 1 - z_i).
ag::Var MultilinearInterp(const ag::Var& z, const ag::Var& theta) {
  size_t m = z->cols();
  size_t verts = theta->cols();
  SEL_CHECK_EQ(verts, size_t{1} << m);
  SEL_CHECK_EQ(theta->rows(), 1u);
  size_t rows = z->rows();
  tensor::Matrix out(rows, 1);
  for (size_t b = 0; b < rows; ++b) {
    const float* zb = z->value.row(b);
    double acc = 0.0;
    for (size_t v = 0; v < verts; ++v) {
      double w = 1.0;
      for (size_t i = 0; i < m; ++i) {
        w *= (v >> i & 1u) ? zb[i] : (1.0 - zb[i]);
      }
      acc += w * theta->value(0, v);
    }
    out(b, 0) = static_cast<float>(acc);
  }
  return ag::MakeNode(
      std::move(out), {z, theta},
      [m, verts](ag::Node* self) {
        ag::Node* z = self->parents[0].get();
        ag::Node* theta = self->parents[1].get();
        for (size_t b = 0; b < self->rows(); ++b) {
          float g = self->grad(b, 0);
          if (g == 0.0f) continue;
          const float* zb = z->value.row(b);
          for (size_t v = 0; v < verts; ++v) {
            double w = 1.0;
            for (size_t i = 0; i < m; ++i) {
              w *= (v >> i & 1u) ? zb[i] : (1.0 - zb[i]);
            }
            if (theta->requires_grad) {
              theta->grad(0, v) += static_cast<float>(g * w);
            }
            if (z->requires_grad) {
              float tv = theta->value(0, v);
              for (size_t i = 0; i < m; ++i) {
                double wpartial = 1.0;
                for (size_t j = 0; j < m; ++j) {
                  if (j == i) continue;
                  wpartial *= (v >> j & 1u) ? zb[j] : (1.0 - zb[j]);
                }
                float sign = (v >> i & 1u) ? 1.0f : -1.0f;
                z->grad(b, i) += static_cast<float>(g * tv * sign * wpartial);
              }
            }
          }
        }
      },
      "multilinear_interp");
}

// Subset-sum ("zeta") matrix: Z[u][v] = 1 iff u's bits are a subset of v's.
// theta = relu(raw) * Z yields vertex values monotone in every lattice input.
tensor::Matrix ZetaMatrix(size_t m) {
  size_t verts = size_t{1} << m;
  tensor::Matrix z(verts, verts);
  for (size_t u = 0; u < verts; ++u) {
    for (size_t v = 0; v < verts; ++v) {
      if ((u & v) == u) z(u, v) = 1.0f;
    }
  }
  return z;
}

}  // namespace

DlnEstimator::DlnEstimator(const DlnConfig& cfg, uint64_t seed)
    : DeepRegressor([&] {
        DeepConfig base;
        base.input_dim = cfg.input_dim;
        base.lr = cfg.lr;
        base.batch_size = cfg.batch_size;
        base.huber_delta = cfg.huber_delta;
        base.log_eps = cfg.log_eps;
        return base;
      }()),
      dln_cfg_(cfg),
      rng_(seed) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  size_t features = cfg.input_dim + 1;  // [x; t]
  size_t k = cfg.calib_keypoints;
  for (size_t f = 0; f < features; ++f) {
    calib_values_.push_back(
        ag::Param(tensor::Matrix::Uniform(1, k, &rng_, -0.1f, 0.1f)));
  }
  embed_w_free_ = ag::Param(nn::XavierUniform(cfg.input_dim, cfg.embed_dim, &rng_));
  embed_w_t_ = ag::Param(tensor::Matrix::Uniform(1, cfg.embed_dim, &rng_, 0.2f, 0.8f));
  embed_b_ = ag::Param(tensor::Matrix(1, cfg.embed_dim));
  for (size_t l = 0; l < cfg.num_lattices; ++l) {
    lattice_raw_.push_back(
        ag::Param(tensor::Matrix::Uniform(1, 4, &rng_, 0.0f, 0.5f)));
    lattice_dims_.emplace_back(l % cfg.embed_dim, (l + 1) % cfg.embed_dim);
  }
  out_scale_raw_ = ag::Param(tensor::Matrix::Full(1, 1, 1.0f));
  out_bias_ = ag::Param(tensor::Matrix(1, 1));
}

void DlnEstimator::Fit(const eval::TrainContext& ctx) {
  // Keypoints span each feature's empirical range on the training split;
  // they are equally spaced and fixed — exactly the restriction Section 6.2
  // analyzes (only the calibrator *values* are learnable).
  const auto& wl = *ctx.workload;
  data::Batch all = data::MaterializeAll(wl.queries, wl.train);
  size_t features = dln_cfg_.input_dim + 1;
  size_t k = dln_cfg_.calib_keypoints;
  calib_keypoints_.assign(features, std::vector<float>(k));
  for (size_t f = 0; f < features; ++f) {
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (size_t i = 0; i < all.x.rows(); ++i) {
      float v = (f < dln_cfg_.input_dim) ? all.x(i, f) : all.t(i, 0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi <= lo) hi = lo + 1e-3f;
    for (size_t j = 0; j < k; ++j) {
      calib_keypoints_[f][j] =
          lo + (hi - lo) * static_cast<float>(j) / static_cast<float>(k - 1);
    }
  }
  ranges_ready_ = true;
  DeepRegressor::Fit(ctx);
}

ag::Var DlnEstimator::Calibrate(const ag::Var& features) const {
  size_t batch = features->rows();
  size_t nf = calib_values_.size();
  size_t k = dln_cfg_.calib_keypoints;
  ag::Var out;
  for (size_t f = 0; f < nf; ++f) {
    // Fixed keypoints (constant tau), learnable values (p). The t feature's
    // values go through cumsum(ReLU) so its calibrator is monotone.
    tensor::Matrix tau_b(batch, k);
    for (size_t b = 0; b < batch; ++b) {
      std::copy(calib_keypoints_[f].begin(), calib_keypoints_[f].end(),
                tau_b.row(b));
    }
    ag::Var p_row = (f + 1 == nf)
                        ? ag::CumsumRows(ag::Relu(calib_values_[f]))
                        : calib_values_[f];
    ag::Var p = ag::RepeatRows(p_row, batch);
    ag::Var v = ag::SliceCols(features, f, f + 1);
    ag::Var c = ag::PiecewiseLinearGather(ag::Constant(std::move(tau_b)), p, v);
    out = out ? ag::ConcatCols(out, c) : c;
  }
  return out;
}

ag::Var DlnEstimator::Forward(const ag::Var& x, const ag::Var& t) const {
  SEL_CHECK_MSG(ranges_ready_, "DLN Forward before Fit computed keypoints");
  ag::Var features = ag::ConcatCols(x, t);
  ag::Var calib = Calibrate(features);  // B x (d+1)
  size_t d = dln_cfg_.input_dim;
  ag::Var cx = ag::SliceCols(calib, 0, d);
  ag::Var ct = ag::SliceCols(calib, d, d + 1);
  // Monotone linear embedding: free weights for x, non-negative for t.
  ag::Var embed = ag::Add(ag::MatMul(cx, embed_w_free_),
                          ag::MatMul(ct, ag::Softplus(embed_w_t_)));
  embed = ag::Sigmoid(ag::AddRowBroadcast(embed, embed_b_));  // [0,1]^E
  // Lattice ensemble over dim pairs.
  static const tensor::Matrix kZeta2 = ZetaMatrix(2);
  ag::Var acc;
  for (size_t l = 0; l < lattice_raw_.size(); ++l) {
    auto [d0, d1] = lattice_dims_[l];
    ag::Var z = ag::ConcatCols(ag::SliceCols(embed, d0, d0 + 1),
                               ag::SliceCols(embed, d1, d1 + 1));
    ag::Var theta = ag::MatMul(ag::Relu(lattice_raw_[l]), ag::Constant(kZeta2));
    ag::Var o = MultilinearInterp(z, theta);
    acc = acc ? ag::Add(acc, o) : o;
  }
  acc = ag::Scale(acc, 1.0f / static_cast<float>(lattice_raw_.size()));
  // Non-negative output scale keeps the t path monotone.
  ag::Var scaled = ag::MatMul(acc, ag::Softplus(out_scale_raw_));
  return ag::AddRowBroadcast(scaled, out_bias_);
}

tensor::Matrix DlnEstimator::Predict(const tensor::Matrix& x,
                                     const tensor::Matrix& t) {
  return DeepRegressor::Predict(x, t);
}

std::vector<ag::Var> DlnEstimator::Params() const {
  std::vector<ag::Var> out = calib_values_;
  out.push_back(embed_w_free_);
  out.push_back(embed_w_t_);
  out.push_back(embed_b_);
  for (const auto& p : lattice_raw_) out.push_back(p);
  out.push_back(out_scale_raw_);
  out.push_back(out_bias_);
  return out;
}

core::PiecewiseLinear SimplifiedDlnFit(const std::vector<float>& ts,
                                       const std::vector<float>& ys,
                                       size_t knots) {
  return core::PiecewiseLinear::FitEquallySpaced(ts, ys, knots);
}

core::PiecewiseLinear SelNetStyleFit(const std::vector<float>& ts,
                                     const std::vector<float>& ys, size_t knots) {
  return core::PiecewiseLinear::FitAdaptive(ts, ys, knots);
}

}  // namespace selnet::bl
