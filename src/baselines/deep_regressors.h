#pragma once

#include <memory>

#include "baselines/common.h"
#include "util/env.h"

/// \file deep_regressors.h
/// \brief Ordinary deep-learning regressors: DNN, MoE, RMI (Section 7.1).
///
/// These relax the consistency constraint and regress log-selectivity from
/// [x; ReLU(w t)] directly (Appendix B.2). All three share the training loop
/// (Adam + Huber loss on log targets + best-on-validation snapshots); they
/// differ in the forward graph:
///  * DNN — a plain FFN;
///  * MoE — sparsely gated mixture of experts (top-k softmax gating);
///  * RMI — a two-stage recursive model index: the root routes each sample to
///    a leaf expert by the quantile of its own prediction, leaves are trained
///    stage-wise on their routed subsets.

namespace selnet::bl {

/// \brief Common hyper-parameters of the deep regressors.
struct DeepConfig {
  size_t input_dim = 0;       ///< d (required).
  size_t t_embed = 16;        ///< Threshold embedding width m.
  std::vector<size_t> hidden = {192, 192, 96};
  float lr = 1e-3f;
  size_t batch_size = 256;
  float huber_delta = 1.345f;
  float log_eps = 1.0f;
  // MoE:
  size_t num_experts = 8;
  size_t top_k = 2;
  std::vector<size_t> expert_hidden = {96, 96};
  // RMI:
  size_t num_leaves = 4;
  double root_epoch_frac = 0.4;  ///< Fraction of the epoch budget for stage 1.

  static DeepConfig FromScale(const util::ScaleConfig& scale, size_t dim);
};

/// \brief Shared trainer: subclasses provide the forward graph.
class DeepRegressor : public eval::Estimator, public nn::Module {
 public:
  explicit DeepRegressor(const DeepConfig& cfg) : cfg_(cfg) {}

  void Fit(const eval::TrainContext& ctx) override;
  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;
  bool IsConsistent() const override { return false; }

 protected:
  /// \brief Build the prediction graph (B x 1); by default the output is
  /// interpreted as log-selectivity (see LossFor / ToSelectivity).
  virtual ag::Var Forward(const ag::Var& x, const ag::Var& t) const = 0;

  /// \brief Training loss for a batch; default Huber on log targets.
  virtual ag::Var LossFor(const ag::Var& pred, const data::Batch& batch) const;

  /// \brief Map raw network output to a selectivity; default exp(out)-eps.
  virtual tensor::Matrix ToSelectivity(const tensor::Matrix& raw) const;

  /// \brief MAE of real-space predictions on a sample set.
  double EvalMae(const data::Workload& wl,
                 const std::vector<data::QuerySample>& samples);

  DeepConfig cfg_;
};

/// \brief Vanilla feed-forward regressor.
class DnnRegressor : public DeepRegressor {
 public:
  DnnRegressor(const DeepConfig& cfg, uint64_t seed);
  std::string Name() const override { return "DNN"; }
  std::vector<ag::Var> Params() const override;

 protected:
  ag::Var Forward(const ag::Var& x, const ag::Var& t) const override;

 private:
  util::Rng rng_;
  ThresholdEmbed t_embed_;
  nn::Mlp body_;
};

/// \brief Sparsely-gated mixture of experts (Shazeer et al.).
class MoeRegressor : public DeepRegressor {
 public:
  MoeRegressor(const DeepConfig& cfg, uint64_t seed);
  std::string Name() const override { return "MoE"; }
  std::vector<ag::Var> Params() const override;

 protected:
  ag::Var Forward(const ag::Var& x, const ag::Var& t) const override;

 private:
  util::Rng rng_;
  ThresholdEmbed t_embed_;
  nn::Mlp gate_;
  std::vector<nn::Mlp> experts_;
};

/// \brief Two-stage recursive model index regressor (Kraska et al.).
class RmiRegressor : public eval::Estimator, public nn::Module {
 public:
  RmiRegressor(const DeepConfig& cfg, uint64_t seed);
  std::string Name() const override { return "RMI"; }
  bool IsConsistent() const override { return false; }

  void Fit(const eval::TrainContext& ctx) override;
  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;
  std::vector<ag::Var> Params() const override;

 private:
  ag::Var StageForward(const ThresholdEmbed& embed, const nn::Mlp& body,
                       const ag::Var& x, const ag::Var& t) const;
  size_t RouteOf(float root_pred) const;

  DeepConfig cfg_;
  util::Rng rng_;
  ThresholdEmbed root_embed_;
  nn::Mlp root_;
  std::vector<ThresholdEmbed> leaf_embeds_;
  std::vector<nn::Mlp> leaves_;
  std::vector<float> route_bounds_;  ///< num_leaves-1 quantile boundaries.
};

}  // namespace selnet::bl
