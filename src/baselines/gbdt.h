#pragma once

#include <cstdint>
#include <vector>

#include "eval/estimator.h"

/// \file gbdt.h
/// \brief Histogram gradient-boosted regression trees — the LightGBM /
/// LightGBM-m stand-ins of Tables 1-4.
///
/// Squared-error boosting on log(y+eps) targets over features [x; t].
/// The monotone variant enforces non-decreasing output in the t feature the
/// way LightGBM does: a split on t is rejected if the left child's mean
/// exceeds the right's, and children inherit clamped value bounds
/// (left.hi = right.lo = midpoint), so every tree — and hence the boosted sum
/// and its exp transform — is monotone in t.

namespace selnet::bl {

/// \brief Boosting configuration.
struct GbdtConfig {
  size_t num_trees = 80;
  size_t max_depth = 5;
  size_t num_bins = 32;     ///< Quantile histogram bins per feature.
  size_t min_leaf = 8;      ///< Minimum samples per leaf.
  float learning_rate = 0.1f;
  bool monotone_t = false;  ///< Enforce monotonicity in the t feature.
  float log_eps = 1.0f;
  uint64_t seed = 59;
};

/// \brief Gradient-boosted trees estimator.
class GbdtEstimator : public eval::Estimator {
 public:
  explicit GbdtEstimator(GbdtConfig cfg = {}) : cfg_(cfg) {}

  std::string Name() const override {
    return cfg_.monotone_t ? "LightGBM-m" : "LightGBM";
  }
  bool IsConsistent() const override { return cfg_.monotone_t; }

  void Fit(const eval::TrainContext& ctx) override;

  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;

  size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;       ///< -1 = leaf.
    float threshold = 0.0f; ///< Go left iff value <= threshold.
    int left = -1;
    int right = -1;
    float value = 0.0f;     ///< Leaf output (already scaled by learning rate).
  };
  struct Tree {
    std::vector<Node> nodes;
    float Eval(const float* features) const;
  };

  void BuildTree(const std::vector<std::vector<uint16_t>>& bins,
                 const std::vector<std::vector<float>>& edges,
                 const std::vector<float>& residual,
                 std::vector<uint32_t> samples, size_t depth, float lo, float hi,
                 Tree* tree, int* node_index);

  GbdtConfig cfg_;
  std::vector<Tree> trees_;
  float base_score_ = 0.0f;
  size_t num_features_ = 0;
};

}  // namespace selnet::bl
