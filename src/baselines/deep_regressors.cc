#include "baselines/deep_regressors.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/optimizer.h"
#include "util/check.h"

namespace selnet::bl {

DeepConfig DeepConfig::FromScale(const util::ScaleConfig& scale, size_t dim) {
  DeepConfig cfg;
  cfg.input_dim = dim;
  switch (scale.scale) {
    case util::Scale::kSmoke:
      cfg.hidden = {64, 64};
      cfg.expert_hidden = {48};
      cfg.num_experts = 4;
      cfg.num_leaves = 2;
      break;
    case util::Scale::kDefault:
      break;
    case util::Scale::kLarge:
      cfg.hidden = {384, 384, 192};
      cfg.expert_hidden = {128, 128};
      cfg.num_experts = 12;
      cfg.top_k = 3;
      cfg.num_leaves = 6;
      break;
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Shared trainer
// ---------------------------------------------------------------------------

void DeepRegressor::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.workload != nullptr);
  const auto& wl = *ctx.workload;
  SEL_CHECK(!wl.train.empty());
  nn::Adam opt(Params(), cfg_.lr);
  util::Rng shuffle_rng(ctx.seed ^ 0xdeadbeefull);
  std::vector<size_t> order(wl.train.size());
  std::iota(order.begin(), order.end(), size_t{0});

  double best_mae = std::numeric_limits<double>::max();
  std::vector<tensor::Matrix> best;
  for (size_t epoch = 0; epoch < ctx.epochs; ++epoch) {
    shuffle_rng.Shuffle(&order);
    for (size_t begin = 0; begin < order.size(); begin += cfg_.batch_size) {
      size_t end = std::min(begin + cfg_.batch_size, order.size());
      std::vector<size_t> idx(order.begin() + begin, order.begin() + end);
      data::Batch batch = data::MaterializeBatch(wl.queries, wl.train, idx);
      ag::Var x = ag::Constant(batch.x);
      ag::Var t = ag::Constant(batch.t);
      ag::Var pred = Forward(x, t);
      ag::Var loss = LossFor(pred, batch);
      opt.ZeroGrad();
      ag::Backward(loss);
      opt.ClipGrad(5.0f);
      opt.Step();
    }
    double mae = wl.valid.empty() ? 0.0 : EvalMae(wl, wl.valid);
    if (wl.valid.empty() || mae < best_mae) {
      best_mae = mae;
      best = nn::SnapshotParams(Params());
    }
  }
  if (!best.empty()) nn::RestoreParams(Params(), best);
}

ag::Var DeepRegressor::LossFor(const ag::Var& pred,
                               const data::Batch& batch) const {
  ag::Var target = ag::Constant(LogTargets(batch.y, cfg_.log_eps));
  return ag::HuberLoss(pred, target, cfg_.huber_delta);
}

tensor::Matrix DeepRegressor::ToSelectivity(const tensor::Matrix& raw) const {
  return ExpPredictions(raw, cfg_.log_eps);
}

tensor::Matrix DeepRegressor::Predict(const tensor::Matrix& x,
                                      const tensor::Matrix& t) {
  SEL_CHECK_EQ(x.rows(), t.rows());
  tensor::Matrix raw(x.rows(), 1);
  constexpr size_t kChunk = 1024;
  for (size_t begin = 0; begin < x.rows(); begin += kChunk) {
    size_t end = std::min(begin + kChunk, x.rows());
    ag::Var xb = ag::Constant(x.RowSlice(begin, end));
    ag::Var tb = ag::Constant(t.RowSlice(begin, end));
    ag::Var pred = Forward(xb, tb);
    for (size_t r = begin; r < end; ++r) {
      raw(r, 0) = pred->value(r - begin, 0);
    }
  }
  return ToSelectivity(raw);
}

double DeepRegressor::EvalMae(const data::Workload& wl,
                              const std::vector<data::QuerySample>& samples) {
  data::Batch batch = data::MaterializeAll(wl.queries, samples);
  tensor::Matrix yhat = Predict(batch.x, batch.t);
  double total = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    total += std::fabs(static_cast<double>(yhat(i, 0)) - batch.y(i, 0));
  }
  return total / static_cast<double>(samples.size());
}

// ---------------------------------------------------------------------------
// DNN
// ---------------------------------------------------------------------------

DnnRegressor::DnnRegressor(const DeepConfig& cfg, uint64_t seed)
    : DeepRegressor(cfg), rng_(seed) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  t_embed_ = ThresholdEmbed(cfg.t_embed, &rng_);
  std::vector<size_t> dims;
  dims.push_back(cfg.input_dim + cfg.t_embed);
  for (size_t h : cfg.hidden) dims.push_back(h);
  dims.push_back(1);
  body_ = nn::Mlp(dims, &rng_);
}

ag::Var DnnRegressor::Forward(const ag::Var& x, const ag::Var& t) const {
  return body_.Forward(ag::ConcatCols(x, t_embed_.Forward(t)));
}

std::vector<ag::Var> DnnRegressor::Params() const {
  std::vector<ag::Var> out = t_embed_.Params();
  for (const auto& p : body_.Params()) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------------------
// MoE
// ---------------------------------------------------------------------------

MoeRegressor::MoeRegressor(const DeepConfig& cfg, uint64_t seed)
    : DeepRegressor(cfg), rng_(seed) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  SEL_CHECK(cfg.top_k >= 1 && cfg.top_k <= cfg.num_experts);
  t_embed_ = ThresholdEmbed(cfg.t_embed, &rng_);
  size_t in = cfg.input_dim + cfg.t_embed;
  gate_ = nn::Mlp({in, 64, cfg.num_experts}, &rng_);
  experts_.reserve(cfg.num_experts);
  for (size_t e = 0; e < cfg.num_experts; ++e) {
    std::vector<size_t> dims;
    dims.push_back(in);
    for (size_t h : cfg.expert_hidden) dims.push_back(h);
    dims.push_back(1);
    experts_.emplace_back(dims, &rng_);
  }
}

ag::Var MoeRegressor::Forward(const ag::Var& x, const ag::Var& t) const {
  ag::Var input = ag::ConcatCols(x, t_embed_.Forward(t));
  ag::Var gates = ag::TopKSoftmaxRows(gate_.Forward(input), cfg_.top_k);
  // All experts are evaluated densely (E is small); the sparse gate zeroes
  // the non-top-k contributions exactly.
  ag::Var outs;  // B x E
  for (size_t e = 0; e < experts_.size(); ++e) {
    ag::Var o = experts_[e].Forward(input);
    outs = outs ? ag::ConcatCols(outs, o) : o;
  }
  return ag::RowSums(ag::Mul(gates, outs));
}

std::vector<ag::Var> MoeRegressor::Params() const {
  std::vector<ag::Var> out = t_embed_.Params();
  for (const auto& p : gate_.Params()) out.push_back(p);
  for (const auto& e : experts_) {
    for (const auto& p : e.Params()) out.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RMI
// ---------------------------------------------------------------------------

RmiRegressor::RmiRegressor(const DeepConfig& cfg, uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  SEL_CHECK_GE(cfg.num_leaves, 1u);
  root_embed_ = ThresholdEmbed(cfg.t_embed, &rng_);
  size_t in = cfg.input_dim + cfg.t_embed;
  std::vector<size_t> dims;
  dims.push_back(in);
  for (size_t h : cfg.hidden) dims.push_back(h);
  dims.push_back(1);
  root_ = nn::Mlp(dims, &rng_);
  std::vector<size_t> leaf_dims;
  leaf_dims.push_back(in);
  for (size_t h : cfg.expert_hidden) leaf_dims.push_back(h);
  leaf_dims.push_back(1);
  for (size_t m = 0; m < cfg.num_leaves; ++m) {
    leaf_embeds_.emplace_back(cfg.t_embed, &rng_);
    leaves_.emplace_back(leaf_dims, &rng_);
  }
}

ag::Var RmiRegressor::StageForward(const ThresholdEmbed& embed,
                                   const nn::Mlp& body, const ag::Var& x,
                                   const ag::Var& t) const {
  return body.Forward(ag::ConcatCols(x, embed.Forward(t)));
}

size_t RmiRegressor::RouteOf(float root_pred) const {
  size_t leaf = 0;
  while (leaf < route_bounds_.size() && root_pred > route_bounds_[leaf]) ++leaf;
  return leaf;
}

void RmiRegressor::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.workload != nullptr);
  const auto& wl = *ctx.workload;
  SEL_CHECK(!wl.train.empty());
  size_t root_epochs = std::max<size_t>(
      1, static_cast<size_t>(ctx.epochs * cfg_.root_epoch_frac));
  size_t leaf_epochs = std::max<size_t>(1, ctx.epochs - root_epochs);
  util::Rng shuffle_rng(ctx.seed ^ 0xabcdull);

  auto train_stage = [&](const ThresholdEmbed& embed, const nn::Mlp& body,
                         std::vector<ag::Var> params,
                         const std::vector<size_t>& pool, size_t epochs) {
    if (pool.empty()) return;
    nn::Adam opt(std::move(params), cfg_.lr);
    std::vector<size_t> order = pool;
    for (size_t epoch = 0; epoch < epochs; ++epoch) {
      shuffle_rng.Shuffle(&order);
      for (size_t begin = 0; begin < order.size(); begin += cfg_.batch_size) {
        size_t end = std::min(begin + cfg_.batch_size, order.size());
        std::vector<size_t> idx(order.begin() + begin, order.begin() + end);
        data::Batch batch = data::MaterializeBatch(wl.queries, wl.train, idx);
        ag::Var x = ag::Constant(batch.x);
        ag::Var t = ag::Constant(batch.t);
        ag::Var target = ag::Constant(LogTargets(batch.y, cfg_.log_eps));
        ag::Var pred = StageForward(embed, body, x, t);
        ag::Var loss = ag::HuberLoss(pred, target, cfg_.huber_delta);
        opt.ZeroGrad();
        ag::Backward(loss);
        opt.ClipGrad(5.0f);
        opt.Step();
      }
    }
  };

  // Stage 1: the root on all samples.
  std::vector<size_t> all(wl.train.size());
  std::iota(all.begin(), all.end(), size_t{0});
  std::vector<ag::Var> root_params = root_embed_.Params();
  for (const auto& p : root_.Params()) root_params.push_back(p);
  train_stage(root_embed_, root_, root_params, all, root_epochs);

  // Route samples by the quantiles of the root predictions.
  data::Batch full = data::MaterializeAll(wl.queries, wl.train);
  ag::Var root_pred = StageForward(root_embed_, root_, ag::Constant(full.x),
                                   ag::Constant(full.t));
  std::vector<float> preds(wl.train.size());
  for (size_t i = 0; i < preds.size(); ++i) preds[i] = root_pred->value(i, 0);
  std::vector<float> sorted = preds;
  std::sort(sorted.begin(), sorted.end());
  route_bounds_.clear();
  for (size_t m = 1; m < cfg_.num_leaves; ++m) {
    route_bounds_.push_back(sorted[m * sorted.size() / cfg_.num_leaves]);
  }
  std::vector<std::vector<size_t>> pools(cfg_.num_leaves);
  for (size_t i = 0; i < preds.size(); ++i) {
    pools[RouteOf(preds[i])].push_back(i);
  }

  // Stage 2: each leaf on its routed pool.
  for (size_t m = 0; m < cfg_.num_leaves; ++m) {
    std::vector<ag::Var> leaf_params = leaf_embeds_[m].Params();
    for (const auto& p : leaves_[m].Params()) leaf_params.push_back(p);
    train_stage(leaf_embeds_[m], leaves_[m], leaf_params, pools[m], leaf_epochs);
  }
}

tensor::Matrix RmiRegressor::Predict(const tensor::Matrix& x,
                                     const tensor::Matrix& t) {
  SEL_CHECK_EQ(x.rows(), t.rows());
  ag::Var root_pred = StageForward(root_embed_, root_, ag::Constant(x),
                                   ag::Constant(t));
  // Group rows by routed leaf, evaluate each leaf once per group.
  std::vector<std::vector<size_t>> groups(cfg_.num_leaves);
  for (size_t r = 0; r < x.rows(); ++r) {
    groups[RouteOf(root_pred->value(r, 0))].push_back(r);
  }
  tensor::Matrix log_pred(x.rows(), 1);
  for (size_t m = 0; m < cfg_.num_leaves; ++m) {
    if (groups[m].empty()) continue;
    tensor::Matrix xs(groups[m].size(), x.cols()), ts(groups[m].size(), 1);
    for (size_t i = 0; i < groups[m].size(); ++i) {
      size_t r = groups[m][i];
      std::copy(x.row(r), x.row(r) + x.cols(), xs.row(i));
      ts(i, 0) = t(r, 0);
    }
    ag::Var pred = StageForward(leaf_embeds_[m], leaves_[m], ag::Constant(xs),
                                ag::Constant(ts));
    for (size_t i = 0; i < groups[m].size(); ++i) {
      log_pred(groups[m][i], 0) = pred->value(i, 0);
    }
  }
  return ExpPredictions(log_pred, cfg_.log_eps);
}

std::vector<ag::Var> RmiRegressor::Params() const {
  std::vector<ag::Var> out = root_embed_.Params();
  for (const auto& p : root_.Params()) out.push_back(p);
  for (size_t m = 0; m < leaves_.size(); ++m) {
    for (const auto& p : leaf_embeds_[m].Params()) out.push_back(p);
    for (const auto& p : leaves_[m].Params()) out.push_back(p);
  }
  return out;
}

}  // namespace selnet::bl
