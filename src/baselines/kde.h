#pragma once

#include <vector>

#include "eval/estimator.h"

/// \file kde.h
/// \brief Kernel density estimation on metric data (Mattig et al., EDBT'18).
///
/// The estimator works purely on the 1-D distance distribution: draw m sample
/// objects from D; for a query (x, t) the selectivity estimate is
///   n/m * sum_j Phi((t - d(x, s_j)) / h_j)
/// with Phi the standard normal CDF — i.e. each sample contributes a smoothed
/// step at its distance from the query. Bandwidths are adaptive: h_j scales
/// with sample s_j's k-NN distance within the sample set (dense regions get
/// narrow kernels), with a global factor selected on the validation split.
/// Phi is non-decreasing in t, so the estimator is consistent.

namespace selnet::bl {

/// \brief KDE configuration.
struct KdeConfig {
  size_t num_samples = 2000;  ///< Paper keeps estimation cost at 2000 samples.
  size_t knn_k = 8;           ///< Neighbourhood size for adaptive bandwidth.
  /// Candidate global bandwidth multipliers scanned on the validation set.
  std::vector<float> bandwidth_grid = {0.25f, 0.5f, 1.0f, 2.0f, 4.0f};
  uint64_t seed = 47;
};

/// \brief Adaptive metric-space KDE baseline.
class KdeEstimator : public eval::Estimator {
 public:
  explicit KdeEstimator(KdeConfig cfg = {}) : cfg_(cfg) {}

  std::string Name() const override { return "KDE"; }
  bool IsConsistent() const override { return true; }

  void Fit(const eval::TrainContext& ctx) override;

  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;

 private:
  double EstimateOne(const float* x, float t, float factor) const;

  KdeConfig cfg_;
  tensor::Matrix samples_;       ///< m x d sample objects.
  std::vector<float> base_h_;    ///< Per-sample adaptive bandwidth.
  float factor_ = 1.0f;          ///< Validated global multiplier.
  float scale_ = 1.0f;           ///< n / m.
  data::Metric metric_ = data::Metric::kEuclidean;
};

}  // namespace selnet::bl
