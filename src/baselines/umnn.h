#pragma once

#include "baselines/deep_regressors.h"

/// \file umnn.h
/// \brief Unconstrained Monotonic Neural Network baseline (Wehenkel & Louppe,
/// NeurIPS'19) via Clenshaw–Curtis quadrature (Section 6.3).
///
/// The model is fhat(x, t) = ∫_0^t g(x, s) ds + b(x) where the integrand net
/// g outputs through Softplus (strictly positive, hence fhat strictly
/// increasing in t) and the bias net b is Softplus-clamped so predictions stay
/// non-negative selectivities. The integral is approximated with an N-point
/// Clenshaw–Curtis rule whose nodes are *the same for every query* — the
/// inflexibility relative to SelNet's query-dependent knots that Section 6.3
/// points out.

namespace selnet::bl {

/// \brief UMNN hyper-parameters.
struct UmnnConfig {
  size_t input_dim = 0;       ///< d (required).
  size_t hidden = 128;        ///< Integrand net hidden width.
  size_t quad_points = 16;    ///< Clenshaw–Curtis N (N+1 nodes).
  float lr = 1e-3f;
  size_t batch_size = 128;
  float huber_delta = 1.345f;
  float log_eps = 1.0f;
};

/// \brief Clenshaw–Curtis nodes x_j = cos(j pi / N) and weights on [-1, 1].
/// Exposed for the quadrature accuracy tests.
void ClenshawCurtisRule(size_t n, std::vector<double>* nodes,
                        std::vector<double>* weights);

/// \brief UMNN estimator (consistent by construction).
class UmnnEstimator : public DeepRegressor {
 public:
  UmnnEstimator(const UmnnConfig& cfg, uint64_t seed);

  std::string Name() const override { return "UMNN"; }
  bool IsConsistent() const override { return true; }

  std::vector<ag::Var> Params() const override;

 protected:
  ag::Var Forward(const ag::Var& x, const ag::Var& t) const override;

  /// \brief The network outputs selectivities directly (non-negative), so the
  /// loss is Huber-log on the raw output and no exp transform is applied.
  ag::Var LossFor(const ag::Var& pred, const data::Batch& batch) const override;
  tensor::Matrix ToSelectivity(const tensor::Matrix& raw) const override;

 private:
  UmnnConfig umnn_cfg_;
  util::Rng rng_;
  nn::Mlp integrand_;  ///< (d+1) -> hidden -> hidden -> 1, Softplus output.
  nn::Mlp bias_net_;   ///< d -> hidden -> 1, Softplus output.
  std::vector<double> nodes_;
  std::vector<double> weights_;
};

}  // namespace selnet::bl
