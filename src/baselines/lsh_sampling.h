#pragma once

#include <cstdint>
#include <vector>

#include "eval/estimator.h"

/// \file lsh_sampling.h
/// \brief LSH-based importance sampling (after Wu et al., ICML'18).
///
/// Cosine-only (SimHash): every object gets a b-bit random-hyperplane
/// signature. At query time objects are stratified by the Hamming distance of
/// their signature to the query's; strata close in Hamming distance
/// concentrate the objects most likely to fall inside the query ball, so a
/// fixed sample budget is allocated more heavily to them (importance
/// sampling). Within stratum s of size N_s, a uniform sample of n_s objects
/// gives the Horvitz-Thompson estimate N_s * (hits / n_s); the total over
/// strata is unbiased. Indicator hits are monotone in t, so the estimator is
/// consistent.
///
/// This follows Wu et al. at the level of "SimHash signatures + importance
/// sampling + unbiased reweighting"; the exact variance-optimal allocation of
/// the original paper is replaced by a geometric tilt toward low-Hamming
/// strata (see DESIGN.md §7).

namespace selnet::bl {

/// \brief LSH sampling configuration.
struct LshConfig {
  size_t signature_bits = 24;
  size_t sample_budget = 2000;  ///< Paper keeps estimation cost at 2000.
  /// Per-stratum allocation decays by this factor per extra Hamming bit.
  double allocation_decay = 0.85;
  uint64_t seed = 53;
};

/// \brief SimHash stratified-sampling estimator (cosine distance only).
class LshEstimator : public eval::Estimator {
 public:
  explicit LshEstimator(LshConfig cfg = {}) : cfg_(cfg) {}

  std::string Name() const override { return "LSH"; }
  bool IsConsistent() const override { return true; }

  void Fit(const eval::TrainContext& ctx) override;

  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;

  /// \brief Signature of an arbitrary vector (exposed for tests).
  uint32_t Signature(const float* vec) const;

 private:
  double EstimateOne(const float* x, float t) const;

  LshConfig cfg_;
  tensor::Matrix hyperplanes_;       ///< b x d random projections.
  tensor::Matrix vectors_;           ///< Dense copy of live objects.
  std::vector<uint32_t> signatures_; ///< Per object.
  data::Metric metric_ = data::Metric::kCosine;
};

}  // namespace selnet::bl
