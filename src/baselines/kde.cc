#include "baselines/kde.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace selnet::bl {

namespace {
// Standard normal CDF via erfc.
inline double NormalCdf(double z) { return 0.5 * std::erfc(-z * (1.0 / std::sqrt(2.0))); }
}  // namespace

void KdeEstimator::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.db != nullptr && ctx.workload != nullptr);
  const data::Database& db = *ctx.db;
  metric_ = db.metric();
  util::Rng rng(cfg_.seed ^ ctx.seed);

  // Draw the sample set.
  std::vector<size_t> live = db.LiveIds();
  size_t m = std::min(cfg_.num_samples, live.size());
  std::vector<size_t> picks = rng.SampleWithoutReplacement(live.size(), m);
  samples_ = tensor::Matrix(m, db.dim());
  for (size_t i = 0; i < m; ++i) {
    const float* src = db.vector(live[picks[i]]);
    std::copy(src, src + db.dim(), samples_.row(i));
  }
  scale_ = static_cast<float>(db.size()) / static_cast<float>(m);

  // Adaptive base bandwidth: distance to the k-th NN within the sample set.
  base_h_.assign(m, 0.0f);
  size_t k = std::min(cfg_.knn_k, m > 1 ? m - 1 : size_t{1});
  std::vector<float> dists(m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      dists[j] = (i == j) ? std::numeric_limits<float>::max()
                          : data::Distance(samples_.row(i), samples_.row(j),
                                           samples_.cols(), metric_);
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    base_h_[i] = std::max(dists[k - 1], 1e-6f);
  }

  // Select the global multiplier on the validation split (fall back to train
  // if the workload has no validation data).
  const auto& wl = *ctx.workload;
  const auto& tune = wl.valid.empty() ? wl.train : wl.valid;
  double best_err = std::numeric_limits<double>::max();
  for (float factor : cfg_.bandwidth_grid) {
    double err = 0.0;
    for (const auto& s : tune) {
      double est = EstimateOne(wl.queries.row(s.query_id), s.t, factor);
      double r = std::log(est + 1.0) - std::log(static_cast<double>(s.y) + 1.0);
      err += r * r;
    }
    if (err < best_err) {
      best_err = err;
      factor_ = factor;
    }
  }
}

double KdeEstimator::EstimateOne(const float* x, float t, float factor) const {
  double acc = 0.0;
  for (size_t j = 0; j < samples_.rows(); ++j) {
    float d = data::Distance(x, samples_.row(j), samples_.cols(), metric_);
    double h = static_cast<double>(base_h_[j]) * factor;
    acc += NormalCdf((static_cast<double>(t) - d) / h);
  }
  return acc * scale_;
}

tensor::Matrix KdeEstimator::Predict(const tensor::Matrix& x,
                                     const tensor::Matrix& t) {
  SEL_CHECK_EQ(x.rows(), t.rows());
  tensor::Matrix out(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    out(r, 0) = static_cast<float>(EstimateOne(x.row(r), t(r, 0), factor_));
  }
  return out;
}

}  // namespace selnet::bl
