#include "baselines/lsh_sampling.h"

#include <algorithm>
#include <cmath>

#include "tensor/blas.h"
#include "util/check.h"
#include "util/rng.h"

namespace selnet::bl {

uint32_t LshEstimator::Signature(const float* vec) const {
  uint32_t sig = 0;
  for (size_t b = 0; b < cfg_.signature_bits; ++b) {
    float dot = tensor::Dot(hyperplanes_.row(b), vec, hyperplanes_.cols());
    if (dot >= 0.0f) sig |= (1u << b);
  }
  return sig;
}

void LshEstimator::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.db != nullptr);
  SEL_CHECK_MSG(ctx.db->metric() == data::Metric::kCosine,
                "LSH baseline supports cosine distance only (SimHash)");
  SEL_CHECK_LE(cfg_.signature_bits, 32u);
  metric_ = ctx.db->metric();
  util::Rng rng(cfg_.seed ^ ctx.seed);
  hyperplanes_ =
      tensor::Matrix::Gaussian(cfg_.signature_bits, ctx.db->dim(), &rng);
  vectors_ = ctx.db->DenseView();
  signatures_.resize(vectors_.rows());
  for (size_t i = 0; i < vectors_.rows(); ++i) {
    signatures_[i] = Signature(vectors_.row(i));
  }
}

double LshEstimator::EstimateOne(const float* x, float t) const {
  uint32_t qsig = Signature(x);
  // The sample is a deterministic function of the query (not of t): repeated
  // calls with growing t reuse identical samples, so the indicator hits — and
  // therefore the estimate — are monotone in t (consistency guarantee).
  util::Rng sample_rng((cfg_.seed * 1000003ull) ^ qsig);
  util::Rng* rng = &sample_rng;
  size_t b = cfg_.signature_bits;
  // Stratify object indices by Hamming distance to the query signature.
  std::vector<std::vector<uint32_t>> strata(b + 1);
  for (size_t i = 0; i < signatures_.size(); ++i) {
    uint32_t h = static_cast<uint32_t>(__builtin_popcount(signatures_[i] ^ qsig));
    strata[h].push_back(static_cast<uint32_t>(i));
  }
  // Allocation weights: geometric decay in Hamming distance (low-Hamming
  // strata are where matches concentrate), scaled by stratum mass.
  std::vector<double> want(b + 1, 0.0);
  double total_w = 0.0;
  for (size_t h = 0; h <= b; ++h) {
    if (strata[h].empty()) continue;
    want[h] = std::pow(cfg_.allocation_decay, static_cast<double>(h)) *
              std::sqrt(static_cast<double>(strata[h].size()));
    total_w += want[h];
  }
  if (total_w <= 0.0) return 0.0;
  double estimate = 0.0;
  for (size_t h = 0; h <= b; ++h) {
    if (strata[h].empty()) continue;
    size_t budget = static_cast<size_t>(
        std::ceil(static_cast<double>(cfg_.sample_budget) * want[h] / total_w));
    budget = std::clamp<size_t>(budget, 1, strata[h].size());
    size_t hits = 0;
    if (budget == strata[h].size()) {
      for (uint32_t idx : strata[h]) {
        if (data::Distance(x, vectors_.row(idx), vectors_.cols(), metric_) <= t) {
          ++hits;
        }
      }
      estimate += static_cast<double>(hits);
    } else {
      std::vector<size_t> picks =
          rng->SampleWithoutReplacement(strata[h].size(), budget);
      for (size_t p : picks) {
        uint32_t idx = strata[h][p];
        if (data::Distance(x, vectors_.row(idx), vectors_.cols(), metric_) <= t) {
          ++hits;
        }
      }
      estimate += static_cast<double>(strata[h].size()) *
                  static_cast<double>(hits) / static_cast<double>(budget);
    }
  }
  return estimate;
}

tensor::Matrix LshEstimator::Predict(const tensor::Matrix& x,
                                     const tensor::Matrix& t) {
  SEL_CHECK_EQ(x.rows(), t.rows());
  tensor::Matrix out(x.rows(), 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    out(r, 0) = static_cast<float>(EstimateOne(x.row(r), t(r, 0)));
  }
  return out;
}

}  // namespace selnet::bl
