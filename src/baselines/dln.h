#pragma once

#include <vector>

#include "baselines/deep_regressors.h"
#include "core/pwl.h"

/// \file dln.h
/// \brief Deep Lattice Network baseline (You et al., NIPS'17) and the
/// simplified DLN of the paper's Section 6.2.
///
/// Pipeline (a faithful shallow DLN): per-feature calibrators (1-D PWL with
/// fixed equally-spaced keypoints — the inflexibility Section 6.2 critiques) →
/// a monotone linear embedding (non-negative weights on the t path, sigmoid
/// squash to [0,1]) → an ensemble of 2-D multilinear lattices whose vertex
/// parameters are subset-sums of non-negative increments (monotone in every
/// input) → a non-negative output scale + bias. Every stage is monotone along
/// any path from t, so the model is consistent.

namespace selnet::bl {

/// \brief DLN hyper-parameters.
struct DlnConfig {
  size_t input_dim = 0;     ///< d (required).
  size_t calib_keypoints = 8;
  size_t embed_dim = 6;     ///< Monotone linear embedding width.
  size_t num_lattices = 6;  ///< 2-D lattices over embedding dim pairs.
  float lr = 3e-3f;
  size_t batch_size = 256;
  float huber_delta = 1.345f;
  float log_eps = 1.0f;
};

/// \brief Deep lattice network estimator (consistent).
class DlnEstimator : public DeepRegressor {
 public:
  DlnEstimator(const DlnConfig& cfg, uint64_t seed);

  std::string Name() const override { return "DLN"; }
  bool IsConsistent() const override { return true; }

  void Fit(const eval::TrainContext& ctx) override;
  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;
  std::vector<ag::Var> Params() const override;

 protected:
  ag::Var Forward(const ag::Var& x, const ag::Var& t) const override;

 private:
  ag::Var Calibrate(const ag::Var& features) const;

  DlnConfig dln_cfg_;
  util::Rng rng_;
  /// Per-feature calibrator outputs at the fixed keypoints; the t feature's
  /// calibrator is reparameterized monotone (cumsum of ReLU increments).
  std::vector<ag::Var> calib_values_;
  std::vector<std::vector<float>> calib_keypoints_;  ///< Fixed per feature.
  ag::Var embed_w_free_;  ///< (D-1) x E weights for x features.
  ag::Var embed_w_t_;     ///< 1 x E raw weights for t (softplus -> >= 0).
  ag::Var embed_b_;       ///< 1 x E bias.
  std::vector<ag::Var> lattice_raw_;  ///< Per lattice: 1 x 4 raw increments.
  std::vector<std::pair<size_t, size_t>> lattice_dims_;
  ag::Var out_scale_raw_;  ///< 1 x 1 (softplus -> >= 0).
  ag::Var out_bias_;       ///< 1 x 1.
  bool ranges_ready_ = false;
};

/// \brief Section 6.2 / Figure 3: the two analytic 1-D fits compared there.
///
/// `SimplifiedDlnFit` is the best function in the simplified DLN family
/// (equally spaced calibrator keypoints; the lattice degenerates to an affine
/// map), `SelNetStyleFit` the best in SelNet's family (freely placed knots).
/// Both return the least-squares piece-wise linear fit with `knots` knots.
core::PiecewiseLinear SimplifiedDlnFit(const std::vector<float>& ts,
                                       const std::vector<float>& ys,
                                       size_t knots);
core::PiecewiseLinear SelNetStyleFit(const std::vector<float>& ts,
                                     const std::vector<float>& ys, size_t knots);

}  // namespace selnet::bl
