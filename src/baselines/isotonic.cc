#include "baselines/isotonic.h"

#include "util/check.h"

namespace selnet::bl {

std::vector<double> PavaIsotonic(const std::vector<double>& y,
                                 const std::vector<double>& w) {
  size_t n = y.size();
  if (n == 0) return {};
  SEL_CHECK(w.empty() || w.size() == n);
  // Stack of blocks (mean, weight, count); merge while the tail violates.
  struct Block {
    double mean;
    double weight;
    size_t count;
  };
  std::vector<Block> blocks;
  blocks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double wi = w.empty() ? 1.0 : w[i];
    blocks.push_back({y[i], wi, 1});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].mean > blocks.back().mean) {
      Block top = blocks.back();
      blocks.pop_back();
      Block& prev = blocks.back();
      double tw = prev.weight + top.weight;
      prev.mean = (prev.mean * prev.weight + top.mean * top.weight) / tw;
      prev.weight = tw;
      prev.count += top.count;
    }
  }
  std::vector<double> out;
  out.reserve(n);
  for (const auto& b : blocks) {
    for (size_t i = 0; i < b.count; ++i) out.push_back(b.mean);
  }
  return out;
}

bool IsNonDecreasing(const std::vector<double>& y, double tol) {
  for (size_t i = 1; i < y.size(); ++i) {
    if (y[i] < y[i - 1] - tol) return false;
  }
  return true;
}

}  // namespace selnet::bl
