#pragma once

#include <cmath>

#include "eval/estimator.h"
#include "nn/linear.h"
#include "nn/mlp.h"

/// \file common.h
/// \brief Shared plumbing for the learned baselines.
///
/// DNN, MoE and RMI "cannot directly handle the threshold t" (Appendix B.2):
/// t is lifted into an m-dimensional embedding ReLU(w t) and concatenated with
/// x. All ordinary regressors are trained on log(y + eps) with the same Huber
/// loss as SelNet and predict exp(output) - eps clamped at zero.

namespace selnet::bl {

/// \brief Learned non-linear threshold embedding t -> ReLU(w t + b).
class ThresholdEmbed : public nn::Module {
 public:
  ThresholdEmbed() = default;
  ThresholdEmbed(size_t embed_dim, util::Rng* rng)
      : lin_(1, embed_dim, rng, /*he_init=*/true) {}

  ag::Var Forward(const ag::Var& t) const { return ag::Relu(lin_.Forward(t)); }

  std::vector<ag::Var> Params() const override { return lin_.Params(); }

 private:
  nn::Linear lin_;
};

/// \brief log(y + eps) targets for direct log-space regression.
inline tensor::Matrix LogTargets(const tensor::Matrix& y, float eps = 1.0f) {
  tensor::Matrix out = y;
  out.Apply([eps](float v) { return std::log(std::max(v, 0.0f) + eps); });
  return out;
}

/// \brief Invert LogTargets: exp(pred) - eps, clamped non-negative.
inline tensor::Matrix ExpPredictions(const tensor::Matrix& log_pred,
                                     float eps = 1.0f) {
  tensor::Matrix out = log_pred;
  out.Apply([eps](float v) {
    return std::max(0.0f, std::exp(std::min(v, 30.0f)) - eps);
  });
  return out;
}

}  // namespace selnet::bl
