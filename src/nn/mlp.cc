#include "nn/mlp.h"

#include "util/check.h"

namespace selnet::nn {

ag::Var Activate(const ag::Var& x, Activation act) {
  switch (act) {
    case Activation::kRelu: return ag::Relu(x);
    case Activation::kTanh: return ag::Tanh(x);
    case Activation::kSigmoid: return ag::Sigmoid(x);
    case Activation::kSoftplus: return ag::Softplus(x);
    case Activation::kNone: return x;
  }
  return x;
}

Mlp::Mlp(const std::vector<size_t>& dims, util::Rng* rng, Activation hidden,
         Activation output_activation)
    : hidden_(hidden), output_(output_activation) {
  SEL_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    bool he = (hidden == Activation::kRelu);
    layers_.emplace_back(dims[i], dims[i + 1], rng, he);
  }
}

ag::Var Mlp::Forward(const ag::Var& x) const {
  SEL_CHECK(!layers_.empty());
  ag::Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      h = Activate(h, hidden_);
    } else {
      h = Activate(h, output_);
    }
  }
  return h;
}

ag::Var Mlp::ForwardHidden(const ag::Var& x) const {
  SEL_CHECK(!layers_.empty());
  ag::Var h = x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    h = Activate(layers_[i].Forward(h), hidden_);
  }
  return h;
}

std::vector<ag::Var> Mlp::Params() const {
  std::vector<ag::Var> out;
  out.reserve(layers_.size() * 2);
  for (const auto& l : layers_) {
    for (const auto& p : l.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace selnet::nn
