#pragma once

#include "tensor/matrix.h"
#include "util/rng.h"

/// \file init.h
/// \brief Weight initialization schemes.

namespace selnet::nn {

/// \brief Glorot/Xavier uniform: U(-sqrt(6/(fan_in+fan_out)), +...).
tensor::Matrix XavierUniform(size_t fan_in, size_t fan_out, util::Rng* rng);

/// \brief He/Kaiming normal: N(0, sqrt(2/fan_in)); use before ReLU.
tensor::Matrix HeNormal(size_t fan_in, size_t fan_out, util::Rng* rng);

}  // namespace selnet::nn
