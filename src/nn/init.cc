#include "nn/init.h"

#include <cmath>

namespace selnet::nn {

tensor::Matrix XavierUniform(size_t fan_in, size_t fan_out, util::Rng* rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Matrix::Uniform(fan_in, fan_out, rng, -limit, limit);
}

tensor::Matrix HeNormal(size_t fan_in, size_t fan_out, util::Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Matrix::Gaussian(fan_in, fan_out, rng, stddev);
}

}  // namespace selnet::nn
