#include "nn/linear.h"

namespace selnet::nn {

Linear::Linear(size_t in, size_t out, util::Rng* rng, bool he_init) {
  tensor::Matrix w = he_init ? HeNormal(in, out, rng) : XavierUniform(in, out, rng);
  w_ = ag::Param(std::move(w));
  b_ = ag::Param(tensor::Matrix(1, out));
}

ag::Var Linear::Forward(const ag::Var& x) const {
  return ag::AddRowBroadcast(ag::MatMul(x, w_), b_);
}

}  // namespace selnet::nn
