#pragma once

#include <vector>

#include "autograd/var.h"
#include "tensor/matrix.h"

/// \file optimizer.h
/// \brief First-order optimizers over parameter Vars.

namespace selnet::nn {

/// \brief Optimizer interface: consumes accumulated gradients, updates values.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// \brief Apply one update using the gradients currently stored on params.
  virtual void Step() = 0;

  /// \brief Zero all parameter gradients.
  void ZeroGrad() { ag::ZeroGrad(params_); }

  /// \brief Clip gradient entries to [-clip, clip]; call before Step.
  void ClipGrad(float clip);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  /// Must be called by every Step() after mutating parameter values: drops
  /// the per-parameter packed-weight caches so no batched forward can serve
  /// panels packed from pre-step weights (tensor/pack_cache.h).
  void MarkParamsUpdated() { ag::InvalidatePackCaches(params_); }

  std::vector<ag::Var> params_;
  float lr_ = 1e-3f;
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Var> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<tensor::Matrix> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction; optional decoupled weight
/// decay makes it AdamW.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t step_count_ = 0;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
};

}  // namespace selnet::nn
