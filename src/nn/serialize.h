#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "util/status.h"

/// \file serialize.h
/// \brief Binary (de)serialization of parameter lists.
///
/// Format: magic "SELN", u32 version, u64 count, then per matrix
/// u64 rows, u64 cols, rows*cols little-endian floats, and (since v2) a u32
/// CRC-32 of that parameter's header + data. Model classes persist their
/// `Params()` vectors in declaration order.
///
/// The per-parameter checksum (rather than one whole-file digest) is what
/// makes corruption *diagnosable*: a flipped bit fails with the parameter
/// index and the byte offset where the damage sits, not just "file bad".
/// Version 1 files (no checksums) still load.

namespace selnet::nn {

/// \brief Write `params` values to `path` (current version, checksummed).
util::Status SaveParams(const std::vector<ag::Var>& params,
                        const std::string& path);

/// \brief Read values from `path` into `params` (shapes must match exactly).
/// On any non-OK return the parameter values are unspecified — callers must
/// discard the model rather than serve it (core::LoadModel does).
util::Status LoadParams(const std::string& path,
                        const std::vector<ag::Var>& params);

/// \brief Write a count-prefixed checksummed parameter payload (u64 count,
/// then per parameter u64 rows, u64 cols, float data, u32 CRC-32) to an open
/// file. Shared by SaveParams and core::SaveModel.
util::Status WriteParamsPayload(std::FILE* f,
                                const std::vector<ag::Var>& params,
                                const std::string& path);

/// \brief Read a count-prefixed parameter payload from an open file into
/// `params`, validating count, shapes, and (when `checksummed`, i.e. the
/// enclosing file is v2+) each parameter's CRC-32. Shared by LoadParams and
/// core::LoadModel; `file_kind` ("params file", "model file") prefixes the
/// error messages, which name `path`, the failing parameter index, the
/// expected-vs-found shapes, and — for checksum failures — the byte offset
/// where the corrupt parameter starts.
util::Status ReadParamsPayload(std::FILE* f,
                               const std::vector<ag::Var>& params,
                               const char* file_kind, const std::string& path,
                               bool checksummed);

}  // namespace selnet::nn
