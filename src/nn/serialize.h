#pragma once

#include <string>
#include <vector>

#include "autograd/var.h"
#include "util/status.h"

/// \file serialize.h
/// \brief Binary (de)serialization of parameter lists.
///
/// Format: magic "SELN", u32 version, u64 count, then per matrix
/// u64 rows, u64 cols, rows*cols little-endian floats. Model classes persist
/// their `Params()` vectors in declaration order.

namespace selnet::nn {

/// \brief Write `params` values to `path`.
util::Status SaveParams(const std::vector<ag::Var>& params,
                        const std::string& path);

/// \brief Read values from `path` into `params` (shapes must match exactly).
util::Status LoadParams(const std::string& path,
                        const std::vector<ag::Var>& params);

}  // namespace selnet::nn
