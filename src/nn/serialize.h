#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "util/status.h"

/// \file serialize.h
/// \brief Binary (de)serialization of parameter lists.
///
/// Format: magic "SELN", u32 version, u64 count, then per matrix
/// u64 rows, u64 cols, rows*cols little-endian floats. Model classes persist
/// their `Params()` vectors in declaration order.

namespace selnet::nn {

/// \brief Write `params` values to `path`.
util::Status SaveParams(const std::vector<ag::Var>& params,
                        const std::string& path);

/// \brief Read values from `path` into `params` (shapes must match exactly).
util::Status LoadParams(const std::string& path,
                        const std::vector<ag::Var>& params);

/// \brief Read a count-prefixed parameter payload (u64 count, then per
/// parameter u64 rows, u64 cols, float data) from an open file into
/// `params`, validating count and shapes. Shared by LoadParams and
/// core::LoadModel; `file_kind` ("params file", "model file") prefixes the
/// error messages, which name `path`, the failing parameter index, and the
/// expected-vs-found shapes.
util::Status ReadParamsPayload(std::FILE* f,
                               const std::vector<ag::Var>& params,
                               const char* file_kind, const std::string& path);

}  // namespace selnet::nn
