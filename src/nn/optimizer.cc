#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace selnet::nn {

void Optimizer::ClipGrad(float clip) {
  for (auto& p : params_) {
    p->EnsureGrad();
    float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) {
      g[i] = std::clamp(g[i], -clip, clip);
    }
  }
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    p->EnsureGrad();
    float* w = p->value.data();
    const float* g = p->grad.data();
    if (momentum_ > 0.0f) {
      float* v = velocity_[i].data();
      for (size_t j = 0; j < p->value.size(); ++j) {
        v[j] = momentum_ * v[j] + g[j];
        w[j] -= lr_ * v[j];
      }
    } else {
      for (size_t j = 0; j < p->value.size(); ++j) w[j] -= lr_ * g[j];
    }
  }
  MarkParamsUpdated();
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++step_count_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    p->EnsureGrad();
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (size_t j = 0; j < p->value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      float mh = m[j] / bc1;
      float vh = v[j] / bc2;
      float upd = mh / (std::sqrt(vh) + eps_);
      if (weight_decay_ > 0.0f) upd += weight_decay_ * w[j];
      w[j] -= lr_ * upd;
    }
  }
  MarkParamsUpdated();
}

}  // namespace selnet::nn
