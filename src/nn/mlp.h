#pragma once

#include <vector>

#include "nn/linear.h"

/// \file mlp.h
/// \brief Multi-layer perceptron (the paper's FFN building block).

namespace selnet::nn {

/// \brief Hidden-layer activation choice.
enum class Activation { kRelu, kTanh, kSigmoid, kSoftplus, kNone };

/// \brief Feed-forward network: Linear + activation per hidden layer, linear
/// output layer (no activation unless `output_activation` is set).
class Mlp : public Module {
 public:
  Mlp() = default;

  /// \param dims layer widths, e.g. {in, 512, 512, out}
  Mlp(const std::vector<size_t>& dims, util::Rng* rng,
      Activation hidden = Activation::kRelu,
      Activation output_activation = Activation::kNone);

  ag::Var Forward(const ag::Var& x) const;

  /// \brief Forward through every layer but the last: the activated input the
  /// output layer would see. Lets callers fuse the (linear) output layer with
  /// downstream linear ops at inference time.
  ag::Var ForwardHidden(const ag::Var& x) const;

  /// \brief The final (output) layer.
  const Linear& output_layer() const { return layers_.back(); }

  /// \brief Activation applied after the output layer (kNone = linear).
  Activation output_activation() const { return output_; }

  std::vector<ag::Var> Params() const override;

  size_t in_dim() const { return layers_.front().in_dim(); }
  size_t out_dim() const { return layers_.back().out_dim(); }

 private:
  std::vector<Linear> layers_;
  Activation hidden_ = Activation::kRelu;
  Activation output_ = Activation::kNone;
};

/// \brief Apply an Activation to a Var (kNone is identity).
ag::Var Activate(const ag::Var& x, Activation act);

}  // namespace selnet::nn
