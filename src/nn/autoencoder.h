#pragma once

#include "nn/mlp.h"
#include "nn/optimizer.h"

/// \file autoencoder.h
/// \brief The latent-representation autoencoder of SelNet's Figure 1.
///
/// SelNet augments the query object x with a latent code z_x learned by an
/// autoencoder pretrained on the database D and co-trained with queries
/// (the lambda * J_AE term of Equation 4). The AE exposes both the encoder
/// forward (for z_x) and the reconstruction loss (for co-training).

namespace selnet::nn {

/// \brief Symmetric MLP autoencoder.
class Autoencoder : public Module {
 public:
  Autoencoder() = default;

  /// \param input_dim data dimensionality d
  /// \param hidden width of the hidden layers
  /// \param latent_dim width of the bottleneck z_x
  Autoencoder(size_t input_dim, size_t hidden, size_t latent_dim, util::Rng* rng);

  /// \brief Encode: (B x d) -> (B x latent).
  ag::Var Encode(const ag::Var& x) const { return encoder_.Forward(x); }

  /// \brief Decode: (B x latent) -> (B x d).
  ag::Var Decode(const ag::Var& z) const { return decoder_.Forward(z); }

  /// \brief Reconstruction MSE for a batch (1x1).
  ag::Var ReconstructionLoss(const ag::Var& x) const;

  /// \brief Pretrain on row-batches of `data` with Adam.
  ///
  /// \return final epoch mean reconstruction loss.
  double Pretrain(const tensor::Matrix& data, size_t epochs, size_t batch_size,
                  float lr, util::Rng* rng);

  std::vector<ag::Var> Params() const override;

  size_t latent_dim() const { return encoder_.out_dim(); }
  size_t input_dim() const { return encoder_.in_dim(); }

 private:
  Mlp encoder_;
  Mlp decoder_;
};

}  // namespace selnet::nn
