#include "nn/autoencoder.h"

#include <numeric>

#include "util/check.h"

namespace selnet::nn {

Autoencoder::Autoencoder(size_t input_dim, size_t hidden, size_t latent_dim,
                         util::Rng* rng)
    : encoder_({input_dim, hidden, latent_dim}, rng, Activation::kRelu,
               Activation::kTanh),
      decoder_({latent_dim, hidden, input_dim}, rng) {}

ag::Var Autoencoder::ReconstructionLoss(const ag::Var& x) const {
  ag::Var recon = Decode(Encode(x));
  return ag::MseLoss(recon, x);
}

double Autoencoder::Pretrain(const tensor::Matrix& data, size_t epochs,
                             size_t batch_size, float lr, util::Rng* rng) {
  SEL_CHECK_EQ(data.cols(), input_dim());
  Adam opt(Params(), lr);
  std::vector<size_t> order(data.rows());
  std::iota(order.begin(), order.end(), size_t{0});
  double last_epoch_loss = 0.0;
  for (size_t e = 0; e < epochs; ++e) {
    rng->Shuffle(&order);
    double total = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < order.size(); begin += batch_size) {
      size_t end = std::min(begin + batch_size, order.size());
      tensor::Matrix batch(end - begin, data.cols());
      for (size_t i = begin; i < end; ++i) {
        std::copy(data.row(order[i]), data.row(order[i]) + data.cols(),
                  batch.row(i - begin));
      }
      ag::Var x = ag::Constant(std::move(batch));
      opt.ZeroGrad();
      ag::Var loss = ReconstructionLoss(x);
      ag::Backward(loss);
      opt.Step();
      total += loss->value(0, 0);
      ++batches;
    }
    last_epoch_loss = total / std::max<size_t>(1, batches);
  }
  return last_epoch_loss;
}

std::vector<ag::Var> Autoencoder::Params() const {
  std::vector<ag::Var> out = encoder_.Params();
  for (const auto& p : decoder_.Params()) out.push_back(p);
  return out;
}

}  // namespace selnet::nn
