#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace selnet::nn {

using util::Status;

namespace {
constexpr char kMagic[4] = {'S', 'E', 'L', 'N'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveParams(const std::vector<ag::Var>& params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    return Status::IOError("short write: " + path);
  }
  uint32_t version = kVersion;
  uint64_t count = params.size();
  std::fwrite(&version, sizeof(version), 1, f.get());
  std::fwrite(&count, sizeof(count), 1, f.get());
  for (const auto& p : params) {
    uint64_t rows = p->value.rows(), cols = p->value.cols();
    std::fwrite(&rows, sizeof(rows), 1, f.get());
    std::fwrite(&cols, sizeof(cols), 1, f.get());
    size_t n = p->value.size();
    if (n > 0 && std::fwrite(p->value.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("short write: " + path);
    }
  }
  return Status::OK();
}

Status LoadParams(const std::string& path, const std::vector<ag::Var>& params) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Invalid("bad magic in " + path);
  }
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
      version != kVersion) {
    return Status::Invalid("unsupported version in " + path);
  }
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
      count != params.size()) {
    return Status::Invalid("parameter count mismatch in " + path);
  }
  for (const auto& p : params) {
    uint64_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f.get()) != 1) {
      return Status::IOError("truncated file: " + path);
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::Invalid("shape mismatch in " + path);
    }
    size_t n = p->value.size();
    if (n > 0 && std::fread(p->value.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("truncated file: " + path);
    }
  }
  return Status::OK();
}

}  // namespace selnet::nn
