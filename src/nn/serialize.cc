#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/crc32.h"

namespace selnet::nn {

using util::Status;

namespace {
constexpr char kMagic[4] = {'S', 'E', 'L', 'N'};
/// v1: no checksums. v2: each parameter is followed by a CRC-32 of its
/// header + data. Writers emit v2; readers accept both.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// CRC over one parameter's wire image: rows, cols, then the float data —
/// so a corrupted *header* (wrong shape leading the reader astray) is caught
/// by the same check as corrupted values.
uint32_t ParamCrc(uint64_t rows, uint64_t cols, const float* data, size_t n) {
  uint32_t crc = util::Crc32(&rows, sizeof(rows));
  crc = util::Crc32(&cols, sizeof(cols), crc);
  return util::Crc32(data, n * sizeof(float), crc);
}

}  // namespace

Status SaveParams(const std::vector<ag::Var>& params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    return Status::IOError("short write: " + path);
  }
  uint32_t version = kVersion;
  if (std::fwrite(&version, sizeof(version), 1, f.get()) != 1) {
    return Status::IOError("short write: " + path);
  }
  return WriteParamsPayload(f.get(), params, path);
}

Status WriteParamsPayload(std::FILE* f, const std::vector<ag::Var>& params,
                          const std::string& path) {
  uint64_t count = params.size();
  if (std::fwrite(&count, sizeof(count), 1, f) != 1) {
    return Status::IOError("short write: " + path);
  }
  for (const auto& p : params) {
    uint64_t rows = p->value.rows(), cols = p->value.cols();
    size_t n = p->value.size();
    uint32_t crc = ParamCrc(rows, cols, p->value.data(), n);
    if (std::fwrite(&rows, sizeof(rows), 1, f) != 1 ||
        std::fwrite(&cols, sizeof(cols), 1, f) != 1 ||
        (n > 0 && std::fwrite(p->value.data(), sizeof(float), n, f) != n) ||
        std::fwrite(&crc, sizeof(crc), 1, f) != 1) {
      return Status::IOError("short write: " + path);
    }
  }
  return Status::OK();
}

Status LoadParams(const std::string& path, const std::vector<ag::Var>& params) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Invalid("params file '" + path +
                           "': bad magic (not a SaveParams file)");
  }
  uint32_t version = 0;
  if (std::fread(&version, sizeof(version), 1, f.get()) != 1) {
    return Status::IOError("params file '" + path +
                           "': truncated before version field");
  }
  if (version < kMinVersion || version > kVersion) {
    return Status::Invalid("params file '" + path + "': unsupported version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kMinVersion) + ".." +
                           std::to_string(kVersion) + ")");
  }
  return ReadParamsPayload(f.get(), params, "params file", path,
                           /*checksummed=*/version >= 2);
}

Status ReadParamsPayload(std::FILE* f, const std::vector<ag::Var>& params,
                         const char* file_kind, const std::string& path,
                         bool checksummed) {
  std::string where = std::string(file_kind) + " '" + path + "'";
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    return Status::IOError(where + ": truncated before parameter count");
  }
  if (count != params.size()) {
    return Status::Invalid(where + ": parameter count mismatch (file has " +
                           std::to_string(count) + ", model expects " +
                           std::to_string(params.size()) + ")");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    long start = std::ftell(f);  // Where this parameter's record begins.
    uint64_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1) {
      return Status::IOError(where + ": truncated header of parameter " +
                             std::to_string(i) + "/" +
                             std::to_string(params.size()));
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::Invalid(
          where + ": shape mismatch for parameter " + std::to_string(i) +
          " (file has " + std::to_string(rows) + "x" + std::to_string(cols) +
          ", model expects " + std::to_string(p->value.rows()) + "x" +
          std::to_string(p->value.cols()) + ")");
    }
    size_t n = p->value.size();
    if (n > 0 && std::fread(p->value.data(), sizeof(float), n, f) != n) {
      return Status::IOError(where + ": truncated data of parameter " +
                             std::to_string(i) + " (expected " +
                             std::to_string(n) + " floats)");
    }
    if (checksummed) {
      uint32_t stored = 0;
      if (std::fread(&stored, sizeof(stored), 1, f) != 1) {
        return Status::IOError(where + ": truncated checksum of parameter " +
                               std::to_string(i));
      }
      uint32_t computed = ParamCrc(rows, cols, p->value.data(), n);
      if (stored != computed) {
        return Status::IOError(
            where + ": checksum mismatch for parameter " + std::to_string(i) +
            " at byte offset " + std::to_string(start) +
            " (stored crc32 " + std::to_string(stored) + ", computed " +
            std::to_string(computed) + ") — the file is corrupt");
      }
    }
    // Values were overwritten wholesale; any cached packed panels are stale.
    // (Callers still invalidate their fold caches — core::LoadModel does.)
    p->pack_cache.Invalidate();
  }
  return Status::OK();
}

}  // namespace selnet::nn
