#pragma once

#include "nn/init.h"
#include "nn/module.h"

/// \file linear.h
/// \brief Fully-connected layer y = xW + b.

namespace selnet::nn {

/// \brief Dense affine layer. Weights are (in x out); inputs are (B x in).
class Linear : public Module {
 public:
  Linear() = default;
  Linear(size_t in, size_t out, util::Rng* rng, bool he_init = true);

  /// \brief Forward pass: (B x in) -> (B x out).
  ag::Var Forward(const ag::Var& x) const;

  std::vector<ag::Var> Params() const override { return {w_, b_}; }

  size_t in_dim() const { return w_->rows(); }
  size_t out_dim() const { return w_->cols(); }

  const ag::Var& weight() const { return w_; }
  const ag::Var& bias() const { return b_; }

 private:
  ag::Var w_;
  ag::Var b_;
};

}  // namespace selnet::nn
