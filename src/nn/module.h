#pragma once

#include <vector>

#include "autograd/ops.h"
#include "autograd/var.h"

/// \file module.h
/// \brief Base interface for trainable components.

namespace selnet::nn {

/// \brief A trainable component exposing its parameter leaves.
class Module {
 public:
  virtual ~Module() = default;

  /// \brief All trainable parameter leaves, in a stable order (serialization
  /// and optimizers rely on the ordering).
  virtual std::vector<ag::Var> Params() const = 0;

  /// \brief Total number of scalar parameters.
  size_t NumParams() const {
    size_t n = 0;
    for (const auto& p : Params()) n += p->value.size();
    return n;
  }
};

/// \brief Copy current parameter values (for best-on-validation snapshots).
inline std::vector<tensor::Matrix> SnapshotParams(
    const std::vector<ag::Var>& params) {
  std::vector<tensor::Matrix> snap;
  snap.reserve(params.size());
  for (const auto& p : params) snap.push_back(p->value);
  return snap;
}

/// \brief Restore values captured by SnapshotParams (same order/shapes).
inline void RestoreParams(const std::vector<ag::Var>& params,
                          const std::vector<tensor::Matrix>& snap) {
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snap[i];
    params[i]->pack_cache.Invalidate();  // Values replaced wholesale.
  }
}

}  // namespace selnet::nn
