#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/distance.h"
#include "tensor/matrix.h"
#include "util/status.h"

/// \file cover_tree.h
/// \brief Simplified cover tree (Izbicki & Shelton, ICML 2015).
///
/// SelNet uses the cover tree twice: (i) to partition the database into
/// balanced ball regions for the partitioned global model (Section 5.3), and
/// (ii) conceptually, to reason about which regions a query ball (x, t) can
/// intersect. The tree here is the "simplified" variant: every node carries a
/// point; children are within `covdist(level)` of their parent; the covering
/// invariant `d(parent, child) <= 1.3^level` and the leveling invariant
/// `child.level < parent.level` are maintained on insert and checked by the
/// test-suite's `ValidateInvariants`.

namespace selnet::idx {

/// \brief Ball region exported by the partitioner: center + radius + members.
struct Region {
  std::vector<float> center;
  float radius = 0.0f;
  std::vector<size_t> members;  ///< Object ids inside the region.
};

/// \brief Simplified cover tree over a point set.
class CoverTree {
 public:
  /// \param base expansion constant (paper implementations use 1.3 or 2.0)
  explicit CoverTree(size_t dim, data::Metric metric, float base = 1.3f);

  /// \brief Insert a point with external id; O(c^6 log n) expected.
  void Insert(const float* point, size_t id);

  /// \brief Build from all rows of `points` (ids = row numbers).
  static CoverTree Build(const tensor::Matrix& points, data::Metric metric,
                         float base = 1.3f);

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }

  /// \brief Count points within distance `t` of `query` (exact).
  size_t RangeCount(const float* query, float t) const;

  /// \brief Ids of points within distance `t` of `query` (exact).
  std::vector<size_t> RangeQuery(const float* query, float t) const;

  /// \brief Nearest-neighbor id (exact); size() must be > 0.
  size_t Nearest(const float* query) const;

  /// \brief Partition the indexed points into ball regions by expanding nodes
  /// top-down until a subtree holds fewer than `min_region_size` points
  /// (SelNet's partition ratio r: stop when |node| < r * |D|).
  std::vector<Region> PartitionByRatio(double ratio) const;

  /// \brief Verify covering/leveling invariants; Status::Internal on failure.
  util::Status ValidateInvariants() const;

  /// \brief Height of the tree (levels between root and deepest leaf).
  size_t Height() const;

 private:
  struct Node {
    std::vector<float> point;
    size_t id = 0;
    int level = 0;
    float max_dist = 0.0f;  ///< Upper bound on distance to any descendant.
    std::vector<std::unique_ptr<Node>> children;
  };

  float Dist(const float* a, const float* b) const {
    return data::Distance(a, b, dim_, metric_);
  }
  float CovDist(int level) const;
  void InsertAt(Node* parent, std::unique_ptr<Node> x, float dist_px);
  void CollectSubtree(const Node* node, std::vector<size_t>* out) const;
  void RangeCollect(const Node* node, const float* query, float t,
                    std::vector<size_t>* out, size_t* count_only) const;
  util::Status ValidateNode(const Node* node) const;
  size_t HeightOf(const Node* node) const;

  std::unique_ptr<Node> root_;
  size_t dim_;
  data::Metric metric_;
  float base_;
  size_t size_ = 0;
};

}  // namespace selnet::idx
