#include "index/kmeans.h"

#include <cmath>
#include <limits>

#include "tensor/blas.h"
#include "util/check.h"
#include "util/rng.h"

namespace selnet::idx {

KMeansResult KMeans(const tensor::Matrix& data, size_t k, size_t max_iters,
                    uint64_t seed) {
  size_t n = data.rows(), dim = data.cols();
  SEL_CHECK(k >= 1 && k <= n);
  util::Rng rng(seed);

  // k-means++ seeding.
  tensor::Matrix centroids(k, dim);
  std::vector<double> min_sq(n, std::numeric_limits<double>::max());
  size_t first = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
  std::copy(data.row(first), data.row(first) + dim, centroids.row(0));
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d = tensor::SquaredL2(data.row(i), centroids.row(c - 1), dim);
      min_sq[i] = std::min(min_sq[i], d);
      total += min_sq[i];
    }
    double target = rng.Uniform(0.0, total);
    size_t pick = n - 1;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += min_sq[i];
      if (acc >= target) {
        pick = i;
        break;
      }
    }
    std::copy(data.row(pick), data.row(pick) + dim, centroids.row(c));
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  std::vector<size_t> counts(k, 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      float best_d = std::numeric_limits<float>::max();
      for (size_t c = 0; c < k; ++c) {
        float d = tensor::SquaredL2(data.row(i), centroids.row(c), dim);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
      inertia += best_d;
    }
    result.inertia = inertia;
    if (!changed && iter > 0) break;
    // Recompute centroids; empty clusters keep their previous centroid.
    centroids.Fill(0.0f);
    std::fill(counts.begin(), counts.end(), size_t{0});
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignment[i];
      ++counts[c];
      const float* src = data.row(i);
      float* dst = centroids.row(c);
      for (size_t j = 0; j < dim; ++j) dst[j] += src[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      float inv = 1.0f / static_cast<float>(counts[c]);
      float* dst = centroids.row(c);
      for (size_t j = 0; j < dim; ++j) dst[j] *= inv;
    }
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace selnet::idx
