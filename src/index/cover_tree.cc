#include "index/cover_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>

#include "util/check.h"

namespace selnet::idx {

using util::Status;

CoverTree::CoverTree(size_t dim, data::Metric metric, float base)
    : dim_(dim), metric_(metric), base_(base) {
  SEL_CHECK_GT(base, 1.0f);
}

float CoverTree::CovDist(int level) const {
  return std::pow(base_, static_cast<float>(level));
}

void CoverTree::Insert(const float* point, size_t id) {
  auto node = std::make_unique<Node>();
  node->point.assign(point, point + dim_);
  node->id = id;
  if (!root_) {
    node->level = 0;
    root_ = std::move(node);
    size_ = 1;
    return;
  }
  float d = Dist(root_->point.data(), point);
  // Raise the root level until its covering radius reaches the new point.
  // Children keep satisfying the covering invariant (covdist grows).
  while (d > CovDist(root_->level)) ++root_->level;
  InsertAt(root_.get(), std::move(node), d);
  ++size_;
}

void CoverTree::InsertAt(Node* parent, std::unique_ptr<Node> x, float dist_px) {
  parent->max_dist = std::max(parent->max_dist, dist_px);
  for (auto& child : parent->children) {
    float d = Dist(child->point.data(), x->point.data());
    if (d <= CovDist(child->level)) {
      InsertAt(child.get(), std::move(x), d);
      return;
    }
  }
  x->level = parent->level - 1;
  parent->children.push_back(std::move(x));
}

CoverTree CoverTree::Build(const tensor::Matrix& points, data::Metric metric,
                           float base) {
  CoverTree tree(points.cols(), metric, base);
  for (size_t r = 0; r < points.rows(); ++r) tree.Insert(points.row(r), r);
  return tree;
}

void CoverTree::CollectSubtree(const Node* node, std::vector<size_t>* out) const {
  out->push_back(node->id);
  for (const auto& c : node->children) CollectSubtree(c.get(), out);
}

void CoverTree::RangeCollect(const Node* node, const float* query, float t,
                             std::vector<size_t>* out, size_t* count_only) const {
  float d = Dist(node->point.data(), query);
  if (d - node->max_dist > t) return;  // whole subtree outside the ball
  if (d + node->max_dist <= t) {
    // Whole subtree inside the ball: bulk accept.
    if (count_only != nullptr) {
      std::vector<size_t> tmp;
      CollectSubtree(node, &tmp);
      *count_only += tmp.size();
    } else {
      CollectSubtree(node, out);
    }
    return;
  }
  if (d <= t) {
    if (count_only != nullptr) {
      ++*count_only;
    } else {
      out->push_back(node->id);
    }
  }
  for (const auto& c : node->children) RangeCollect(c.get(), query, t, out, count_only);
}

size_t CoverTree::RangeCount(const float* query, float t) const {
  if (!root_) return 0;
  size_t count = 0;
  RangeCollect(root_.get(), query, t, nullptr, &count);
  return count;
}

std::vector<size_t> CoverTree::RangeQuery(const float* query, float t) const {
  std::vector<size_t> out;
  if (root_) RangeCollect(root_.get(), query, t, &out, nullptr);
  return out;
}

size_t CoverTree::Nearest(const float* query) const {
  SEL_CHECK(root_ != nullptr);
  size_t best_id = root_->id;
  float best = Dist(root_->point.data(), query);
  // Best-first search with the max_dist lower bound for pruning.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    float d = Dist(node->point.data(), query);
    if (d < best) {
      best = d;
      best_id = node->id;
    }
    for (const auto& c : node->children) {
      float dc = Dist(c->point.data(), query);
      if (dc - c->max_dist < best) {
        if (dc < best) {
          best = dc;
          best_id = c->id;
        }
        stack.push_back(c.get());
      }
    }
  }
  return best_id;
}

std::vector<Region> CoverTree::PartitionByRatio(double ratio) const {
  std::vector<Region> regions;
  if (!root_) return regions;
  size_t min_region = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(ratio * static_cast<double>(size_))));

  // Count subtree sizes once.
  std::function<size_t(const Node*)> subtree_size = [&](const Node* n) -> size_t {
    size_t s = 1;
    for (const auto& c : n->children) s += subtree_size(c.get());
    return s;
  };

  struct Pending {
    const Node* node;
  };
  std::deque<Pending> queue;
  queue.push_back({root_.get()});
  // Points of expanded interior nodes, re-attached to the nearest region below.
  std::vector<const Node*> orphans;

  while (!queue.empty()) {
    const Node* node = queue.front().node;
    queue.pop_front();
    size_t sz = subtree_size(node);
    if (sz < min_region || node->children.empty()) {
      Region region;
      region.center = node->point;
      std::vector<size_t> ids;
      CollectSubtree(node, &ids);
      region.members = std::move(ids);
      regions.push_back(std::move(region));
    } else {
      orphans.push_back(node);
      for (const auto& c : node->children) queue.push_back({c.get()});
    }
  }
  // Attach each expanded node's own point to the nearest region center.
  for (const Node* orphan : orphans) {
    size_t best = 0;
    float best_d = std::numeric_limits<float>::max();
    for (size_t i = 0; i < regions.size(); ++i) {
      float d = Dist(regions[i].center.data(), orphan->point.data());
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    regions[best].members.push_back(orphan->id);
  }
  // Exact radii from member lists: requires access to the member vectors,
  // which callers own; radius here is w.r.t. stored node points, so compute
  // while we still can (members of a region are ids into the indexed matrix —
  // we only stored points in nodes). Walk the tree once to map id -> point.
  std::vector<const Node*> flat;
  std::function<void(const Node*)> walk = [&](const Node* n) {
    flat.push_back(n);
    for (const auto& c : n->children) walk(c.get());
  };
  walk(root_.get());
  std::vector<const float*> by_id(size_, nullptr);
  for (const Node* n : flat) {
    if (n->id < size_) by_id[n->id] = n->point.data();
  }
  for (auto& region : regions) {
    float r = 0.0f;
    for (size_t id : region.members) {
      if (id < by_id.size() && by_id[id] != nullptr) {
        r = std::max(r, Dist(region.center.data(), by_id[id]));
      }
    }
    region.radius = r;
  }
  return regions;
}

util::Status CoverTree::ValidateNode(const Node* node) const {
  constexpr float kEps = 1e-4f;
  for (const auto& c : node->children) {
    if (c->level >= node->level) {
      return Status::Internal("leveling invariant violated");
    }
    float d = Dist(node->point.data(), c->point.data());
    if (d > CovDist(node->level) + kEps) {
      return Status::Internal("covering invariant violated");
    }
    if (d > node->max_dist + kEps) {
      return Status::Internal("max_dist bound violated (child)");
    }
    SEL_RETURN_NOT_OK(ValidateNode(c.get()));
  }
  return Status::OK();
}

util::Status CoverTree::ValidateInvariants() const {
  if (!root_) return Status::OK();
  SEL_RETURN_NOT_OK(ValidateNode(root_.get()));
  // max_dist must bound every descendant, not just direct children.
  std::function<Status(const Node*)> check_desc = [&](const Node* n) -> Status {
    std::vector<size_t> ids;
    std::vector<const Node*> stack = {n};
    float max_d = 0.0f;
    while (!stack.empty()) {
      const Node* cur = stack.back();
      stack.pop_back();
      max_d = std::max(max_d, Dist(n->point.data(), cur->point.data()));
      for (const auto& c : cur->children) stack.push_back(c.get());
    }
    if (max_d > n->max_dist + 1e-3f) {
      return Status::Internal("max_dist bound violated (descendant)");
    }
    for (const auto& c : n->children) SEL_RETURN_NOT_OK(check_desc(c.get()));
    return Status::OK();
  };
  return check_desc(root_.get());
}

size_t CoverTree::HeightOf(const Node* node) const {
  size_t h = 0;
  for (const auto& c : node->children) h = std::max(h, 1 + HeightOf(c.get()));
  return h;
}

size_t CoverTree::Height() const { return root_ ? HeightOf(root_.get()) : 0; }

}  // namespace selnet::idx
