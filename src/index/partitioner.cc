#include "index/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "index/kmeans.h"
#include "util/check.h"
#include "util/rng.h"

namespace selnet::idx {

namespace {

// Normalize a query into `buf` for cosine workloads (geometry is Euclidean
// over unit vectors).
const float* EuclideanView(const float* query, size_t dim, data::Metric metric,
                           std::vector<float>* buf) {
  if (metric != data::Metric::kCosine) return query;
  buf->assign(query, query + dim);
  float norm = 0.0f;
  for (float v : *buf) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 1e-20f) {
    for (float& v : *buf) v /= norm;
  }
  return buf->data();
}

}  // namespace

std::vector<uint8_t> Partitioning::Intersects(const float* query, float t) const {
  std::vector<uint8_t> out(cluster_regions.size(), uint8_t{0});
  size_t dim = regions.empty() ? 0 : regions[0].center.size();
  std::vector<float> buf;
  const float* q = EuclideanView(query, dim, metric, &buf);
  // Convert the threshold into the Euclidean-equivalent space where the
  // triangle inequality holds.
  float te = (metric == data::Metric::kCosine) ? data::CosineToEuclideanThreshold(t)
                                               : t;
  for (size_t c = 0; c < cluster_regions.size(); ++c) {
    for (size_t ri : cluster_regions[c]) {
      const Region& region = regions[ri];
      float d = data::Distance(q, region.center.data(), dim,
                               data::Metric::kEuclidean);
      if (d <= te + region.radius) {
        out[c] = 1;
        break;
      }
    }
  }
  return out;
}

size_t Partitioning::AssignObject(const float* vec) {
  SEL_CHECK(!regions.empty());
  size_t dim = regions[0].center.size();
  std::vector<float> buf;
  const float* v = EuclideanView(vec, dim, metric, &buf);
  size_t best_region = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t ri = 0; ri < regions.size(); ++ri) {
    float d = data::Distance(v, regions[ri].center.data(), dim,
                             data::Metric::kEuclidean);
    if (d < best_d) {
      best_d = d;
      best_region = ri;
    }
  }
  regions[best_region].radius = std::max(regions[best_region].radius, best_d);
  for (size_t c = 0; c < cluster_regions.size(); ++c) {
    for (size_t ri : cluster_regions[c]) {
      if (ri == best_region) return c;
    }
  }
  SEL_CHECK_MSG(false, "region not owned by any cluster");
  return 0;
}

std::vector<size_t> GreedyBalancedMerge(const std::vector<Region>& regions,
                                        size_t k) {
  SEL_CHECK_GE(k, 1u);
  std::vector<size_t> order(regions.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return regions[a].members.size() > regions[b].members.size();
  });
  std::vector<size_t> cluster_of(regions.size(), 0);
  std::vector<size_t> load(k, 0);
  for (size_t ri : order) {
    size_t best = 0;
    for (size_t c = 1; c < k; ++c) {
      if (load[c] < load[best]) best = c;
    }
    cluster_of[ri] = best;
    load[best] += regions[ri].members.size();
  }
  return cluster_of;
}

namespace {

// Compute exact radius of each region from its member rows.
void FinalizeRadii(const tensor::Matrix& data, data::Metric metric,
                   std::vector<Region>* regions) {
  for (auto& region : *regions) {
    float r = 0.0f;
    for (size_t id : region.members) {
      r = std::max(r, data::Distance(region.center.data(), data.row(id),
                                     data.cols(), metric));
    }
    region.radius = r;
  }
}

std::vector<Region> SplitRandom(const tensor::Matrix& data, size_t k,
                                uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Region> regions(k);
  size_t dim = data.cols();
  for (size_t i = 0; i < data.rows(); ++i) {
    size_t c = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(k) - 1));
    regions[c].members.push_back(i);
  }
  // Centers = member centroids.
  for (auto& region : regions) {
    region.center.assign(dim, 0.0f);
    if (region.members.empty()) continue;
    for (size_t id : region.members) {
      const float* row = data.row(id);
      for (size_t j = 0; j < dim; ++j) region.center[j] += row[j];
    }
    float inv = 1.0f / static_cast<float>(region.members.size());
    for (size_t j = 0; j < dim; ++j) region.center[j] *= inv;
  }
  return regions;
}

std::vector<Region> SplitKMeans(const tensor::Matrix& data, size_t k,
                                uint64_t seed) {
  KMeansResult km = KMeans(data, k, /*max_iters=*/25, seed);
  std::vector<Region> regions(k);
  size_t dim = data.cols();
  for (size_t c = 0; c < k; ++c) {
    regions[c].center.assign(km.centroids.row(c), km.centroids.row(c) + dim);
  }
  for (size_t i = 0; i < data.rows(); ++i) {
    regions[km.assignment[i]].members.push_back(i);
  }
  // Drop empty clusters.
  std::vector<Region> out;
  for (auto& r : regions) {
    if (!r.members.empty()) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

Partitioning BuildPartitioning(const tensor::Matrix& data, data::Metric metric,
                               const PartitionSpec& spec) {
  Partitioning part;
  part.metric = metric;
  // All region geometry is Euclidean; cosine workloads are mapped onto the
  // unit sphere first (cos distance is scale-invariant, so this is exact).
  const tensor::Matrix* geo = &data;
  tensor::Matrix normalized;
  if (metric == data::Metric::kCosine) {
    normalized = data;
    data::NormalizeRows(&normalized);
    geo = &normalized;
  }
  switch (spec.method) {
    case PartitionMethod::kCoverTree: {
      CoverTree tree = CoverTree::Build(*geo, data::Metric::kEuclidean);
      part.regions = tree.PartitionByRatio(spec.ratio);
      break;
    }
    case PartitionMethod::kRandom:
      // Random split straight into K regions; fc degenerates to mostly-ones
      // because the regions are not geometrically compact (Section 5.3).
      part.regions = SplitRandom(*geo, spec.k, spec.seed);
      break;
    case PartitionMethod::kKMeans:
      part.regions = SplitKMeans(*geo, spec.k, spec.seed);
      break;
  }
  FinalizeRadii(*geo, data::Metric::kEuclidean, &part.regions);

  size_t k = std::min(spec.k, part.regions.size());
  std::vector<size_t> cluster_of = GreedyBalancedMerge(part.regions, k);
  part.cluster_regions.assign(k, {});
  part.cluster_members.assign(k, {});
  for (size_t ri = 0; ri < part.regions.size(); ++ri) {
    size_t c = cluster_of[ri];
    part.cluster_regions[c].push_back(ri);
    for (size_t id : part.regions[ri].members) {
      part.cluster_members[c].push_back(id);
    }
  }
  return part;
}

const char* PartitionMethodName(PartitionMethod method) {
  switch (method) {
    case PartitionMethod::kCoverTree: return "CT";
    case PartitionMethod::kRandom: return "RP";
    case PartitionMethod::kKMeans: return "KM";
  }
  return "?";
}

}  // namespace selnet::idx
