#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

/// \file kmeans.h
/// \brief Lloyd's k-means with k-means++ seeding (Table 10's KM partitioner).

namespace selnet::idx {

/// \brief Clustering output: centroids plus a per-row assignment.
struct KMeansResult {
  tensor::Matrix centroids;        ///< k x dim.
  std::vector<size_t> assignment;  ///< Row -> cluster id.
  double inertia = 0.0;            ///< Sum of squared distances to centroids.
};

/// \brief Run k-means (squared-Euclidean objective).
///
/// \param data n x dim points
/// \param k number of clusters (1 <= k <= n)
/// \param max_iters Lloyd iteration cap
/// \param seed k-means++ seeding randomness
KMeansResult KMeans(const tensor::Matrix& data, size_t k, size_t max_iters,
                    uint64_t seed);

}  // namespace selnet::idx
