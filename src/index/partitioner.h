#pragma once

#include <cstdint>
#include <vector>

#include "data/distance.h"
#include "index/cover_tree.h"
#include "tensor/matrix.h"

/// \file partitioner.h
/// \brief Database partitioning for the partitioned SelNet (Section 5.3).
///
/// Pipeline: (1) split D into K' ball regions — by cover tree with ratio r,
/// random assignment, or k-means (Table 10 compares the three); (2) greedily
/// merge regions into K balanced clusters (largest-region-first into the
/// currently-smallest cluster); (3) expose the indicator fc(x, t) that flags
/// clusters whose regions can intersect the query ball.

namespace selnet::idx {

/// \brief Region-splitting strategies (Table 10: CT / RP / KM).
enum class PartitionMethod { kCoverTree, kRandom, kKMeans };

/// \brief K balanced clusters of ball regions over a dataset.
///
/// Cosine workloads are handled through the unit-vector equivalence
/// cos(u,v) = 1 - ||u-v||^2/2 (Section 5.3): region geometry (centers, radii,
/// intersection tests) lives in Euclidean space over normalized vectors, where
/// the triangle inequality the indicator relies on actually holds.
struct Partitioning {
  /// Raw ball regions (before merging). Geometry is Euclidean; for cosine
  /// workloads it refers to the normalized copies of the data.
  std::vector<Region> regions;
  /// Region indices per final cluster (size K).
  std::vector<std::vector<size_t>> cluster_regions;
  /// Object ids per final cluster (disjoint union covers the dataset).
  std::vector<std::vector<size_t>> cluster_members;
  /// The workload's metric (thresholds arrive in this metric).
  data::Metric metric = data::Metric::kEuclidean;

  size_t num_clusters() const { return cluster_members.size(); }

  /// \brief fc(x, t): 1 for clusters with any region whose ball intersects
  /// the query ball: d(x, center) <= t + radius, evaluated in the Euclidean
  /// (-equivalent) space. `t` is given in the workload metric.
  std::vector<uint8_t> Intersects(const float* query, float t) const;

  /// \brief Route a new object to the nearest region (by center distance);
  /// grows that region's radius if needed so the fc indicator stays sound.
  /// Returns the index of the cluster owning that region.
  size_t AssignObject(const float* vec);
};

/// \brief Partitioning parameters.
struct PartitionSpec {
  PartitionMethod method = PartitionMethod::kCoverTree;
  size_t k = 3;        ///< Final cluster count K.
  double ratio = 0.05; ///< Cover-tree stop ratio r (region < r * |D|).
  uint64_t seed = 31;
};

/// \brief Build a partitioning of `data`.
Partitioning BuildPartitioning(const tensor::Matrix& data, data::Metric metric,
                               const PartitionSpec& spec);

/// \brief Greedy size-balanced merge of regions into k clusters (exposed for
/// testing): returns cluster index per region.
std::vector<size_t> GreedyBalancedMerge(const std::vector<Region>& regions,
                                        size_t k);

const char* PartitionMethodName(PartitionMethod method);

}  // namespace selnet::idx
