#pragma once

#include <cstdint>

#include "eval/estimator.h"

/// \file monotonicity.h
/// \brief Empirical monotonicity measure (Section 7.3, after Daniels &
/// Velikova): per query, sample thresholds, count ordered prediction pairs.

namespace selnet::eval {

/// \brief Percentage (0-100) of threshold pairs whose estimates respect
/// monotonicity, averaged over `num_queries` random query objects.
///
/// For each query, `num_thresholds` thresholds are sampled uniformly from
/// [0, tmax]; all C(num_thresholds, 2) ordered pairs are checked with a small
/// tolerance. 100.0 means no violations.
double EmpiricalMonotonicity(Estimator* model, const tensor::Matrix& queries,
                             size_t num_queries, float tmax,
                             size_t num_thresholds, uint64_t seed);

}  // namespace selnet::eval
