#pragma once

#include <string>

#include "data/database.h"
#include "data/workload.h"
#include "tensor/matrix.h"

/// \file estimator.h
/// \brief Common interface all selectivity estimators implement.
///
/// Every model from the evaluation section — SelNet and its ablations plus the
/// nine baselines — is an `Estimator`, so the bench harness can train and
/// score them uniformly.

namespace selnet::eval {

/// \brief Everything a model may use during fitting.
struct TrainContext {
  const data::Database* db = nullptr;   ///< The indexed database D.
  const data::Workload* workload = nullptr;  ///< Train/valid splits + tmax.
  size_t epochs = 36;                   ///< Epoch budget for neural models.
  uint64_t seed = 1;                    ///< Model-init randomness.
};

/// \brief A trained selectivity estimator fhat(x, t).
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// \brief Display name matching the paper's tables (e.g. "SelNet", "KDE").
  virtual std::string Name() const = 0;

  /// \brief True iff the model guarantees monotonicity in t by construction
  /// (the rows marked with * in Tables 1-4).
  virtual bool IsConsistent() const = 0;

  /// \brief Train on ctx.workload->train (validation data may be used for
  /// model selection, never test).
  virtual void Fit(const TrainContext& ctx) = 0;

  /// \brief Estimate selectivities for query rows x (B x d) at thresholds t
  /// (B x 1); returns B x 1 non-negative estimates.
  virtual tensor::Matrix Predict(const tensor::Matrix& x,
                                 const tensor::Matrix& t) = 0;
};

}  // namespace selnet::eval
