#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/workload.h"
#include "tensor/matrix.h"

/// \file estimator.h
/// \brief Common interface all selectivity estimators implement.
///
/// Every model from the evaluation section — SelNet and its ablations plus the
/// nine baselines — is an `Estimator`, so the bench harness can train and
/// score them uniformly, and the serving layer (`serve::Servable`) can put any
/// of them behind the same endpoint. `SweepCapable` is an optional capability
/// for estimators whose per-query estimate is an explicit piecewise-linear
/// function of the threshold, unlocking the one-pass threshold-sweep fast
/// path.

namespace selnet::eval {

/// \brief Everything a model may use during fitting.
struct TrainContext {
  const data::Database* db = nullptr;   ///< The indexed database D.
  const data::Workload* workload = nullptr;  ///< Train/valid splits + tmax.
  size_t epochs = 36;                   ///< Epoch budget for neural models.
  uint64_t seed = 1;                    ///< Model-init randomness.
};

/// \brief A trained selectivity estimator fhat(x, t).
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// \brief Display name matching the paper's tables (e.g. "SelNet", "KDE").
  virtual std::string Name() const = 0;

  /// \brief True iff the model guarantees monotonicity in t by construction
  /// (the rows marked with * in Tables 1-4).
  virtual bool IsConsistent() const = 0;

  /// \brief Train on ctx.workload->train (validation data may be used for
  /// model selection, never test).
  virtual void Fit(const TrainContext& ctx) = 0;

  /// \brief Estimate selectivities for query rows x (B x d) at thresholds t
  /// (B x 1); returns B x 1 non-negative estimates.
  virtual tensor::Matrix Predict(const tensor::Matrix& x,
                                 const tensor::Matrix& t) = 0;
};

/// \brief Optional capability: answer a whole threshold sweep for one query
/// from a single control-point evaluation.
///
/// Estimators whose estimate for a fixed query is an explicit piecewise-linear
/// function of t (SelNet's Equation 1) can expose that structure: the
/// implementation runs its control-point heads once and answers each threshold
/// with one PWL lookup, so a K-threshold sweep costs one network forward
/// instead of K batched Predict rows.
///
/// Contract:
///  * `SweepEstimate(x, ts, k)[i] == Predict(x replicated k times, ts)(i, 0)`
///    for every i — bit-exact, not merely close. SelNet's inference path is
///    batch-size invariant (the GEMM kernels keep one per-element accumulation
///    order), which is what makes this achievable.
///  * Thresholds need not be sorted; each is answered independently.
///  * Must be safe to call concurrently with Predict and with itself (the
///    serving layer invokes it from pool workers against a shared snapshot).
class SweepCapable {
 public:
  virtual ~SweepCapable() = default;

  /// \brief Estimates for one query `x` (d floats) at each of ts[0..count).
  virtual std::vector<float> SweepEstimate(const float* x, const float* ts,
                                           size_t count) = 0;

  /// \brief True when SweepCurve can hand out control points — a static
  /// capability the serving layer probes before attempting curve-cache
  /// lookups, keeping hit/miss accounting exact. Default false: estimators
  /// whose sweep is not a single PWL of t (e.g. the partitioned model, whose
  /// partition-intersection mask depends on t) simply opt out.
  virtual bool SupportsSweepCurve() const { return false; }

  /// \brief Expose the query's entire estimate-vs-threshold curve as one
  /// PWL: knot positions into `tau`, knot values into `p`. Must return true
  /// whenever SupportsSweepCurve() does.
  ///
  /// When supported, evaluating core::PiecewiseLinear(tau, p) at any
  /// threshold must be bit-identical to SweepEstimate — which lets the
  /// serving layer cache the control points per (model version, query) and
  /// answer repeat queries at NEW thresholds without touching the network
  /// (serve::EstimateCache's curve table).
  virtual bool SweepCurve(const float* x, std::vector<float>* tau,
                          std::vector<float>* p) {
    (void)x;
    (void)tau;
    (void)p;
    return false;
  }
};

}  // namespace selnet::eval
