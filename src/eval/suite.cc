#include "eval/suite.h"

#include <algorithm>

#include "baselines/dln.h"
#include "baselines/deep_regressors.h"
#include "baselines/gbdt.h"
#include "baselines/kde.h"
#include "baselines/lsh_sampling.h"
#include "baselines/umnn.h"
#include "core/selnet_ct.h"
#include "core/selnet_partitioned.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace selnet::eval {

std::vector<DatasetSetting> PaperSettings() {
  return {
      {data::Corpus::kFasttextLike, data::Metric::kCosine, "fasttext-cos"},
      {data::Corpus::kFasttextLike, data::Metric::kEuclidean, "fasttext-l2"},
      {data::Corpus::kFaceLike, data::Metric::kCosine, "face-cos"},
      {data::Corpus::kYoutubeLike, data::Metric::kCosine, "YouTube-cos"},
  };
}

DatasetSetting SettingByName(const std::string& name) {
  for (const auto& s : PaperSettings()) {
    if (name == s.name) return s;
  }
  SEL_CHECK_MSG(false, "unknown dataset setting");
  return {};
}

PreparedData PrepareData(const DatasetSetting& setting,
                         const util::ScaleConfig& scale, bool beta_thresholds) {
  data::SyntheticSpec spec = data::SpecFor(setting.corpus, scale);
  tensor::Matrix vectors = data::GenerateMixture(spec);
  PreparedData out{data::Database(std::move(vectors), setting.metric),
                   data::Workload{}, scale, setting};
  data::WorkloadSpec wspec;
  wspec.num_queries = scale.num_queries;
  wspec.w = scale.w;
  // The paper caps the selectivity ladder at |D|/100 with |D| ~ 10^6 (top
  // selectivity ~10^4). At the scaled-down |D| here, 1% would collapse the
  // label range to well under two orders of magnitude, so the cap is raised
  // to keep the ladder's dynamic range comparable (see EXPERIMENTS.md).
  wspec.max_sel_fraction = 0.05;
  wspec.seed = 23 + static_cast<uint64_t>(setting.corpus) * 101 +
               (setting.metric == data::Metric::kCosine ? 0 : 1);
  util::Stopwatch timer;
  out.workload = beta_thresholds
                     ? data::GenerateBetaWorkload(out.db, wspec)
                     : data::GenerateWorkload(out.db, wspec);
  util::LogInfo("prepared %s: n=%zu dim=%zu train=%zu (%.1fs)", setting.name,
                out.db.size(), out.db.dim(), out.workload.train.size(),
                timer.ElapsedSeconds());
  return out;
}

std::vector<ModelKind> PaperModels() {
  return {ModelKind::kLsh,  ModelKind::kKde, ModelKind::kLightGbm,
          ModelKind::kLightGbmM, ModelKind::kDnn, ModelKind::kMoe,
          ModelKind::kRmi,  ModelKind::kDln, ModelKind::kUmnn,
          ModelKind::kSelNet};
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLsh: return "LSH";
    case ModelKind::kKde: return "KDE";
    case ModelKind::kLightGbm: return "LightGBM";
    case ModelKind::kLightGbmM: return "LightGBM-m";
    case ModelKind::kDnn: return "DNN";
    case ModelKind::kMoe: return "MoE";
    case ModelKind::kRmi: return "RMI";
    case ModelKind::kDln: return "DLN";
    case ModelKind::kUmnn: return "UMNN";
    case ModelKind::kSelNet: return "SelNet";
    case ModelKind::kSelNetCt: return "SelNet-ct";
    case ModelKind::kSelNetAdCt: return "SelNet-ad-ct";
  }
  return "?";
}

bool ModelSupports(ModelKind kind, data::Metric metric) {
  if (kind == ModelKind::kLsh) return metric == data::Metric::kCosine;
  return true;
}

std::unique_ptr<Estimator> MakeModel(ModelKind kind, const PreparedData& data,
                                     const ModelOptions& opts) {
  size_t dim = data.db.dim();
  float tmax = data.workload.tmax;
  const util::ScaleConfig& scale = data.scale;
  uint64_t seed = 1000 + static_cast<uint64_t>(kind) * 77;
  switch (kind) {
    case ModelKind::kLsh: {
      // The paper fixes 2000 samples against |D| ~ 10^6 (~0.2% of the data).
      // Keep the budget a small fraction of the scaled-down database rather
      // than an absolute count, so the samplers stay in the same regime.
      bl::LshConfig cfg;
      cfg.sample_budget = std::max<size_t>(100, data.db.size() / 40);
      return std::make_unique<bl::LshEstimator>(cfg);
    }
    case ModelKind::kKde: {
      bl::KdeConfig cfg;
      cfg.num_samples = std::max<size_t>(100, data.db.size() / 40);
      return std::make_unique<bl::KdeEstimator>(cfg);
    }
    case ModelKind::kLightGbm: {
      bl::GbdtConfig cfg;
      return std::make_unique<bl::GbdtEstimator>(cfg);
    }
    case ModelKind::kLightGbmM: {
      bl::GbdtConfig cfg;
      cfg.monotone_t = true;
      return std::make_unique<bl::GbdtEstimator>(cfg);
    }
    case ModelKind::kDnn:
      return std::make_unique<bl::DnnRegressor>(
          bl::DeepConfig::FromScale(scale, dim), seed);
    case ModelKind::kMoe:
      return std::make_unique<bl::MoeRegressor>(
          bl::DeepConfig::FromScale(scale, dim), seed);
    case ModelKind::kRmi:
      return std::make_unique<bl::RmiRegressor>(
          bl::DeepConfig::FromScale(scale, dim), seed);
    case ModelKind::kDln: {
      bl::DlnConfig cfg;
      cfg.input_dim = dim;
      return std::make_unique<bl::DlnEstimator>(cfg, seed);
    }
    case ModelKind::kUmnn: {
      bl::UmnnConfig cfg;
      cfg.input_dim = dim;
      if (scale.scale == util::Scale::kSmoke) cfg.hidden = 48;
      return std::make_unique<bl::UmnnEstimator>(cfg, seed);
    }
    case ModelKind::kSelNetCt: {
      core::SelNetConfig cfg = core::SelNetConfig::FromScale(scale, dim, tmax);
      if (opts.control_points > 0) cfg.num_control = opts.control_points;
      return std::make_unique<core::SelNetCt>(cfg);
    }
    case ModelKind::kSelNetAdCt: {
      core::SelNetConfig cfg = core::SelNetConfig::FromScale(scale, dim, tmax);
      if (opts.control_points > 0) cfg.num_control = opts.control_points;
      cfg.query_dependent_tau = false;
      return std::make_unique<core::SelNetCt>(cfg);
    }
    case ModelKind::kSelNet: {
      core::PartitionedConfig cfg;
      cfg.base = core::SelNetConfig::FromScale(scale, dim, tmax);
      if (opts.control_points > 0) cfg.base.num_control = opts.control_points;
      cfg.partition.k = opts.partitions > 0 ? opts.partitions : scale.partitions;
      cfg.partition.method = opts.partition_method;
      return std::make_unique<core::SelNetPartitioned>(cfg);
    }
  }
  return nullptr;
}

ModelScores TrainAndScore(Estimator* model, const PreparedData& data) {
  SEL_CHECK(model != nullptr);
  ModelScores scores;
  scores.name = model->Name();
  scores.consistent = model->IsConsistent();

  TrainContext ctx;
  ctx.db = &data.db;
  ctx.workload = &data.workload;
  ctx.epochs = data.scale.epochs;
  ctx.seed = 7;
  util::Stopwatch timer;
  model->Fit(ctx);
  scores.train_seconds = timer.ElapsedSeconds();

  const auto& wl = data.workload;
  data::Batch vb = data::MaterializeAll(wl.queries, wl.valid);
  data::Batch tb = data::MaterializeAll(wl.queries, wl.test);
  scores.valid = ComputeErrors(model->Predict(vb.x, vb.t), vb.y);
  scores.test = ComputeErrors(model->Predict(tb.x, tb.t), tb.y);
  scores.estimate_ms = MeasureEstimateMs(model, data);
  util::LogInfo("%-12s %-12s test MSE %.1f MAE %.2f MAPE %.3f (train %.1fs)",
                scores.name.c_str(), data.setting.name, scores.test.mse,
                scores.test.mae, scores.test.mape, scores.train_seconds);
  return scores;
}

double MeasureEstimateMs(Estimator* model, const PreparedData& data,
                         size_t max_queries) {
  const auto& wl = data.workload;
  const auto& samples = wl.test.empty() ? wl.valid : wl.test;
  size_t n = std::min(max_queries, samples.size());
  if (n == 0) return 0.0;
  // Single-row predictions: the paper reports per-query estimation latency.
  tensor::Matrix x(1, wl.queries.cols()), t(1, 1);
  util::Stopwatch timer;
  for (size_t i = 0; i < n; ++i) {
    const auto& s = samples[i];
    std::copy(wl.queries.row(s.query_id),
              wl.queries.row(s.query_id) + wl.queries.cols(), x.row(0));
    t(0, 0) = s.t;
    tensor::Matrix out = model->Predict(x, t);
    (void)out;
  }
  return timer.ElapsedMillis() / static_cast<double>(n);
}

void PrintAccuracyTable(const std::string& title,
                        const std::vector<ModelScores>& rows) {
  util::AsciiTable table({"Model", "MSE(valid)", "MSE(test)", "MAE(valid)",
                          "MAE(test)", "MAPE(valid)", "MAPE(test)"});
  for (const auto& r : rows) {
    std::string name = r.name + (r.consistent ? " *" : "");
    table.AddRow({name, util::AsciiTable::Num(r.valid.mse, 1),
                  util::AsciiTable::Num(r.test.mse, 1),
                  util::AsciiTable::Num(r.valid.mae, 2),
                  util::AsciiTable::Num(r.test.mae, 2),
                  util::AsciiTable::Num(r.valid.mape, 3),
                  util::AsciiTable::Num(r.test.mape, 3)});
  }
  table.Print(title);
  std::printf("(* = consistency guaranteed by construction)\n");
}

}  // namespace selnet::eval
