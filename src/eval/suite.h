#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "eval/estimator.h"
#include "eval/metrics.h"
#include "index/partitioner.h"
#include "util/env.h"
#include "util/table.h"

/// \file suite.h
/// \brief The shared experiment harness driving every table/figure bench.
///
/// Encapsulates dataset preparation (synthetic corpus + workload + ground
/// truth), the model registry covering every row of Tables 1-4, training,
/// scoring (MSE/MAE/MAPE on valid and test) and the per-query estimation-time
/// measurement of Table 7.

namespace selnet::eval {

/// \brief One corpus+distance setting of the evaluation section.
struct DatasetSetting {
  data::Corpus corpus = data::Corpus::kFasttextLike;
  data::Metric metric = data::Metric::kCosine;
  const char* name = "fasttext-cos";
};

/// \brief The four settings of Tables 1-4, in paper order.
std::vector<DatasetSetting> PaperSettings();

/// \brief fasttext-cos / fasttext-l2 / face-cos / YouTube-cos lookup.
DatasetSetting SettingByName(const std::string& name);

/// \brief Database + workload pair ready for model training.
struct PreparedData {
  data::Database db;
  data::Workload workload;
  util::ScaleConfig scale;
  DatasetSetting setting;
};

/// \brief Generate the corpus, labels and splits for a setting.
///
/// \param beta_thresholds Section 7.9: Beta(3, 2.5) threshold sampling.
PreparedData PrepareData(const DatasetSetting& setting,
                         const util::ScaleConfig& scale,
                         bool beta_thresholds = false);

/// \brief Every model row of the accuracy tables.
enum class ModelKind {
  kLsh,
  kKde,
  kLightGbm,
  kLightGbmM,
  kDnn,
  kMoe,
  kRmi,
  kDln,
  kUmnn,
  kSelNet,
  kSelNetCt,
  kSelNetAdCt,
};

/// \brief All models of Tables 1-4, in paper row order (without ablations).
std::vector<ModelKind> PaperModels();

const char* ModelKindName(ModelKind kind);

/// \brief Per-experiment overrides of model defaults (hyper-parameter sweeps).
struct ModelOptions {
  size_t control_points = 0;  ///< 0 = scale default (Table 8 sweeps this).
  size_t partitions = 0;      ///< 0 = scale default (Table 9 sweeps this).
  idx::PartitionMethod partition_method = idx::PartitionMethod::kCoverTree;
};

/// \brief True iff the model can run on this metric (LSH is cosine-only).
bool ModelSupports(ModelKind kind, data::Metric metric);

/// \brief Construct an untrained model for the prepared data.
std::unique_ptr<Estimator> MakeModel(ModelKind kind, const PreparedData& data,
                                     const ModelOptions& opts = {});

/// \brief One table row: accuracy on valid/test plus estimation time.
struct ModelScores {
  std::string name;
  bool consistent = false;
  Errors valid;
  Errors test;
  double train_seconds = 0.0;
  double estimate_ms = 0.0;  ///< Average per-query estimation time.
};

/// \brief Train `model` on `data` and score it.
ModelScores TrainAndScore(Estimator* model, const PreparedData& data);

/// \brief Measure average single-query estimation latency (Table 7).
double MeasureEstimateMs(Estimator* model, const PreparedData& data,
                         size_t max_queries = 200);

/// \brief Render Tables 1-4 style output (one row per model).
void PrintAccuracyTable(const std::string& title,
                        const std::vector<ModelScores>& rows);

}  // namespace selnet::eval
