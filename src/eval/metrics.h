#pragma once

#include "tensor/matrix.h"

/// \file metrics.h
/// \brief Error metrics of the evaluation section (Appendix B.3).

namespace selnet::eval {

/// \brief MSE / MAE / MAPE triple.
struct Errors {
  double mse = 0.0;
  double mae = 0.0;
  double mape = 0.0;
};

/// \brief Compute all three metrics between estimates and ground truth.
///
/// MAPE divides by max(y, 1) so freshly-deleted zero-selectivity labels do not
/// blow up the ratio (labels are >= 1 under the generation protocol).
Errors ComputeErrors(const tensor::Matrix& yhat, const tensor::Matrix& y);

}  // namespace selnet::eval
