#include "eval/monotonicity.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace selnet::eval {

double EmpiricalMonotonicity(Estimator* model, const tensor::Matrix& queries,
                             size_t num_queries, float tmax,
                             size_t num_thresholds, uint64_t seed) {
  SEL_CHECK(model != nullptr);
  SEL_CHECK_GE(num_thresholds, 2u);
  util::Rng rng(seed);
  num_queries = std::min(num_queries, queries.rows());
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(queries.rows(), num_queries);

  double total_score = 0.0;
  for (size_t qi : picks) {
    // Sorted thresholds; predictions must then be non-decreasing.
    std::vector<float> ts(num_thresholds);
    for (auto& t : ts) t = static_cast<float>(rng.Uniform(0.0, tmax));
    std::sort(ts.begin(), ts.end());
    tensor::Matrix x(num_thresholds, queries.cols());
    tensor::Matrix t(num_thresholds, 1);
    for (size_t i = 0; i < num_thresholds; ++i) {
      std::copy(queries.row(qi), queries.row(qi) + queries.cols(), x.row(i));
      t(i, 0) = ts[i];
    }
    tensor::Matrix yhat = model->Predict(x, t);
    size_t ok = 0, pairs = 0;
    for (size_t i = 0; i < num_thresholds; ++i) {
      for (size_t j = i + 1; j < num_thresholds; ++j) {
        ++pairs;
        // ts[i] <= ts[j]; the pair is consistent iff yhat_i <= yhat_j (tol).
        if (yhat(i, 0) <= yhat(j, 0) + 1e-3f) ++ok;
      }
    }
    total_score += 100.0 * static_cast<double>(ok) / static_cast<double>(pairs);
  }
  return total_score / static_cast<double>(num_queries);
}

}  // namespace selnet::eval
