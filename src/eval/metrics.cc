#include "eval/metrics.h"

#include <cmath>

#include "util/check.h"

namespace selnet::eval {

Errors ComputeErrors(const tensor::Matrix& yhat, const tensor::Matrix& y) {
  SEL_CHECK(yhat.SameShape(y));
  SEL_CHECK_GT(yhat.size(), 0u);
  Errors e;
  size_t n = yhat.size();
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(yhat.data()[i]) - y.data()[i];
    e.mse += d * d;
    e.mae += std::fabs(d);
    e.mape += std::fabs(d) / std::max<double>(y.data()[i], 1.0);
  }
  e.mse /= static_cast<double>(n);
  e.mae /= static_cast<double>(n);
  e.mape /= static_cast<double>(n);
  return e;
}

}  // namespace selnet::eval
