#include "core/control_heads.h"

#include <utility>

#include "nn/init.h"
#include "tensor/blas.h"
#include "util/check.h"

namespace selnet::core {

ControlHeads::ControlHeads(const HeadsConfig& cfg, util::Rng* rng) : cfg_(cfg) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  SEL_CHECK_GE(cfg.num_control, 1u);
  size_t l = cfg.num_control;
  tau_net_ = nn::Mlp({cfg.input_dim, cfg.tau_hidden, cfg.tau_hidden, l + 1}, rng);
  p_net_ = nn::Mlp({cfg.input_dim, cfg.p_hidden, cfg.p_hidden, cfg.p_hidden,
                    (l + 2) * cfg.embed_h},
                   rng);
  pw_ = ag::Param(nn::XavierUniform(l + 2, cfg.embed_h, rng));
  pb_ = ag::Param(tensor::Matrix(1, l + 2, 0.01f));
}

ControlHeads::ControlHeads(ControlHeads&& other) noexcept
    : cfg_(std::move(other.cfg_)),
      tau_net_(std::move(other.tau_net_)),
      p_net_(std::move(other.p_net_)),
      pw_(std::move(other.pw_)),
      pb_(std::move(other.pb_)) {}

ControlHeads& ControlHeads::operator=(ControlHeads&& other) noexcept {
  cfg_ = std::move(other.cfg_);
  tau_net_ = std::move(other.tau_net_);
  p_net_ = std::move(other.p_net_);
  pw_ = std::move(other.pw_);
  pb_ = std::move(other.pb_);
  InvalidateInferenceCache();
  return *this;
}

ag::Var ControlHeads::ForwardTau(const ag::Var& input) const {
  size_t batch = input->rows();
  ag::Var tau_in = input;
  if (!cfg_.query_dependent_tau) {
    // Ablation: constant input makes the knot layout query-independent.
    tau_in = ag::Constant(tensor::Matrix::Ones(batch, cfg_.input_dim));
  }
  ag::Var tau_raw = tau_net_.Forward(tau_in);                // B x (L+1)
  // Either simplex map keeps increments positive, so monotonicity holds for
  // both; they differ in how evenly they partition [0, tmax] (Section 5.2).
  ag::Var incr = cfg_.softmax_tau ? ag::SoftmaxRows(tau_raw)
                                  : ag::NormL2Rows(tau_raw);
  ag::Var cum = ag::CumsumRows(ag::Scale(incr, cfg_.tmax));  // tau_1..tau_{L+1}
  ag::Var zero = ag::Constant(tensor::Matrix(batch, 1));
  return ag::ConcatCols(zero, cum);                          // B x (L+2)
}

ControlHeads::Out ControlHeads::Forward(const ag::Var& input) const {
  ag::Var tau = ForwardTau(input);
  ag::Var h = p_net_.Forward(input);                         // B x (L+2)*H
  ag::Var k = ag::Relu(ag::GroupedLinear(h, pw_, pb_));      // increments >= 0
  ag::Var p = ag::CumsumRows(k);                             // monotone values
  return {tau, p};
}

std::shared_ptr<const ControlHeads::FoldedTail> ControlHeads::GetFoldedTail()
    const {
  std::shared_ptr<const FoldedTail> cached = std::atomic_load(&fold_cache_);
  // Generation check at read time: a fold published by a builder that raced
  // an invalidation carries a stale generation and is rebuilt instead of
  // served (see FoldedTail::generation).
  if (cached && cached->generation == fold_gen_.load()) return cached;
  // The generation is sampled before reading the weights; if an
  // invalidation lands during the build, the stale result is returned for
  // this call (the caller raced the mutation anyway) but never served.
  uint64_t gen = fold_gen_.load();
  // The fold below is exact only because the output layer is linear.
  SEL_CHECK(p_net_.output_activation() == nn::Activation::kNone);
  // Fold (output layer of p_net_) . (GroupedLinear) into one affine map:
  //   k_pre[:, g] = a . Wf[:, g] + bf[g]
  //   Wf[i][g] = sum_j W4[i][g*H + j] * pw[g][j]
  //   bf[g]    = sum_j b4[g*H + j] * pw[g][j] + pb[g]
  const nn::Linear& out_layer = p_net_.output_layer();
  const tensor::Matrix& w4 = out_layer.weight()->value;  // p_hidden x (L+2)*H
  const tensor::Matrix& b4 = out_layer.bias()->value;    // 1 x (L+2)*H
  const tensor::Matrix& pw = pw_->value;                 // (L+2) x H
  const tensor::Matrix& pb = pb_->value;                 // 1 x (L+2)
  size_t groups = pw.rows(), h = pw.cols(), hidden = w4.rows();
  tensor::Matrix wf(hidden, groups);
  for (size_t i = 0; i < hidden; ++i) {
    const float* w4_row = w4.row(i);
    float* wf_row = wf.row(i);
    for (size_t g = 0; g < groups; ++g) {
      wf_row[g] = tensor::Dot(w4_row + g * h, pw.row(g), h);
    }
  }
  tensor::Matrix bf(1, groups);
  for (size_t g = 0; g < groups; ++g) {
    bf(0, g) = tensor::Dot(b4.data() + g * h, pw.row(g), h) + pb(0, g);
  }
  auto fold = std::make_shared<FoldedTail>();
  fold->wf = ag::Constant(std::move(wf));
  fold->bf = ag::Constant(std::move(bf));
  fold->generation = gen;
  std::shared_ptr<const FoldedTail> built = std::move(fold);
  if (fold_gen_.load() == gen) std::atomic_store(&fold_cache_, built);
  return built;
}

void ControlHeads::InvalidateInferenceCache() const {
  // Bump the generation BEFORE clearing so an in-flight build that started
  // earlier fails its generation check and cannot republish a stale fold.
  fold_gen_.fetch_add(1);
  std::atomic_store(&fold_cache_,
                    std::shared_ptr<const FoldedTail>(nullptr));
  // Pack-cache generation rides the fold generation: any weight mutation
  // that staled the fold also staled the packed panels of these parameters.
  // (The folded tail's own pack dies with its Constant nodes above.)
  if (pw_) ag::InvalidatePackCaches(Params());
}

ControlHeads::Out ControlHeads::ForwardInference(const ag::Var& input) const {
  ag::Var tau = ForwardTau(input);
  ag::Var a = p_net_.ForwardHidden(input);  // B x p_hidden
  std::shared_ptr<const FoldedTail> fold = GetFoldedTail();
  ag::Var k_pre = ag::AddRowBroadcast(ag::MatMul(a, fold->wf), fold->bf);
  ag::Var p = ag::CumsumRows(ag::Relu(k_pre));
  return {tau, p};
}

std::vector<ag::Var> ControlHeads::Params() const {
  std::vector<ag::Var> out = tau_net_.Params();
  for (const auto& v : p_net_.Params()) out.push_back(v);
  out.push_back(pw_);
  out.push_back(pb_);
  return out;
}

}  // namespace selnet::core
