#include "core/control_heads.h"

#include "nn/init.h"
#include "util/check.h"

namespace selnet::core {

ControlHeads::ControlHeads(const HeadsConfig& cfg, util::Rng* rng) : cfg_(cfg) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  SEL_CHECK_GE(cfg.num_control, 1u);
  size_t l = cfg.num_control;
  tau_net_ = nn::Mlp({cfg.input_dim, cfg.tau_hidden, cfg.tau_hidden, l + 1}, rng);
  p_net_ = nn::Mlp({cfg.input_dim, cfg.p_hidden, cfg.p_hidden, cfg.p_hidden,
                    (l + 2) * cfg.embed_h},
                   rng);
  pw_ = ag::Param(nn::XavierUniform(l + 2, cfg.embed_h, rng));
  pb_ = ag::Param(tensor::Matrix(1, l + 2, 0.01f));
}

ControlHeads::Out ControlHeads::Forward(const ag::Var& input) const {
  size_t batch = input->rows();
  ag::Var tau_in = input;
  if (!cfg_.query_dependent_tau) {
    // Ablation: constant input makes the knot layout query-independent.
    tau_in = ag::Constant(tensor::Matrix::Ones(batch, cfg_.input_dim));
  }
  ag::Var tau_raw = tau_net_.Forward(tau_in);                // B x (L+1)
  // Either simplex map keeps increments positive, so monotonicity holds for
  // both; they differ in how evenly they partition [0, tmax] (Section 5.2).
  ag::Var incr = cfg_.softmax_tau ? ag::SoftmaxRows(tau_raw)
                                  : ag::NormL2Rows(tau_raw);
  ag::Var cum = ag::CumsumRows(ag::Scale(incr, cfg_.tmax));  // tau_1..tau_{L+1}
  ag::Var zero = ag::Constant(tensor::Matrix(batch, 1));
  ag::Var tau = ag::ConcatCols(zero, cum);                   // B x (L+2)

  ag::Var h = p_net_.Forward(input);                         // B x (L+2)*H
  ag::Var k = ag::Relu(ag::GroupedLinear(h, pw_, pb_));      // increments >= 0
  ag::Var p = ag::CumsumRows(k);                             // monotone values
  return {tau, p};
}

std::vector<ag::Var> ControlHeads::Params() const {
  std::vector<ag::Var> out = tau_net_.Params();
  for (const auto& v : p_net_.Params()) out.push_back(v);
  out.push_back(pw_);
  out.push_back(pb_);
  return out;
}

}  // namespace selnet::core
