#pragma once

#include <memory>
#include <vector>

#include "data/database.h"
#include "data/workload.h"
#include "eval/estimator.h"

/// \file updater.h
/// \brief Dealing with updates (Section 5.4).
///
/// On each insert/delete batch the manager patches all workload labels (an
/// O(#samples) distance test per record), then re-checks validation MAE. If
/// the drift from the MAE recorded at the last (re)training exceeds delta_U,
/// the model is incrementally re-trained from its current parameters until
/// validation MAE stops improving for `patience` consecutive epochs — never
/// from scratch, so catastrophic forgetting is avoided by continuing over the
/// full (updated) training data.

namespace selnet::core {

/// \brief Capabilities the update manager needs from a model.
class IncrementalModel {
 public:
  virtual ~IncrementalModel() = default;

  /// \brief Validation MAE against current labels.
  virtual double CurrentValidationMae(const eval::TrainContext& ctx) = 0;

  /// \brief Continue training (not from scratch); returns epochs run.
  virtual size_t RunIncrementalFit(const eval::TrainContext& ctx,
                                   size_t patience, size_t max_epochs) = 0;

  /// \brief Called when a new object enters the database.
  virtual void OnInsert(size_t id, const float* vec) {
    (void)id;
    (void)vec;
  }

  /// \brief Called when an object leaves the database.
  virtual void OnDelete(size_t id) { (void)id; }

  /// \brief Deep copy of the model (parameters, config, rng state) as a
  /// servable estimator, or null when the model does not support cloning.
  ///
  /// Contract for implementers: the clone shares NO parameter storage with
  /// the source (fresh autograd leaves, hence fresh packed-weight caches),
  /// its inference fold caches are invalidated, and its rng state equals the
  /// source's at clone time — so continuing training on the clone follows
  /// the exact batch/shuffle stream the source would have. This is what lets
  /// the live-update pipeline retrain a shadow copy and publish further
  /// copies without ever touching a served snapshot.
  virtual std::shared_ptr<eval::Estimator> CloneServable() const {
    return nullptr;
  }
};

/// \brief Update-policy knobs.
struct UpdatePolicy {
  /// Relative validation-MAE drift that triggers retraining (delta_U).
  double mae_drift_fraction = 0.10;
  size_t patience = 3;
  size_t max_epochs = 30;
  /// Shard the per-record label patching over util::ParallelFor
  /// (bit-identical to the serial pass). Right for synchronous foreground
  /// use, where patching sits on the caller's critical path. Background
  /// users sharing the pool with a serving stack (serve::LiveUpdatePipeline)
  /// turn it off: fanning normal-priority patch chunks onto the serve pool
  /// would defeat the pipeline thread's own low scheduling priority.
  bool parallel_label_patch = true;
};

/// \brief One update operation: a batch of inserts or deletes.
struct UpdateOp {
  bool is_insert = true;
  /// For inserts: the new vectors. For deletes: ignored.
  std::vector<std::vector<float>> vectors;
  /// For deletes: database ids. For inserts: ignored.
  std::vector<size_t> ids;
};

/// \brief Outcome of applying one operation.
struct UpdateResult {
  bool retrained = false;
  size_t epochs = 0;
  double mae_before = 0.0;  ///< Validation MAE right after label patching.
  double mae_after = 0.0;   ///< After optional retraining.
};

/// \brief Drives the Section 5.4 update loop over a database + workload +
/// model triple. The manager owns none of them.
class UpdateManager {
 public:
  UpdateManager(data::Database* db, data::Workload* workload,
                IncrementalModel* model, eval::TrainContext ctx,
                UpdatePolicy policy);

  /// \brief Apply one insert/delete batch, patch labels, maybe retrain.
  UpdateResult Apply(const UpdateOp& op);

  /// \brief MAE recorded at the last (re)training (the drift baseline).
  double baseline_mae() const { return baseline_mae_; }

 private:
  void PatchAllSplits(const float* vec, int delta);

  data::Database* db_;
  data::Workload* workload_;
  IncrementalModel* model_;
  eval::TrainContext ctx_;
  UpdatePolicy policy_;
  double baseline_mae_ = 0.0;
};

}  // namespace selnet::core
