#include "core/pwl.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace selnet::core {

PiecewiseLinear::PiecewiseLinear(std::vector<float> tau, std::vector<float> p)
    : tau_(std::move(tau)), p_(std::move(p)) {
  SEL_CHECK_GE(tau_.size(), 2u);
  SEL_CHECK_EQ(tau_.size(), p_.size());
}

float PiecewiseLinear::operator()(float t) const {
  if (t <= tau_.front()) return p_.front();
  if (t >= tau_.back()) return p_.back();
  auto hi = std::upper_bound(tau_.begin(), tau_.end(), t);
  size_t i = static_cast<size_t>(hi - tau_.begin());
  i = std::clamp<size_t>(i, 1, tau_.size() - 1);
  float a = tau_[i - 1], b = tau_[i];
  if (b - a <= 1e-12f) return p_[i - 1];
  float w = (t - a) / (b - a);
  return p_[i - 1] + w * (p_[i] - p_[i - 1]);
}

bool PiecewiseLinear::HasMonotoneValues() const {
  for (size_t i = 1; i < p_.size(); ++i) {
    if (p_[i] < p_[i - 1]) return false;
  }
  return true;
}

bool PiecewiseLinear::HasSortedKnots() const {
  for (size_t i = 1; i < tau_.size(); ++i) {
    if (tau_[i] < tau_[i - 1]) return false;
  }
  return true;
}

bool PiecewiseLinear::IsMonotonic(size_t steps) const {
  float lo = tau_.front(), hi = tau_.back();
  float prev = (*this)(lo);
  for (size_t s = 1; s <= steps; ++s) {
    float t = lo + (hi - lo) * static_cast<float>(s) / static_cast<float>(steps);
    float v = (*this)(t);
    if (v < prev - 1e-4f) return false;
    prev = v;
  }
  return true;
}

namespace {

// Hat-basis least squares for knot values given fixed knot positions:
// minimize sum_i (sum_j phi_j(t_i) p_j - y_i)^2 with a tiny ridge term.
std::vector<float> SolveKnotValues(const std::vector<float>& ts,
                                   const std::vector<float>& ys,
                                   const std::vector<float>& knots) {
  size_t k = knots.size();
  std::vector<double> ata(k * k, 0.0);
  std::vector<double> aty(k, 0.0);
  for (size_t i = 0; i < ts.size(); ++i) {
    float t = std::clamp(ts[i], knots.front(), knots.back());
    auto hi = std::upper_bound(knots.begin(), knots.end(), t);
    size_t seg = std::clamp<size_t>(static_cast<size_t>(hi - knots.begin()), 1, k - 1);
    float a = knots[seg - 1], b = knots[seg];
    float w = (b - a <= 1e-12f) ? 0.0f : (t - a) / (b - a);
    // Row has two non-zeros: (seg-1, 1-w) and (seg, w).
    double c0 = 1.0 - w, c1 = w;
    ata[(seg - 1) * k + (seg - 1)] += c0 * c0;
    ata[(seg - 1) * k + seg] += c0 * c1;
    ata[seg * k + (seg - 1)] += c1 * c0;
    ata[seg * k + seg] += c1 * c1;
    aty[seg - 1] += c0 * ys[i];
    aty[seg] += c1 * ys[i];
  }
  for (size_t j = 0; j < k; ++j) ata[j * k + j] += 1e-6;
  // Gaussian elimination with partial pivoting (k is small).
  std::vector<double> m = ata;
  std::vector<double> rhs = aty;
  for (size_t col = 0; col < k; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(m[r * k + col]) > std::fabs(m[piv * k + col])) piv = r;
    }
    if (piv != col) {
      for (size_t c = 0; c < k; ++c) std::swap(m[col * k + c], m[piv * k + c]);
      std::swap(rhs[col], rhs[piv]);
    }
    double d = m[col * k + col];
    if (std::fabs(d) < 1e-12) continue;
    for (size_t r = col + 1; r < k; ++r) {
      double f = m[r * k + col] / d;
      if (f == 0.0) continue;
      for (size_t c = col; c < k; ++c) m[r * k + c] -= f * m[col * k + c];
      rhs[r] -= f * rhs[col];
    }
  }
  std::vector<float> p(k, 0.0f);
  for (size_t col = k; col-- > 0;) {
    double acc = rhs[col];
    for (size_t c = col + 1; c < k; ++c) acc -= m[col * k + c] * p[c];
    double d = m[col * k + col];
    p[col] = (std::fabs(d) < 1e-12) ? 0.0f : static_cast<float>(acc / d);
  }
  return p;
}

// Sort samples by t.
void SortSamples(std::vector<float>* ts, std::vector<float>* ys) {
  std::vector<size_t> order(ts->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return (*ts)[a] < (*ts)[b]; });
  std::vector<float> ts2(ts->size()), ys2(ys->size());
  for (size_t i = 0; i < order.size(); ++i) {
    ts2[i] = (*ts)[order[i]];
    ys2[i] = (*ys)[order[i]];
  }
  *ts = std::move(ts2);
  *ys = std::move(ys2);
}

}  // namespace

PiecewiseLinear PiecewiseLinear::FitEquallySpaced(const std::vector<float>& ts_in,
                                                  const std::vector<float>& ys_in,
                                                  size_t num_knots) {
  SEL_CHECK_GE(num_knots, 2u);
  SEL_CHECK(!ts_in.empty());
  std::vector<float> ts = ts_in, ys = ys_in;
  SortSamples(&ts, &ys);
  std::vector<float> knots(num_knots);
  float lo = ts.front(), hi = ts.back();
  for (size_t j = 0; j < num_knots; ++j) {
    knots[j] = lo + (hi - lo) * static_cast<float>(j) /
                        static_cast<float>(num_knots - 1);
  }
  return PiecewiseLinear(knots, SolveKnotValues(ts, ys, knots));
}

PiecewiseLinear PiecewiseLinear::FitAdaptive(const std::vector<float>& ts_in,
                                             const std::vector<float>& ys_in,
                                             size_t num_knots) {
  SEL_CHECK_GE(num_knots, 2u);
  SEL_CHECK_GE(ts_in.size(), 2u);
  std::vector<float> ts = ts_in, ys = ys_in;
  SortSamples(&ts, &ys);
  // Knot density proportional to |f''|^(1/3) — the asymptotically optimal
  // allocation for piece-wise linear approximation — estimated from slope
  // changes between consecutive samples, plus a small uniform mass in t so
  // flat stretches still receive knots. This mirrors the behaviour SelNet's
  // learned tau head exhibits in Figure 4: more knots where the selectivity
  // curve bends, without starving the flat head of the curve.
  size_t m = ts.size();
  std::vector<double> slope(m, 0.0);
  for (size_t i = 1; i < m; ++i) {
    double dt = std::max(static_cast<double>(ts[i]) - ts[i - 1], 1e-9);
    slope[i] = (static_cast<double>(ys[i]) - ys[i - 1]) / dt;
  }
  double span_t = std::max(static_cast<double>(ts.back()) - ts.front(), 1e-9);
  std::vector<double> arc(m, 0.0);
  double curv_total = 0.0;
  for (size_t i = 2; i < m; ++i) {
    curv_total += std::cbrt(std::fabs(slope[i] - slope[i - 1]));
  }
  double uniform_rate = 0.15 * std::max(curv_total, 1.0) / span_t;
  for (size_t i = 1; i < m; ++i) {
    double curv = (i >= 2) ? std::cbrt(std::fabs(slope[i] - slope[i - 1])) : 0.0;
    double dt = std::max(static_cast<double>(ts[i]) - ts[i - 1], 0.0);
    arc[i] = arc[i - 1] + curv + uniform_rate * dt + 1e-12;
  }
  double total = arc.back();
  std::vector<float> knots;
  knots.reserve(num_knots);
  knots.push_back(ts.front());
  for (size_t j = 1; j + 1 < num_knots; ++j) {
    double target = total * static_cast<double>(j) / static_cast<double>(num_knots - 1);
    auto it = std::lower_bound(arc.begin(), arc.end(), target);
    size_t idx = std::min<size_t>(static_cast<size_t>(it - arc.begin()),
                                  ts.size() - 1);
    knots.push_back(ts[idx]);
  }
  knots.push_back(ts.back());
  // Deduplicate while preserving order (coincident knots break interpolation).
  for (size_t j = 1; j < knots.size(); ++j) {
    if (knots[j] <= knots[j - 1]) {
      knots[j] = knots[j - 1] + 1e-6f;
    }
  }
  return PiecewiseLinear(knots, SolveKnotValues(ts, ys, knots));
}

}  // namespace selnet::core
