#include "core/selnet_partitioned.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/pwl.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace selnet::core {

SelNetPartitioned::SelNetPartitioned(const PartitionedConfig& cfg)
    : cfg_(cfg),
      rng_(0x9a11e7ull ^ (cfg.base.input_dim * 0x9e3779b9ull)),
      ae_(cfg.base.input_dim, cfg.base.ae_hidden, cfg.base.latent_dim, &rng_) {
  SEL_CHECK_GT(cfg.base.input_dim, 0u);
  SEL_CHECK_GT(cfg.base.tmax, 0.0f);
}

void SelNetPartitioned::BuildStructure(const eval::TrainContext& ctx) {
  tensor::Matrix dense = ctx.db->DenseView();
  part_ = idx::BuildPartitioning(dense, ctx.db->metric(), cfg_.partition);
  // DenseView row i corresponds to the i-th live id.
  std::vector<size_t> live = ctx.db->LiveIds();
  cluster_ids_.assign(part_.num_clusters(), {});
  for (size_t c = 0; c < part_.num_clusters(); ++c) {
    for (size_t row : part_.cluster_members[c]) {
      cluster_ids_[c].push_back(live[row]);
    }
  }
  HeadsConfig hc;
  hc.input_dim = cfg_.base.input_dim + cfg_.base.latent_dim;
  hc.num_control = cfg_.base.num_control;
  hc.tau_hidden = cfg_.base.tau_hidden;
  hc.p_hidden = cfg_.base.p_hidden;
  hc.embed_h = cfg_.base.embed_h;
  hc.tmax = cfg_.base.tmax;
  hc.query_dependent_tau = cfg_.base.query_dependent_tau;
  hc.softmax_tau = cfg_.base.softmax_tau;
  heads_.clear();
  for (size_t c = 0; c < part_.num_clusters(); ++c) {
    heads_.emplace_back(hc, &rng_);
  }
  structure_built_ = true;
  util::LogDebug("SelNet: %zu regions merged into %zu clusters",
                 part_.regions.size(), part_.num_clusters());
}

void SelNetPartitioned::ComputeLocalLabels(const eval::TrainContext& ctx) {
  const auto& wl = *ctx.workload;
  size_t k = heads_.size();
  local_y_.assign(k, std::vector<float>(wl.train.size(), 0.0f));
  mask_.assign(k, std::vector<float>(wl.train.size(), 0.0f));
  // Group train samples by query to reuse per-query distance lists.
  std::vector<std::vector<size_t>> by_query(wl.queries.rows());
  for (size_t i = 0; i < wl.train.size(); ++i) {
    by_query[wl.train[i].query_id].push_back(i);
  }
  const data::Database& db = *ctx.db;
  util::ParallelFor(0, by_query.size(), [&](size_t q) {
    if (by_query[q].empty()) return;
    const float* query = wl.queries.row(q);
    for (size_t c = 0; c < k; ++c) {
      std::vector<float> dists;
      dists.reserve(cluster_ids_[c].size());
      for (size_t id : cluster_ids_[c]) {
        if (!db.alive(id)) continue;
        dists.push_back(data::Distance(query, db.vector(id), db.dim(),
                                       db.metric()));
      }
      std::sort(dists.begin(), dists.end());
      for (size_t i : by_query[q]) {
        auto ub = std::upper_bound(dists.begin(), dists.end(), wl.train[i].t);
        local_y_[c][i] = static_cast<float>(ub - dists.begin());
      }
    }
    for (size_t i : by_query[q]) {
      std::vector<uint8_t> fc = part_.Intersects(query, wl.train[i].t);
      for (size_t c = 0; c < k; ++c) mask_[c][i] = fc[c] ? 1.0f : 0.0f;
    }
  }, /*grain=*/4);
}

SelNetPartitioned::LocalBatch SelNetPartitioned::MakeBatch(
    const eval::TrainContext& ctx, const std::vector<size_t>& idx) const {
  const auto& wl = *ctx.workload;
  LocalBatch b;
  b.base = data::MaterializeBatch(wl.queries, wl.train, idx);
  size_t k = heads_.size();
  b.local_y.reserve(k);
  b.mask.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    tensor::Matrix ly(idx.size(), 1), m(idx.size(), 1);
    for (size_t i = 0; i < idx.size(); ++i) {
      ly(i, 0) = local_y_[c][idx[i]];
      m(i, 0) = mask_[c][idx[i]];
    }
    b.local_y.push_back(std::move(ly));
    b.mask.push_back(std::move(m));
  }
  return b;
}

double SelNetPartitioned::TrainBatch(const LocalBatch& batch, bool joint,
                                     nn::Optimizer* opt) {
  ag::Var x = ag::Constant(batch.base.x);
  ag::Var t = ag::Constant(batch.base.t);
  ag::Var input = ag::ConcatCols(x, ae_.Encode(x));
  size_t k = heads_.size();

  ag::Var local_sum;  // sum of local losses
  ag::Var global_yhat;
  for (size_t c = 0; c < k; ++c) {
    ControlHeads::Out heads = heads_[c].Forward(input);
    ag::Var yhat = ag::PiecewiseLinearGather(heads.tau, heads.p, t);
    ag::Var ly = ag::Constant(batch.local_y[c]);
    ag::Var local_loss =
        ag::HuberLogLoss(yhat, ly, cfg_.base.huber_delta, cfg_.base.log_eps);
    local_sum = local_sum ? ag::Add(local_sum, local_loss) : local_loss;
    if (joint) {
      ag::Var masked = ag::MulColBroadcast(yhat, ag::Constant(batch.mask[c]));
      global_yhat = global_yhat ? ag::Add(global_yhat, masked) : masked;
    }
  }

  ag::Var total;
  if (joint) {
    ag::Var y = ag::Constant(batch.base.y);
    ag::Var global_loss =
        ag::HuberLogLoss(global_yhat, y, cfg_.base.huber_delta, cfg_.base.log_eps);
    total = ag::Add(global_loss, ag::Scale(local_sum, cfg_.beta));
  } else {
    total = local_sum;
  }
  total = ag::Add(total, ag::Scale(ae_.ReconstructionLoss(x), cfg_.base.lambda_ae));

  opt->ZeroGrad();
  ag::Backward(total);
  opt->ClipGrad(5.0f);
  opt->Step();
  // Weights moved; every local head's folded tail is stale.
  for (auto& h : heads_) h.InvalidateInferenceCache();
  return total->value(0, 0);
}

double SelNetPartitioned::RunEpoch(const eval::TrainContext& ctx, bool joint,
                                   nn::Optimizer* opt, std::vector<size_t>* order,
                                   util::Rng* rng) {
  rng->Shuffle(order);
  double total = 0.0;
  size_t batches = 0;
  for (size_t begin = 0; begin < order->size(); begin += cfg_.base.batch_size) {
    size_t end = std::min(begin + cfg_.base.batch_size, order->size());
    std::vector<size_t> idx(order->begin() + begin, order->begin() + end);
    total += TrainBatch(MakeBatch(ctx, idx), joint, opt);
    ++batches;
  }
  return total / std::max<size_t>(1, batches);
}

void SelNetPartitioned::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.db != nullptr && ctx.workload != nullptr);
  db_ = ctx.db;
  const auto& wl = *ctx.workload;
  SEL_CHECK(!wl.train.empty());

  if (!structure_built_) BuildStructure(ctx);
  ComputeLocalLabels(ctx);

  if (!ae_pretrained_) {
    tensor::Matrix dense = ctx.db->DenseView();
    if (dense.rows() > cfg_.base.ae_pretrain_rows) {
      std::vector<size_t> picks =
          rng_.SampleWithoutReplacement(dense.rows(), cfg_.base.ae_pretrain_rows);
      tensor::Matrix sub(picks.size(), dense.cols());
      for (size_t i = 0; i < picks.size(); ++i) {
        std::copy(dense.row(picks[i]), dense.row(picks[i]) + dense.cols(),
                  sub.row(i));
      }
      dense = std::move(sub);
    }
    ae_.Pretrain(dense, cfg_.base.ae_pretrain_epochs, 128, 1e-3f, &rng_);
    ae_pretrained_ = true;
  }

  nn::Adam opt(Params(), cfg_.base.lr);
  std::vector<size_t> order(wl.train.size());
  std::iota(order.begin(), order.end(), size_t{0});

  size_t pretrain_epochs = static_cast<size_t>(
      std::llround(cfg_.pretrain_frac * static_cast<double>(ctx.epochs)));
  double best_mae = std::numeric_limits<double>::max();
  std::vector<tensor::Matrix> best;
  for (size_t epoch = 0; epoch < ctx.epochs; ++epoch) {
    bool joint = epoch >= pretrain_epochs;
    double loss = RunEpoch(ctx, joint, &opt, &order, &rng_);
    if (joint) {
      double mae = ValidationMae(ctx);
      if (mae < best_mae) {
        best_mae = mae;
        best = nn::SnapshotParams(Params());
      }
      util::LogDebug("SelNet epoch %zu joint loss %.5f val-mae %.2f", epoch,
                     loss, mae);
    }
  }
  if (!best.empty()) {
    nn::RestoreParams(Params(), best);
    // Folds were built from last-epoch weights.
    for (auto& h : heads_) h.InvalidateInferenceCache();
  }
}

size_t SelNetPartitioned::IncrementalFit(const eval::TrainContext& ctx,
                                         size_t patience, size_t max_epochs) {
  SEL_CHECK(structure_built_);
  db_ = ctx.db;
  ComputeLocalLabels(ctx);
  nn::Adam opt(Params(), cfg_.base.lr * 0.5f);
  std::vector<size_t> order(ctx.workload->train.size());
  std::iota(order.begin(), order.end(), size_t{0});
  double best_mae = ValidationMae(ctx);
  std::vector<tensor::Matrix> best = nn::SnapshotParams(Params());
  size_t bad = 0, epochs = 0;
  while (bad < patience && epochs < max_epochs) {
    RunEpoch(ctx, /*joint=*/true, &opt, &order, &rng_);
    ++epochs;
    double mae = ValidationMae(ctx);
    if (mae < best_mae - 1e-9) {
      best_mae = mae;
      best = nn::SnapshotParams(Params());
      bad = 0;
    } else {
      ++bad;
    }
  }
  nn::RestoreParams(Params(), best);
  // Folds were built from last-epoch weights.
  for (auto& h : heads_) h.InvalidateInferenceCache();
  return epochs;
}

std::unique_ptr<SelNetPartitioned> SelNetPartitioned::Clone() const {
  auto clone = std::make_unique<SelNetPartitioned>(cfg_);
  clone->part_ = part_;
  clone->cluster_ids_ = cluster_ids_;
  clone->db_ = db_;
  clone->structure_built_ = structure_built_;
  clone->ae_pretrained_ = ae_pretrained_;
  clone->local_y_ = local_y_;
  clone->mask_ = mask_;
  // Fresh heads (fresh autograd leaves); the init draws below are discarded
  // when the rng stream is overwritten with the source's.
  clone->heads_.reserve(heads_.size());
  for (const auto& h : heads_) clone->heads_.emplace_back(h.config(), &clone->rng_);
  std::vector<ag::Var> src = Params();
  std::vector<ag::Var> dst = clone->Params();
  SEL_CHECK_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  clone->rng_ = rng_;
  clone->InvalidateInferenceCache();
  return clone;
}

void SelNetPartitioned::AssignNewObject(size_t id, const float* vec) {
  SEL_CHECK(structure_built_);
  size_t cluster = part_.AssignObject(vec);
  cluster_ids_[cluster].push_back(id);
}

tensor::Matrix SelNetPartitioned::Predict(const tensor::Matrix& x,
                                          const tensor::Matrix& t) {
  SEL_CHECK(structure_built_);
  SEL_CHECK_EQ(x.rows(), t.rows());
  tensor::Matrix out(x.rows(), 1);
  constexpr size_t kChunk = 1024;
  size_t k = heads_.size();
  for (size_t begin = 0; begin < x.rows(); begin += kChunk) {
    size_t end = std::min(begin + kChunk, x.rows());
    size_t b = end - begin;
    ag::Var xb = ag::Constant(x.RowSlice(begin, end));
    ag::Var tb = ag::Constant(t.RowSlice(begin, end));
    ag::Var input = ag::ConcatCols(xb, ae_.Encode(xb));
    // fc indicators for the chunk.
    std::vector<tensor::Matrix> masks(k, tensor::Matrix(b, 1));
    for (size_t r = 0; r < b; ++r) {
      std::vector<uint8_t> fc = part_.Intersects(x.row(begin + r), t(begin + r, 0));
      for (size_t c = 0; c < k; ++c) masks[c](r, 0) = fc[c] ? 1.0f : 0.0f;
    }
    ag::Var global;
    for (size_t c = 0; c < k; ++c) {
      ControlHeads::Out heads = heads_[c].ForwardInference(input);
      ag::Var yhat = ag::PiecewiseLinearGather(heads.tau, heads.p, tb);
      ag::Var masked = ag::MulColBroadcast(yhat, ag::Constant(masks[c]));
      global = global ? ag::Add(global, masked) : masked;
    }
    for (size_t r = 0; r < b; ++r) out(begin + r, 0) = global->value(r, 0);
  }
  return out;
}

std::vector<float> SelNetPartitioned::SweepEstimate(const float* x,
                                                    const float* ts,
                                                    size_t count) {
  SEL_CHECK(structure_built_);
  size_t k = heads_.size();
  tensor::Matrix xm(1, cfg_.base.input_dim);
  std::copy(x, x + cfg_.base.input_dim, xm.row(0));
  ag::Var xb = ag::Constant(std::move(xm));
  ag::Var input = ag::ConcatCols(xb, ae_.Encode(xb));
  // One control-point evaluation per cluster, reused for every threshold.
  std::vector<PiecewiseLinear> curves;
  curves.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    ControlHeads::Out heads = heads_[c].ForwardInference(input);
    size_t knots = heads.tau->cols();
    curves.emplace_back(
        std::vector<float>(heads.tau->value.row(0),
                           heads.tau->value.row(0) + knots),
        std::vector<float>(heads.p->value.row(0),
                           heads.p->value.row(0) + knots));
  }
  std::vector<float> out(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<uint8_t> fc = part_.Intersects(x, ts[i]);
    // Mirror Predict's masked accumulation: cluster order, float adds, and
    // exact zeros for inactive clusters (knot values are non-negative, so
    // Predict's 0 * yhat is +0.0f too).
    float acc = 0.0f;
    for (size_t c = 0; c < k; ++c) acc += fc[c] ? curves[c](ts[i]) : 0.0f;
    out[i] = acc;
  }
  return out;
}

double SelNetPartitioned::ValidationMae(const eval::TrainContext& ctx) {
  const auto& wl = *ctx.workload;
  if (wl.valid.empty()) return 0.0;
  data::Batch batch = data::MaterializeAll(wl.queries, wl.valid);
  tensor::Matrix yhat = Predict(batch.x, batch.t);
  double total = 0.0;
  for (size_t i = 0; i < wl.valid.size(); ++i) {
    total += std::fabs(static_cast<double>(yhat(i, 0)) - batch.y(i, 0));
  }
  return total / static_cast<double>(wl.valid.size());
}

std::vector<ag::Var> SelNetPartitioned::Params() const {
  std::vector<ag::Var> out = ae_.Params();
  for (const auto& h : heads_) {
    for (const auto& p : h.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace selnet::core
