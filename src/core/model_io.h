#pragma once

#include <memory>
#include <string>

#include "core/selnet_ct.h"
#include "util/status.h"

/// \file model_io.h
/// \brief Whole-model persistence for SelNet-ct: hyper-parameters + weights
/// in one self-describing file, so a trained estimator can be shipped and
/// served without the training workload.
///
/// Format: magic "SELM", u32 version, the SelNetConfig fields in declaration
/// order, then the parameter matrices in Params() order (u64 rows, u64 cols,
/// float data each).

namespace selnet::core {

/// \brief Write `model` (config + parameters) to `path`.
util::Status SaveModel(const SelNetCt& model, const std::string& path);

/// \brief Reconstruct a model from `path`; ready for Predict immediately.
util::Result<std::unique_ptr<SelNetCt>> LoadModel(const std::string& path);

}  // namespace selnet::core
