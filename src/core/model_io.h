#pragma once

#include <memory>
#include <string>

#include "core/selnet_ct.h"
#include "util/status.h"

/// \file model_io.h
/// \brief Whole-model persistence for SelNet-ct: hyper-parameters + weights
/// in one self-describing file, so a trained estimator can be shipped and
/// served without the training workload.
///
/// Format: magic "SELM", u32 version, the SelNetConfig fields in declaration
/// order, then the parameter matrices in Params() order (u64 rows, u64 cols,
/// float data, and — since v2 — a u32 CRC-32 per parameter; see
/// nn/serialize.h). Version 1 files still load.
///
/// The byte-buffer variants exist for state transfer between serving
/// processes: the SAME encoding that lands on disk travels over the wire, so
/// a shard restored from a transfer serves bit-identical answers to one
/// restored from a file.

namespace selnet::core {

/// \brief Write `model` (config + parameters) to `path`.
util::Status SaveModel(const SelNetCt& model, const std::string& path);

/// \brief Reconstruct a model from `path`; ready for Predict immediately.
util::Result<std::unique_ptr<SelNetCt>> LoadModel(const std::string& path);

/// \brief SaveModel into a memory buffer (exact file-format bytes).
util::Result<std::string> SaveModelBytes(const SelNetCt& model);

/// \brief LoadModel from a memory buffer previously produced by
/// SaveModelBytes (or read from a SaveModel file). `origin` names the byte
/// source in error messages ("state transfer from shard-b", a path, …).
util::Result<std::unique_ptr<SelNetCt>> LoadModelBytes(
    const std::string& bytes, const std::string& origin);

}  // namespace selnet::core
