#include "core/updater.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace selnet::core {

UpdateManager::UpdateManager(data::Database* db, data::Workload* workload,
                             IncrementalModel* model, eval::TrainContext ctx,
                             UpdatePolicy policy)
    : db_(db), workload_(workload), model_(model), ctx_(ctx), policy_(policy) {
  SEL_CHECK(db != nullptr && workload != nullptr && model != nullptr);
  ctx_.db = db_;
  ctx_.workload = workload_;
  baseline_mae_ = model_->CurrentValidationMae(ctx_);
}

void UpdateManager::PatchAllSplits(const float* vec, int delta) {
  bool parallel = policy_.parallel_label_patch;
  data::PatchLabels(workload_->queries, workload_->metric, vec, delta,
                    &workload_->train, parallel);
  data::PatchLabels(workload_->queries, workload_->metric, vec, delta,
                    &workload_->valid, parallel);
  data::PatchLabels(workload_->queries, workload_->metric, vec, delta,
                    &workload_->test, parallel);
}

UpdateResult UpdateManager::Apply(const UpdateOp& op) {
  UpdateResult result;
  if (op.is_insert) {
    for (const auto& vec : op.vectors) {
      size_t id = db_->Insert(vec);
      PatchAllSplits(vec.data(), +1);
      model_->OnInsert(id, vec.data());
    }
  } else {
    for (size_t id : op.ids) {
      // Copy before delete: patching needs the vector after removal too.
      std::vector<float> vec(db_->vector(id), db_->vector(id) + db_->dim());
      db_->Delete(id);
      PatchAllSplits(vec.data(), -1);
      model_->OnDelete(id);
    }
  }
  result.mae_before = model_->CurrentValidationMae(ctx_);
  double drift = result.mae_before - baseline_mae_;
  double threshold = policy_.mae_drift_fraction * std::max(baseline_mae_, 1e-9);
  if (drift > threshold) {
    result.epochs =
        model_->RunIncrementalFit(ctx_, policy_.patience, policy_.max_epochs);
    result.retrained = true;
    baseline_mae_ = model_->CurrentValidationMae(ctx_);
    util::LogDebug("update: retrained %zu epochs, MAE %.2f -> %.2f",
                   result.epochs, result.mae_before, baseline_mae_);
  }
  result.mae_after = model_->CurrentValidationMae(ctx_);
  return result;
}

}  // namespace selnet::core
