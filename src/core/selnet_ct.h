#pragma once

#include <memory>
#include <vector>

#include "core/control_heads.h"
#include "core/updater.h"
#include "eval/estimator.h"
#include "nn/autoencoder.h"
#include "util/env.h"

/// \file selnet_ct.h
/// \brief SelNet-ct: the single-partition SelNet model (Sections 5.1-5.2).
///
/// Architecture (Figure 1): an autoencoder supplies a latent code z_x; the
/// enhanced input [x; z_x] drives the tau and p control-point heads; the
/// threshold t is evaluated through the learned piece-wise linear function
/// (Equation 1). Training minimizes Huber-log estimation loss plus
/// lambda * J_AE (Equation 4), keeping the best-on-validation parameters.

namespace selnet::core {

/// \brief Hyper-parameters for SelNet models.
struct SelNetConfig {
  size_t input_dim = 0;     ///< Data dimensionality d (required).
  size_t latent_dim = 12;   ///< AE bottleneck width.
  size_t ae_hidden = 64;    ///< AE hidden width.
  size_t num_control = 16;  ///< L (paper default 50).
  size_t tau_hidden = 96;
  size_t p_hidden = 128;
  size_t embed_h = 24;      ///< |h_i| (paper: 100).
  float tmax = 1.0f;        ///< Required: PWL domain end.
  float lambda_ae = 0.05f;  ///< Weight of J_AE in Equation 4.
  float huber_delta = 1.345f;
  float log_eps = 1.0f;     ///< Pad inside the log of the loss.
  float lr = 1e-3f;
  size_t batch_size = 256;
  size_t ae_pretrain_epochs = 8;
  size_t ae_pretrain_rows = 4000;  ///< Subsample of D for AE pretraining.
  bool query_dependent_tau = true; ///< false = SelNet-ad-ct ablation.
  bool softmax_tau = false;        ///< Section 5.2 ablation: softmax vs NormL2.

  /// \brief Reasonable defaults derived from the experiment scale.
  static SelNetConfig FromScale(const util::ScaleConfig& scale, size_t dim,
                                float tmax);
};

/// \brief The non-partitioned SelNet estimator.
class SelNetCt : public eval::Estimator, public eval::SweepCapable,
                 public nn::Module, public IncrementalModel {
 public:
  explicit SelNetCt(const SelNetConfig& cfg);

  std::string Name() const override {
    return cfg_.query_dependent_tau ? "SelNet-ct" : "SelNet-ad-ct";
  }
  bool IsConsistent() const override { return true; }

  void Fit(const eval::TrainContext& ctx) override;

  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;

  /// \brief Continue training on (possibly relabelled) workload data until
  /// validation MAE fails to improve for `patience` consecutive epochs
  /// (the incremental learning of Section 5.4). Returns epochs run.
  size_t IncrementalFit(const eval::TrainContext& ctx, size_t patience = 3,
                        size_t max_epochs = 50);

  /// \brief Deep copy: same config, parameter values, rng state and
  /// pretraining flag, but entirely fresh autograd leaves — the clone and the
  /// source share no mutable state, so one may train while the other serves.
  /// The clone's inference/pack caches start invalidated.
  std::unique_ptr<SelNetCt> Clone() const;

  /// \brief Learned control points for a single query (Figure 4).
  void ControlPoints(const float* query, std::vector<float>* tau,
                     std::vector<float>* p);

  /// \brief SweepCapable: one control-point evaluation, then one PWL lookup
  /// per threshold. Bit-identical to Predict row expansion (the inference
  /// fold is batch-size invariant and PiecewiseLinear mirrors the gather
  /// op's interpolation arithmetic exactly).
  std::vector<float> SweepEstimate(const float* x, const float* ts,
                                   size_t count) override;

  /// \brief SweepCapable: the estimate-vs-threshold curve IS the control
  /// points, so the serving layer may cache them per (version, query).
  bool SupportsSweepCurve() const override { return true; }
  bool SweepCurve(const float* x, std::vector<float>* tau,
                  std::vector<float>* p) override {
    ControlPoints(x, tau, p);
    return true;
  }

  std::vector<ag::Var> Params() const override;

  /// \brief Must be called after mutating parameter values outside the
  /// training loop (e.g. loading weights from disk) so the cached inference
  /// fusion AND the packed-weight caches are rebuilt. The training loop
  /// invalidates automatically.
  void InvalidateInferenceCache() const {
    heads_.InvalidateInferenceCache();
    ag::InvalidatePackCaches(ae_.Params());
  }

  const SelNetConfig& config() const { return cfg_; }

  /// \brief Mean absolute error on a sample set (used for model selection
  /// and the update-trigger check of Section 5.4).
  double ValidationMae(const tensor::Matrix& queries,
                       const std::vector<data::QuerySample>& samples);

  // IncrementalModel:
  double CurrentValidationMae(const eval::TrainContext& ctx) override {
    return ValidationMae(ctx.workload->queries, ctx.workload->valid);
  }
  size_t RunIncrementalFit(const eval::TrainContext& ctx, size_t patience,
                           size_t max_epochs) override {
    return IncrementalFit(ctx, patience, max_epochs);
  }
  std::shared_ptr<eval::Estimator> CloneServable() const override {
    return Clone();
  }

 private:
  /// One optimizer step on a batch; returns the loss value.
  double TrainBatch(const data::Batch& batch, nn::Optimizer* opt);
  /// Run one epoch over shuffled training samples.
  double RunEpoch(const eval::TrainContext& ctx, nn::Optimizer* opt,
                  std::vector<size_t>* order, util::Rng* rng);

  SelNetConfig cfg_;
  util::Rng rng_;
  nn::Autoencoder ae_;
  ControlHeads heads_;
  bool ae_pretrained_ = false;
};

}  // namespace selnet::core
