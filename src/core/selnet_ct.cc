#include "core/selnet_ct.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/pwl.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/logging.h"

namespace selnet::core {

SelNetConfig SelNetConfig::FromScale(const util::ScaleConfig& scale, size_t dim,
                                     float tmax) {
  SelNetConfig cfg;
  cfg.input_dim = dim;
  cfg.tmax = tmax;
  cfg.num_control = scale.control_points;
  switch (scale.scale) {
    case util::Scale::kSmoke:
      cfg.latent_dim = 6;
      cfg.ae_hidden = 32;
      cfg.tau_hidden = 48;
      cfg.p_hidden = 64;
      cfg.embed_h = 12;
      cfg.ae_pretrain_epochs = 4;
      break;
    case util::Scale::kDefault:
      break;
    case util::Scale::kLarge:
      cfg.latent_dim = 16;
      cfg.ae_hidden = 128;
      cfg.tau_hidden = 128;
      cfg.p_hidden = 192;
      cfg.embed_h = 32;
      break;
  }
  return cfg;
}

SelNetCt::SelNetCt(const SelNetConfig& cfg)
    : cfg_(cfg),
      rng_(0x5e17e7c0ull ^ (cfg.input_dim * 2654435761ull)),
      ae_(cfg.input_dim, cfg.ae_hidden, cfg.latent_dim, &rng_) {
  SEL_CHECK_GT(cfg.input_dim, 0u);
  SEL_CHECK_GT(cfg.tmax, 0.0f);
  HeadsConfig hc;
  hc.input_dim = cfg.input_dim + cfg.latent_dim;
  hc.num_control = cfg.num_control;
  hc.tau_hidden = cfg.tau_hidden;
  hc.p_hidden = cfg.p_hidden;
  hc.embed_h = cfg.embed_h;
  hc.tmax = cfg.tmax;
  hc.query_dependent_tau = cfg.query_dependent_tau;
  hc.softmax_tau = cfg.softmax_tau;
  heads_ = ControlHeads(hc, &rng_);
}

std::vector<ag::Var> SelNetCt::Params() const {
  std::vector<ag::Var> out = ae_.Params();
  for (const auto& p : heads_.Params()) out.push_back(p);
  return out;
}

double SelNetCt::TrainBatch(const data::Batch& batch, nn::Optimizer* opt) {
  ag::Var x = ag::Constant(batch.x);
  ag::Var t = ag::Constant(batch.t);
  ag::Var y = ag::Constant(batch.y);
  ag::Var zx = ae_.Encode(x);
  ag::Var input = ag::ConcatCols(x, zx);
  ControlHeads::Out heads = heads_.Forward(input);
  ag::Var yhat = ag::PiecewiseLinearGather(heads.tau, heads.p, t);
  ag::Var loss = ag::HuberLogLoss(yhat, y, cfg_.huber_delta, cfg_.log_eps);
  ag::Var total = ag::Add(loss, ag::Scale(ae_.ReconstructionLoss(x), cfg_.lambda_ae));
  opt->ZeroGrad();
  ag::Backward(total);
  opt->ClipGrad(5.0f);
  opt->Step();
  heads_.InvalidateInferenceCache();  // Weights moved; folded tail is stale.
  return total->value(0, 0);
}

double SelNetCt::RunEpoch(const eval::TrainContext& ctx, nn::Optimizer* opt,
                          std::vector<size_t>* order, util::Rng* rng) {
  const auto& wl = *ctx.workload;
  rng->Shuffle(order);
  double total = 0.0;
  size_t batches = 0;
  for (size_t begin = 0; begin < order->size(); begin += cfg_.batch_size) {
    size_t end = std::min(begin + cfg_.batch_size, order->size());
    std::vector<size_t> idx(order->begin() + begin, order->begin() + end);
    data::Batch batch = data::MaterializeBatch(wl.queries, wl.train, idx);
    total += TrainBatch(batch, opt);
    ++batches;
  }
  return total / std::max<size_t>(1, batches);
}

void SelNetCt::Fit(const eval::TrainContext& ctx) {
  SEL_CHECK(ctx.db != nullptr && ctx.workload != nullptr);
  const auto& wl = *ctx.workload;
  SEL_CHECK(!wl.train.empty());

  if (!ae_pretrained_) {
    // Pretrain the AE on (a subsample of) D, then keep co-training it with
    // queries through the lambda * J_AE term.
    tensor::Matrix dense = ctx.db->DenseView();
    if (dense.rows() > cfg_.ae_pretrain_rows) {
      std::vector<size_t> picks =
          rng_.SampleWithoutReplacement(dense.rows(), cfg_.ae_pretrain_rows);
      tensor::Matrix sub(picks.size(), dense.cols());
      for (size_t i = 0; i < picks.size(); ++i) {
        std::copy(dense.row(picks[i]), dense.row(picks[i]) + dense.cols(),
                  sub.row(i));
      }
      dense = std::move(sub);
    }
    double ae_loss = ae_.Pretrain(dense, cfg_.ae_pretrain_epochs, 128, 1e-3f, &rng_);
    util::LogDebug("%s AE pretrain loss %.5f", Name().c_str(), ae_loss);
    ae_pretrained_ = true;
  }

  nn::Adam opt(Params(), cfg_.lr);
  std::vector<size_t> order(wl.train.size());
  std::iota(order.begin(), order.end(), size_t{0});

  double best_mae = std::numeric_limits<double>::max();
  std::vector<tensor::Matrix> best;
  for (size_t epoch = 0; epoch < ctx.epochs; ++epoch) {
    double loss = RunEpoch(ctx, &opt, &order, &rng_);
    double mae = wl.valid.empty() ? loss : ValidationMae(wl.queries, wl.valid);
    if (mae < best_mae) {
      best_mae = mae;
      best = nn::SnapshotParams(Params());
    }
    util::LogDebug("%s epoch %zu loss %.5f val-mae %.2f", Name().c_str(), epoch,
                   loss, mae);
  }
  if (!best.empty()) {
    nn::RestoreParams(Params(), best);
    heads_.InvalidateInferenceCache();  // Fold built from last-epoch weights.
  }
}

size_t SelNetCt::IncrementalFit(const eval::TrainContext& ctx, size_t patience,
                                size_t max_epochs) {
  const auto& wl = *ctx.workload;
  nn::Adam opt(Params(), cfg_.lr * 0.5f);
  std::vector<size_t> order(wl.train.size());
  std::iota(order.begin(), order.end(), size_t{0});
  double best_mae = ValidationMae(wl.queries, wl.valid);
  std::vector<tensor::Matrix> best = nn::SnapshotParams(Params());
  size_t bad = 0, epochs = 0;
  while (bad < patience && epochs < max_epochs) {
    RunEpoch(ctx, &opt, &order, &rng_);
    ++epochs;
    double mae = ValidationMae(wl.queries, wl.valid);
    if (mae < best_mae - 1e-9) {
      best_mae = mae;
      best = nn::SnapshotParams(Params());
      bad = 0;
    } else {
      ++bad;
    }
  }
  nn::RestoreParams(Params(), best);
  heads_.InvalidateInferenceCache();  // Fold built from last-epoch weights.
  return epochs;
}

std::unique_ptr<SelNetCt> SelNetCt::Clone() const {
  auto clone = std::make_unique<SelNetCt>(cfg_);
  std::vector<ag::Var> src = Params();
  std::vector<ag::Var> dst = clone->Params();
  SEL_CHECK_EQ(src.size(), dst.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;
  // The construction above consumed rng draws for weight init; overwrite with
  // the source's stream so the clone's continued training is bit-identical to
  // what the source would have run (the shadow-retrain equivalence contract).
  clone->rng_ = rng_;
  clone->ae_pretrained_ = ae_pretrained_;
  clone->InvalidateInferenceCache();
  return clone;
}

tensor::Matrix SelNetCt::Predict(const tensor::Matrix& x,
                                 const tensor::Matrix& t) {
  SEL_CHECK_EQ(x.rows(), t.rows());
  tensor::Matrix out(x.rows(), 1);
  constexpr size_t kChunk = 1024;
  for (size_t begin = 0; begin < x.rows(); begin += kChunk) {
    size_t end = std::min(begin + kChunk, x.rows());
    ag::Var xb = ag::Constant(x.RowSlice(begin, end));
    ag::Var tb = ag::Constant(t.RowSlice(begin, end));
    ag::Var input = ag::ConcatCols(xb, ae_.Encode(xb));
    ControlHeads::Out heads = heads_.ForwardInference(input);
    ag::Var yhat = ag::PiecewiseLinearGather(heads.tau, heads.p, tb);
    for (size_t r = begin; r < end; ++r) out(r, 0) = yhat->value(r - begin, 0);
  }
  return out;
}

void SelNetCt::ControlPoints(const float* query, std::vector<float>* tau,
                             std::vector<float>* p) {
  tensor::Matrix x(1, cfg_.input_dim);
  std::copy(query, query + cfg_.input_dim, x.row(0));
  ag::Var xb = ag::Constant(std::move(x));
  ag::Var input = ag::ConcatCols(xb, ae_.Encode(xb));
  ControlHeads::Out heads = heads_.ForwardInference(input);
  size_t knots = heads.tau->cols();
  tau->assign(heads.tau->value.row(0), heads.tau->value.row(0) + knots);
  p->assign(heads.p->value.row(0), heads.p->value.row(0) + knots);
}

std::vector<float> SelNetCt::SweepEstimate(const float* x, const float* ts,
                                           size_t count) {
  std::vector<float> tau, p;
  ControlPoints(x, &tau, &p);
  PiecewiseLinear pwl(std::move(tau), std::move(p));
  std::vector<float> out(count);
  for (size_t i = 0; i < count; ++i) out[i] = pwl(ts[i]);
  return out;
}

double SelNetCt::ValidationMae(const tensor::Matrix& queries,
                               const std::vector<data::QuerySample>& samples) {
  if (samples.empty()) return 0.0;
  data::Batch batch = data::MaterializeAll(queries, samples);
  tensor::Matrix yhat = Predict(batch.x, batch.t);
  double total = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    total += std::fabs(static_cast<double>(yhat(i, 0)) - batch.y(i, 0));
  }
  return total / static_cast<double>(samples.size());
}

}  // namespace selnet::core
