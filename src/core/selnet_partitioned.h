#pragma once

#include <memory>
#include <vector>

#include "core/control_heads.h"
#include "core/selnet_ct.h"
#include "eval/estimator.h"
#include "index/partitioner.h"
#include "nn/autoencoder.h"

/// \file selnet_partitioned.h
/// \brief The full SelNet: data partitioning + local models (Section 5.3).
///
/// The database is split into K balanced clusters (cover tree regions merged
/// greedily); each cluster gets its own control-point heads while the AE and
/// the enhanced input [x; z_x] are shared. The global estimate is
/// fhat*(x,t) = sum_i fc(x,t)[i] * fhat_i(x,t), where the indicator fc zeroes
/// clusters whose ball regions cannot intersect the query ball. Training
/// pretrains local models for T epochs on per-partition labels, then trains
/// jointly with J = Jest(global) + beta * sum_i Jest(local_i) + lambda * J_AE.

namespace selnet::core {

/// \brief Configuration of the partitioned model.
struct PartitionedConfig {
  SelNetConfig base;            ///< Shared net/loss settings.
  idx::PartitionSpec partition; ///< K, method, cover-tree ratio.
  float beta = 0.1f;            ///< Local-loss weight in the joint phase.
  double pretrain_frac = 0.3;   ///< T = pretrain_frac * epochs (paper: 300/1500).
};

/// \brief SelNet with data partitioning (the paper's headline model).
class SelNetPartitioned : public eval::Estimator, public eval::SweepCapable,
                          public nn::Module, public IncrementalModel {
 public:
  explicit SelNetPartitioned(const PartitionedConfig& cfg);

  std::string Name() const override { return "SelNet"; }
  bool IsConsistent() const override { return true; }

  void Fit(const eval::TrainContext& ctx) override;

  tensor::Matrix Predict(const tensor::Matrix& x,
                         const tensor::Matrix& t) override;

  /// \brief SweepCapable: every cluster's control-point heads run once for
  /// the query; each threshold then costs one fc-indicator check plus one PWL
  /// lookup per active cluster, accumulated in the same cluster order (and
  /// float arithmetic) as Predict — so the sweep is bit-identical to row
  /// expansion.
  std::vector<float> SweepEstimate(const float* x, const float* ts,
                                   size_t count) override;

  /// \brief Incremental learning after updates (Section 5.4): recomputes
  /// local labels against the current database and continues training until
  /// validation MAE stops improving for `patience` epochs.
  size_t IncrementalFit(const eval::TrainContext& ctx, size_t patience = 3,
                        size_t max_epochs = 50);

  /// \brief Route a newly inserted database object to a partition.
  void AssignNewObject(size_t id, const float* vec);

  /// \brief Deep copy: config, partitioning structure, cluster membership,
  /// local labels/masks, parameter values and rng state — with entirely fresh
  /// autograd leaves, so clone and source share no mutable state. The clone's
  /// inference/pack caches start invalidated.
  std::unique_ptr<SelNetPartitioned> Clone() const;

  /// \brief Drop every local head's cached folded tail plus all packed-weight
  /// caches (AE included). Must be called after mutating parameter values
  /// outside the training loop; the training loop invalidates automatically.
  void InvalidateInferenceCache() const {
    for (const auto& h : heads_) h.InvalidateInferenceCache();
    ag::InvalidatePackCaches(ae_.Params());
  }

  std::vector<ag::Var> Params() const override;

  size_t num_partitions() const { return heads_.size(); }
  const idx::Partitioning& partitioning() const { return part_; }

  // IncrementalModel:
  double CurrentValidationMae(const eval::TrainContext& ctx) override {
    return ValidationMae(ctx);
  }
  size_t RunIncrementalFit(const eval::TrainContext& ctx, size_t patience,
                           size_t max_epochs) override {
    return IncrementalFit(ctx, patience, max_epochs);
  }
  void OnInsert(size_t id, const float* vec) override {
    AssignNewObject(id, vec);
  }
  std::shared_ptr<eval::Estimator> CloneServable() const override {
    return Clone();
  }

 private:
  struct LocalBatch {
    data::Batch base;                      ///< x, t, global y.
    std::vector<tensor::Matrix> local_y;   ///< K of (B x 1).
    std::vector<tensor::Matrix> mask;      ///< K of (B x 1), the fc indicator.
  };

  void BuildStructure(const eval::TrainContext& ctx);
  void ComputeLocalLabels(const eval::TrainContext& ctx);
  LocalBatch MakeBatch(const eval::TrainContext& ctx,
                       const std::vector<size_t>& idx) const;
  double TrainBatch(const LocalBatch& batch, bool joint, nn::Optimizer* opt);
  double RunEpoch(const eval::TrainContext& ctx, bool joint, nn::Optimizer* opt,
                  std::vector<size_t>* order, util::Rng* rng);
  double ValidationMae(const eval::TrainContext& ctx);

  PartitionedConfig cfg_;
  util::Rng rng_;
  nn::Autoencoder ae_;
  std::vector<ControlHeads> heads_;
  idx::Partitioning part_;
  /// Database ids per cluster (kept current across updates).
  std::vector<std::vector<size_t>> cluster_ids_;
  const data::Database* db_ = nullptr;
  bool structure_built_ = false;
  bool ae_pretrained_ = false;
  /// Per-train-sample local labels and fc masks, aligned with workload.train.
  std::vector<std::vector<float>> local_y_;
  std::vector<std::vector<float>> mask_;
};

}  // namespace selnet::core
