#pragma once

#include "nn/mlp.h"

/// \file control_heads.h
/// \brief Query-dependent control point generation (Section 5.2, Figure 1).
///
/// Two heads consume the AE-enhanced input [x; z_x]:
///  * tau head: an FFN emits L+1 raw increments; `NormL2Rows` maps them onto
///    the simplex (strictly positive), scaling by tmax and prefix-summing
///    yields strictly increasing knots tau_1..tau_{L+1} with tau_{L+1}=tmax;
///    a zero column is prepended for tau_0.
///  * p head ("model M"): a wide FFN emits L+2 embeddings h_i of width H; per
///    position linear heads (`GroupedLinear`) + ReLU give non-negative
///    increments k_i; prefix sums give the monotone knot values p_i.
/// Monotonicity in t therefore holds by construction (Lemma 1).

namespace selnet::core {

/// \brief Shape/behaviour parameters of one pair of control-point heads.
struct HeadsConfig {
  size_t input_dim = 0;     ///< dim([x; z_x]).
  size_t num_control = 16;  ///< L; the function has L+2 knots.
  size_t tau_hidden = 96;   ///< tau FFN hidden width (2 hidden layers).
  size_t p_hidden = 128;    ///< p FFN hidden width (4 hidden layers).
  size_t embed_h = 24;      ///< Embedding width H per control point (paper: 100).
  float tmax = 1.0f;        ///< Domain upper end.
  /// SelNet-ad-ct ablation: when false the tau FFN sees a constant vector, so
  /// knot positions are shared across queries (Section 7.4).
  bool query_dependent_tau = true;
  /// Ablation of the Section 5.2 design choice: replace NormL2 with a row
  /// softmax when mapping raw tau increments onto the simplex. The paper
  /// argues softmax's exponential amplifies small input changes and
  /// highlights single entries instead of partitioning the range; this flag
  /// lets the claim be measured (bench/ablation_tau_normalizer).
  bool softmax_tau = false;
};

/// \brief The (tau, p) generator for one partition's local model.
class ControlHeads : public nn::Module {
 public:
  ControlHeads() = default;
  ControlHeads(const HeadsConfig& cfg, util::Rng* rng);

  struct Out {
    ag::Var tau;  ///< B x (L+2), non-decreasing rows, tau_0=0, tau_{L+1}=tmax.
    ag::Var p;    ///< B x (L+2), non-decreasing, non-negative rows.
  };

  /// \brief Generate control points for a batch of enhanced inputs.
  Out Forward(const ag::Var& input) const;

  std::vector<ag::Var> Params() const override;

  const HeadsConfig& config() const { return cfg_; }

 private:
  HeadsConfig cfg_;
  nn::Mlp tau_net_;
  nn::Mlp p_net_;
  ag::Var pw_;  ///< GroupedLinear weights (L+2) x H.
  ag::Var pb_;  ///< GroupedLinear bias 1 x (L+2).
};

}  // namespace selnet::core
