#pragma once

#include <atomic>
#include <memory>

#include "nn/mlp.h"

/// \file control_heads.h
/// \brief Query-dependent control point generation (Section 5.2, Figure 1).
///
/// Two heads consume the AE-enhanced input [x; z_x]:
///  * tau head: an FFN emits L+1 raw increments; `NormL2Rows` maps them onto
///    the simplex (strictly positive), scaling by tmax and prefix-summing
///    yields strictly increasing knots tau_1..tau_{L+1} with tau_{L+1}=tmax;
///    a zero column is prepended for tau_0.
///  * p head ("model M"): a wide FFN emits L+2 embeddings h_i of width H; per
///    position linear heads (`GroupedLinear`) + ReLU give non-negative
///    increments k_i; prefix sums give the monotone knot values p_i.
/// Monotonicity in t therefore holds by construction (Lemma 1).

namespace selnet::core {

/// \brief Shape/behaviour parameters of one pair of control-point heads.
struct HeadsConfig {
  size_t input_dim = 0;     ///< dim([x; z_x]).
  size_t num_control = 16;  ///< L; the function has L+2 knots.
  size_t tau_hidden = 96;   ///< tau FFN hidden width (2 hidden layers).
  size_t p_hidden = 128;    ///< p FFN hidden width (4 hidden layers).
  size_t embed_h = 24;      ///< Embedding width H per control point (paper: 100).
  float tmax = 1.0f;        ///< Domain upper end.
  /// SelNet-ad-ct ablation: when false the tau FFN sees a constant vector, so
  /// knot positions are shared across queries (Section 7.4).
  bool query_dependent_tau = true;
  /// Ablation of the Section 5.2 design choice: replace NormL2 with a row
  /// softmax when mapping raw tau increments onto the simplex. The paper
  /// argues softmax's exponential amplifies small input changes and
  /// highlights single entries instead of partitioning the range; this flag
  /// lets the claim be measured (bench/ablation_tau_normalizer).
  bool softmax_tau = false;
};

/// \brief The (tau, p) generator for one partition's local model.
class ControlHeads : public nn::Module {
 public:
  ControlHeads() = default;
  ControlHeads(const HeadsConfig& cfg, util::Rng* rng);

  // Movable (the fold cache is dropped, not moved — it is rebuilt lazily);
  // the atomic generation counter makes the defaults undeletable.
  ControlHeads(ControlHeads&& other) noexcept;
  ControlHeads& operator=(ControlHeads&& other) noexcept;

  struct Out {
    ag::Var tau;  ///< B x (L+2), non-decreasing rows, tau_0=0, tau_{L+1}=tmax.
    ag::Var p;    ///< B x (L+2), non-decreasing, non-negative rows.
  };

  /// \brief Generate control points for a batch of enhanced inputs.
  Out Forward(const ag::Var& input) const;

  /// \brief Inference-only forward with the p-head tail fused.
  ///
  /// The p FFN's output layer (p_hidden -> (L+2)*H) is linear and feeds
  /// straight into the linear per-position GroupedLinear heads, so at
  /// inference the pair collapses exactly into one p_hidden x (L+2) affine
  /// map. The folded matrix is cached (it costs one pass over the big weight
  /// matrix to build) and rebuilt lazily after InvalidateInferenceCache(),
  /// which must be called whenever the underlying parameters change — the
  /// training loop and model loading do this. Numerically the fold
  /// reassociates the sum over the hidden/embed axes, so results differ from
  /// Forward() by normal float rounding; within this method results are
  /// independent of batch size. Not usable for training (no gradient flows
  /// to the unfused parameters).
  Out ForwardInference(const ag::Var& input) const;

  /// \brief Drop the cached folded tail AND every parameter's packed-weight
  /// cache; the next ForwardInference rebuilds both from the current values.
  /// One generation discipline covers both caches: anything that must
  /// invalidate the fold (optimizer steps via the training loops,
  /// core::LoadModel, ModelRegistry::PublishFromFile) thereby also
  /// invalidates the packs. Thread-safe.
  void InvalidateInferenceCache() const;

  std::vector<ag::Var> Params() const override;

  const HeadsConfig& config() const { return cfg_; }

 private:
  /// Fused (p_net output layer . GroupedLinear) affine map for inference.
  /// Held as constant Vars (not raw Matrices) so the SAME tape leaf is
  /// reused across ForwardInference calls: its packed-weight cache
  /// (ag::Node::pack_cache) then persists for the lifetime of the fold —
  /// pack once per weight version, exactly like the fold itself.
  struct FoldedTail {
    ag::Var wf;  ///< p_hidden x (L+2).
    ag::Var bf;  ///< 1 x (L+2).
    /// fold_gen_ value sampled before the weights were read; the hit path in
    /// GetFoldedTail only serves a fold whose generation matches, so a
    /// builder that raced an InvalidateInferenceCache() can never make a
    /// stale fold servable even if it wins the publish race.
    uint64_t generation = 0;
  };

  std::shared_ptr<const FoldedTail> GetFoldedTail() const;

  /// Shared tau-head path (simplex map, scale, cumsum, zero knot) used by
  /// both Forward and ForwardInference so the two cannot drift.
  ag::Var ForwardTau(const ag::Var& input) const;

  HeadsConfig cfg_;
  nn::Mlp tau_net_;
  nn::Mlp p_net_;
  ag::Var pw_;  ///< GroupedLinear weights (L+2) x H.
  ag::Var pb_;  ///< GroupedLinear bias 1 x (L+2).

  /// Accessed via std::atomic_load/atomic_store: concurrent ForwardInference
  /// calls may race to build the cache (the build is a pure function of the
  /// parameters, so duplicate builds are harmless). `fold_gen_` guards
  /// against the lost-invalidation race: a build that started before an
  /// InvalidateInferenceCache() observes the generation bump and does not
  /// publish its now-stale fold.
  mutable std::shared_ptr<const FoldedTail> fold_cache_;
  mutable std::atomic<uint64_t> fold_gen_{0};
};

}  // namespace selnet::core
