#pragma once

#include <cstddef>
#include <vector>

/// \file pwl.h
/// \brief The continuous piece-wise linear function family of Equation (1).
///
/// A `PiecewiseLinear` is the plain (non-differentiable) evaluation object:
/// knots (tau_i, p_i) with tau_0 = 0 and tau_{L+1} = tmax, evaluated by linear
/// interpolation. Lemma 1 — monotone p implies a monotone estimator — is an
/// executable property here (`IsMonotonic`), tested over random instances.

namespace selnet::core {

/// \brief A continuous piece-wise linear function on [tau.front(), tau.back()].
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// \param tau non-decreasing knot positions (size >= 2)
  /// \param p knot values (same size)
  PiecewiseLinear(std::vector<float> tau, std::vector<float> p);

  /// \brief Interpolated value; clamps outside [tau_0, tau_last].
  float operator()(float t) const;

  /// \brief True iff knot values are non-decreasing (Lemma 1 hypothesis).
  bool HasMonotoneValues() const;

  /// \brief True iff knot positions are non-decreasing (well-formedness).
  bool HasSortedKnots() const;

  /// \brief Empirically verify monotonicity on a dense grid of `steps` points.
  bool IsMonotonic(size_t steps = 256) const;

  size_t num_knots() const { return tau_.size(); }
  const std::vector<float>& tau() const { return tau_; }
  const std::vector<float>& p() const { return p_; }

  /// \brief Least-squares-ish fit to samples (ts, ys) with `num_knots` knots
  /// placed adaptively (greedy curvature-based placement then coordinate
  /// descent on p). Used by Figure 3's comparison and as a non-learned
  /// reference fit.
  static PiecewiseLinear FitAdaptive(const std::vector<float>& ts,
                                     const std::vector<float>& ys,
                                     size_t num_knots);

  /// \brief Fit with equally spaced knots (the DLN calibrator's restriction).
  static PiecewiseLinear FitEquallySpaced(const std::vector<float>& ts,
                                          const std::vector<float>& ys,
                                          size_t num_knots);

 private:
  std::vector<float> tau_;
  std::vector<float> p_;
};

}  // namespace selnet::core
