#include "core/model_io.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nn/serialize.h"

namespace selnet::core {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'S', 'E', 'L', 'M'};
/// v1: no checksums. v2: per-parameter CRC-32 (see nn/serialize.h).
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

// The config is serialized field by field (not memcpy'd) so padding and
// future field insertions stay controlled by the version number.
bool WriteConfig(std::FILE* f, const SelNetConfig& cfg) {
  return WriteScalar<uint64_t>(f, cfg.input_dim) &&
         WriteScalar<uint64_t>(f, cfg.latent_dim) &&
         WriteScalar<uint64_t>(f, cfg.ae_hidden) &&
         WriteScalar<uint64_t>(f, cfg.num_control) &&
         WriteScalar<uint64_t>(f, cfg.tau_hidden) &&
         WriteScalar<uint64_t>(f, cfg.p_hidden) &&
         WriteScalar<uint64_t>(f, cfg.embed_h) &&
         WriteScalar<float>(f, cfg.tmax) &&
         WriteScalar<float>(f, cfg.lambda_ae) &&
         WriteScalar<float>(f, cfg.huber_delta) &&
         WriteScalar<float>(f, cfg.log_eps) &&
         WriteScalar<float>(f, cfg.lr) &&
         WriteScalar<uint64_t>(f, cfg.batch_size) &&
         WriteScalar<uint8_t>(f, cfg.query_dependent_tau ? 1 : 0) &&
         WriteScalar<uint8_t>(f, cfg.softmax_tau ? 1 : 0);
}

// Returns nullptr on success, else the name of the field whose read failed —
// surfaced in the LoadModel error Status so truncated/corrupt files are
// diagnosable.
const char* ReadConfig(std::FILE* f, SelNetConfig* cfg) {
  uint64_t u = 0;
  uint8_t b = 0;
  if (!ReadScalar(f, &u)) return "input_dim";
  cfg->input_dim = u;
  if (!ReadScalar(f, &u)) return "latent_dim";
  cfg->latent_dim = u;
  if (!ReadScalar(f, &u)) return "ae_hidden";
  cfg->ae_hidden = u;
  if (!ReadScalar(f, &u)) return "num_control";
  cfg->num_control = u;
  if (!ReadScalar(f, &u)) return "tau_hidden";
  cfg->tau_hidden = u;
  if (!ReadScalar(f, &u)) return "p_hidden";
  cfg->p_hidden = u;
  if (!ReadScalar(f, &u)) return "embed_h";
  cfg->embed_h = u;
  if (!ReadScalar(f, &cfg->tmax)) return "tmax";
  if (!ReadScalar(f, &cfg->lambda_ae)) return "lambda_ae";
  if (!ReadScalar(f, &cfg->huber_delta)) return "huber_delta";
  if (!ReadScalar(f, &cfg->log_eps)) return "log_eps";
  if (!ReadScalar(f, &cfg->lr)) return "lr";
  if (!ReadScalar(f, &u)) return "batch_size";
  cfg->batch_size = u;
  if (!ReadScalar(f, &b)) return "query_dependent_tau";
  cfg->query_dependent_tau = (b != 0);
  if (!ReadScalar(f, &b)) return "softmax_tau";
  cfg->softmax_tau = (b != 0);
  return nullptr;
}

Status SaveModelToFile(const SelNetCt& model, std::FILE* f,
                       const std::string& path) {
  if (std::fwrite(kMagic, 1, 4, f) != 4 || !WriteScalar(f, kVersion) ||
      !WriteConfig(f, model.config())) {
    return Status::IOError("short write: " + path);
  }
  return nn::WriteParamsPayload(f, model.Params(), path);
}

Result<std::unique_ptr<SelNetCt>> LoadModelFromFile(std::FILE* f,
                                                    const std::string& path) {
  char magic[4];
  uint32_t version = 0;
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Invalid("model file '" + path +
                           "': bad magic (not a SaveModel file)");
  }
  if (!ReadScalar(f, &version)) {
    return Status::IOError("model file '" + path +
                           "': truncated before version field");
  }
  if (version < kMinVersion || version > kVersion) {
    return Status::Invalid("model file '" + path + "': unsupported version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kMinVersion) + ".." +
                           std::to_string(kVersion) + ")");
  }
  SelNetConfig cfg;
  if (const char* field = ReadConfig(f, &cfg)) {
    return Status::IOError("model file '" + path +
                           "': truncated config (failed reading field '" +
                           field + "')");
  }
  auto model = std::make_unique<SelNetCt>(cfg);
  SEL_RETURN_NOT_OK(nn::ReadParamsPayload(f, model->Params(), "model file",
                                          path,
                                          /*checksummed=*/version >= 2));
  model->InvalidateInferenceCache();  // Params were overwritten wholesale.
  return model;
}

}  // namespace

Status SaveModel(const SelNetCt& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  return SaveModelToFile(model, f.get(), path);
}

Result<std::unique_ptr<SelNetCt>> LoadModel(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  return LoadModelFromFile(f.get(), path);
}

Result<std::string> SaveModelBytes(const SelNetCt& model) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* f = ::open_memstream(&buf, &len);
  if (f == nullptr) return Status::IOError("open_memstream failed");
  Status st = SaveModelToFile(model, f, "<memory>");
  std::fclose(f);  // Flushes buf/len.
  std::string bytes;
  if (buf != nullptr) {
    if (st.ok()) bytes.assign(buf, len);
    ::free(buf);
  }
  SEL_RETURN_NOT_OK(st);
  return bytes;
}

Result<std::unique_ptr<SelNetCt>> LoadModelBytes(const std::string& bytes,
                                                 const std::string& origin) {
  // fmemopen in "rb" mode never writes through the pointer; the const_cast
  // only satisfies its C signature.
  std::FILE* f = ::fmemopen(const_cast<char*>(bytes.data()), bytes.size(),
                            "rb");
  if (f == nullptr) {
    return Status::IOError("fmemopen failed for " + origin + " (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  FilePtr closer(f);
  return LoadModelFromFile(f, origin);
}

}  // namespace selnet::core
