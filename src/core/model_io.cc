#include "core/model_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "nn/serialize.h"

namespace selnet::core {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'S', 'E', 'L', 'M'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

// The config is serialized field by field (not memcpy'd) so padding and
// future field insertions stay controlled by the version number.
bool WriteConfig(std::FILE* f, const SelNetConfig& cfg) {
  return WriteScalar<uint64_t>(f, cfg.input_dim) &&
         WriteScalar<uint64_t>(f, cfg.latent_dim) &&
         WriteScalar<uint64_t>(f, cfg.ae_hidden) &&
         WriteScalar<uint64_t>(f, cfg.num_control) &&
         WriteScalar<uint64_t>(f, cfg.tau_hidden) &&
         WriteScalar<uint64_t>(f, cfg.p_hidden) &&
         WriteScalar<uint64_t>(f, cfg.embed_h) &&
         WriteScalar<float>(f, cfg.tmax) &&
         WriteScalar<float>(f, cfg.lambda_ae) &&
         WriteScalar<float>(f, cfg.huber_delta) &&
         WriteScalar<float>(f, cfg.log_eps) &&
         WriteScalar<float>(f, cfg.lr) &&
         WriteScalar<uint64_t>(f, cfg.batch_size) &&
         WriteScalar<uint8_t>(f, cfg.query_dependent_tau ? 1 : 0) &&
         WriteScalar<uint8_t>(f, cfg.softmax_tau ? 1 : 0);
}

// Returns nullptr on success, else the name of the field whose read failed —
// surfaced in the LoadModel error Status so truncated/corrupt files are
// diagnosable.
const char* ReadConfig(std::FILE* f, SelNetConfig* cfg) {
  uint64_t u = 0;
  uint8_t b = 0;
  if (!ReadScalar(f, &u)) return "input_dim";
  cfg->input_dim = u;
  if (!ReadScalar(f, &u)) return "latent_dim";
  cfg->latent_dim = u;
  if (!ReadScalar(f, &u)) return "ae_hidden";
  cfg->ae_hidden = u;
  if (!ReadScalar(f, &u)) return "num_control";
  cfg->num_control = u;
  if (!ReadScalar(f, &u)) return "tau_hidden";
  cfg->tau_hidden = u;
  if (!ReadScalar(f, &u)) return "p_hidden";
  cfg->p_hidden = u;
  if (!ReadScalar(f, &u)) return "embed_h";
  cfg->embed_h = u;
  if (!ReadScalar(f, &cfg->tmax)) return "tmax";
  if (!ReadScalar(f, &cfg->lambda_ae)) return "lambda_ae";
  if (!ReadScalar(f, &cfg->huber_delta)) return "huber_delta";
  if (!ReadScalar(f, &cfg->log_eps)) return "log_eps";
  if (!ReadScalar(f, &cfg->lr)) return "lr";
  if (!ReadScalar(f, &u)) return "batch_size";
  cfg->batch_size = u;
  if (!ReadScalar(f, &b)) return "query_dependent_tau";
  cfg->query_dependent_tau = (b != 0);
  if (!ReadScalar(f, &b)) return "softmax_tau";
  cfg->softmax_tau = (b != 0);
  return nullptr;
}

}  // namespace

Status SaveModel(const SelNetCt& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      !WriteScalar(f.get(), kVersion) || !WriteConfig(f.get(), model.config())) {
    return Status::IOError("short write: " + path);
  }
  std::vector<ag::Var> params = model.Params();
  if (!WriteScalar<uint64_t>(f.get(), params.size())) {
    return Status::IOError("short write: " + path);
  }
  for (const auto& p : params) {
    if (!WriteScalar<uint64_t>(f.get(), p->value.rows()) ||
        !WriteScalar<uint64_t>(f.get(), p->value.cols())) {
      return Status::IOError("short write: " + path);
    }
    size_t n = p->value.size();
    if (n > 0 && std::fwrite(p->value.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("short write: " + path);
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<SelNetCt>> LoadModel(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint32_t version = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Invalid("model file '" + path +
                           "': bad magic (not a SaveModel file)");
  }
  if (!ReadScalar(f.get(), &version)) {
    return Status::IOError("model file '" + path +
                           "': truncated before version field");
  }
  if (version != kVersion) {
    return Status::Invalid("model file '" + path + "': unsupported version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kVersion) + ")");
  }
  SelNetConfig cfg;
  if (const char* field = ReadConfig(f.get(), &cfg)) {
    return Status::IOError("model file '" + path +
                           "': truncated config (failed reading field '" +
                           field + "')");
  }
  auto model = std::make_unique<SelNetCt>(cfg);
  SEL_RETURN_NOT_OK(
      nn::ReadParamsPayload(f.get(), model->Params(), "model file", path));
  model->InvalidateInferenceCache();  // Params were overwritten wholesale.
  return model;
}

}  // namespace selnet::core
