#include "core/model_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace selnet::core {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'S', 'E', 'L', 'M'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

// The config is serialized field by field (not memcpy'd) so padding and
// future field insertions stay controlled by the version number.
bool WriteConfig(std::FILE* f, const SelNetConfig& cfg) {
  return WriteScalar<uint64_t>(f, cfg.input_dim) &&
         WriteScalar<uint64_t>(f, cfg.latent_dim) &&
         WriteScalar<uint64_t>(f, cfg.ae_hidden) &&
         WriteScalar<uint64_t>(f, cfg.num_control) &&
         WriteScalar<uint64_t>(f, cfg.tau_hidden) &&
         WriteScalar<uint64_t>(f, cfg.p_hidden) &&
         WriteScalar<uint64_t>(f, cfg.embed_h) &&
         WriteScalar<float>(f, cfg.tmax) &&
         WriteScalar<float>(f, cfg.lambda_ae) &&
         WriteScalar<float>(f, cfg.huber_delta) &&
         WriteScalar<float>(f, cfg.log_eps) &&
         WriteScalar<float>(f, cfg.lr) &&
         WriteScalar<uint64_t>(f, cfg.batch_size) &&
         WriteScalar<uint8_t>(f, cfg.query_dependent_tau ? 1 : 0) &&
         WriteScalar<uint8_t>(f, cfg.softmax_tau ? 1 : 0);
}

bool ReadConfig(std::FILE* f, SelNetConfig* cfg) {
  uint64_t u = 0;
  uint8_t b = 0;
  if (!ReadScalar(f, &u)) return false;
  cfg->input_dim = u;
  if (!ReadScalar(f, &u)) return false;
  cfg->latent_dim = u;
  if (!ReadScalar(f, &u)) return false;
  cfg->ae_hidden = u;
  if (!ReadScalar(f, &u)) return false;
  cfg->num_control = u;
  if (!ReadScalar(f, &u)) return false;
  cfg->tau_hidden = u;
  if (!ReadScalar(f, &u)) return false;
  cfg->p_hidden = u;
  if (!ReadScalar(f, &u)) return false;
  cfg->embed_h = u;
  if (!ReadScalar(f, &cfg->tmax)) return false;
  if (!ReadScalar(f, &cfg->lambda_ae)) return false;
  if (!ReadScalar(f, &cfg->huber_delta)) return false;
  if (!ReadScalar(f, &cfg->log_eps)) return false;
  if (!ReadScalar(f, &cfg->lr)) return false;
  if (!ReadScalar(f, &u)) return false;
  cfg->batch_size = u;
  if (!ReadScalar(f, &b)) return false;
  cfg->query_dependent_tau = (b != 0);
  if (!ReadScalar(f, &b)) return false;
  cfg->softmax_tau = (b != 0);
  return true;
}

}  // namespace

Status SaveModel(const SelNetCt& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      !WriteScalar(f.get(), kVersion) || !WriteConfig(f.get(), model.config())) {
    return Status::IOError("short write: " + path);
  }
  std::vector<ag::Var> params = model.Params();
  if (!WriteScalar<uint64_t>(f.get(), params.size())) {
    return Status::IOError("short write: " + path);
  }
  for (const auto& p : params) {
    if (!WriteScalar<uint64_t>(f.get(), p->value.rows()) ||
        !WriteScalar<uint64_t>(f.get(), p->value.cols())) {
      return Status::IOError("short write: " + path);
    }
    size_t n = p->value.size();
    if (n > 0 && std::fwrite(p->value.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("short write: " + path);
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<SelNetCt>> LoadModel(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint32_t version = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Invalid("bad magic in " + path);
  }
  if (!ReadScalar(f.get(), &version) || version != kVersion) {
    return Status::Invalid("unsupported model version in " + path);
  }
  SelNetConfig cfg;
  if (!ReadConfig(f.get(), &cfg)) {
    return Status::IOError("truncated config in " + path);
  }
  auto model = std::make_unique<SelNetCt>(cfg);
  std::vector<ag::Var> params = model->Params();
  uint64_t count = 0;
  if (!ReadScalar(f.get(), &count) || count != params.size()) {
    return Status::Invalid("parameter count mismatch in " + path);
  }
  for (const auto& p : params) {
    uint64_t rows = 0, cols = 0;
    if (!ReadScalar(f.get(), &rows) || !ReadScalar(f.get(), &cols)) {
      return Status::IOError("truncated file: " + path);
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::Invalid("shape mismatch in " + path);
    }
    size_t n = p->value.size();
    if (n > 0 && std::fread(p->value.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("truncated file: " + path);
    }
  }
  return model;
}

}  // namespace selnet::core
