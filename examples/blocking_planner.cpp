/// \file blocking_planner.cpp
/// \brief Query-plan selection for entity-matching blocking rules — the
/// paper's Falcon scenario (Section 1): a blocking rule is a conjunction of
/// similarity predicates; executing the most selective predicate first
/// minimizes the candidate set the remaining predicates must filter.
///
/// We model records with two embedding "attributes" (name, address), define
/// blocking rules (dist_name(x, o) <= t1) AND (dist_addr(x, o) <= t2), and
/// use a SelNet model per attribute to pick the cheaper evaluation order.
/// The chosen plan is compared with the oracle that knows exact
/// selectivities.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "data/workload.h"

using namespace selnet;

namespace {

struct Attribute {
  std::unique_ptr<data::Database> db;
  data::Workload workload;
  std::unique_ptr<core::SelNetCt> model;
};

Attribute BuildAttribute(uint64_t seed, size_t n) {
  data::SyntheticSpec spec;
  spec.n = n;
  spec.dim = 12;
  spec.num_clusters = 7;
  spec.seed = seed;
  Attribute attr;
  attr.db = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                             data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 120;
  wspec.w = 10;
  wspec.max_sel_fraction = 0.2;
  wspec.seed = seed + 1;
  attr.workload = data::GenerateWorkload(*attr.db, wspec);
  core::SelNetConfig cfg;
  cfg.input_dim = attr.db->dim();
  cfg.tmax = attr.workload.tmax;
  cfg.num_control = 12;
  attr.model = std::make_unique<core::SelNetCt>(cfg);
  eval::TrainContext ctx;
  ctx.db = attr.db.get();
  ctx.workload = &attr.workload;
  ctx.epochs = 25;
  attr.model->Fit(ctx);
  return attr;
}

float Estimate(Attribute& attr, const float* query, float t) {
  tensor::Matrix x(1, attr.db->dim()), tm(1, 1);
  std::copy(query, query + attr.db->dim(), x.row(0));
  tm(0, 0) = t;
  return attr.model->Predict(x, tm)(0, 0);
}

}  // namespace

int main() {
  const size_t n = 2500;
  Attribute name = BuildAttribute(101, n);
  Attribute addr = BuildAttribute(202, n);
  std::printf("two attribute embeddings built (%zu records each); models "
              "trained\n\n", n);

  // Evaluate 30 blocking rules: random record + random thresholds per
  // attribute. Plan cost model: scan cost n for the first predicate plus its
  // result size for the second (candidates re-checked on attribute 2).
  util::Rng rng(99);
  size_t agree = 0, oracle_first_name = 0;
  double est_cost_total = 0.0, oracle_cost_total = 0.0, worst_cost_total = 0.0;
  const size_t kRules = 30;
  for (size_t rule = 0; rule < kRules; ++rule) {
    size_t rec = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    float t_name = static_cast<float>(
        rng.Uniform(0.2, 0.9)) * name.workload.tmax;
    float t_addr = static_cast<float>(
        rng.Uniform(0.2, 0.9)) * addr.workload.tmax;

    float est_name = Estimate(name, name.db->vector(rec), t_name);
    float est_addr = Estimate(addr, addr.db->vector(rec), t_addr);
    size_t exact_name = name.db->ExactSelectivity(name.db->vector(rec), t_name);
    size_t exact_addr = addr.db->ExactSelectivity(addr.db->vector(rec), t_addr);

    bool est_pick_name_first = est_name <= est_addr;
    bool oracle_pick_name_first = exact_name <= exact_addr;
    if (est_pick_name_first == oracle_pick_name_first) ++agree;
    if (oracle_pick_name_first) ++oracle_first_name;

    auto plan_cost = [&](bool name_first) {
      return static_cast<double>(n) +
             static_cast<double>(name_first ? exact_name : exact_addr);
    };
    est_cost_total += plan_cost(est_pick_name_first);
    oracle_cost_total += plan_cost(oracle_pick_name_first);
    worst_cost_total += plan_cost(!oracle_pick_name_first);
  }

  std::printf("rules evaluated           : %zu\n", kRules);
  std::printf("plan agreement with oracle: %zu / %zu\n", agree, kRules);
  std::printf("avg plan cost  (estimator): %.1f\n", est_cost_total / kRules);
  std::printf("avg plan cost  (oracle)   : %.1f\n", oracle_cost_total / kRules);
  std::printf("avg plan cost  (worst)    : %.1f\n", worst_cost_total / kRules);
  double regret = (est_cost_total - oracle_cost_total) /
                  std::max(worst_cost_total - oracle_cost_total, 1.0);
  std::printf("normalized regret         : %.3f (0 = always optimal)\n", regret);
  return agree * 3 >= kRules * 2 ? 0 : 1;  // expect >= 2/3 agreement
}
