/// \file density_outliers.cpp
/// \brief Density estimation / outlier detection — the paper's Section 1
/// motivation: the selectivity f(x, t) at a fixed radius IS a local density
/// estimate, and consistent estimates give interpretable density profiles.
///
/// We inject uniform noise points far from the data clusters, train SelNet,
/// score every candidate by its estimated neighbour count at a small radius,
/// and check that the lowest-density candidates are predominantly the
/// injected outliers.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "data/workload.h"

using namespace selnet;

int main() {
  // Clustered inliers + 40 uniform-noise outliers appended at the end.
  data::SyntheticSpec spec;
  spec.n = 2500;
  spec.dim = 12;
  spec.num_clusters = 6;
  spec.cluster_std_min = 0.05f;
  spec.cluster_std_max = 0.15f;
  tensor::Matrix vectors = data::GenerateMixture(spec);
  const size_t n_outliers = 40;
  util::Rng rng(7);
  tensor::Matrix all(spec.n + n_outliers, spec.dim);
  std::copy(vectors.data(), vectors.data() + vectors.size(), all.data());
  for (size_t i = 0; i < n_outliers; ++i) {
    for (size_t c = 0; c < spec.dim; ++c) {
      all(spec.n + i, c) = static_cast<float>(rng.Uniform(-4.0, 4.0));
    }
  }
  data::Database db(std::move(all), data::Metric::kEuclidean);

  data::WorkloadSpec wspec;
  wspec.num_queries = 150;
  wspec.w = 10;
  wspec.max_sel_fraction = 0.1;
  data::Workload wl = data::GenerateWorkload(db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 12;
  core::SelNetCt model(cfg);
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  ctx.epochs = 25;
  model.Fit(ctx);

  // Density score = estimated neighbour count within a small radius.
  float radius = wl.tmax * 0.15f;
  size_t n_candidates = 300;  // 260 inliers + all 40 outliers
  std::vector<std::pair<float, size_t>> scored;
  tensor::Matrix x(1, db.dim()), t(1, 1);
  t(0, 0) = radius;
  for (size_t i = 0; i < n_candidates; ++i) {
    // Candidates: the last 40 rows are the injected outliers, the rest are
    // random inliers.
    size_t id = (i < 260) ? static_cast<size_t>(rng.UniformInt(0, spec.n - 1))
                          : spec.n + (i - 260);
    std::copy(db.vector(id), db.vector(id) + db.dim(), x.row(0));
    scored.push_back({model.Predict(x, t)(0, 0), id});
  }
  std::sort(scored.begin(), scored.end());

  // How many of the 40 lowest-density candidates are true outliers?
  size_t hits = 0;
  for (size_t i = 0; i < n_outliers; ++i) {
    if (scored[i].second >= spec.n) ++hits;
  }
  std::printf("radius=%.3f  candidates=%zu (40 injected outliers)\n", radius,
              n_candidates);
  std::printf("outliers among 40 lowest estimated densities: %zu / 40\n", hits);
  std::printf("\nlowest-density candidates (score = est. neighbours @ radius):\n");
  for (size_t i = 0; i < 8; ++i) {
    std::printf("  id=%5zu  density=%8.2f  %s\n", scored[i].second, scored[i].first,
                scored[i].second >= spec.n ? "<- injected outlier" : "");
  }
  return hits >= n_outliers / 2 ? 0 : 1;
}
