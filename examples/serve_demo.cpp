/// \file serve_demo.cpp
/// \brief End-to-end serving: train, save, publish, serve under concurrent
/// clients, hot-swap an updated model mid-traffic, A/B a baseline behind the
/// same endpoint, and read the stats.
///
///   ./examples/serve_demo                  # in-process walkthrough (below)
///   ./examples/serve_demo server [port]    # sharded fleet + TCP frontend
///   ./examples/serve_demo client <port> [host]   # wire client
///   ./examples/serve_demo shard_node <port> [dim]  # one remote fleet shard
///   ./examples/serve_demo metrics <port> [host]  # dump {"cmd":"metrics"}
///
/// The flow mirrors a production deployment: an offline training job writes a
/// SaveModel file; the server publishes it into its ModelRegistry; clients
/// submit EstimateRequests (scalar or whole threshold sweeps) to the batched
/// endpoint; a KDE baseline is published under a second route for served A/B
/// comparison; and a LiveUpdatePipeline ingests insert batches, patches the
/// shadow labels, retrains on drift and republishes — all while queries stay
/// in flight on their pinned snapshots.
///
/// `server` mode brings the scale-out stack up for real: a 2-shard
/// ShardedRegistry (SelNet on one route, KDE on another, placed by the
/// consistent-hash ring) behind a NetFrontend speaking line-delimited JSON.
/// Run `client` from a second terminal — it sends a scalar request and a
/// threshold sweep over the wire and prints both. Ctrl-C (or 60s idle)
/// drains the server gracefully.
///
/// `shard_node` mode runs ONE remote fleet shard: a full serving stack
/// behind a frontend, started empty — a ShardedRegistry configured with this
/// endpoint in `ShardedConfig::remotes` pushes model state to it over the
/// checksummed state-transfer protocol and routes estimates to it through
/// the replication/failover machinery (see src/serve/README.md, "Fleet").
/// SIGTERM/Ctrl-C drains it; kill -9 it to watch the fleet fail over.

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/kde.h"
#include "core/model_io.h"
#include "core/selnet_ct.h"
#include "core/updater.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "serve/frontend.h"
#include "serve/server.h"
#include "serve/shard_node.h"
#include "serve/shard_router.h"
#include "serve/update_pipeline.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace selnet;

namespace {

/// Train the demo corpus + models once (shared by every mode).
struct DemoWorld {
  std::unique_ptr<data::Database> db;
  data::Workload wl;
  std::shared_ptr<core::SelNetCt> selnet;
  std::shared_ptr<bl::KdeEstimator> kde;
};

DemoWorld BuildWorld() {
  DemoWorld world;
  data::SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 16;
  spec.num_clusters = 8;
  world.db = std::make_unique<data::Database>(data::GenerateMixture(spec),
                                              data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 120;
  wspec.w = 10;
  wspec.max_sel_fraction = 0.1;
  world.wl = data::GenerateWorkload(*world.db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = world.db->dim();
  cfg.tmax = world.wl.tmax;
  cfg.num_control = 12;
  eval::TrainContext ctx;
  ctx.db = world.db.get();
  ctx.workload = &world.wl;
  ctx.epochs = 12;
  world.selnet = std::make_shared<core::SelNetCt>(cfg);
  world.selnet->Fit(ctx);

  bl::KdeConfig kcfg;
  kcfg.num_samples = 500;
  world.kde = std::make_shared<bl::KdeEstimator>(kcfg);
  world.kde->Fit(ctx);
  return world;
}

std::atomic<bool> g_interrupted{false};
void OnSigInt(int) { g_interrupted.store(true); }

/// `serve_demo server [port]`: 2-shard fleet + JSON-over-TCP frontend.
int RunServer(uint16_t port) {
  std::printf("training demo models...\n");
  DemoWorld world = BuildWorld();

  serve::ShardedConfig scfg;
  scfg.server.dim = world.db->dim();
  scfg.num_shards = 2;
  scfg.server.scheduler.max_batch = 64;
  scfg.server.scheduler.max_delay_ms = 0.3;
  // Stage-trace 1 request in 16: cheap enough to leave on (see
  // bench/serve_throughput part 7) and enough samples for live per-stage
  // percentiles in the digest below and in {"cmd":"stats"} replies.
  scfg.server.trace_sample_every = 16;
  serve::ShardedRegistry registry(scfg);
  registry.Publish("selnet", world.selnet);
  registry.Publish("kde", world.kde);

  serve::FrontendConfig fcfg;
  fcfg.port = port;
  serve::NetFrontend frontend(fcfg, &registry);
  if (!frontend.status().ok()) {
    std::printf("frontend failed: %s\n", frontend.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "serving on 127.0.0.1:%u — routes: selnet (shard %zu), kde (shard "
      "%zu); tmax=%.3f dim=%zu\n"
      "try:  ./serve_demo client %u   (also sends {\"cmd\":\"stats\"})\n"
      "serving for 60s (Ctrl-C drains early)...\n",
      unsigned(frontend.port()), registry.ShardOf("selnet"),
      registry.ShardOf("kde"), world.wl.tmax, world.db->dim(),
      unsigned(frontend.port()));
  std::signal(SIGINT, OnSigInt);
  for (int tick = 0; tick < 600 && !g_interrupted.load(); ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (tick % 50 == 49) {
      // Digest every ~5s from the merged fleet snapshot — the same numbers a
      // wire client gets from {"cmd":"stats"}, plus the control-plane
      // counters behind {"cmd":"metrics"}: per-replica health and the
      // failover / state-transfer totals.
      serve::StatsSnapshot s = frontend.FleetSnapshot();
      std::printf(
          "[stats] %llu req, %.0f qps, p50 %.3f ms, p99 %.3f ms, hit rate "
          "%.2f, traced %llu, slow %zu\n",
          (unsigned long long)s.requests, s.qps, s.latency_p50_ms,
          s.latency_p99_ms, s.cache_hit_rate, (unsigned long long)s.traced,
          s.slow_requests.size());
      std::string replicas;
      for (const serve::SlotSnapshot& sl : s.slots) {
        replicas += " " + sl.endpoint + "=" + sl.health;
      }
      util::MetricsRegistry& m = registry.metrics();
      std::printf(
          "[fleet]%s | failover %llu/%llu ok, transitions %llu, "
          "transfer tx %lluB, scrapes %llu\n",
          replicas.c_str(),
          (unsigned long long)m.CounterTotal("selnet_failover_successes_total"),
          (unsigned long long)m.CounterTotal("selnet_failover_attempts_total"),
          (unsigned long long)m.CounterTotal(
              "selnet_health_transitions_total"),
          (unsigned long long)m.CounterTotal("selnet_transfer_tx_bytes_total"),
          (unsigned long long)m.CounterTotal("selnet_scrape_total"));
    }
  }
  frontend.Stop();  // Graceful drain: accepted requests are answered.
  std::printf("\n%s\n", registry.StatsReport().c_str());
  return 0;
}

/// `serve_demo client <port> [host]`: one scalar + one sweep over the wire.
int RunClient(const std::string& host, uint16_t port) {
  serve::NetClient client;
  util::Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::printf("connect failed: %s\n", connected.ToString().c_str());
    return 1;
  }
  // The demo server's corpus is 16-dimensional with tmax ~= a few units; a
  // mid-range query vector exercises both routes.
  std::vector<float> x(16, 0.25f);
  for (const std::string& route : {std::string("selnet"), std::string("kde")}) {
    serve::EstimateRequest scalar =
        serve::EstimateRequest::Point(x.data(), x.size(), 1.0f, route);
    scalar.tag = 1;
    auto resp = client.Roundtrip(scalar);
    if (!resp.ok()) {
      std::printf("[%s] scalar failed: %s\n", route.c_str(),
                  resp.status().ToString().c_str());
      continue;
    }
    std::printf("[%s] estimate(x, t=1.0) = %.2f (v%llu)\n", route.c_str(),
                resp.ValueOrDie().estimates[0],
                (unsigned long long)resp.ValueOrDie().version);

    std::vector<float> ts;
    for (int i = 1; i <= 8; ++i) ts.push_back(0.5f * float(i));
    serve::EstimateRequest sweep =
        serve::EstimateRequest::Sweep(x.data(), x.size(), ts, route);
    sweep.tag = 2;
    auto sresp = client.Roundtrip(sweep);
    if (!sresp.ok()) {
      std::printf("[%s] sweep failed: %s\n", route.c_str(),
                  sresp.status().ToString().c_str());
      continue;
    }
    std::printf("[%s] sweep (fast_path=%d):", route.c_str(),
                int(sresp.ValueOrDie().fast_path));
    for (float v : sresp.ValueOrDie().estimates) std::printf(" %.1f", v);
    std::printf("\n");
  }
  // The admin plane rides the same connection: fleet stats as one JSON line.
  auto stats = client.Admin("stats");
  if (stats.ok()) {
    std::printf("\n{\"cmd\":\"stats\"} -> %s\n", stats.ValueOrDie().c_str());
  }
  return 0;
}

/// `serve_demo metrics <port> [host]`: fetch and print the Prometheus-style
/// exposition plus the event ring — what a scraper sidecar would pull.
int RunMetrics(const std::string& host, uint16_t port) {
  serve::NetClient client;
  util::Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::printf("connect failed: %s\n", connected.ToString().c_str());
    return 1;
  }
  client.set_recv_timeout_ms(5000);
  auto text = client.Metrics();
  if (!text.ok()) {
    std::printf("metrics failed: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::fputs(text.ValueOrDie().c_str(), stdout);
  auto events = client.Admin("events");
  if (events.ok()) {
    std::printf("\n# events\n%s\n", events.ValueOrDie().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "server") == 0) {
    return RunServer(argc >= 3 ? uint16_t(std::atoi(argv[2])) : 7979);
  }
  if (argc >= 2 && std::strcmp(argv[1], "shard_node") == 0) {
    if (argc < 3) {
      std::printf("usage: serve_demo shard_node <port> [dim]\n");
      return 2;
    }
    serve::ShardNodeProcessOptions opts;
    opts.port = uint16_t(std::atoi(argv[2]));
    opts.dim = argc >= 4 ? size_t(std::atoi(argv[3])) : 16;
    return serve::RunShardNodeProcess(opts);
  }
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0) {
    if (argc < 3) {
      std::printf("usage: serve_demo client <port> [host]\n");
      return 1;
    }
    return RunClient(argc >= 4 ? argv[3] : "127.0.0.1",
                     uint16_t(std::atoi(argv[2])));
  }
  if (argc >= 2 && std::strcmp(argv[1], "metrics") == 0) {
    if (argc < 3) {
      std::printf("usage: serve_demo metrics <port> [host]\n");
      return 1;
    }
    return RunMetrics(argc >= 4 ? argv[3] : "127.0.0.1",
                      uint16_t(std::atoi(argv[2])));
  }
  // 1. Offline: build data, train SelNet-ct, write a model file.
  data::SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 16;
  spec.num_clusters = 8;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 120;
  wspec.w = 10;
  wspec.max_sel_fraction = 0.1;
  data::Workload wl = data::GenerateWorkload(db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 12;
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  ctx.epochs = 12;
  core::SelNetCt trained(cfg);
  trained.Fit(ctx);
  std::string model_path = "/tmp/selnet_serve_demo.selm";
  util::Status saved = core::SaveModel(trained, model_path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("offline: trained %s (%zu params), wrote %s\n",
              trained.Name().c_str(), trained.NumParams(), model_path.c_str());

  // 2. Online: bring up the server and publish the file.
  serve::ServerConfig scfg;
  scfg.dim = db.dim();
  scfg.scheduler.max_batch = 64;
  scfg.scheduler.max_delay_ms = 0.3;
  serve::SelNetServer server(scfg);
  auto version = server.PublishFromFile(model_path);
  if (!version.ok()) {
    std::printf("publish failed: %s\n", version.status().ToString().c_str());
    return 1;
  }
  std::printf("online: published model v%llu\n",
              (unsigned long long)version.ValueOrDie());

  // 3. A monotone threshold sweep as ONE request object: SelNet is
  //    SweepCapable, so the server answers all 8 thresholds from a single
  //    control-point evaluation (one network forward + 8 PWL lookups).
  //    Consistency guarantees the column is sorted.
  std::vector<float> ts;
  for (int i = 1; i <= 8; ++i) ts.push_back(wl.tmax * float(i) / 8.0f);
  serve::EstimateResponse sweep =
      server.Submit(serve::EstimateRequest::Sweep(wl.queries.row(0), db.dim(),
                                                  ts))
          .get();
  std::printf("\nthreshold sweep (query 0, fast_path=%d):\n%8s %12s\n",
              int(sweep.fast_path), "t", "estimate");
  for (size_t i = 0; i < ts.size(); ++i) {
    std::printf("%8.3f %12.1f\n", ts[i], sweep.estimates[i]);
  }

  // 3b. Served A/B comparison: publish a KDE baseline under a second route
  //     and sweep both models through the same endpoint.
  bl::KdeConfig kcfg;
  kcfg.num_samples = 500;
  auto kde = std::make_shared<bl::KdeEstimator>(kcfg);
  kde->Fit(ctx);
  server.Publish("kde", kde);
  serve::EstimateResponse kde_sweep =
      server.Submit(serve::EstimateRequest::Sweep(wl.queries.row(0), db.dim(),
                                                  ts, "kde"))
          .get();
  std::printf("\nA/B sweep (query 0): %12s %12s\n", "SelNet", "KDE");
  for (size_t i = 0; i < ts.size(); ++i) {
    std::printf("t=%6.3f %12.1f %12.1f\n", ts[i], sweep.estimates[i],
                kde_sweep.estimates[i]);
  }

  // 4. Live updates: attach the pipeline, then hammer the endpoint from
  //    concurrent clients while insert batches stream in. The pipeline
  //    patches its shadow labels per op, retrains a clone when MAE drift
  //    trips, and hot-swaps the route — no query fails, nothing blocks.
  serve::UpdatePipelineConfig ucfg;
  ucfg.policy.mae_drift_fraction = 0.0;  // Always retrain in the demo.
  ucfg.policy.max_epochs = 4;
  // The demo clients saturate every core with a spin loop, which would
  // starve an idle-class background thread outright; the nice fallback
  // keeps the retrain visibly progressing while traffic flows. Production
  // serving has scheduling gaps, so the default SCHED_IDLE is the better
  // tail-latency choice there (see bench/serve_throughput part 4).
  ucfg.background_idle_sched = false;
  serve::LiveUpdatePipeline& pipeline =
      server.AttachUpdatePipeline(ucfg, db, wl);

  std::atomic<bool> stop{false};
  std::atomic<size_t> ok_count{0}, fail_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(50 + c);
      while (!stop.load()) {
        size_t qi = size_t(rng.UniformInt(0, int64_t(wl.queries.rows()) - 1));
        float t = wl.tmax * float(rng.Uniform());
        auto est = server.Estimate(wl.queries.row(qi), t);
        (est.ok() ? ok_count : fail_count).fetch_add(1);
      }
    });
  }

  util::Stopwatch watch;
  for (int round = 0; round < 2; ++round) {
    // A mutating database: fresh objects arrive in batches. Submitting them
    // costs one queue push; all heavy work happens on the pipeline thread.
    core::UpdateOp op;
    op.is_insert = true;
    tensor::Matrix fresh = data::DrawFromSameMixture(spec, 60, 900 + round);
    for (size_t i = 0; i < fresh.rows(); ++i) {
      op.vectors.emplace_back(fresh.row(i), fresh.row(i) + db.dim());
    }
    pipeline.Submit(std::move(op));
  }
  // Keep the clients hammering until at least one retrained version has been
  // hot-swapped in mid-traffic, then let the rest of the queue drain.
  while (pipeline.Snapshot().publishes == 0 && watch.ElapsedSeconds() < 60.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  pipeline.Flush();  // Demo only: wait so the printout below is final.

  serve::UpdatePipelineState pstate = pipeline.Snapshot();
  std::printf(
      "\nlive updates: %llu ops (+%llu records) applied in %.0f ms, "
      "%llu drift retrains (%llu epochs), republished %llu times "
      "(now serving v%llu, MAE %.2f)\n",
      (unsigned long long)pstate.ops_applied,
      (unsigned long long)pstate.records_inserted, watch.ElapsedMillis(),
      (unsigned long long)pstate.retrains_triggered,
      (unsigned long long)pstate.epochs_run,
      (unsigned long long)pstate.publishes,
      (unsigned long long)pstate.last_published_version, pstate.last_mae);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& th : clients) th.join();
  server.Drain();

  std::printf("\ntraffic during swaps: %zu served, %zu failed\n",
              ok_count.load(), fail_count.load());
  std::printf("\n%s\n", server.StatsReport().c_str());
  std::remove(model_path.c_str());
  return fail_count.load() == 0 ? 0 : 1;
}
