/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the library: build a database, generate a
/// labelled workload, train SelNet, and estimate selectivities.
///
///   ./examples/quickstart

#include <cstdio>

#include "core/selnet_ct.h"
#include "data/synthetic.h"
#include "data/workload.h"

using namespace selnet;

int main() {
  // 1. A database of 3000 16-dimensional vectors (Gaussian-mixture demo data;
  //    swap in your own matrix for real embeddings).
  data::SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = 16;
  spec.num_clusters = 8;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  std::printf("database: %zu vectors, dim=%zu, metric=l2\n", db.size(), db.dim());

  // 2. A training workload: queries sampled from the data, thresholds on a
  //    geometric selectivity ladder, exact labels, 80:10:10 split by query.
  data::WorkloadSpec wspec;
  wspec.num_queries = 120;
  wspec.w = 10;
  wspec.max_sel_fraction = 0.1;
  data::Workload wl = data::GenerateWorkload(db, wspec);
  std::printf("workload: %zu train / %zu valid / %zu test samples, tmax=%.3f\n",
              wl.train.size(), wl.valid.size(), wl.test.size(), wl.tmax);

  // 3. Train SelNet (single-partition variant for the quickstart).
  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 12;
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  ctx.epochs = 25;
  core::SelNetCt model(cfg);
  model.Fit(ctx);
  std::printf("trained %s with %zu parameters\n", model.Name().c_str(),
              model.NumParams());

  // 4. Estimate: pick a few test samples and compare against the exact count.
  std::printf("\n%8s %12s %12s\n", "t", "estimated", "exact");
  for (size_t i = 0; i < 8 && i < wl.test.size(); ++i) {
    const data::QuerySample& s = wl.test[i * 3 % wl.test.size()];
    tensor::Matrix x(1, db.dim()), t(1, 1);
    std::copy(wl.queries.row(s.query_id), wl.queries.row(s.query_id) + db.dim(),
              x.row(0));
    t(0, 0) = s.t;
    tensor::Matrix yhat = model.Predict(x, t);
    std::printf("%8.3f %12.1f %12.0f\n", s.t, yhat(0, 0), s.y);
  }

  // 5. Consistency in action: estimates never decrease as t grows.
  std::printf("\nselectivity curve for one query (always non-decreasing):\n");
  const float* q = wl.queries.row(wl.test.front().query_id);
  for (int i = 0; i <= 6; ++i) {
    float t = wl.tmax * static_cast<float>(i) / 6.0f;
    tensor::Matrix x(1, db.dim()), tm(1, 1);
    std::copy(q, q + db.dim(), x.row(0));
    tm(0, 0) = t;
    std::printf("  f(x, %.3f) = %.1f\n", t, model.Predict(x, tm)(0, 0));
  }
  return 0;
}
