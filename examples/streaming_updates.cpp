/// \file streaming_updates.cpp
/// \brief Keeping the estimator fresh under inserts and deletes
/// (Section 5.4): labels are patched incrementally per record, validation MAE
/// drift triggers incremental retraining, and accuracy stays flat across the
/// stream.
///
///   ./examples/streaming_updates

#include <cstdio>

#include "core/selnet_ct.h"
#include "core/updater.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

using namespace selnet;

int main() {
  data::SyntheticSpec spec;
  spec.n = 2200;
  spec.dim = 10;
  spec.num_clusters = 6;
  data::Database db(data::GenerateMixture(spec), data::Metric::kEuclidean);
  data::WorkloadSpec wspec;
  wspec.num_queries = 110;
  wspec.w = 8;
  wspec.max_sel_fraction = 0.15;
  data::Workload wl = data::GenerateWorkload(db, wspec);

  core::SelNetConfig cfg;
  cfg.input_dim = db.dim();
  cfg.tmax = wl.tmax;
  cfg.num_control = 10;
  core::SelNetCt model(cfg);
  eval::TrainContext ctx;
  ctx.db = &db;
  ctx.workload = &wl;
  ctx.epochs = 20;
  model.Fit(ctx);

  core::UpdatePolicy policy;
  policy.mae_drift_fraction = 0.10;
  core::UpdateManager mgr(&db, &wl, &model, ctx, policy);
  std::printf("initial validation MAE: %.2f\n\n", mgr.baseline_mae());

  util::Rng rng(11);
  std::printf("%5s %10s %10s %10s %10s\n", "op", "kind", "MSE(test)",
              "MAPE(test)", "retrain");
  for (size_t op = 1; op <= 30; ++op) {
    core::UpdateOp update;
    update.is_insert = rng.Bernoulli(0.5);
    if (update.is_insert) {
      tensor::Matrix fresh = data::DrawFromSameMixture(spec, 5, 1000 + op);
      for (size_t r = 0; r < 5; ++r) {
        update.vectors.emplace_back(fresh.row(r), fresh.row(r) + db.dim());
      }
    } else {
      auto live = db.LiveIds();
      for (size_t p : rng.SampleWithoutReplacement(live.size(), 5)) {
        update.ids.push_back(live[p]);
      }
    }
    core::UpdateResult res = mgr.Apply(update);
    data::Batch b = data::MaterializeAll(wl.queries, wl.test);
    eval::Errors e = eval::ComputeErrors(model.Predict(b.x, b.t), b.y);
    std::printf("%5zu %10s %10.1f %10.3f %10s\n", op,
                update.is_insert ? "insert+5" : "delete-5", e.mse, e.mape,
                res.retrained ? "yes" : "-");
  }
  std::printf("\nfinal database size: %zu (started at %zu)\n", db.size(), spec.n);
  return 0;
}
